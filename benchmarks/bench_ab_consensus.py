"""E11 -- Theorem 11: AB-Consensus under authenticated Byzantine
faults.

``O(t)`` rounds, ``O(t² + n)`` messages from non-faulty nodes; linear
communication holds exactly while ``t = O(√n)`` (Table 1's crossover).
"""

import math

import pytest

from repro import run_ab_consensus
from repro.bench.workloads import byzantine_sample, input_vector

from conftest import measure


def _assert_byz_spec(result, n, byzantine):
    honest = set(range(n)) - set(byzantine)
    decisions = result.correct_decisions()
    assert set(decisions) == honest
    assert len(set(decisions.values())) == 1


@pytest.mark.parametrize("t", [5, 10, 20, 40])
def test_byzantine_t_sweep(benchmark, t):
    n = 400  # √n = 20: rows below/at/above the linear-comm crossover
    inputs = input_vector(n, "random", 1)
    byz = byzantine_sample(n, t, 1)
    result = measure(
        benchmark,
        lambda: run_ab_consensus(inputs, t, byzantine=byz, behaviour="equivocate"),
        check=lambda r: _assert_byz_spec(r, n, byz),
        n=n,
        t=t,
        t_squared_over_n=round(t * t / n, 2),
    )
    assert result.rounds <= 4 * t + 4 * math.log2(n) + 20
    # The committee constant is ~3·(5)² = 75 combined DS messages per
    # t² unit (Part 1 runs over 5t little nodes).
    assert result.messages <= 100 * (t * t + n)


@pytest.mark.parametrize("behaviour", ["silent", "equivocate", "spam"])
def test_byzantine_behaviours(benchmark, behaviour):
    n, t = 200, 10
    inputs = input_vector(n, "random", 2)
    byz = byzantine_sample(n, t, 2)
    result = measure(
        benchmark,
        lambda: run_ab_consensus(inputs, t, byzantine=byz, behaviour=behaviour),
        check=lambda r: _assert_byz_spec(r, n, byz),
        behaviour=behaviour,
    )
    # Byzantine senders never inflate the headline count.
    assert set(result.metrics.per_node_messages).isdisjoint(byz)


def test_linear_communication_crossover(benchmark):
    # msgs/n stays ~constant while t ≤ √n and grows ~t²/n beyond it.
    n = 400
    small = run_ab_consensus(
        input_vector(n, "random", 3), 10, byzantine=byzantine_sample(n, 10, 3)
    )
    large = measure(
        benchmark,
        lambda: run_ab_consensus(
            input_vector(n, "random", 3), 40, byzantine=byzantine_sample(n, 40, 3)
        ),
        small_t_msgs_per_n=round(small.messages / n, 2),
    )
    assert large.messages / n > 2 * (small.messages / n)
