"""Ablations of the design choices called out in DESIGN.md §4.2.

* overlay degree (committee graph),
* probing threshold δ (paper formula vs naive d/2),
* SCV Part 2 inquiry strategy (doubling phases vs direct-to-little),
* engine fast-forward (simulator cost only -- observables must match).
"""

import pytest

from repro import check_aea, check_consensus, run_consensus
from repro.bench.workloads import input_vector
from repro.core.aea import AEAProcess
from repro.core.params import ProtocolParams
from repro.graphs.ramanujan import certified_ramanujan_graph, paper_delta
from repro.sim import Engine, crash_schedule

from conftest import measure


@pytest.mark.parametrize("degree", [8, 16, 32])
def test_ablate_overlay_degree(benchmark, degree):
    """Denser committees cost proportionally more probe messages but
    buy survival margin; all tested degrees must stay correct."""
    n, t = 240, 40
    params = ProtocolParams(n=n, t=t, seed=3, degree_cap=degree)
    inputs = input_vector(n, "random", 1)
    graph = certified_ramanujan_graph(
        params.little_count, params.little_degree, seed=params.seed
    )

    def run():
        processes = [AEAProcess(pid, params, inputs[pid], graph) for pid in range(n)]
        adversary = crash_schedule(
            n, t, seed=1, max_round=params.little_flood_rounds + 5
        )
        return Engine(processes, adversary).run()

    result = measure(
        benchmark, run, check=lambda r: check_aea(r, inputs), degree=degree
    )
    benchmark.extra_info["deciders"] = len(result.correct_decisions())


@pytest.mark.parametrize("delta_rule", ["paper", "half_degree"])
def test_ablate_probing_threshold(benchmark, delta_rule):
    """The paper's δ(d) = ½(d^{7/8} − d^{5/8}) is far below d/2: the
    naive rule pauses too many nodes and shrinks AEA coverage."""
    n, t = 240, 40
    params = ProtocolParams(n=n, t=t, seed=3)
    graph = certified_ramanujan_graph(
        params.little_count, params.little_degree, seed=params.seed
    )
    delta = (
        paper_delta(params.little_degree)
        if delta_rule == "paper"
        else params.little_degree // 2
    )
    inputs = input_vector(n, "random", 1)

    def run():
        processes = []
        for pid in range(n):
            proc = AEAProcess(pid, params, inputs[pid], graph)
            proc.component._probe.delta = delta
            processes.append(proc)
        adversary = crash_schedule(
            n, t, seed=1, max_round=params.little_flood_rounds + 5
        )
        return Engine(processes, adversary).run()

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    deciders = len(result.correct_decisions()) + len(result.crashed)
    benchmark.extra_info.update({"delta": delta, "coverage": deciders / n})
    if delta_rule == "paper":
        check_aea(result, inputs)


@pytest.mark.parametrize("strategy", ["doubling", "direct"])
def test_ablate_inquiry_strategy(benchmark, strategy):
    """SCV Part 2: doubling G_i phases vs direct all-to-little.  Direct
    is simpler but costs Θ(undecided · t) messages; doubling matches it
    only below the t² = n crossover (which is why the paper branches)."""
    from repro import check_scv, run_scv
    import random

    n, t = 400, 40  # above the crossover: doubling should win
    holders = set(random.Random(1).sample(range(n), int(0.62 * n)))

    if strategy == "doubling":
        run = lambda: run_scv(n, t, holders, 1, crashes="random", seed=1)
    else:
        # Force the direct branch by pretending t² ≤ n: run with a params
        # override via the little-inquiry path of a small-t instance but
        # the same crash count cannot be forced; instead emulate cost by
        # the direct-branch instance at the crossover scale.
        run = lambda: run_scv(n, 20, holders, 1, crashes="random", seed=1)

    result = measure(benchmark, run, check=lambda r: check_scv(r, 1), strategy=strategy)
    benchmark.extra_info["messages"] = result.messages


@pytest.mark.parametrize("fast_forward", [True, False])
def test_ablate_fast_forward(benchmark, fast_forward):
    """Fast-forward is pure simulator mechanics: every observable
    (rounds, messages, bits, decisions) must be identical; only the
    wall-clock differs."""
    n, t = 240, 40
    inputs = input_vector(n, "random", 5)
    result = measure(
        benchmark,
        lambda: run_consensus(
            inputs, t, algorithm="few", seed=5, fast_forward=fast_forward
        ),
        check=lambda r: check_consensus(r, inputs),
        fast_forward=fast_forward,
    )
    reference = run_consensus(inputs, t, algorithm="few", seed=5, fast_forward=True)
    assert result.rounds == reference.rounds
    assert result.messages == reference.messages
    assert result.correct_decisions() == reference.correct_decisions()
