"""Measured worst-case constants vs t, via the annealing adversary search.

Runs the ``repro-bench adversary`` series (one simulated-annealing walk
over crash/churn scenario space per ``(kernel family, t)`` cell,
maximizing the measured communication ratio against the Table 1
envelope -- see :mod:`repro.check.search`) and writes the committed
``BENCH_adversary.json`` trajectory artifact (schema validated by
``tests/test_bench_artifacts.py``)::

    python benchmarks/bench_adversary.py                # full grid -> artifact
    python benchmarks/bench_adversary.py --quick        # small grid, no artifact
    python benchmarks/bench_adversary.py --jobs 4       # parallel, same rows

Every row records the per-``t`` worst measured ratio, its gain over the
failure-free baseline, and the *measured constant* (worst observed
communication as a multiple of the instance's envelope expression) --
the constant-vs-t curve the paper's theorems bound but do not report.
Rows are deterministic given the seed, so re-running regenerates the
artifact bit-for-bit.
"""

from __future__ import annotations

import argparse
import json
import sys
from datetime import date
from pathlib import Path

from repro.bench.runner import format_table
from repro.bench.series import adversary_spec
from repro.bench.sweep import run_sweep

SCHEMA = "repro-bench-adversary/1"


def headline(rows: list[dict]) -> dict:
    """The cell with the largest adversary-induced gain over baseline."""
    top = max(rows, key=lambda r: (r["gain"], r["worst_ratio"]))
    return {
        "family": top["family"],
        "n": top["n"],
        "t": top["t"],
        "worst_ratio": top["worst_ratio"],
        "baseline_ratio": top["baseline_ratio"],
        "gain": top["gain"],
        "measured_constant": top["measured_constant"],
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_adversary.json",
                        help="artifact path (default BENCH_adversary.json)")
    parser.add_argument("--quick", action="store_true",
                        help="small grid; skip writing the artifact")
    parser.add_argument("--jobs", "-j", type=int, default=1,
                        help="worker processes (rows are jobs-independent)")
    parser.add_argument("--seed", type=int, default=0,
                        help="search seed (default 0)")
    args = parser.parse_args(argv)

    if args.quick:
        spec = adversary_spec(n=16, ts=[1, 2], seed=args.seed, budget=20)
    else:
        spec = adversary_spec(seed=args.seed)
    report = run_sweep(spec, jobs=args.jobs)
    rows = report.rows()
    print(format_table(rows))
    head = headline(rows)
    print(
        f"\nheadline: {head['family']} n={head['n']} t={head['t']}: "
        f"worst ratio {head['worst_ratio']:.4f} vs baseline "
        f"{head['baseline_ratio']:.4f} (gain {head['gain']:+.4f}; "
        f"measured constant {head['measured_constant']:.3f}x envelope)"
    )
    if args.quick:
        return 0
    artifact = {
        "schema": SCHEMA,
        "generated": date.today().isoformat(),
        "command": "python benchmarks/bench_adversary.py",
        "python": sys.version.split()[0],
        "headline": head,
        "rows": rows,
    }
    Path(args.out).write_text(json.dumps(artifact, indent=2) + "\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
