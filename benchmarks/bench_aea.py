"""E5 -- Theorem 5: Almost-Everywhere-Agreement.

``O(t)`` rounds, one-bit messages, at least 3/5 of the nodes decide or
crash.
"""

import pytest

from repro import check_aea, run_aea
from repro.bench.workloads import input_vector
from repro.core.params import ProtocolParams

from conftest import measure


@pytest.mark.parametrize("n", [120, 240, 480])
def test_aea_scaling(benchmark, n):
    t = n // 6
    inputs = input_vector(n, "random", 1)
    result = measure(
        benchmark,
        lambda: run_aea(inputs, t, crashes="random", seed=1),
        check=lambda r: check_aea(r, inputs),
        n=n,
        t=t,
    )
    params = ProtocolParams(n=n, t=t)
    schedule = params.little_flood_rounds + params.little_probe_rounds + 2
    assert result.rounds <= schedule
    assert result.bits == result.messages  # one-bit messages


@pytest.mark.parametrize("kind", ["early", "late", "staggered"])
def test_aea_adversary_kinds(benchmark, kind):
    n, t = 240, 40
    inputs = input_vector(n, "random", 2)
    measure(
        benchmark,
        lambda: run_aea(inputs, t, crashes=kind, seed=2),
        check=lambda r: check_aea(r, inputs),
        kind=kind,
    )
