"""BASE -- cross-comparison against the classical baselines.

Same workloads, side by side: the paper's algorithms vs time-optimal
but message-quadratic comparators.  The message-count gap is the
paper's headline and must widen with n.
"""

import pytest

from repro import (
    check_checkpointing,
    check_consensus,
    check_gossip,
    run_checkpointing,
    run_consensus,
    run_gossip,
)
from repro.auth.signatures import SignatureService
from repro.baselines import (
    DSEverywhereProcess,
    FloodingConsensusProcess,
    NaiveCheckpointingProcess,
    NaiveGossipProcess,
)
from repro.bench.workloads import input_vector, rumor_vector
from repro.core.params import ProtocolParams
from repro.sim import Engine, crash_schedule

from conftest import measure


@pytest.mark.parametrize("n", [120, 240, 480])
def test_consensus_vs_flooding(benchmark, n):
    t = n // 10
    inputs = input_vector(n, "random", 1)
    procs = [FloodingConsensusProcess(i, n, t, inputs[i]) for i in range(n)]
    baseline = Engine(procs, crash_schedule(n, t, seed=1, max_round=t + 1)).run()
    check_consensus(baseline, inputs)
    result = measure(
        benchmark,
        lambda: run_consensus(inputs, t, algorithm="few", seed=1),
        check=lambda r: check_consensus(r, inputs),
        baseline_messages=baseline.messages,
    )
    ratio = baseline.messages / result.messages
    benchmark.extra_info["msg_ratio_flooding_over_paper"] = round(ratio, 1)
    assert ratio > 3
    if n >= 240:
        assert ratio > 10  # the gap widens: Θ(n²t) vs Θ(n + t log t)


@pytest.mark.parametrize("n", [240, 480])
def test_gossip_vs_naive(benchmark, n):
    t = n // 10
    rumors = rumor_vector(n, 1)
    procs = [NaiveGossipProcess(i, n, rumors[i]) for i in range(n)]
    baseline = Engine(procs, crash_schedule(n, t, seed=1, max_round=2)).run()
    result = measure(
        benchmark,
        lambda: run_gossip(rumors, t, crashes="random", seed=1),
        check=lambda r: check_gossip(r, rumors),
        baseline_messages=baseline.messages,
    )
    benchmark.extra_info["msg_ratio_naive_over_paper"] = round(
        baseline.messages / result.messages, 2
    )


@pytest.mark.parametrize("n", [200, 400])
def test_checkpointing_vs_naive(benchmark, n):
    # The committee constant puts the crossover near n ≈ 150 (E10); from
    # n = 200 the paper algorithm must win, with a widening gap.
    t = n // 10
    procs = [NaiveCheckpointingProcess(i, n, t) for i in range(n)]
    baseline = Engine(procs, crash_schedule(n, t, seed=1, max_round=t + 2)).run()
    check_checkpointing(baseline)
    result = measure(
        benchmark,
        lambda: run_checkpointing(n, t, crashes="random", seed=1),
        check=check_checkpointing,
        baseline_messages=baseline.messages,
    )
    assert result.messages < baseline.messages


def test_ab_consensus_vs_ds_everywhere(benchmark):
    from repro import run_ab_consensus
    from repro.bench.workloads import byzantine_sample

    n, t = 200, 7  # t < √n: the linear-communication regime
    inputs = input_vector(n, "random", 2)
    params = ProtocolParams(n=n, t=t)
    service = SignatureService(n)
    procs = [DSEverywhereProcess(i, params, inputs[i], service) for i in range(n)]
    baseline = Engine(procs).run()
    byz = byzantine_sample(n, t, 2)
    result = measure(
        benchmark,
        lambda: run_ab_consensus(inputs, t, byzantine=byz, behaviour="silent"),
        baseline_messages=baseline.messages,
    )
    # Committee DS is far below all-to-all DS.
    assert result.messages < baseline.messages / 2
