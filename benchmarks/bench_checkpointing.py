"""E10 -- Theorem 10: Checkpointing.

``O(t + log n log t)`` rounds, ``O(n + t log n log t)`` messages; the
combined consensus instances beat the quadratic baseline by a widening
factor (the paper's improvement over Galil–Mayer–Yung by a polynomial
factor).
"""

import pytest

from repro import check_checkpointing, run_checkpointing
from repro.baselines import NaiveCheckpointingProcess
from repro.core.params import ProtocolParams
from repro.sim import Engine, crash_schedule

from conftest import measure


@pytest.mark.parametrize("n", [100, 200, 400])
def test_checkpointing_scaling(benchmark, n):
    t = n // 10
    result = measure(
        benchmark,
        lambda: run_checkpointing(n, t, crashes="random", seed=1),
        check=check_checkpointing,
        n=n,
        t=t,
    )
    params = ProtocolParams(n=n, t=t)
    gossip_rounds = 2 * params.gossip_phase_count * (2 + params.little_probe_rounds)
    consensus_rounds = (
        params.little_flood_rounds
        + params.little_probe_rounds
        + params.scv_spread_rounds
        + 2 * params.scv_phase_count
        + 8
    )
    assert result.rounds <= gossip_rounds + consensus_rounds


@pytest.mark.parametrize("n", [100, 200, 400])
def test_checkpointing_vs_naive_baseline(benchmark, n):
    t = n // 10
    baseline_procs = [NaiveCheckpointingProcess(i, n, t) for i in range(n)]
    baseline = Engine(
        baseline_procs, crash_schedule(n, t, seed=1, max_round=t + 2)
    ).run()
    check_checkpointing(baseline)
    result = measure(
        benchmark,
        lambda: run_checkpointing(n, t, crashes="random", seed=1),
        check=check_checkpointing,
        baseline_messages=baseline.messages,
    )
    ratio = baseline.messages / result.messages
    benchmark.extra_info["msg_ratio_naive_over_paper"] = round(ratio, 2)
    # The gap must widen with n (polynomial-factor improvement).
    if n >= 200:
        assert ratio > 1.5
