"""E7 -- Theorem 7: Few-Crashes-Consensus.

``O(t + log n)`` rounds and ``O(n + t log t)`` one-bit messages for
``t < n/5``.
"""

import math

import pytest

from repro import check_consensus, run_consensus
from repro.bench.workloads import input_vector

from conftest import measure


@pytest.mark.parametrize("n", [120, 240, 480])
def test_consensus_scaling(benchmark, n):
    t = n // 6
    inputs = input_vector(n, "random", 1)
    result = measure(
        benchmark,
        lambda: run_consensus(inputs, t, algorithm="few", seed=1),
        check=lambda r: check_consensus(r, inputs),
        n=n,
        t=t,
    )
    assert result.rounds <= 8 * t + 30 * math.log2(n)
    assert result.bits == result.messages


@pytest.mark.parametrize("kind", ["zeros", "ones", "minority_one"])
def test_consensus_input_kinds(benchmark, kind):
    n, t = 240, 40
    inputs = input_vector(n, kind, 3)
    measure(
        benchmark,
        lambda: run_consensus(inputs, t, algorithm="few", seed=3),
        check=lambda r: check_consensus(r, inputs),
        inputs=kind,
    )


def test_consensus_crash_free_floor(benchmark):
    # The failure-free run is the message floor; crashes may only add
    # the O(log t)-per-crash term (Theorem 7's efficiency discussion).
    n, t = 240, 40
    inputs = input_vector(n, "random", 4)
    free = run_consensus(inputs, t, algorithm="few", crashes=None)
    check_consensus(free, inputs)
    crashed = measure(
        benchmark,
        lambda: run_consensus(inputs, t, algorithm="few", crashes="random", seed=4),
        check=lambda r: check_consensus(r, inputs),
        crash_free_messages=free.messages,
    )
    assert crashed.messages <= free.messages + 60 * t * math.log2(max(2, t))
