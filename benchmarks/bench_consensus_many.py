"""E8 -- Theorem 8 / Corollary 1: Many-Crashes-Consensus.

Any ``0 < t < n``; at most ``n + 3(1 + lg n)`` rounds (plus the
one-round recovery check, see DESIGN.md).
"""

import math

import pytest

from repro import check_consensus, run_consensus
from repro.bench.workloads import input_vector

from conftest import measure


@pytest.mark.parametrize("alpha_pct", [30, 60, 90])
def test_mcc_alpha_sweep(benchmark, alpha_pct):
    n = 96
    t = max(1, n * alpha_pct // 100)
    inputs = input_vector(n, "random", 1)
    result = measure(
        benchmark,
        lambda: run_consensus(inputs, t, algorithm="many", seed=1),
        check=lambda r: check_consensus(r, inputs),
        n=n,
        t=t,
        alpha=alpha_pct / 100,
    )
    bound = n + 3 * (1 + math.ceil(math.log2(n)))
    assert result.rounds <= bound + 6
    assert result.bits == result.messages


@pytest.mark.parametrize("n", [64, 128])
def test_mcc_n_scaling_at_half(benchmark, n):
    t = n // 2
    inputs = input_vector(n, "random", 2)
    result = measure(
        benchmark,
        lambda: run_consensus(inputs, t, algorithm="many", seed=2),
        check=lambda r: check_consensus(r, inputs),
        n=n,
        t=t,
    )
    # Corollary 1 envelope (practical overlays are far below it).
    assert result.messages <= (5 / (1 - t / n)) ** 8 * n * math.log2(n)


def test_mcc_extreme_corollary1(benchmark):
    # t = n - 1: the Corollary 1 regime.
    n = 48
    t = n - 1
    inputs = input_vector(n, "random", 3)
    result = measure(
        benchmark,
        lambda: run_consensus(inputs, t, algorithm="many", seed=3),
        check=lambda r: check_consensus(r, inputs),
        n=n,
        t=t,
    )
    assert result.completed
