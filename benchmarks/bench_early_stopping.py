"""BASE+ -- early-stopping time adaptivity vs the paper's fixed
schedules.

Dolev–Reischuk–Strong-style early stopping decides in ``O(f + 1)``
rounds when only ``f ≤ t`` crashes occur, at ``Θ(n²)`` messages per
round; the paper's algorithms run their fixed ``O(t)`` schedule but pay
linear communication.  This is the trade-off behind Table 1 (and
Dolev–Lenzen's Ω(n²) bound shows it is inherent).
"""

import pytest

from repro import check_consensus, run_consensus
from repro.baselines import EarlyStoppingConsensusProcess
from repro.bench.workloads import input_vector
from repro.sim import Engine, crash_schedule

from conftest import measure


@pytest.mark.parametrize("f", [0, 4, 16])
def test_early_stopping_rounds_track_f(benchmark, f):
    n, t = 240, 40
    inputs = input_vector(n, "random", 1)
    adversary = crash_schedule(n, f, seed=1, kind="staggered", max_round=max(1, f))

    def run():
        processes = [
            EarlyStoppingConsensusProcess(i, n, t, inputs[i]) for i in range(n)
        ]
        return Engine(processes, adversary).run()

    result = measure(
        benchmark, run, check=lambda r: check_consensus(r, inputs), f=f, t=t
    )
    assert result.rounds <= f + 5  # O(f + 1), far below t + 1 = 41


def test_tradeoff_vs_paper_consensus(benchmark):
    # Same workload: early stopping wins rounds, the paper wins messages.
    n, t, f = 240, 40, 8
    inputs = input_vector(n, "random", 2)
    adversary = crash_schedule(n, f, seed=2, kind="staggered", max_round=f)
    processes = [
        EarlyStoppingConsensusProcess(i, n, t, inputs[i]) for i in range(n)
    ]
    early = Engine(processes, adversary).run()
    check_consensus(early, inputs)
    paper = measure(
        benchmark,
        lambda: run_consensus(
            inputs,
            t,
            algorithm="few",
            crashes=crash_schedule(n, f, seed=2, kind="staggered", max_round=f),
        ),
        check=lambda r: check_consensus(r, inputs),
        early_rounds=early.rounds,
        early_messages=early.messages,
    )
    assert early.rounds < paper.rounds  # time adaptivity
    assert paper.messages < early.messages / 3  # communication economy
