"""Engine hot-path throughput: optimized vs. reference round loop.

Flooding consensus is the message-densest workload in the repo
(all-to-all for ``t + 1`` rounds ≈ ``n²`` envelopes per round), so it
isolates the engine's per-message costs — inbox appends, payload-bits
accounting, metric tallies — from protocol logic.  The parity tests
guarantee both loops produce identical metrics; this file measures the
speed gap and records messages/sec in ``benchmark.extra_info``.
"""

import pytest

from repro import check_consensus
from repro.baselines import FloodingConsensusProcess
from repro.sim import Engine, crash_schedule


def _flooding_run(n: int, t: int, optimized: bool):
    processes = [FloodingConsensusProcess(i, n, t, i % 2) for i in range(n)]
    adversary = crash_schedule(n, t, seed=1, max_round=t + 1)
    return Engine(processes, adversary, optimized=optimized).run()


@pytest.mark.parametrize("optimized", [False, True], ids=["reference", "optimized"])
@pytest.mark.parametrize("n", [500, 2000])
def test_flooding_throughput(benchmark, n, optimized):
    t = 3
    result = benchmark.pedantic(
        lambda: _flooding_run(n, t, optimized), rounds=1, iterations=1
    )
    inputs = [i % 2 for i in range(n)]
    check_consensus(result, inputs)
    elapsed = benchmark.stats.stats.total
    benchmark.extra_info.update(
        {
            "n": n,
            "optimized": optimized,
            "messages": result.messages,
            "messages_per_sec": int(result.messages / max(elapsed, 1e-9)),
        }
    )


@pytest.mark.parametrize("optimized", [False, True], ids=["reference", "optimized"])
def test_multicast_fanout_throughput(benchmark, optimized):
    # The committee protocols stress multicast fan-out rather than
    # point-to-point floods; gossip at n=480 covers that shape.
    from repro import run_gossip
    from repro.bench.workloads import rumor_vector

    n, t = 480, 48
    rumors = rumor_vector(n, 1)
    result = benchmark.pedantic(
        lambda: run_gossip(rumors, t, seed=1, optimized=optimized),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info.update(
        {"optimized": optimized, "messages": result.messages}
    )
