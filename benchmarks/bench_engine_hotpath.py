"""Engine hot-path throughput: optimized vs. reference round loop.

Flooding consensus is the message-densest workload in the repo
(all-to-all for ``t + 1`` rounds ≈ ``n²`` envelopes per round), so it
isolates the engine's per-message costs — inbox appends, payload-bits
accounting, metric tallies — from protocol logic.  The parity tests
guarantee both loops produce identical metrics; this file measures the
speed gap and records messages/sec in ``benchmark.extra_info``.

Run as a script it writes the ``BENCH_engine.json`` trajectory artifact
(same row schema as ``BENCH_vec.json``, validated by
``tests/test_bench_artifacts.py``)::

    python benchmarks/bench_engine_hotpath.py           # -> BENCH_engine.json
    python benchmarks/bench_engine_hotpath.py --quick   # small grid, no artifact

Besides the backend rows the artifact records a ``telemetry`` section:
the same flooding workload timed with the :mod:`repro.obs` recorder off
and on, pinning the zero-overhead-when-disabled claim as data (the
disabled path is also checked structurally by ``tests/test_obs.py``).
"""

import argparse
import json
import sys
import time
from datetime import date
from pathlib import Path

import pytest

from repro import check_consensus
from repro.baselines import FloodingConsensusProcess
from repro.sim import Engine, crash_schedule

SCHEMA = "repro-bench-engine/1"


def _flooding_run(n: int, t: int, optimized: bool):
    processes = [FloodingConsensusProcess(i, n, t, i % 2) for i in range(n)]
    adversary = crash_schedule(n, t, seed=1, max_round=t + 1)
    return Engine(processes, adversary, optimized=optimized).run()


@pytest.mark.parametrize("optimized", [False, True], ids=["reference", "optimized"])
@pytest.mark.parametrize("n", [500, 2000])
def test_flooding_throughput(benchmark, n, optimized):
    t = 3
    result = benchmark.pedantic(
        lambda: _flooding_run(n, t, optimized), rounds=1, iterations=1
    )
    inputs = [i % 2 for i in range(n)]
    check_consensus(result, inputs)
    elapsed = benchmark.stats.stats.total
    benchmark.extra_info.update(
        {
            "n": n,
            "optimized": optimized,
            "messages": result.messages,
            "messages_per_sec": int(result.messages / max(elapsed, 1e-9)),
        }
    )


@pytest.mark.parametrize("optimized", [False, True], ids=["reference", "optimized"])
def test_multicast_fanout_throughput(benchmark, optimized):
    # The committee protocols stress multicast fan-out rather than
    # point-to-point floods; gossip at n=480 covers that shape.
    from repro import run_gossip
    from repro.bench.workloads import rumor_vector

    n, t = 480, 48
    rumors = rumor_vector(n, 1)
    result = benchmark.pedantic(
        lambda: run_gossip(rumors, t, seed=1, optimized=optimized),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info.update(
        {"optimized": optimized, "messages": result.messages}
    )


# -- standalone artifact producer (python benchmarks/bench_engine_hotpath.py) --


def _build(family: str, n: int, t: int):
    if family == "flooding":
        return [FloodingConsensusProcess(i, n, t, i % 2) for i in range(n)]
    if family == "gossip":
        from repro.api import build_gossip_processes

        processes, _ = build_gossip_processes([f"rumor-{i}" for i in range(n)], t)
        return processes
    raise ValueError(f"unknown family {family!r}")


def measure(family: str, n: int, t: int, backend: str, telemetry=None) -> dict:
    """Build fresh processes, then time only the round loop."""
    processes = _build(family, n, t)
    adversary = (
        crash_schedule(n, t, seed=1, max_round=t + 1)
        if family == "flooding"
        else None
    )
    start = time.perf_counter()
    result = Engine(
        processes,
        adversary,
        optimized=(backend == "sim-opt"),
        telemetry=telemetry,
    ).run()
    elapsed = time.perf_counter() - start
    return {
        "family": family,
        "n": n,
        "t": t,
        "backend": backend,
        "msgs_per_sec": int(result.messages / max(elapsed, 1e-9)),
        "rounds": result.rounds,
        "messages": result.messages,
        "bits": result.bits,
        "elapsed_sec": round(elapsed, 4),
        "completed": result.completed,
    }


def run_grid(quick: bool) -> list[dict]:
    grid: list[tuple[str, int, int]] = [
        ("flooding", 500, 3),
        ("flooding", 2000, 3),
        ("gossip", 480, 48),
    ]
    if quick:
        grid = [("flooding", 200, 3), ("gossip", 120, 12)]
    rows: list[dict] = []
    for family, n, t in grid:
        per_backend: dict[str, dict] = {}
        for backend in ("sim-ref", "sim-opt"):
            row = measure(family, n, t, backend)
            per_backend[backend] = row
            rows.append(row)
            print(
                f"{family:10s} n={n:5d} t={t:3d} {backend:8s} "
                f"{row['msgs_per_sec']:>12,} msgs/s "
                f"({row['elapsed_sec']:.3f}s, {row['messages']:,} msgs)",
                flush=True,
            )
        for field in ("rounds", "messages", "bits", "completed"):
            if per_backend["sim-ref"][field] != per_backend["sim-opt"][field]:
                raise AssertionError(
                    f"{family} n={n} t={t}: loops disagree on {field}: "
                    f"{per_backend['sim-ref'][field]} != "
                    f"{per_backend['sim-opt'][field]}"
                )
    return rows


def headline(rows: list[dict]) -> dict:
    flooding = [r for r in rows if r["family"] == "flooding"]
    top_n = max(r["n"] for r in flooding)
    at_top = {r["backend"]: r for r in flooding if r["n"] == top_n}
    ratio = at_top["sim-opt"]["msgs_per_sec"] / at_top["sim-ref"]["msgs_per_sec"]
    return {
        "family": "flooding",
        "n": top_n,
        "sim_opt_msgs_per_sec": at_top["sim-opt"]["msgs_per_sec"],
        "sim_ref_msgs_per_sec": at_top["sim-ref"]["msgs_per_sec"],
        "speedup_opt_over_ref": round(ratio, 2),
    }


def telemetry_overhead(n: int = 500, t: int = 3) -> dict:
    """Flooding on sim-opt with the obs recorder off vs on.

    The disabled path is the zero-overhead claim (``telemetry=None``
    normalises to no recorder at all); the enabled path shows what full
    span recording costs, for calibrating profiling runs.  One warm-up
    run, then best-of-three per arm with the arms interleaved -- the
    first executions pay allocator/cache warm-up, and attributing that
    to whichever arm happens to run first would bias the ratio.
    """
    measure("flooding", n, t, "sim-opt")
    off_times, on_times = [], []
    for _ in range(3):
        off_times.append(measure("flooding", n, t, "sim-opt")["elapsed_sec"])
        on_times.append(
            measure("flooding", n, t, "sim-opt", telemetry=True)["elapsed_sec"]
        )
    off, on = min(off_times), min(on_times)
    return {
        "family": "flooding",
        "n": n,
        "t": t,
        "backend": "sim-opt",
        "disabled_sec": off,
        "enabled_sec": on,
        "enabled_over_disabled": round(on / max(off, 1e-9), 3),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_engine.json",
                        help="artifact path (default BENCH_engine.json)")
    parser.add_argument("--quick", action="store_true",
                        help="small grid; skip writing the artifact")
    args = parser.parse_args(argv)

    rows = run_grid(args.quick)
    head = headline(rows)
    overhead = telemetry_overhead(*((200, 3) if args.quick else (500, 3)))
    print(
        f"\nheadline: flooding n={head['n']}: sim-opt "
        f"{head['sim_opt_msgs_per_sec']:,} msgs/s vs sim-ref "
        f"{head['sim_ref_msgs_per_sec']:,} msgs/s "
        f"({head['speedup_opt_over_ref']:.1f}x)"
    )
    print(
        f"telemetry: disabled {overhead['disabled_sec']:.3f}s, enabled "
        f"{overhead['enabled_sec']:.3f}s "
        f"({overhead['enabled_over_disabled']:.2f}x)"
    )
    if args.quick:
        return 0
    artifact = {
        "schema": SCHEMA,
        "generated": date.today().isoformat(),
        "command": "python benchmarks/bench_engine_hotpath.py",
        "python": sys.version.split()[0],
        "headline": head,
        "telemetry": overhead,
        "rows": rows,
    }
    Path(args.out).write_text(json.dumps(artifact, indent=2) + "\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
