"""Cross-family rounds/bits series: the literature families
(approximate consensus, Liang–Vaidya-slot per-bit consensus) against
the paper's consensus and the flooding comparator, on comparable
instances.

Each cell runs one ``(family, backend)`` pair through the uniform
``run_*`` surface with its correctness predicate enforced, so every
reported number belongs to a *correct* execution.  The headline pins
the communication story the lv-consensus family exists to tell: on the
same ``width``-bit multi-valued instance its payload-bit total is a
factor ``~n`` below flooding's all-to-all broadcast (one coordinator
multicast per round instead of ``n``).

Writes the ``BENCH_families.json`` trajectory artifact (schema
validated by ``tests/test_bench_artifacts.py``)::

    python benchmarks/bench_families.py               # -> BENCH_families.json
    python benchmarks/bench_families.py --quick       # small grid, no artifact
    python benchmarks/bench_families.py --out path.json
"""

from __future__ import annotations

import argparse
import json
import sys
from datetime import date
from pathlib import Path

from repro.bench.series import exp_families

SCHEMA = "repro-bench-families/1"


def run_grid(quick: bool) -> list[dict]:
    shapes = [(20, 4)] if quick else [(40, 8), (80, 16)]
    rows: list[dict] = []
    for n, t in shapes:
        for row in exp_families(n=n, t=t, seed=1):
            rows.append(row)
            print(
                f"{row['family']:14s} n={n:3d} t={t:3d} {row['backend']:8s} "
                f"rounds={row['rounds']:3d} messages={row['messages']:>9,} "
                f"bits={row['bits']:>11,}",
                flush=True,
            )
    return rows


def headline(rows: list[dict]) -> dict:
    top_n = max(r["n"] for r in rows)
    at_top = {
        r["family"]: r
        for r in rows
        if r["n"] == top_n and r["backend"] == "sim-opt"
    }
    flooding, lv = at_top["flooding"], at_top["lv-consensus"]
    return {
        "n": top_n,
        "t": flooding["t"],
        "flooding_bits": flooding["bits"],
        "lv_consensus_bits": lv["bits"],
        "bits_ratio_flooding_over_lv": round(flooding["bits"] / lv["bits"], 2),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_families.json",
                        help="artifact path (default BENCH_families.json)")
    parser.add_argument("--quick", action="store_true",
                        help="small grid; skip writing the artifact")
    args = parser.parse_args(argv)

    rows = run_grid(args.quick)
    head = headline(rows)
    print(
        f"\nheadline: n={head['n']}: lv-consensus {head['lv_consensus_bits']:,} "
        f"payload bits vs flooding {head['flooding_bits']:,} "
        f"({head['bits_ratio_flooding_over_lv']:.1f}x fewer)"
    )
    if args.quick:
        return 0
    artifact = {
        "schema": SCHEMA,
        "generated": date.today().isoformat(),
        "command": "python benchmarks/bench_families.py",
        "python": sys.version.split()[0],
        "headline": head,
        "rows": rows,
    }
    Path(args.out).write_text(json.dumps(artifact, indent=2) + "\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
