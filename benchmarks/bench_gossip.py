"""E9 -- Theorem 9: Gossip.

``O(log n · log t)`` rounds with ``O(n + t log n log t)`` linear-size
messages, ``t < n/5``.
"""

import math

import pytest

from repro import check_gossip, run_gossip
from repro.bench.workloads import rumor_vector
from repro.core.params import ProtocolParams

from conftest import measure


@pytest.mark.parametrize("n", [120, 240, 480])
def test_gossip_scaling(benchmark, n):
    t = n // 10
    rumors = rumor_vector(n, 1)
    result = measure(
        benchmark,
        lambda: run_gossip(rumors, t, crashes="random", seed=1),
        check=lambda r: check_gossip(r, rumors),
        n=n,
        t=t,
    )
    params = ProtocolParams(n=n, t=t)
    schedule = 2 * params.gossip_phase_count * (2 + params.little_probe_rounds)
    assert result.rounds <= schedule
    # Rounds are polylogarithmic: far below the t of linear-time
    # algorithms once n grows.
    assert result.rounds <= 8 * math.log2(n) * math.log2(max(2, t))


@pytest.mark.parametrize("kind", ["early", "late"])
def test_gossip_adversary_kinds(benchmark, kind):
    n, t = 240, 24
    rumors = rumor_vector(n, 2)
    measure(
        benchmark,
        lambda: run_gossip(rumors, t, crashes=kind, seed=2),
        check=lambda r: check_gossip(r, rumors),
        kind=kind,
    )
