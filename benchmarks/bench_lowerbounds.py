"""E13 -- Theorem 13: Ω(t + log n) in the single-port model.

Executable constructions: the gossip isolation adversary spends its
budget to keep a victim ignorant for Ω(t) rounds, and the pivotal-
configuration divergence tracker certifies |A_i| ≤ 3^i (hence Ω(log n)
rounds to decide).
"""

import math

import pytest

from repro.baselines.ring_gossip import RingGossipProcess
from repro.core.params import ProtocolParams
from repro.lowerbounds import divergence_series, isolation_report
from repro.singleport.linear_consensus import (
    LinearConsensusProcess,
    linear_consensus_schedule,
)


@pytest.mark.parametrize("t", [8, 16, 24])
def test_gossip_isolation_omega_t(benchmark, t):
    n = 60

    def factory(rumors):
        return [RingGossipProcess(i, n, rumors[i]) for i in range(n)]

    rumors_a = ["x"] * n
    rumors_b = ["x"] * n
    rumors_b[7] = "y"
    report = benchmark.pedantic(
        lambda: isolation_report(factory, rumors_a, rumors_b, t, victim=0),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info.update(
        {
            "t": t,
            "isolated_rounds": report.isolated_rounds,
            "crashes_used": report.crashes_used,
        }
    )
    assert report.digests_matched
    assert report.isolated_rounds >= t // 2 - 1


def test_consensus_divergence_omega_log_n(benchmark):
    n = 40
    params = ProtocolParams(n=n, t=3, seed=3)
    schedule, shared = linear_consensus_schedule(params)

    def factory(inputs):
        return [
            LinearConsensusProcess(pid, params, inputs[pid], schedule=schedule, shared=shared)
            for pid in range(n)
        ]

    report = benchmark.pedantic(
        lambda: divergence_series(factory, n), rounds=1, iterations=1
    )
    benchmark.extra_info.update(
        {
            "pivot": report.pivot,
            "first_decision_round": report.first_decision_round,
            "log3_n": round(math.log(n, 3), 2),
        }
    )
    assert report.respects_cubic_bound()
    assert report.first_decision_round >= math.log(n, 3)
