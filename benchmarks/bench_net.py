"""Net-runtime throughput: the asyncio barrier loop vs the simulator.

Measures what the synchronous model *costs on a real transport*: the
same flooding-consensus workload as ``bench_engine_hotpath.py`` run on
(a) the lock-step engine, (b) the net runtime's in-memory hub and
(c) the net runtime over loopback TCP sockets.  All three produce
identical metrics (pinned by ``tests/test_net_runtime.py``); the gap is
pure runtime overhead — frame encode/decode, hub routing, barrier
control traffic — i.e. the price of real message passing.
"""

import pytest

from repro import check_consensus
from repro.baselines import FloodingConsensusProcess
from repro.net import run_protocol_net
from repro.sim import Engine, crash_schedule


def _processes(n: int, t: int):
    return [FloodingConsensusProcess(i, n, t, i % 2) for i in range(n)]


def _adversary(n: int, t: int):
    return crash_schedule(n, t, seed=1, max_round=t + 1)


def _run(backend: str, n: int, t: int):
    if backend == "sim":
        return Engine(_processes(n, t), _adversary(n, t)).run()
    return run_protocol_net(
        _processes(n, t),
        _adversary(n, t),
        transport="memory" if backend == "net" else "tcp",
    )


@pytest.mark.parametrize("backend", ["sim", "net", "tcp"])
@pytest.mark.parametrize("n", [50, 100])
def test_flooding_throughput_by_backend(benchmark, n, backend):
    t = 3
    result = benchmark.pedantic(lambda: _run(backend, n, t), rounds=1, iterations=1)
    inputs = [i % 2 for i in range(n)]
    check_consensus(result, inputs)
    elapsed = benchmark.stats.stats.total
    benchmark.extra_info.update(
        {
            "backend": backend,
            "n": n,
            "messages": result.messages,
            "messages_per_sec": int(result.messages / max(elapsed, 1e-9)),
        }
    )


@pytest.mark.parametrize("backend", ["sim", "net"])
def test_consensus_protocol_by_backend(benchmark, backend):
    # The paper's own protocol (sparse overlays, long quiescent
    # stretches) exercises the fast-forward path of the barrier loop.
    from repro import run_consensus
    from repro.bench.workloads import input_vector

    n, t = 240, 40
    inputs = input_vector(n, "random", 1)
    result = benchmark.pedantic(
        lambda: run_consensus(inputs, t, seed=1, backend=backend),
        rounds=1,
        iterations=1,
    )
    check_consensus(result, inputs)
    benchmark.extra_info.update({"backend": backend, "messages": result.messages})
