"""Net-runtime throughput: the asyncio barrier loop vs the simulator.

Measures what the synchronous model *costs on a real transport*: the
same flooding-consensus workload as ``bench_engine_hotpath.py`` run on
(a) the lock-step engine, (b) the net runtime's in-memory hub and
(c) the net runtime over loopback TCP sockets.  All three produce
identical metrics (pinned by ``tests/test_net_runtime.py``); the gap is
pure runtime overhead — frame encode/decode, hub routing, barrier
control traffic — i.e. the price of real message passing.

Run as a script it writes the ``BENCH_net.json`` artifact (validated by
``tests/test_bench_artifacts.py``), whose headline is the *single-run*
speedup from transport frame batching + payload interning on the TCP
path — the ``batching=False`` arm writes and drains every frame
individually (the pre-batching wire behaviour), the ``batching=True``
arm coalesces each burst into one batch frame::

    python benchmarks/bench_net.py           # -> BENCH_net.json
    python benchmarks/bench_net.py --quick   # small grid, no artifact
"""

import argparse
import json
import sys
import time
from datetime import date
from pathlib import Path

import pytest

from repro import check_consensus
from repro.baselines import FloodingConsensusProcess
from repro.net import run_protocol_net
from repro.sim import Engine, crash_schedule

SCHEMA = "repro-bench-net/1"


def _processes(n: int, t: int):
    return [FloodingConsensusProcess(i, n, t, i % 2) for i in range(n)]


def _adversary(n: int, t: int):
    return crash_schedule(n, t, seed=1, max_round=t + 1)


def _run(backend: str, n: int, t: int):
    if backend == "sim":
        return Engine(_processes(n, t), _adversary(n, t)).run()
    return run_protocol_net(
        _processes(n, t),
        _adversary(n, t),
        transport="memory" if backend == "net" else "tcp",
    )


@pytest.mark.parametrize("backend", ["sim", "net", "tcp"])
@pytest.mark.parametrize("n", [50, 100])
def test_flooding_throughput_by_backend(benchmark, n, backend):
    t = 3
    result = benchmark.pedantic(lambda: _run(backend, n, t), rounds=1, iterations=1)
    inputs = [i % 2 for i in range(n)]
    check_consensus(result, inputs)
    elapsed = benchmark.stats.stats.total
    benchmark.extra_info.update(
        {
            "backend": backend,
            "n": n,
            "messages": result.messages,
            "messages_per_sec": int(result.messages / max(elapsed, 1e-9)),
        }
    )


@pytest.mark.parametrize("backend", ["sim", "net"])
def test_consensus_protocol_by_backend(benchmark, backend):
    # The paper's own protocol (sparse overlays, long quiescent
    # stretches) exercises the fast-forward path of the barrier loop.
    from repro import run_consensus
    from repro.bench.workloads import input_vector

    n, t = 240, 40
    inputs = input_vector(n, "random", 1)
    result = benchmark.pedantic(
        lambda: run_consensus(inputs, t, seed=1, backend=backend),
        rounds=1,
        iterations=1,
    )
    check_consensus(result, inputs)
    benchmark.extra_info.update({"backend": backend, "messages": result.messages})


# --------------------------------------------------------------------------
# BENCH_net.json producer
# --------------------------------------------------------------------------


def measure(backend: str, n: int, t: int, batching=None) -> dict:
    """Run one arm and return a row for the artifact.

    ``batching`` is only meaningful on the TCP backend; ``sim`` and the
    in-memory hub never touch the wire, so their rows record ``None``.
    """
    start = time.perf_counter()
    if backend == "sim":
        result = Engine(_processes(n, t), _adversary(n, t)).run()
    else:
        result = run_protocol_net(
            _processes(n, t),
            _adversary(n, t),
            transport="memory" if backend == "net" else "tcp",
            batching=True if batching is None else batching,
        )
    elapsed = time.perf_counter() - start
    check_consensus(result, [i % 2 for i in range(n)])
    return {
        "family": "flooding",
        "n": n,
        "t": t,
        "backend": backend,
        "batching": batching if backend == "tcp" else None,
        "msgs_per_sec": int(result.messages / max(elapsed, 1e-9)),
        "rounds": result.rounds,
        "messages": result.messages,
        "bits": result.bits,
        "elapsed_sec": round(elapsed, 4),
        "completed": result.completed,
    }


def run_grid(quick: bool = False) -> list:
    """All arms at each n: sim and memory-hub baselines, then TCP with
    batching off (one header+body write per frame, the pre-batching
    wire) and on (bursts coalesced into batch frames with payload
    interning)."""
    sizes = [30] if quick else [50, 100, 200]
    t = 3
    rows = []
    for n in sizes:
        arms = [
            measure("sim", n, t),
            measure("net", n, t),
            measure("tcp", n, t, batching=False),
            measure("tcp", n, t, batching=True),
        ]
        base = arms[0]
        for row in arms[1:]:
            # Parity across arms is the point: same metrics, different cost.
            for key in ("rounds", "messages", "bits", "completed"):
                assert row[key] == base[key], (key, row, base)
        rows.extend(arms)
    return rows


def headline(rows: list) -> str:
    big = max(row["n"] for row in rows)
    at_big = {
        (row["backend"], row["batching"]): row for row in rows if row["n"] == big
    }
    off = at_big[("tcp", False)]
    on = at_big[("tcp", True)]
    sim = at_big[("sim", None)]
    speedup = on["msgs_per_sec"] / max(off["msgs_per_sec"], 1)
    overhead = sim["msgs_per_sec"] / max(on["msgs_per_sec"], 1)
    return (
        f"frame batching+interning: {speedup:.2f}x single-run TCP speedup "
        f"at n={big} ({off['msgs_per_sec']:,} -> {on['msgs_per_sec']:,} "
        f"msgs/sec); batched TCP is {overhead:.1f}x off simulator wall-clock"
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--out",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_net.json",
    )
    parser.add_argument("--quick", action="store_true", help="small grid")
    args = parser.parse_args(argv)

    rows = run_grid(quick=args.quick)
    artifact = {
        "schema": SCHEMA,
        "generated": date.today().isoformat(),
        "command": "python benchmarks/bench_net.py"
        + (" --quick" if args.quick else ""),
        "python": sys.version.split()[0],
        "headline": headline(rows),
        "rows": rows,
    }
    if args.quick:
        json.dump(artifact, sys.stdout, indent=2)
        print()
    else:
        args.out.write_text(json.dumps(artifact, indent=2) + "\n")
        print(f"wrote {args.out}")
    print(artifact["headline"])
    return 0


if __name__ == "__main__":
    sys.exit(main())
