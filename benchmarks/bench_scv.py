"""E6 -- Theorem 6: Spread-Common-Value.

``O(log t)`` rounds and ``O(t log t)`` messages beyond the ``O(n)``
flooding part; the two Part 2 branches cross over at ``t² = n``.
"""

import math
import random

import pytest

from repro import check_scv, run_scv
from repro.core.params import ProtocolParams

from conftest import measure


def holders(n, seed=1):
    return set(random.Random(seed).sample(range(n), int(0.62 * n)))


@pytest.mark.parametrize("t", [10, 40, 79])
def test_scv_t_sweep(benchmark, t):
    n = 400
    result = measure(
        benchmark,
        lambda: run_scv(n, t, holders(n), 1, crashes="random", seed=1),
        check=lambda r: check_scv(r, 1),
        n=n,
        t=t,
        branch="direct" if ProtocolParams(n=n, t=t).scv_direct_inquiry else "doubling",
    )
    params = ProtocolParams(n=n, t=t)
    assert result.rounds <= params.scv_spread_rounds + 2 * params.scv_phase_count + 3
    # Rounds are logarithmic in t, not linear.
    assert result.rounds <= 12 * math.log2(max(2, t)) + 20


def test_scv_branch_crossover(benchmark):
    # The direct branch (t² ≤ n) must not be more expensive than the
    # doubling branch right at the crossover.
    n = 400
    direct = run_scv(n, 19, holders(n), 1, crashes="random", seed=1)
    doubling = run_scv(n, 21, holders(n), 1, crashes="random", seed=1)
    check_scv(direct, 1)
    check_scv(doubling, 1)
    result = measure(
        benchmark,
        lambda: run_scv(n, 20, holders(n), 1, crashes="random", seed=1),
        check=lambda r: check_scv(r, 1),
        direct_messages=direct.messages,
        doubling_messages=doubling.messages,
    )
    assert direct.rounds <= doubling.rounds
    assert result.messages <= 2 * max(direct.messages, doubling.messages)
