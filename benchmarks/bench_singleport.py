"""E12 -- Theorem 12: single-port Linear-Consensus.

``O(t + log n)`` single-port rounds with ``O(n + t log n)`` bits.
"""

import math

import pytest

from repro import check_consensus
from repro.bench.workloads import input_vector
from repro.core.params import ProtocolParams
from repro.singleport.linear_consensus import (
    LinearConsensusProcess,
    linear_consensus_schedule,
)
from repro.sim import SinglePortEngine, crash_schedule

from conftest import measure


def run_linear(n, t, inputs, seed=1):
    params = ProtocolParams(n=n, t=t, seed=3)
    schedule, shared = linear_consensus_schedule(params)
    processes = [
        LinearConsensusProcess(pid, params, inputs[pid], schedule=schedule, shared=shared)
        for pid in range(n)
    ]
    adversary = crash_schedule(n, t, seed=seed, max_round=schedule.end)
    return SinglePortEngine(processes, adversary).run()


@pytest.mark.parametrize("n", [60, 120, 240])
def test_singleport_scaling(benchmark, n):
    t = n // 8
    inputs = input_vector(n, "random", 1)
    result = measure(
        benchmark,
        lambda: run_linear(n, t, inputs),
        check=lambda r: check_consensus(r, inputs),
        n=n,
        t=t,
    )
    # O(t + log n) with the 2d window constant (d = 32 here).
    assert result.rounds <= 80 * (5 * t + math.log2(n)) + 400


def test_singleport_vs_multiport_overhead(benchmark):
    # Section 8: the adaptation preserves message/bit totals while
    # stretching rounds by the 2d window factor.
    from repro import run_consensus

    n, t = 120, 15
    inputs = input_vector(n, "random", 2)
    multi = run_consensus(inputs, t, algorithm="few", seed=2)
    check_consensus(multi, inputs)
    single = measure(
        benchmark,
        lambda: run_linear(n, t, inputs, seed=2),
        check=lambda r: check_consensus(r, inputs),
        multiport_rounds=multi.rounds,
        multiport_bits=multi.bits,
    )
    assert single.bits <= 4 * multi.bits
    assert single.rounds >= multi.rounds  # strictly more rounds...
    assert single.rounds <= 150 * multi.rounds  # ...but only by a constant factor
