"""T1 -- Table 1 regeneration.

For each row of the paper's Table 1, pin ``t`` at the row's optimality
boundary and check that time stays ``O(t + log n)`` and communication
stays within a constant of the parameterised linear bound while ``n``
doubles.  ``python -m repro.bench.runner table1`` prints the full table.
"""

import math

import pytest

from repro import (
    check_checkpointing,
    check_consensus,
    check_gossip,
    run_ab_consensus,
    run_checkpointing,
    run_consensus,
    run_gossip,
)
from repro.bench.workloads import byzantine_sample, input_vector, rumor_vector, table1_fault_bound

from conftest import measure

NS = [128, 256]


@pytest.mark.parametrize("n", NS)
def test_row_crash_consensus(benchmark, n):
    t = table1_fault_bound("consensus", n)
    inputs = input_vector(n, "random", 1)
    result = measure(
        benchmark,
        lambda: run_consensus(inputs, t, algorithm="auto", seed=1),
        check=lambda r: check_consensus(r, inputs),
        n=n,
        t=t,
    )
    assert result.rounds <= 6 * (t + math.log2(n))


@pytest.mark.parametrize("n", NS)
def test_row_crash_gossip(benchmark, n):
    t = table1_fault_bound("gossip", n)
    rumors = rumor_vector(n, 1)
    result = measure(
        benchmark,
        lambda: run_gossip(rumors, t, crashes="random", seed=1),
        check=lambda r: check_gossip(r, rumors),
        n=n,
        t=t,
    )
    assert result.rounds <= 30 * (t + math.log2(n))


@pytest.mark.parametrize("n", NS)
def test_row_crash_checkpointing(benchmark, n):
    t = table1_fault_bound("checkpointing", n)
    result = measure(
        benchmark,
        lambda: run_checkpointing(n, t, crashes="random", seed=1),
        check=check_checkpointing,
        n=n,
        t=t,
    )
    assert result.rounds <= 40 * (t + math.log2(n))


@pytest.mark.parametrize("n", NS)
def test_row_byzantine_consensus(benchmark, n):
    t = table1_fault_bound("byzantine", n)  # Θ(√n): the linear range
    inputs = input_vector(n, "random", 1)
    byz = byzantine_sample(n, t, 1)
    result = measure(
        benchmark,
        lambda: run_ab_consensus(inputs, t, byzantine=byz, behaviour="equivocate"),
        n=n,
        t=t,
    )
    assert result.rounds <= 6 * (t + math.log2(n))
    assert result.messages <= 40 * (t * t + n)
