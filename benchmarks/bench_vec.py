"""Round-kernel throughput: ``backend="vec"`` vs the engine loops.

Measures the *round loop only*: process construction is O(n²) for
flooding (every process materialises its ``n-1``-destination multicast
tuple) and identical across backends, so timing it would dilute the
quantity under test -- the per-round message machinery -- by a constant
additive term that dominates at ``n = 2000``.  Each measurement builds
a fresh process vector, starts the clock, runs the engine (or
``vec_run``), and stops the clock; messages/sec is the run's total
message count over that window.

Writes the ``BENCH_vec.json`` trajectory artifact (schema validated by
``tests/test_bench_artifacts.py``)::

    python benchmarks/bench_vec.py                  # full grid -> BENCH_vec.json
    python benchmarks/bench_vec.py --quick          # small grid, no artifact
    python benchmarks/bench_vec.py --out path.json

Every row records ``family, n, t, backend, msgs_per_sec, rounds,
messages, bits, elapsed_sec``; the summary pins the headline ratio
(vec over sim-opt on flooding at the largest n) that the acceptance
floor of 5x is checked against.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from datetime import date
from pathlib import Path

from repro.api import (
    build_checkpointing_processes,
    build_flooding_processes,
    build_gossip_processes,
)
from repro.check.oracles import check_parity
from repro.sim.adversary import NoFailures
from repro.sim.engine import Engine
from repro.sim.vec import vec_run

SCHEMA = "repro-bench-vec/1"

BACKENDS = ("sim-ref", "sim-opt", "vec")


def _build(family: str, n: int, t: int):
    if family == "flooding":
        inputs = [((7 * i) % 251) - 125 for i in range(n)]
        processes, _ = build_flooding_processes(inputs, t)
    elif family == "gossip":
        rumors = [f"rumor-{i}" for i in range(n)]
        processes, _ = build_gossip_processes(rumors, t)
    elif family == "checkpointing":
        processes, _ = build_checkpointing_processes(n, t)
    else:
        raise ValueError(f"unknown family {family!r}")
    return processes


def measure(family: str, n: int, t: int, backend: str) -> dict:
    """Build fresh processes, then time only the round loop."""
    processes = _build(family, n, t)
    adversary = NoFailures()
    start = time.perf_counter()
    if backend == "vec":
        result = vec_run(processes, adversary)
    else:
        result = Engine(
            processes, adversary, optimized=(backend == "sim-opt")
        ).run()
    elapsed = time.perf_counter() - start
    return {
        "family": family,
        "n": n,
        "t": t,
        "backend": backend,
        "msgs_per_sec": int(result.messages / max(elapsed, 1e-9)),
        "rounds": result.rounds,
        "messages": result.messages,
        "bits": result.bits,
        "elapsed_sec": round(elapsed, 4),
        "completed": result.completed,
    }


def run_grid(quick: bool) -> list[dict]:
    grid: list[tuple[str, int, int, tuple[str, ...]]] = [
        # sim-ref at n=2000 flooding burns ~20s for a known-parity loop;
        # the reference point lives at n=500 instead.
        ("flooding", 500, 3, BACKENDS),
        ("flooding", 2000, 3, ("sim-opt", "vec")),
        ("gossip", 480, 48, ("sim-opt", "vec")),
        ("checkpointing", 240, 24, ("sim-opt", "vec")),
    ]
    if quick:
        grid = [
            ("flooding", 200, 3, BACKENDS),
            ("gossip", 120, 12, ("sim-opt", "vec")),
            ("checkpointing", 60, 6, ("sim-opt", "vec")),
        ]
    rows: list[dict] = []
    for family, n, t, backends in grid:
        per_backend: dict[str, dict] = {}
        for backend in backends:
            row = measure(family, n, t, backend)
            per_backend[backend] = row
            rows.append(row)
            print(
                f"{family:14s} n={n:5d} t={t:3d} {backend:8s} "
                f"{row['msgs_per_sec']:>12,} msgs/s "
                f"({row['elapsed_sec']:.3f}s, {row['messages']:,} msgs)",
                flush=True,
            )
        # cross-backend sanity on the measured runs themselves
        labels = list(per_backend)
        for other in labels[1:]:
            _assert_parity(family, n, t, per_backend[labels[0]],
                           per_backend[other])
    return rows


def _assert_parity(family, n, t, a, b) -> None:
    for field in ("rounds", "messages", "bits", "completed"):
        if a[field] != b[field]:
            raise AssertionError(
                f"{family} n={n} t={t}: {a['backend']} {field}="
                f"{a[field]} != {b['backend']} {field}={b[field]}"
            )


def headline(rows: list[dict]) -> dict:
    flooding = [r for r in rows if r["family"] == "flooding"]
    top_n = max(r["n"] for r in flooding)
    at_top = {r["backend"]: r for r in flooding if r["n"] == top_n}
    ratio = at_top["vec"]["msgs_per_sec"] / at_top["sim-opt"]["msgs_per_sec"]
    return {
        "family": "flooding",
        "n": top_n,
        "vec_msgs_per_sec": at_top["vec"]["msgs_per_sec"],
        "sim_opt_msgs_per_sec": at_top["sim-opt"]["msgs_per_sec"],
        "speedup_vec_over_sim_opt": round(ratio, 2),
    }


def parity_spotcheck() -> None:
    """Full-surface parity on a small instance of each family, so the
    artifact never records throughput of a diverged kernel."""
    for family, n, t in [
        ("flooding", 60, 5), ("gossip", 60, 6), ("checkpointing", 60, 6),
    ]:
        ref = Engine(_build(family, n, t), NoFailures(), optimized=False).run()
        vec = vec_run(_build(family, n, t), NoFailures())
        check_parity(ref, vec, "sim-ref", "vec")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_vec.json",
                        help="artifact path (default BENCH_vec.json)")
    parser.add_argument("--quick", action="store_true",
                        help="small grid; skip writing the artifact")
    args = parser.parse_args(argv)

    parity_spotcheck()
    rows = run_grid(args.quick)
    head = headline(rows)
    print(
        f"\nheadline: flooding n={head['n']}: vec "
        f"{head['vec_msgs_per_sec']:,} msgs/s vs sim-opt "
        f"{head['sim_opt_msgs_per_sec']:,} msgs/s "
        f"({head['speedup_vec_over_sim_opt']:.1f}x)"
    )
    if args.quick:
        return 0
    artifact = {
        "schema": SCHEMA,
        "generated": date.today().isoformat(),
        "command": "python benchmarks/bench_vec.py",
        "python": sys.version.split()[0],
        "headline": head,
        "rows": rows,
    }
    Path(args.out).write_text(json.dumps(artifact, indent=2) + "\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
