"""Shared helpers for the benchmark suite.

Every benchmark runs a full protocol execution once per measurement
(``pedantic`` with one round): executions take from milliseconds to a
few seconds, so statistical repetition adds nothing but wall-clock.
The paper's own metrics (rounds / messages / bits) are attached to
``benchmark.extra_info`` so they appear in the saved benchmark JSON.
"""

from __future__ import annotations


def measure(benchmark, fn, check=None, **extra):
    """Run ``fn`` once under the benchmark timer, validate, and attach
    the simulation metrics."""
    result = benchmark.pedantic(fn, rounds=1, iterations=1)
    if check is not None:
        check(result)
    benchmark.extra_info.update(
        {
            "sim_rounds": result.rounds,
            "messages": result.messages,
            "bits": result.bits,
            **extra,
        }
    )
    return result
