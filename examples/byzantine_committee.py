#!/usr/bin/env python
"""Scenario: agreement with compromised replicas (authenticated
Byzantine model).

A 300-replica deployment tolerates up to t compromised replicas that
can lie arbitrarily but cannot forge signatures (Fig. 7, Theorem 11).
The little-node committee runs parallel Dolev–Strong broadcast; the
authenticated common set then spreads to everyone.  The script shows
all three implemented attacker strategies failing to break agreement,
and the t = √n communication crossover of Table 1.

Usage::

    python examples/byzantine_committee.py
"""

import random

from repro import run_ab_consensus
from repro.bench.workloads import byzantine_sample, input_vector


def demo_behaviours(n: int, t: int) -> None:
    inputs = input_vector(n, "random", seed=11)
    byzantine = byzantine_sample(n, t, seed=11)
    print(f"{n} replicas, {t} compromised: {byzantine[:8]}...\n")
    for behaviour in ("silent", "equivocate", "spam"):
        result = run_ab_consensus(
            inputs, t, byzantine=byzantine, behaviour=behaviour
        )
        decisions = result.correct_decisions()
        values = set(decisions.values())
        print(f"  attack {behaviour:<11}: decision {values}, "
              f"rounds {result.rounds}, honest messages {result.messages}, "
              f"byzantine messages (uncounted) {result.metrics.faulty_messages}")
        assert len(values) == 1, "agreement broken!"


def demo_crossover(n: int) -> None:
    print(f"\ncommunication vs fault bound at n = {n} (√n = {int(n ** 0.5)}):")
    rng = random.Random(5)
    for t in (5, 10, 17, 25, 35):
        inputs = input_vector(n, "random", seed=5)
        byzantine = byzantine_sample(n, t, seed=5)
        result = run_ab_consensus(inputs, t, byzantine=byzantine)
        print(f"  t = {t:>3}  messages/n = {result.messages / n:6.1f}   "
              f"(t²+n)/n = {(t * t + n) / n:5.1f}")


def main() -> None:
    demo_behaviours(n=300, t=12)
    demo_crossover(n=300)


if __name__ == "__main__":
    main()
