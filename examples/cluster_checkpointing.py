#!/usr/bin/env python
"""Scenario: coordinated checkpointing of a crash-prone compute cluster.

A 150-worker cluster must periodically agree on the *membership
snapshot* to checkpoint against: every worker that survived the epoch
must appear in the snapshot, workers that died before doing any work
must not, and -- critically -- all survivors must agree on exactly the
same snapshot, or restarts would diverge.  This is the paper's
checkpointing problem (Fig. 6, Theorem 10).

The script runs one checkpointing epoch under three crash patterns and
compares the message bill with the naive quadratic protocol that ships
the full membership mask all-to-all for t+1 rounds.

Usage::

    python examples/cluster_checkpointing.py
"""

from repro import check_checkpointing, run_checkpointing
from repro.baselines import NaiveCheckpointingProcess
from repro.sim import Engine, crash_schedule


def run_epoch(n: int, t: int, kind: str, seed: int) -> None:
    result = run_checkpointing(n, t, crashes=kind, seed=seed)
    check_checkpointing(result)
    snapshot = next(iter(result.correct_decisions().values()))
    survivors = set(result.correct_pids())
    print(f"  crash pattern {kind!r}:")
    print(f"    crashed            : {len(result.crashed)} workers")
    print(f"    snapshot size      : {len(snapshot)} (survivors ⊆ snapshot: "
          f"{survivors <= set(snapshot)})")
    print(f"    rounds / messages  : {result.rounds} / {result.messages}")


def main() -> None:
    n, t = 240, 24
    print(f"cluster of {n} workers, up to {t} crash failures per epoch\n")
    print("paper algorithm (Gossip + n combined consensus instances):")
    for seed, kind in enumerate(("random", "early", "late")):
        run_epoch(n, t, kind, seed)

    print("\nnaive baseline (ping + full-mask AND-flooding, Θ(n²t) messages):")
    processes = [NaiveCheckpointingProcess(i, n, t) for i in range(n)]
    adversary = crash_schedule(n, t, seed=0, max_round=t + 2)
    baseline = Engine(processes, adversary).run()
    check_checkpointing(baseline)
    paper = run_checkpointing(n, t, crashes="random", seed=0)
    print(f"    rounds / messages  : {baseline.rounds} / {baseline.messages}")
    print(f"    message ratio      : naive/paper = "
          f"{baseline.messages / paper.messages:.1f}x")


if __name__ == "__main__":
    main()
