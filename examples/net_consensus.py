#!/usr/bin/env python
"""Distributed consensus over real TCP sockets, across OS processes.

The same Few-Crashes-Consensus processes the simulator runs are hosted
here as asyncio tasks sharded over multiple **worker OS processes**,
exchanging framed messages through a loopback `repro.net.TCPHub` while
the coordinator injects a seeded crash schedule and enforces the
synchronous barrier per round.  The run is then repeated on the
lock-step simulator with the identical schedule to show the two
substrates agree bit-for-bit on the paper's metrics.

Usage::

    python examples/net_consensus.py
"""

import asyncio
import multiprocessing

from repro import check_consensus, run_consensus
from repro.api import build_consensus_processes
from repro.bench.workloads import input_vector
from repro.net import TCPHub, host_nodes_tcp, serve_tcp
from repro.sim.adversary import crash_schedule

N = 20  # network size (acceptance floor for the TCP demo is n >= 16)
T = 3  # crash-fault bound, t < n/5
SEED = 11  # seeds the crash schedule (victims, rounds, partial sends)
WORKERS = 4  # OS processes hosting n // WORKERS nodes each
HOST = "127.0.0.1"


def worker_main(host: str, port: int, pids: list[int]) -> None:
    """One worker OS process: rebuild the (deterministic) process
    vector from the shared parameters and host its shard of pids."""
    inputs = input_vector(N, "random", SEED)
    processes, _horizon = build_consensus_processes(inputs, T, algorithm="few")
    shard = [processes[pid] for pid in pids]
    asyncio.run(host_nodes_tcp(shard, host, port))


async def coordinate(adversary):
    """Bind the hub first (race-free ephemeral port), then spawn the
    workers against the bound port, then run the coordinator."""
    hub = TCPHub(HOST, 0)
    await hub.start()
    shards = [list(range(N))[w::WORKERS] for w in range(WORKERS)]
    ctx = multiprocessing.get_context("spawn")
    workers = [
        ctx.Process(target=worker_main, args=(HOST, hub.port, shard))
        for shard in shards
    ]
    for proc in workers:
        proc.start()
    try:
        # timeout: fail fast with the coordinator's phase/pid diagnostics
        # instead of hanging CI if a worker dies.
        result = await serve_tcp(
            N, adversary, hub=hub, max_rounds=200_000, timeout=60.0
        )
    finally:
        for proc in workers:
            proc.join(timeout=30)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=10)
    if any(proc.exitcode != 0 for proc in workers):
        raise RuntimeError(
            f"worker exit codes {[proc.exitcode for proc in workers]}"
        )
    return result


def main() -> None:
    inputs = input_vector(N, "random", SEED)
    _, horizon = build_consensus_processes(inputs, T, algorithm="few")
    adversary = crash_schedule(N, T, seed=SEED, max_round=max(1, horizon))

    result = asyncio.run(coordinate(adversary))

    check_consensus(result, inputs)
    decisions = result.correct_decisions()
    decision = next(iter(decisions.values()))

    # The same schedule on the lock-step simulator: metrics must match.
    sim = run_consensus(inputs, T, crashes=adversary, seed=SEED)
    assert sim.metrics.summary() == result.metrics.summary(), "sim/net divergence"
    assert sim.decisions == result.decisions and sim.crashed == result.crashed

    print(f"topology              : {N} nodes in {WORKERS} worker processes + coordinator, TCP via {HOST}")
    print(f"fault bound           : t = {T}, crashed = {sorted(result.crashed)}")
    print(f"decision              : {decision} (held by {len(decisions)} correct nodes)")
    print(f"rounds                : {result.rounds}")
    print(f"one-bit messages      : {result.messages}")
    print(f"payload bits          : {result.bits}")
    print("sim parity            : identical rounds/messages/bits, decisions and crash set")


if __name__ == "__main__":
    main()
