#!/usr/bin/env python
"""Scenario: consensus through (and beyond) a network partition.

The paper proves consensus for the synchronous *crash* model; this
script drives Few-Crashes-Consensus (Fig. 3, Theorem 7) outside that
model with `repro.scenarios`: a connectivity mask splits a 60-node
system into two halves holding opposite inputs (the adversarially split
vote).  A *transient* partition — healed before the protocol's probing
phases finish — costs only dropped messages and agreement survives; a
*permanent* partition makes each half decide its own value, the
classical partition impossibility, reported here as a measured safety
violation rather than a theorem.

The degraded run is executed on the lock-step simulator and on the
asyncio net runtime with identical metrics (the scenario layer drives
both substrates), and the violating execution is recorded into a
`repro.trace` artifact and replayed bit-for-bit — a reproducible bug
report for a protocol pushed outside its fault model.

Usage::

    python examples/partition_consensus.py
"""

from repro import (
    PropertyViolation,
    Scenario,
    check_consensus,
    replay_trace,
    run_consensus,
)
from repro.scenarios import PartitionSpec

N = 60  # system size
T = 9  # fault bound (t < n/5 for Few-Crashes-Consensus)
HEAL_ROUND = 12  # transient partition: healed after the flood phase
FOREVER = 10_000  # permanent partition: outlasts every phase


def run_split(stop: int, label: str):
    """Run consensus with inputs split 0/1 along a half/half partition
    active during rounds [0, stop)."""
    inputs = [0] * (N // 2) + [1] * (N // 2)
    left_half = tuple(range(N // 2))
    scenario = Scenario(
        n=N,
        name=label,
        partitions=[PartitionSpec(0, stop, (left_half,))],
    )
    result = run_consensus(inputs, T, scenario=scenario, crashes=None)
    try:
        check_consensus(result, inputs)
        verdict = "agreement holds"
    except PropertyViolation as exc:
        verdict = f"SAFETY VIOLATED — {exc}"
    decisions = sorted(set(result.correct_decisions().values()))
    print(f"  {label}:")
    print(f"    rounds / messages  : {result.rounds} / {result.messages}")
    print(f"    dropped in transit : {result.metrics.dropped_messages}")
    print(f"    decisions          : {decisions}  ({verdict})")
    return result, scenario


def main() -> None:
    print(f"{N} nodes, t = {T}, inputs split 0/1 across a half/half partition\n")

    print("transient partition (healed at round "
          f"{HEAL_ROUND}, before probing completes):")
    healed, _ = run_split(HEAL_ROUND, "transient")
    assert len(set(healed.correct_decisions().values())) == 1

    print("\npermanent partition (never heals):")
    broken, scenario = run_split(FOREVER, "permanent")
    assert len(set(broken.correct_decisions().values())) == 2, (
        "each half should decide its own input"
    )

    # The same scenario drives the asyncio runtime identically.
    inputs = [0] * (N // 2) + [1] * (N // 2)
    net = run_consensus(inputs, T, scenario=scenario, crashes=None, backend="net")
    assert net.metrics.summary() == broken.metrics.summary()
    assert net.decisions == broken.decisions
    print("\nnet backend reproduces the degraded run exactly "
          f"(messages={net.messages}, dropped={net.metrics.dropped_messages})")

    # Record the violating execution and replay it bit-for-bit: the
    # trace is the bug report.
    recorded = run_consensus(
        inputs, T, scenario=scenario, crashes=None, record_trace=True
    )
    replayed = replay_trace(recorded.trace, backend="sim", optimized=False)
    assert replayed.metrics.summary() == recorded.metrics.summary()
    print(f"trace recorded ({len(recorded.trace.events)} event rounds, "
          f"{recorded.trace.total_sends()} send groups) and replayed "
          "bit-for-bit on the reference engine")


if __name__ == "__main__":
    main()
