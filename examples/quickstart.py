#!/usr/bin/env python
"""Quickstart: binary consensus among crash-prone nodes.

Runs Few-Crashes-Consensus (Fig. 3 of the paper) on a 100-node
synchronous network with 15 adversarial crashes, validates the
consensus specification, and prints the paper's performance metrics.

Usage::

    python examples/quickstart.py
"""

from repro import check_consensus, run_consensus
from repro.bench.workloads import input_vector


def main() -> None:
    n, t = 100, 15  # t < n/5: the Few-Crashes-Consensus regime
    inputs = input_vector(n, "random", seed=7)

    result = run_consensus(inputs, t, crashes="random", seed=7)
    check_consensus(result, inputs)  # validity + agreement + termination

    decisions = result.correct_decisions()
    decision = next(iter(decisions.values()))
    print(f"network size          : {n} nodes, fault bound t = {t}")
    print(f"crashed nodes         : {sorted(result.crashed)}")
    print(f"decision              : {decision} (held by {len(decisions)} correct nodes)")
    print(f"rounds                : {result.rounds}  (Theorem 7: O(t + log n))")
    print(f"one-bit messages      : {result.messages}  (Theorem 7: O(n + t log t))")
    print(f"busiest node sent     : {result.metrics.max_node_messages} messages")


if __name__ == "__main__":
    main()
