#!/usr/bin/env python
"""Scenario: reproduce the paper's scaling claims in one run.

Regenerates Table 1 and a per-theorem experiment sweep via the same
series builders the benchmark harness uses, and prints the tables that
EXPERIMENTS.md records.

Usage::

    python examples/scaling_study.py            # quick sweep
    python examples/scaling_study.py --full     # larger n (slower)
"""

import sys

from repro.bench import series
from repro.bench.runner import format_table


def main() -> None:
    full = "--full" in sys.argv
    ns = [128, 256, 512] if full else [96, 192]

    print("== Table 1: linear time + communication at the optimality boundaries")
    print(format_table(series.exp_table1(ns=ns)))

    print("\n== Theorem 7: Few-Crashes-Consensus scaling")
    print(format_table(series.exp_e7_consensus_few(ns=ns)))

    print("\n== Theorem 9: Gossip scaling (polylog rounds)")
    print(format_table(series.exp_e9_gossip(ns=ns)))

    print("\n== Theorem 11: AB-Consensus and the t = √n crossover")
    print(format_table(series.exp_e11_byzantine(n=ns[-1])))

    print("\n== Baseline cross-comparison")
    print(format_table(series.exp_baselines(n=ns[-1])))


if __name__ == "__main__":
    main()
