#!/usr/bin/env python
"""Scenario: consensus over a serial NIC (the single-port model).

Some deployments can push only one message per time slot per node (one
DMA channel, one radio).  Section 8 of the paper adapts the consensus
algorithm to this single-port model at the cost of a constant window
factor; Theorem 13 shows Ω(t + log n) rounds are then unavoidable.

The script runs Linear-Consensus under the single-port engine, compares
against the multi-port execution, and demonstrates the lower bound with
the Theorem 13 isolation adversary.

Usage::

    python examples/single_port_rollout.py
"""

from repro import check_consensus, run_consensus
from repro.baselines.ring_gossip import RingGossipProcess
from repro.bench.workloads import input_vector
from repro.core.params import ProtocolParams
from repro.lowerbounds import isolation_report
from repro.singleport.linear_consensus import (
    LinearConsensusProcess,
    linear_consensus_schedule,
)
from repro.sim import SinglePortEngine, crash_schedule


def main() -> None:
    n, t = 120, 15
    inputs = input_vector(n, "random", seed=3)

    multi = run_consensus(inputs, t, algorithm="few", seed=3)
    check_consensus(multi, inputs)

    params = ProtocolParams(n=n, t=t, seed=3)
    schedule, shared = linear_consensus_schedule(params)
    processes = [
        LinearConsensusProcess(pid, params, inputs[pid], schedule=schedule, shared=shared)
        for pid in range(n)
    ]
    adversary = crash_schedule(n, t, seed=3, max_round=schedule.end)
    single = SinglePortEngine(processes, adversary).run()
    check_consensus(single, inputs)

    print(f"{n} nodes, t = {t}, identical inputs:")
    print(f"  multi-port : {multi.rounds:>6} rounds, {multi.bits:>7} bits")
    print(f"  single-port: {single.rounds:>6} rounds, {single.bits:>7} bits")
    print(f"  window factor (rounds ratio): {single.rounds / multi.rounds:.1f}x "
          f"(Section 8 predicts ~2·d)")
    print(f"  segments: {[(s.name, s.windows, s.window_len) for s in schedule.segments[:3]]} ...")

    print("\nTheorem 13 lower bound (gossip isolation adversary):")
    m = 50
    factory = lambda rumors: [RingGossipProcess(i, m, rumors[i]) for i in range(m)]
    rumors_a = ["x"] * m
    rumors_b = ["x"] * m
    rumors_b[7] = "y"
    for budget in (10, 20):
        report = isolation_report(factory, rumors_a, rumors_b, budget, victim=0)
        print(f"  adversary budget t = {budget:>2}: victim ignorant for "
              f"{report.isolated_rounds} rounds "
              f"({report.crashes_used} crashes spent)")


if __name__ == "__main__":
    main()
