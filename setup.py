"""Setup shim for environments without the ``wheel`` package.

The project metadata lives in ``pyproject.toml``; this file exists so
that ``pip install -e .`` can use the legacy editable-install path on
offline machines where PEP 660 editable wheels cannot be built.
"""

from setuptools import setup

setup()
