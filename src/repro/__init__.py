"""repro -- executable reproduction of *Deterministic Fault-Tolerant
Distributed Computing in Linear Time and Communication* (Chlebus,
Kowalski, Olkowski; PODC 2023, arXiv:2305.11644).

Quickstart::

    from repro import run_consensus, check_consensus

    inputs = [0, 1] * 50                       # 100 nodes, mixed inputs
    result = run_consensus(inputs, t=15)        # t < n/5 crashes
    check_consensus(result, inputs)             # validity/agreement/termination
    print(result.rounds, result.messages, result.bits)

Layers:

* :mod:`repro.sim` -- the synchronous message-passing simulator
  (multi-port and single-port engines, crash/Byzantine adversaries);
* :mod:`repro.graphs` -- (near-)Ramanujan overlays and their
  combinatorics (expansion, compactness, survival subsets);
* :mod:`repro.auth` -- simulated unforgeable signatures;
* :mod:`repro.core` -- the paper's algorithms (Figs. 1-7);
* :mod:`repro.singleport` -- the Section 8 single-port adaptation;
* :mod:`repro.lowerbounds` -- the Theorem 13 adversary constructions;
* :mod:`repro.baselines` -- classical comparators;
* :mod:`repro.scenarios` -- declarative omission/partition/churn fault
  scenarios (see ``docs/faults.md``);
* :mod:`repro.trace` -- deterministic record/replay of executions;
* :mod:`repro.check` -- differential fuzzing with paper-bound oracles
  and scenario shrinking (``python -m repro.check``);
* :mod:`repro.bench` -- the experiment harness behind EXPERIMENTS.md.
"""

from repro.api import (
    run_aea,
    run_ab_consensus,
    run_approximate,
    run_checkpointing,
    run_consensus,
    run_flooding,
    run_gossip,
    run_lv_consensus,
    run_recipe,
    run_scv,
)
from repro.core.params import ProtocolParams
from repro.properties import (
    PropertyViolation,
    check_aea,
    check_approximate,
    check_checkpointing,
    check_consensus,
    check_gossip,
    check_scv,
)
from repro.scenarios import Scenario, scenario_schedule
from repro.sim.engine import RunResult
from repro.trace import Trace, replay_trace

__version__ = "1.0.0"

__all__ = [
    "ProtocolParams",
    "PropertyViolation",
    "RunResult",
    "Scenario",
    "Trace",
    "__version__",
    "check_aea",
    "check_approximate",
    "check_checkpointing",
    "check_consensus",
    "check_gossip",
    "check_scv",
    "replay_trace",
    "run_aea",
    "run_ab_consensus",
    "run_approximate",
    "run_checkpointing",
    "run_consensus",
    "run_flooding",
    "run_gossip",
    "run_lv_consensus",
    "run_recipe",
    "run_scv",
    "scenario_schedule",
]
