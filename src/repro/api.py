"""High-level one-call entry points.

Each ``run_*`` helper builds the parameter derivation, the deterministic
overlay graphs, the processes and the adversary, executes the protocol
on the selected backend, and returns the
:class:`~repro.sim.engine.RunResult` (whose ``metrics`` carry the
paper's round/message/bit measures).  Correctness checking is left to
the caller -- :mod:`repro.properties` has one predicate per problem --
so benchmarks can time pure executions.

Backends
--------
``backend`` selects the execution substrate; the same processes, the
same seeded crash schedule and the same metrics on all three:

* ``"sim"`` (default) -- the lock-step simulator
  (:class:`~repro.sim.engine.Engine`); ``optimized`` picks its round
  loop.
* ``"net"`` -- the asyncio runtime (:mod:`repro.net`) over the
  in-memory hub transport: concurrent node tasks, real message frames,
  a barrier per round.
* ``"tcp"`` -- the asyncio runtime over loopback TCP sockets (one OS
  process; :func:`repro.net.serve_tcp` / :func:`repro.net.host_nodes_tcp`
  split coordinator and node shards across OS processes).

The ``build_*_processes`` helpers expose the process construction on
its own so multi-OS-process deployments can rebuild identical process
shards from the same parameters (see ``examples/net_consensus.py``).

Fault scenarios and traces
--------------------------
Every ``run_*`` also accepts the extended fault machinery:

* ``scenario=`` -- a declarative :class:`repro.scenarios.Scenario`
  (omission / partition / churn on top of crashes); replaces the
  ``crashes`` schedule when given.
* ``record_trace=`` -- capture the execution into a
  :class:`repro.trace.Trace` (``True`` attaches it as ``result.trace``;
  a path additionally writes the JSON artifact).
* ``replay=`` -- re-execute a recorded trace under its fault schedule,
  verifying every delivered message and the final metrics bit-for-bit
  (:class:`repro.trace.TraceDivergence` on any difference).

>>> from repro import run_consensus
>>> result = run_consensus([0, 1] * 50, t=15, crashes="random", seed=1)
>>> set(result.correct_decisions().values())
{1}
"""

from __future__ import annotations

import os
from typing import Any, Callable, Optional, Sequence

from repro.auth.signatures import SignatureService
from repro.core.aea import AEAProcess, aea_overlay
from repro.core.byzantine import (
    ABConsensusProcess,
    EquivocatingSource,
    SilentByzantine,
    SpammingByzantine,
)
from repro.core.checkpointing import CheckpointingProcess
from repro.core.consensus import (
    FewCrashesConsensusProcess,
    ManyCrashesConsensusProcess,
    mcc_overlay,
)
from repro.baselines.approximate import (
    ApproximateConsensusProcess,
    approximate_phase_count,
)
from repro.baselines.flooding_consensus import FloodingConsensusProcess
from repro.baselines.lv_consensus import LVConsensusProcess
from repro.core.gossip import GossipProcess, gossip_overlay
from repro.core.params import ProtocolParams
from repro.core.scv import SCVProcess
from repro.graphs.families import spread_graph
from repro.obs.recorder import coerce_recorder
from repro.scenarios import Scenario
from repro.sim.adversary import CrashAdversary, NoFailures, crash_schedule
from repro.sim.engine import Engine, RunResult
from repro.sim.process import Process
from repro.trace import Trace, TraceChecker, TraceRecorder

__all__ = [
    "PreparedRun",
    "build_ab_consensus_processes",
    "build_aea_processes",
    "build_approximate_processes",
    "build_checkpointing_processes",
    "build_consensus_processes",
    "build_flooding_processes",
    "build_gossip_processes",
    "build_lv_consensus_processes",
    "build_recipe_processes",
    "build_scv_processes",
    "prepare_recipe",
    "rebuild_trace_processes",
    "run_recipe",
    "run_aea",
    "run_ab_consensus",
    "run_approximate",
    "run_checkpointing",
    "run_consensus",
    "run_flooding",
    "run_gossip",
    "run_lv_consensus",
    "run_scv",
]

#: Byzantine behaviour constructors selectable by name.
BYZANTINE_BEHAVIOURS: dict[str, Callable] = {
    "silent": lambda pid, n, params, service: SilentByzantine(pid, n),
    "equivocate": EquivocatingSource,
    "spam": SpammingByzantine,
}


def _adversary(
    crashes: Optional[str | CrashAdversary | Scenario],
    n: int,
    t: int,
    seed: int,
    horizon: int,
    victims: Optional[Sequence[int]] = None,
    scenario: Optional[Scenario] = None,
) -> CrashAdversary:
    if scenario is not None:
        if scenario.n != n:
            raise ValueError(
                f"scenario was built for n={scenario.n}, protocol has n={n}"
            )
        return scenario.adversary()
    if crashes is None:
        return NoFailures()
    if isinstance(crashes, Scenario):
        return _adversary(None, n, t, seed, horizon, scenario=crashes)
    if isinstance(crashes, CrashAdversary):
        return crashes
    return crash_schedule(
        n,
        t,
        seed=seed,
        kind=crashes,
        max_round=max(1, horizon),
        victims=victims,
    )


def _execute(
    processes: Sequence[Process],
    adversary: Optional[CrashAdversary],
    *,
    backend: str,
    byzantine: frozenset[int] = frozenset(),
    max_rounds: int,
    fast_forward: bool = True,
    optimized: bool = True,
    record_trace: bool | str | os.PathLike = False,
    replay: Optional[Any] = None,
    protocol: Optional[dict] = None,
    scenario: Optional[Scenario] = None,
    telemetry: Any = None,
) -> RunResult:
    """Dispatch one execution to the selected backend.

    ``record_trace`` attaches a :class:`~repro.trace.TraceRecorder`
    and seals the resulting :class:`~repro.trace.Trace` onto
    ``result.trace`` (writing it to disk when a path is given);
    ``replay`` overrides ``adversary`` with the trace's recorded fault
    schedule and verifies the execution through a
    :class:`~repro.trace.TraceChecker`.  ``protocol`` is the JSON-safe
    rebuild recipe recorded into traces so
    :func:`repro.trace.replay_trace` can reconstruct the processes
    standalone.  ``telemetry`` enables wall-clock instrumentation
    (:mod:`repro.obs`): the substrate seals a
    :class:`~repro.obs.RunTelemetry` onto ``result.telemetry``, and a
    path value additionally writes the artifact there (suffix picks the
    format: ``.jsonl`` event log, ``.trace.json`` Chrome trace, else
    telemetry JSON).
    """
    checker: Optional[TraceChecker] = None
    recorder = None
    tel = coerce_recorder(telemetry)
    if replay is not None and record_trace:
        raise ValueError(
            "record_trace and replay are mutually exclusive: a replay is "
            "verified against its trace, not re-recorded (replay first, "
            "then record a fresh run if you need a new artifact)"
        )
    if replay is not None:
        trace = Trace.coerce(replay)
        if trace.n != len(processes):
            raise ValueError(
                f"trace was recorded with n={trace.n}, "
                f"got {len(processes)} processes"
            )
        adversary = trace.adversary()
        checker = recorder = TraceChecker(trace)
    elif record_trace:
        recorder = TraceRecorder(
            len(processes),
            byzantine=byzantine,
            protocol=protocol,
            scenario=scenario.to_dict() if scenario is not None else None,
            max_rounds=max_rounds,
        )

    if backend == "sim":
        result = Engine(
            processes,
            adversary,
            byzantine=byzantine,
            max_rounds=max_rounds,
            fast_forward=fast_forward,
            optimized=optimized,
            recorder=recorder,
            telemetry=tel,
        ).run()
    elif backend == "vec":
        from repro.sim.vec import vec_run

        result = vec_run(
            processes,
            adversary,
            byzantine=byzantine,
            max_rounds=max_rounds,
            fast_forward=fast_forward,
            optimized=optimized,
            recorder=recorder,
            telemetry=tel,
        )
    elif backend in ("net", "tcp"):
        from repro.net import run_protocol_net

        result = run_protocol_net(
            processes,
            adversary,
            byzantine=byzantine,
            max_rounds=max_rounds,
            fast_forward=fast_forward,
            transport="memory" if backend == "net" else "tcp",
            recorder=recorder,
            telemetry=tel,
        )
    else:
        raise ValueError(
            f"unknown backend {backend!r}; "
            "choose 'sim', 'vec', 'net' or 'tcp'"
        )

    if checker is not None:
        checker.finish(result)
    elif recorder is not None:
        label = backend
        if backend == "sim":
            label = "sim-opt" if optimized else "sim-ref"
        trace = recorder.finish(result, backend=label)
        result.trace = trace
        if isinstance(record_trace, (str, os.PathLike)):
            trace.save(record_trace)
    if (
        result.telemetry is not None
        and isinstance(telemetry, (str, os.PathLike))
    ):
        result.telemetry.write(telemetry)
    return result


# -- process builders --------------------------------------------------------


def build_consensus_processes(
    inputs: Sequence[int],
    t: int,
    *,
    algorithm: str = "auto",
    overlay_seed: int = 0,
) -> tuple[list[Process], int]:
    """Construct the consensus process vector and its crash horizon.

    Deterministic in ``(inputs, t, algorithm, overlay_seed)``, so worker
    processes of a distributed run can rebuild identical shards.
    Returns ``(processes, horizon)`` where ``horizon`` bounds the rounds
    in which a generated crash schedule places faults.
    """
    n = len(inputs)
    params = ProtocolParams(n=n, t=t, seed=overlay_seed)
    if algorithm == "auto":
        algorithm = "few" if 5 * t < n else "many"
    if algorithm == "few":
        if 5 * t >= n:
            raise ValueError(f"Few-Crashes-Consensus requires t < n/5, got t={t}, n={n}")
        graph = aea_overlay(params)
        spread = spread_graph(n, params.seed)
        processes: list[Process] = [
            FewCrashesConsensusProcess(
                pid, params, inputs[pid], aea_graph=graph, spread=spread
            )
            for pid in range(n)
        ]
        horizon = params.little_flood_rounds + params.little_probe_rounds
    elif algorithm == "many":
        graph = mcc_overlay(params)
        processes = [
            ManyCrashesConsensusProcess(pid, params, inputs[pid], graph=graph)
            for pid in range(n)
        ]
        horizon = params.mcc_flood_rounds + params.mcc_probe_rounds
    else:
        raise ValueError(f"unknown algorithm {algorithm!r}")
    return processes, horizon


def build_aea_processes(
    inputs: Sequence[int], t: int, *, overlay_seed: int = 0
) -> tuple[list[Process], int]:
    """Almost-Everywhere-Agreement process vector; see
    :func:`build_consensus_processes` for the contract."""
    n = len(inputs)
    params = ProtocolParams(n=n, t=t, seed=overlay_seed)
    graph = aea_overlay(params)
    processes: list[Process] = [
        AEAProcess(pid, params, inputs[pid], graph) for pid in range(n)
    ]
    return processes, params.little_flood_rounds + params.little_probe_rounds


def build_scv_processes(
    n: int,
    t: int,
    holders: Sequence[int],
    common_value: Any = 1,
    *,
    overlay_seed: int = 0,
) -> tuple[list[Process], int]:
    """Spread-Common-Value process vector; see
    :func:`build_consensus_processes` for the contract."""
    params = ProtocolParams(n=n, t=t, seed=overlay_seed)
    holder_set = set(holders)
    spread = spread_graph(n, params.seed)
    processes: list[Process] = [
        SCVProcess(pid, params, common_value if pid in holder_set else None, spread)
        for pid in range(n)
    ]
    return processes, params.scv_spread_rounds


def build_gossip_processes(
    rumors: Sequence[Any], t: int, *, overlay_seed: int = 0
) -> tuple[list[Process], int]:
    """Gossip process vector; see :func:`build_consensus_processes` for
    the contract."""
    n = len(rumors)
    if 5 * t >= n:
        raise ValueError(f"Gossip requires t < n/5, got t={t}, n={n}")
    params = ProtocolParams(n=n, t=t, seed=overlay_seed)
    graph = gossip_overlay(params)
    processes: list[Process] = [
        GossipProcess(pid, params, rumors[pid], graph=graph) for pid in range(n)
    ]
    return processes, params.gossip_phase_count * (2 + params.little_probe_rounds)


def build_checkpointing_processes(
    n: int, t: int, *, overlay_seed: int = 0
) -> tuple[list[Process], int]:
    """Checkpointing process vector; see
    :func:`build_consensus_processes` for the contract."""
    if 5 * t >= n:
        raise ValueError(f"Checkpointing requires t < n/5, got t={t}, n={n}")
    params = ProtocolParams(n=n, t=t, seed=overlay_seed)
    graph = gossip_overlay(params)
    spread = spread_graph(n, params.seed)
    processes: list[Process] = [
        CheckpointingProcess(pid, params, graph=graph, spread=spread)
        for pid in range(n)
    ]
    return processes, params.gossip_phase_count * (2 + params.little_probe_rounds)


def build_ab_consensus_processes(
    inputs: Sequence[int],
    t: int,
    *,
    byzantine: Sequence[int] = (),
    behaviour: str = "equivocate",
    overlay_seed: int = 0,
) -> tuple[list[Process], int]:
    """Authenticated-Byzantine consensus process vector; see
    :func:`build_consensus_processes` for the contract.

    ``byzantine`` pids get the ``behaviour`` strategy from
    :data:`BYZANTINE_BEHAVIOURS` instead of the honest
    ``ABConsensusProcess``; all share one simulated
    :class:`~repro.auth.signatures.SignatureService`.  The returned
    horizon is 1: the Byzantine runs use no crash adversary, so no
    schedule is generated from it.
    """
    n = len(inputs)
    if 2 * t >= n:
        raise ValueError(f"AB-Consensus requires t < n/2, got t={t}, n={n}")
    byz = frozenset(byzantine)
    if len(byz) > t:
        raise ValueError(f"{len(byz)} Byzantine nodes exceed the bound t={t}")
    params = ProtocolParams(n=n, t=t, seed=overlay_seed)
    service = SignatureService(n)
    spread = spread_graph(n, params.seed)
    make_byz = BYZANTINE_BEHAVIOURS[behaviour]
    processes: list[Process] = []
    for pid in range(n):
        if pid in byz:
            processes.append(make_byz(pid, n, params, service))
        else:
            processes.append(
                ABConsensusProcess(pid, params, inputs[pid], service, spread=spread)
            )
    return processes, 1


def build_flooding_processes(
    inputs: Sequence[int], t: int
) -> tuple[list[Process], int]:
    """Flooding-consensus baseline process vector; see
    :func:`build_consensus_processes` for the contract.

    The classical ``t + 1``-round flood (every node multicasts its
    minimum to everyone, every round): quadratic communication, any
    ``t < n``.  It is the textbook baseline the paper's linear
    protocols are measured against, and the most regular family the
    ``backend="vec"`` kernels accelerate.
    """
    n = len(inputs)
    if not 0 <= t < n:
        raise ValueError(
            f"flooding consensus requires 0 <= t < n, got t={t}, n={n}"
        )
    processes: list[Process] = [
        FloodingConsensusProcess(pid, n, t, inputs[pid]) for pid in range(n)
    ]
    return processes, t + 1


def build_approximate_processes(
    inputs: Sequence[float],
    t: int,
    *,
    eps: float = 1.0,
    mode: str = "midpoint",
) -> tuple[list[Process], int]:
    """Approximate-consensus process vector; see
    :func:`build_consensus_processes` for the contract.

    Phase-based averaging toward ε-agreement
    (:class:`~repro.baselines.approximate.ApproximateConsensusProcess`):
    real-valued inputs, decisions within ``eps`` of each other and
    inside the input range.  The schedule is ``t + 1 + phases`` rounds
    with ``phases`` derived from the input spread and ``eps``
    (:func:`~repro.baselines.approximate.approximate_phase_count`), so
    the horizon -- like the recipe -- is a pure function of the
    arguments.  Any ``t < n``.
    """
    n = len(inputs)
    if not 0 <= t < n:
        raise ValueError(
            f"approximate consensus requires 0 <= t < n, got t={t}, n={n}"
        )
    phases = approximate_phase_count(inputs, eps)
    processes: list[Process] = [
        ApproximateConsensusProcess(
            pid, n, t, inputs[pid], eps, phases, mode=mode
        )
        for pid in range(n)
    ]
    return processes, t + 1 + phases


def build_lv_consensus_processes(
    inputs: Sequence[int], t: int, *, width: Optional[int] = None
) -> tuple[list[Process], int]:
    """Liang–Vaidya-slot multi-valued consensus process vector; see
    :func:`build_consensus_processes` for the contract.

    Rotating-coordinator consensus on ``width``-bit values
    (:class:`~repro.baselines.lv_consensus.LVConsensusProcess`),
    measured in payload bits.  ``width`` defaults to the widest input
    and every input must fit in it; any ``t < n``.
    """
    n = len(inputs)
    if not 0 <= t < n:
        raise ValueError(
            f"lv-consensus requires 0 <= t < n, got t={t}, n={n}"
        )
    if width is None:
        width = max(1, max(int(v).bit_length() for v in inputs))
    oversized = [v for v in inputs if v < 0 or int(v).bit_length() > width]
    if oversized:
        raise ValueError(
            f"inputs must be non-negative and fit in width={width} bits, "
            f"got {oversized[:5]}"
        )
    processes: list[Process] = [
        LVConsensusProcess(pid, n, t, inputs[pid], width) for pid in range(n)
    ]
    return processes, t + 1


# -- entry points ------------------------------------------------------------


def _resolve_faults(
    crashes: Optional[str | CrashAdversary | Scenario],
    scenario: Optional[Scenario],
    n: int,
    t: int,
    seed: int,
    horizon: int,
) -> tuple[CrashAdversary, Optional[Scenario]]:
    """Normalise the two fault arguments into ``(adversary, scenario)``.

    ``scenario`` wins over ``crashes``; a :class:`Scenario` passed as
    ``crashes`` is promoted.  The returned scenario (if any) is recorded
    into traces as provenance.
    """
    if scenario is None and isinstance(crashes, Scenario):
        scenario = crashes
    adversary = _adversary(
        None if scenario is not None else crashes,
        n,
        t,
        seed,
        horizon,
        scenario=scenario,
    )
    return adversary, scenario


def run_consensus(
    inputs: Sequence[int],
    t: int,
    *,
    algorithm: str = "auto",
    crashes: Optional[str | CrashAdversary | Scenario] = "random",
    seed: int = 0,
    overlay_seed: int = 0,
    max_rounds: int = 200_000,
    fast_forward: bool = True,
    optimized: bool = True,
    backend: str = "sim",
    scenario: Optional[Scenario] = None,
    record_trace: bool | str | os.PathLike = False,
    replay: Optional[Any] = None,
    telemetry: bool | str | os.PathLike | Any = False,
) -> RunResult:
    """Binary consensus with crashes (Figs. 3-4, Theorems 7-8).

    ``algorithm``: ``"few"`` (requires ``t < n/5``), ``"many"`` (any
    ``t < n``), or ``"auto"`` (``"few"`` when ``t < n/5``).
    """
    n = len(inputs)
    processes, horizon = build_consensus_processes(
        inputs, t, algorithm=algorithm, overlay_seed=overlay_seed
    )
    adversary, scenario = _resolve_faults(crashes, scenario, n, t, seed, horizon)
    return _execute(
        processes,
        adversary,
        backend=backend,
        max_rounds=max_rounds,
        fast_forward=fast_forward,
        optimized=optimized,
        record_trace=record_trace,
        replay=replay,
        scenario=scenario,
        telemetry=telemetry,
        protocol={
            "name": "consensus",
            "inputs": list(inputs),
            "t": t,
            "algorithm": algorithm,
            "overlay_seed": overlay_seed,
        },
    )


def run_flooding(
    inputs: Sequence[int],
    t: int,
    *,
    crashes: Optional[str | CrashAdversary | Scenario] = "random",
    seed: int = 0,
    max_rounds: int = 100_000,
    fast_forward: bool = True,
    optimized: bool = True,
    backend: str = "sim",
    scenario: Optional[Scenario] = None,
    record_trace: bool | str | os.PathLike = False,
    replay: Optional[Any] = None,
    telemetry: bool | str | os.PathLike | Any = False,
) -> RunResult:
    """Baseline flooding consensus (``t + 1`` min-broadcast rounds).

    The quadratic-communication comparator for Table 1; any ``t < n``.
    No overlay graphs are involved, so there is no ``overlay_seed``.
    """
    n = len(inputs)
    processes, horizon = build_flooding_processes(inputs, t)
    adversary, scenario = _resolve_faults(crashes, scenario, n, t, seed, horizon)
    return _execute(
        processes,
        adversary,
        backend=backend,
        max_rounds=max_rounds,
        fast_forward=fast_forward,
        optimized=optimized,
        record_trace=record_trace,
        replay=replay,
        scenario=scenario,
        telemetry=telemetry,
        protocol={
            "name": "flooding",
            "inputs": list(inputs),
            "t": t,
        },
    )


def run_approximate(
    inputs: Sequence[float],
    t: int,
    *,
    eps: float = 1.0,
    mode: str = "midpoint",
    crashes: Optional[str | CrashAdversary | Scenario] = "random",
    seed: int = 0,
    max_rounds: int = 100_000,
    fast_forward: bool = True,
    optimized: bool = True,
    backend: str = "sim",
    scenario: Optional[Scenario] = None,
    record_trace: bool | str | os.PathLike = False,
    replay: Optional[Any] = None,
    telemetry: bool | str | os.PathLike | Any = False,
) -> RunResult:
    """Approximate consensus: averaging toward ε-agreement.

    Real-valued inputs; decisions lie within ``eps`` of each other and
    inside ``[min(inputs), max(inputs)]`` (checked by
    :func:`repro.properties.check_approximate`).  ``mode`` selects the
    averaging rule: ``"midpoint"`` (seen-range midpoint) or ``"mean"``
    (arithmetic mean).  Any ``t < n``; no overlay graphs.
    """
    n = len(inputs)
    processes, horizon = build_approximate_processes(
        inputs, t, eps=eps, mode=mode
    )
    adversary, scenario = _resolve_faults(crashes, scenario, n, t, seed, horizon)
    return _execute(
        processes,
        adversary,
        backend=backend,
        max_rounds=max_rounds,
        fast_forward=fast_forward,
        optimized=optimized,
        record_trace=record_trace,
        replay=replay,
        scenario=scenario,
        telemetry=telemetry,
        protocol={
            "name": "approximate",
            "inputs": [float(v) for v in inputs],
            "t": t,
            "eps": float(eps),
            "mode": mode,
        },
    )


def run_lv_consensus(
    inputs: Sequence[int],
    t: int,
    *,
    width: Optional[int] = None,
    crashes: Optional[str | CrashAdversary | Scenario] = "random",
    seed: int = 0,
    max_rounds: int = 100_000,
    fast_forward: bool = True,
    optimized: bool = True,
    backend: str = "sim",
    scenario: Optional[Scenario] = None,
    record_trace: bool | str | os.PathLike = False,
    replay: Optional[Any] = None,
    telemetry: bool | str | os.PathLike | Any = False,
) -> RunResult:
    """Multi-valued consensus measured in payload bits (Liang–Vaidya
    slot): rotating-coordinator broadcast of ``width``-bit values,
    ``(t + 1) · (n - 1)`` messages total.  Any ``t < n``; no overlay
    graphs.
    """
    n = len(inputs)
    processes, horizon = build_lv_consensus_processes(inputs, t, width=width)
    adversary, scenario = _resolve_faults(crashes, scenario, n, t, seed, horizon)
    width_ = processes[0].width if processes else 1
    return _execute(
        processes,
        adversary,
        backend=backend,
        max_rounds=max_rounds,
        fast_forward=fast_forward,
        optimized=optimized,
        record_trace=record_trace,
        replay=replay,
        scenario=scenario,
        telemetry=telemetry,
        protocol={
            "name": "lv_consensus",
            "inputs": list(inputs),
            "t": t,
            "width": width_,
        },
    )


def run_aea(
    inputs: Sequence[int],
    t: int,
    *,
    crashes: Optional[str | CrashAdversary | Scenario] = "random",
    seed: int = 0,
    overlay_seed: int = 0,
    max_rounds: int = 100_000,
    fast_forward: bool = True,
    optimized: bool = True,
    backend: str = "sim",
    scenario: Optional[Scenario] = None,
    record_trace: bool | str | os.PathLike = False,
    replay: Optional[Any] = None,
    telemetry: bool | str | os.PathLike | Any = False,
) -> RunResult:
    """Almost-Everywhere-Agreement alone (Fig. 1, Theorem 5)."""
    n = len(inputs)
    processes, horizon = build_aea_processes(inputs, t, overlay_seed=overlay_seed)
    adversary, scenario = _resolve_faults(crashes, scenario, n, t, seed, horizon)
    return _execute(
        processes,
        adversary,
        backend=backend,
        max_rounds=max_rounds,
        fast_forward=fast_forward,
        optimized=optimized,
        record_trace=record_trace,
        replay=replay,
        scenario=scenario,
        telemetry=telemetry,
        protocol={
            "name": "aea",
            "inputs": list(inputs),
            "t": t,
            "overlay_seed": overlay_seed,
        },
    )


def run_scv(
    n: int,
    t: int,
    holders: Sequence[int],
    common_value: Any = 1,
    *,
    crashes: Optional[str | CrashAdversary | Scenario] = "random",
    seed: int = 0,
    overlay_seed: int = 0,
    max_rounds: int = 100_000,
    fast_forward: bool = True,
    optimized: bool = True,
    backend: str = "sim",
    scenario: Optional[Scenario] = None,
    record_trace: bool | str | os.PathLike = False,
    replay: Optional[Any] = None,
    telemetry: bool | str | os.PathLike | Any = False,
) -> RunResult:
    """Spread-Common-Value alone (Fig. 2, Theorem 6).

    ``holders`` are the nodes initialised with ``common_value``; the
    problem requires at least ``3n/5`` of them.
    """
    processes, horizon = build_scv_processes(
        n, t, holders, common_value, overlay_seed=overlay_seed
    )
    adversary, scenario = _resolve_faults(crashes, scenario, n, t, seed, horizon)
    return _execute(
        processes,
        adversary,
        backend=backend,
        max_rounds=max_rounds,
        fast_forward=fast_forward,
        optimized=optimized,
        record_trace=record_trace,
        replay=replay,
        scenario=scenario,
        telemetry=telemetry,
        protocol={
            "name": "scv",
            "n": n,
            "t": t,
            "holders": list(holders),
            "common_value": common_value,
            "overlay_seed": overlay_seed,
        },
    )


def run_gossip(
    rumors: Sequence[Any],
    t: int,
    *,
    crashes: Optional[str | CrashAdversary | Scenario] = "random",
    seed: int = 0,
    overlay_seed: int = 0,
    max_rounds: int = 100_000,
    fast_forward: bool = True,
    optimized: bool = True,
    backend: str = "sim",
    scenario: Optional[Scenario] = None,
    record_trace: bool | str | os.PathLike = False,
    replay: Optional[Any] = None,
    telemetry: bool | str | os.PathLike | Any = False,
) -> RunResult:
    """Gossiping with crashes (Fig. 5, Theorem 9), ``t < n/5``."""
    n = len(rumors)
    processes, horizon = build_gossip_processes(rumors, t, overlay_seed=overlay_seed)
    adversary, scenario = _resolve_faults(crashes, scenario, n, t, seed, horizon)
    return _execute(
        processes,
        adversary,
        backend=backend,
        max_rounds=max_rounds,
        fast_forward=fast_forward,
        optimized=optimized,
        record_trace=record_trace,
        replay=replay,
        scenario=scenario,
        telemetry=telemetry,
        protocol={
            "name": "gossip",
            "rumors": list(rumors),
            "t": t,
            "overlay_seed": overlay_seed,
        },
    )


def run_checkpointing(
    n: int,
    t: int,
    *,
    crashes: Optional[str | CrashAdversary | Scenario] = "random",
    seed: int = 0,
    overlay_seed: int = 0,
    max_rounds: int = 200_000,
    fast_forward: bool = True,
    optimized: bool = True,
    backend: str = "sim",
    scenario: Optional[Scenario] = None,
    record_trace: bool | str | os.PathLike = False,
    replay: Optional[Any] = None,
    telemetry: bool | str | os.PathLike | Any = False,
) -> RunResult:
    """Checkpointing with crashes (Fig. 6, Theorem 10), ``t < n/5``."""
    processes, horizon = build_checkpointing_processes(
        n, t, overlay_seed=overlay_seed
    )
    adversary, scenario = _resolve_faults(crashes, scenario, n, t, seed, horizon)
    return _execute(
        processes,
        adversary,
        backend=backend,
        max_rounds=max_rounds,
        fast_forward=fast_forward,
        optimized=optimized,
        record_trace=record_trace,
        replay=replay,
        scenario=scenario,
        telemetry=telemetry,
        protocol={
            "name": "checkpointing",
            "n": n,
            "t": t,
            "overlay_seed": overlay_seed,
        },
    )


def run_ab_consensus(
    inputs: Sequence[int],
    t: int,
    *,
    byzantine: Optional[Sequence[int]] = None,
    behaviour: str = "equivocate",
    seed: int = 0,
    overlay_seed: int = 0,
    max_rounds: int = 100_000,
    fast_forward: bool = True,
    optimized: bool = True,
    backend: str = "sim",
    scenario: Optional[Scenario] = None,
    record_trace: bool | str | os.PathLike = False,
    replay: Optional[Any] = None,
    telemetry: bool | str | os.PathLike | Any = False,
) -> RunResult:
    """Consensus under authenticated Byzantine faults (Fig. 7, Thm. 11).

    ``byzantine`` lists the faulty nodes (at most ``t``); ``behaviour``
    selects their strategy from ``BYZANTINE_BEHAVIOURS`` (``"silent"``,
    ``"equivocate"``, ``"spam"``).  The Byzantine fault budget is spent
    on the ``byzantine`` set itself, so the default fault schedule is
    failure-free; a ``scenario`` may still add link faults (its crash /
    churn events must avoid the Byzantine pids).
    """
    n = len(inputs)
    byz = frozenset(byzantine if byzantine is not None else [])
    processes, _horizon = build_ab_consensus_processes(
        inputs,
        t,
        byzantine=sorted(byz),
        behaviour=behaviour,
        overlay_seed=overlay_seed,
    )
    adversary, scenario = _resolve_faults(None, scenario, n, t, seed, 1)
    return _execute(
        processes,
        adversary,
        backend=backend,
        byzantine=byz,
        max_rounds=max_rounds,
        fast_forward=fast_forward,
        optimized=optimized,
        record_trace=record_trace,
        replay=replay,
        scenario=scenario,
        telemetry=telemetry,
        protocol={
            "name": "ab_consensus",
            "inputs": list(inputs),
            "t": t,
            "byzantine": sorted(byz),
            "behaviour": behaviour,
            "overlay_seed": overlay_seed,
        },
    )


def build_recipe_processes(
    protocol: dict,
) -> tuple[list[Process], int, frozenset[int]]:
    """Rebuild ``(processes, horizon, byzantine)`` from a protocol recipe.

    The single registry behind every consumer of recipe dicts -- trace
    replay (:func:`rebuild_trace_processes`), the fuzzer's dispatch
    (:func:`run_recipe`) and the run-server's remote workers
    (:mod:`repro.serve`), which must rebuild process shards *identical*
    to what the submitting client would build locally.  Deterministic in
    the recipe, by the same argument as the ``build_*_processes``
    builders.
    """
    recipe = dict(protocol)
    name = recipe.pop("name", None)
    overlay_seed = recipe.get("overlay_seed", 0)
    if name == "consensus":
        processes, horizon = build_consensus_processes(
            recipe["inputs"],
            recipe["t"],
            algorithm=recipe.get("algorithm", "auto"),
            overlay_seed=overlay_seed,
        )
        return processes, horizon, frozenset()
    if name == "flooding":
        processes, horizon = build_flooding_processes(
            recipe["inputs"], recipe["t"]
        )
        return processes, horizon, frozenset()
    if name == "approximate":
        processes, horizon = build_approximate_processes(
            recipe["inputs"],
            recipe["t"],
            eps=recipe.get("eps", 1.0),
            mode=recipe.get("mode", "midpoint"),
        )
        return processes, horizon, frozenset()
    if name == "lv_consensus":
        processes, horizon = build_lv_consensus_processes(
            recipe["inputs"], recipe["t"], width=recipe.get("width")
        )
        return processes, horizon, frozenset()
    if name == "aea":
        processes, horizon = build_aea_processes(
            recipe["inputs"], recipe["t"], overlay_seed=overlay_seed
        )
        return processes, horizon, frozenset()
    if name == "scv":
        processes, horizon = build_scv_processes(
            recipe["n"],
            recipe["t"],
            recipe["holders"],
            recipe.get("common_value", 1),
            overlay_seed=overlay_seed,
        )
        return processes, horizon, frozenset()
    if name == "gossip":
        processes, horizon = build_gossip_processes(
            recipe["rumors"], recipe["t"], overlay_seed=overlay_seed
        )
        return processes, horizon, frozenset()
    if name == "checkpointing":
        processes, horizon = build_checkpointing_processes(
            recipe["n"], recipe["t"], overlay_seed=overlay_seed
        )
        return processes, horizon, frozenset()
    if name == "ab_consensus":
        processes, horizon = build_ab_consensus_processes(
            recipe["inputs"],
            recipe["t"],
            byzantine=recipe.get("byzantine", ()),
            behaviour=recipe.get("behaviour", "equivocate"),
            overlay_seed=overlay_seed,
        )
        return processes, horizon, frozenset(recipe.get("byzantine", ()))
    raise ValueError(f"cannot rebuild processes for protocol {name!r}")


def rebuild_trace_processes(
    protocol: dict,
) -> tuple[list[Process], frozenset[int]]:
    """Rebuild ``(processes, byzantine)`` from a trace's protocol recipe.

    The inverse of the ``protocol`` dicts the ``run_*`` entry points
    record into traces; used by :func:`repro.trace.replay_trace` for
    standalone replays.  Thin view over :func:`build_recipe_processes`.
    """
    processes, _horizon, byzantine = build_recipe_processes(protocol)
    return processes, byzantine


class PreparedRun:
    """One recipe resolved into everything a coordinator needs.

    Produced by :func:`prepare_recipe`: the process vector, the resolved
    adversary, the Byzantine set and the per-family execution defaults
    (``max_rounds``, crash handling), all derived exactly as the
    ``run_*`` entry points derive them -- which is what makes a
    run-server session's result ``check_parity``-identical to
    ``run_recipe(protocol, backend="sim")`` with the same arguments.
    """

    __slots__ = (
        "processes",
        "adversary",
        "byzantine",
        "scenario",
        "max_rounds",
        "fast_forward",
        "n",
    )

    def __init__(
        self, processes, adversary, byzantine, scenario, max_rounds, fast_forward
    ):
        self.processes = processes
        self.adversary = adversary
        self.byzantine = byzantine
        self.scenario = scenario
        self.max_rounds = max_rounds
        self.fast_forward = fast_forward
        self.n = len(processes)


#: Families whose ``run_*`` entry point defaults to 200k ``max_rounds``
#: (their fault-free round counts grow fastest with ``n``); everything
#: else defaults to 100k.  Mirrors the entry-point signatures.
_LONG_FAMILIES = frozenset({"consensus", "checkpointing"})


def prepare_recipe(
    protocol: dict,
    *,
    crashes: Optional[str | CrashAdversary | Scenario] = "random",
    seed: int = 0,
    scenario: Optional[Scenario | dict] = None,
    max_rounds: Optional[int] = None,
    fast_forward: bool = True,
) -> PreparedRun:
    """Resolve a recipe + execution parameters into a :class:`PreparedRun`.

    Accepts the execution subset that is meaningful for a remote
    submission (fault schedule, seed, scenario, round bound) and applies
    the same per-family defaults as :func:`run_recipe`: ``max_rounds``
    defaults to 200k for the consensus/checkpointing families and 100k
    otherwise, and ``ab_consensus`` ignores ``crashes`` (its fault
    budget is the recipe's ``byzantine`` set).  ``scenario`` may be a
    :class:`~repro.scenarios.Scenario` or its ``to_dict()`` form (the
    JSON-safe shape a serve client submits).
    """
    name = protocol.get("name")
    processes, horizon, byzantine = build_recipe_processes(protocol)
    n = len(processes)
    t = protocol.get("t", 0)
    if isinstance(scenario, dict):
        scenario = Scenario.from_dict(scenario)
    if name == "ab_consensus":
        adversary, scenario = _resolve_faults(None, scenario, n, t, seed, 1)
    else:
        adversary, scenario = _resolve_faults(
            crashes, scenario, n, t, seed, horizon
        )
    if max_rounds is None:
        max_rounds = 200_000 if name in _LONG_FAMILIES else 100_000
    return PreparedRun(
        processes, adversary, byzantine, scenario, max_rounds, fast_forward
    )


def run_recipe(protocol: dict, **execution) -> RunResult:
    """Execute a protocol rebuild recipe through its ``run_*`` entry point.

    ``protocol`` is the same JSON-safe recipe dict the ``run_*`` helpers
    record into traces (and :func:`rebuild_trace_processes` consumes) --
    protocol ``name`` plus its instance arguments.  ``execution``
    forwards the uniform execution parameters (``backend=``,
    ``scenario=``, ``crashes=``, ``record_trace=``, ``max_rounds=``,
    ...), so one recipe can be re-run under different fault schedules
    and substrates.  This is the dispatch surface :mod:`repro.check`
    fuzzes and shrinks through: a fuzz configuration is exactly
    ``(recipe, scenario, backends)``.

    >>> result = run_recipe(
    ...     {"name": "consensus", "inputs": [0, 1] * 10, "t": 3},
    ...     crashes=None,
    ... )
    >>> sorted(set(result.correct_decisions().values()))
    [1]
    """
    recipe = dict(protocol)
    name = recipe.pop("name", None)
    overlay_seed = recipe.get("overlay_seed", 0)
    if name == "consensus":
        return run_consensus(
            recipe["inputs"],
            recipe["t"],
            algorithm=recipe.get("algorithm", "auto"),
            overlay_seed=overlay_seed,
            **execution,
        )
    if name == "flooding":
        return run_flooding(recipe["inputs"], recipe["t"], **execution)
    if name == "approximate":
        return run_approximate(
            recipe["inputs"],
            recipe["t"],
            eps=recipe.get("eps", 1.0),
            mode=recipe.get("mode", "midpoint"),
            **execution,
        )
    if name == "lv_consensus":
        return run_lv_consensus(
            recipe["inputs"], recipe["t"], width=recipe.get("width"), **execution
        )
    if name == "aea":
        return run_aea(
            recipe["inputs"], recipe["t"], overlay_seed=overlay_seed, **execution
        )
    if name == "scv":
        return run_scv(
            recipe["n"],
            recipe["t"],
            recipe["holders"],
            recipe.get("common_value", 1),
            overlay_seed=overlay_seed,
            **execution,
        )
    if name == "gossip":
        return run_gossip(
            recipe["rumors"], recipe["t"], overlay_seed=overlay_seed, **execution
        )
    if name == "checkpointing":
        return run_checkpointing(
            recipe["n"], recipe["t"], overlay_seed=overlay_seed, **execution
        )
    if name == "ab_consensus":
        execution.pop("crashes", None)  # ab-consensus has no crash schedule
        return run_ab_consensus(
            recipe["inputs"],
            recipe["t"],
            byzantine=recipe.get("byzantine", ()),
            behaviour=recipe.get("behaviour", "equivocate"),
            overlay_seed=overlay_seed,
            **execution,
        )
    raise ValueError(f"cannot run protocol recipe {name!r}")


_EXECUTION_DOC = """

    Execution parameters (uniform across every ``run_*`` entry point)
    -----------------------------------------------------------------
    crashes:
        An adversary instance, a schedule kind for
        :func:`~repro.sim.adversary.crash_schedule` (``"random"`` /
        ``"early"`` / ``"late"`` / ``"staggered"``), a
        :class:`~repro.scenarios.Scenario`, or ``None`` for a
        failure-free run.  (``run_ab_consensus`` spends its fault budget
        on the ``byzantine`` set instead and has no ``crashes``.)
    seed / overlay_seed:
        Seed the generated crash schedule, resp. the deterministic
        overlay graphs.
    max_rounds:
        Safety bound; exceeding it marks the run ``completed=False``.
    fast_forward:
        Quiescence skipping; observable behaviour is identical either
        way (pinned by tests).
    backend:
        Execution substrate: ``"sim"`` (lock-step
        :class:`~repro.sim.engine.Engine`, default), ``"vec"``
        (numpy structure-of-arrays kernels for the regular families,
        engine fallback otherwise; requires the ``[vec]`` extra),
        ``"net"`` (asyncio runtime over the in-memory hub) or ``"tcp"``
        (asyncio runtime over loopback sockets).  All backends produce
        identical metrics, decisions and crash sets for the same fault
        schedule.
    optimized:
        Round-loop selection for the sim backend: the batched hot path
        (default) or the straight-line reference loop; ignored by
        ``"net"``/``"tcp"``.  Results are identical.
    scenario:
        A declarative :class:`~repro.scenarios.Scenario` of
        omission / partition / churn (plus crash) faults; overrides
        ``crashes`` when given.
    record_trace:
        Record the execution into a :class:`~repro.trace.Trace`:
        ``True`` attaches it as ``result.trace``; a path string also
        writes the JSON artifact.
    replay:
        A recorded trace (``Trace``, dict, JSON string or path):
        re-execute under the trace's fault schedule and verify every
        delivered message, drop, crash, rejoin and the final metrics
        bit-for-bit (raises :class:`~repro.trace.TraceDivergence` on
        any difference).  Overrides ``crashes``/``scenario``.
    telemetry:
        Wall-clock instrumentation (:mod:`repro.obs`): ``True`` (or a
        :class:`~repro.obs.TelemetryRecorder`) attaches the sealed
        per-phase :class:`~repro.obs.RunTelemetry` as
        ``result.telemetry``; a path string additionally writes the
        artifact there, with the suffix selecting the format
        (``.jsonl`` event log, ``.trace.json`` / ``.chrome.json``
        Chrome trace-event JSON for Perfetto, anything else the
        telemetry JSON).  Off by default and free when off: disabled
        runs perform no clock reads or allocations and produce
        bit-identical results (pinned by ``tests/test_obs.py``).
"""

for _entry_point in (
    run_consensus,
    run_flooding,
    run_approximate,
    run_lv_consensus,
    run_aea,
    run_scv,
    run_gossip,
    run_checkpointing,
    run_ab_consensus,
):
    if _entry_point.__doc__ is not None:  # stripped under python -OO
        _entry_point.__doc__ += _EXECUTION_DOC
del _entry_point
