"""High-level one-call entry points.

Each ``run_*`` helper builds the parameter derivation, the deterministic
overlay graphs, the processes and the adversary, executes the protocol
on the selected backend, and returns the
:class:`~repro.sim.engine.RunResult` (whose ``metrics`` carry the
paper's round/message/bit measures).  Correctness checking is left to
the caller -- :mod:`repro.properties` has one predicate per problem --
so benchmarks can time pure executions.

Backends
--------
``backend`` selects the execution substrate; the same processes, the
same seeded crash schedule and the same metrics on all three:

* ``"sim"`` (default) -- the lock-step simulator
  (:class:`~repro.sim.engine.Engine`); ``optimized`` picks its round
  loop.
* ``"net"`` -- the asyncio runtime (:mod:`repro.net`) over the
  in-memory hub transport: concurrent node tasks, real message frames,
  a barrier per round.
* ``"tcp"`` -- the asyncio runtime over loopback TCP sockets (one OS
  process; :func:`repro.net.serve_tcp` / :func:`repro.net.host_nodes_tcp`
  split coordinator and node shards across OS processes).

The ``build_*_processes`` helpers expose the process construction on
its own so multi-OS-process deployments can rebuild identical process
shards from the same parameters (see ``examples/net_consensus.py``).

>>> from repro import run_consensus
>>> result = run_consensus([0, 1] * 50, t=15, crashes="random", seed=1)
>>> set(result.correct_decisions().values())
{1}
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Sequence

from repro.auth.signatures import SignatureService
from repro.core.aea import AEAProcess, aea_overlay
from repro.core.byzantine import (
    ABConsensusProcess,
    EquivocatingSource,
    SilentByzantine,
    SpammingByzantine,
)
from repro.core.checkpointing import CheckpointingProcess
from repro.core.consensus import (
    FewCrashesConsensusProcess,
    ManyCrashesConsensusProcess,
    mcc_overlay,
)
from repro.core.gossip import GossipProcess, gossip_overlay
from repro.core.params import ProtocolParams
from repro.core.scv import SCVProcess
from repro.graphs.families import spread_graph
from repro.sim.adversary import CrashAdversary, NoFailures, crash_schedule
from repro.sim.engine import Engine, RunResult
from repro.sim.process import Process

__all__ = [
    "build_aea_processes",
    "build_checkpointing_processes",
    "build_consensus_processes",
    "build_gossip_processes",
    "build_scv_processes",
    "run_aea",
    "run_ab_consensus",
    "run_checkpointing",
    "run_consensus",
    "run_gossip",
    "run_scv",
]

#: Byzantine behaviour constructors selectable by name.
BYZANTINE_BEHAVIOURS: dict[str, Callable] = {
    "silent": lambda pid, n, params, service: SilentByzantine(pid, n),
    "equivocate": EquivocatingSource,
    "spam": SpammingByzantine,
}


def _adversary(
    crashes: Optional[str | CrashAdversary],
    n: int,
    t: int,
    seed: int,
    horizon: int,
    victims: Optional[Sequence[int]] = None,
) -> CrashAdversary:
    if crashes is None:
        return NoFailures()
    if isinstance(crashes, CrashAdversary):
        return crashes
    return crash_schedule(
        n,
        t,
        seed=seed,
        kind=crashes,
        max_round=max(1, horizon),
        victims=victims,
    )


def _execute(
    processes: Sequence[Process],
    adversary: CrashAdversary,
    *,
    backend: str,
    byzantine: frozenset[int] = frozenset(),
    max_rounds: int,
    fast_forward: bool = True,
    optimized: bool = True,
) -> RunResult:
    """Dispatch one execution to the selected backend."""
    if backend == "sim":
        return Engine(
            processes,
            adversary,
            byzantine=byzantine,
            max_rounds=max_rounds,
            fast_forward=fast_forward,
            optimized=optimized,
        ).run()
    if backend in ("net", "tcp"):
        from repro.net import run_protocol_net

        return run_protocol_net(
            processes,
            adversary,
            byzantine=byzantine,
            max_rounds=max_rounds,
            fast_forward=fast_forward,
            transport="memory" if backend == "net" else "tcp",
        )
    raise ValueError(f"unknown backend {backend!r}; choose 'sim', 'net' or 'tcp'")


# -- process builders --------------------------------------------------------


def build_consensus_processes(
    inputs: Sequence[int],
    t: int,
    *,
    algorithm: str = "auto",
    overlay_seed: int = 0,
) -> tuple[list[Process], int]:
    """Construct the consensus process vector and its crash horizon.

    Deterministic in ``(inputs, t, algorithm, overlay_seed)``, so worker
    processes of a distributed run can rebuild identical shards.
    Returns ``(processes, horizon)`` where ``horizon`` bounds the rounds
    in which a generated crash schedule places faults.
    """
    n = len(inputs)
    params = ProtocolParams(n=n, t=t, seed=overlay_seed)
    if algorithm == "auto":
        algorithm = "few" if 5 * t < n else "many"
    if algorithm == "few":
        if 5 * t >= n:
            raise ValueError(f"Few-Crashes-Consensus requires t < n/5, got t={t}, n={n}")
        graph = aea_overlay(params)
        spread = spread_graph(n, params.seed)
        processes: list[Process] = [
            FewCrashesConsensusProcess(
                pid, params, inputs[pid], aea_graph=graph, spread=spread
            )
            for pid in range(n)
        ]
        horizon = params.little_flood_rounds + params.little_probe_rounds
    elif algorithm == "many":
        graph = mcc_overlay(params)
        processes = [
            ManyCrashesConsensusProcess(pid, params, inputs[pid], graph=graph)
            for pid in range(n)
        ]
        horizon = params.mcc_flood_rounds + params.mcc_probe_rounds
    else:
        raise ValueError(f"unknown algorithm {algorithm!r}")
    return processes, horizon


def build_aea_processes(
    inputs: Sequence[int], t: int, *, overlay_seed: int = 0
) -> tuple[list[Process], int]:
    """Almost-Everywhere-Agreement process vector; see
    :func:`build_consensus_processes` for the contract."""
    n = len(inputs)
    params = ProtocolParams(n=n, t=t, seed=overlay_seed)
    graph = aea_overlay(params)
    processes: list[Process] = [
        AEAProcess(pid, params, inputs[pid], graph) for pid in range(n)
    ]
    return processes, params.little_flood_rounds + params.little_probe_rounds


def build_scv_processes(
    n: int,
    t: int,
    holders: Sequence[int],
    common_value: Any = 1,
    *,
    overlay_seed: int = 0,
) -> tuple[list[Process], int]:
    """Spread-Common-Value process vector; see
    :func:`build_consensus_processes` for the contract."""
    params = ProtocolParams(n=n, t=t, seed=overlay_seed)
    holder_set = set(holders)
    spread = spread_graph(n, params.seed)
    processes: list[Process] = [
        SCVProcess(pid, params, common_value if pid in holder_set else None, spread)
        for pid in range(n)
    ]
    return processes, params.scv_spread_rounds


def build_gossip_processes(
    rumors: Sequence[Any], t: int, *, overlay_seed: int = 0
) -> tuple[list[Process], int]:
    """Gossip process vector; see :func:`build_consensus_processes` for
    the contract."""
    n = len(rumors)
    if 5 * t >= n:
        raise ValueError(f"Gossip requires t < n/5, got t={t}, n={n}")
    params = ProtocolParams(n=n, t=t, seed=overlay_seed)
    graph = gossip_overlay(params)
    processes: list[Process] = [
        GossipProcess(pid, params, rumors[pid], graph=graph) for pid in range(n)
    ]
    return processes, params.gossip_phase_count * (2 + params.little_probe_rounds)


def build_checkpointing_processes(
    n: int, t: int, *, overlay_seed: int = 0
) -> tuple[list[Process], int]:
    """Checkpointing process vector; see
    :func:`build_consensus_processes` for the contract."""
    if 5 * t >= n:
        raise ValueError(f"Checkpointing requires t < n/5, got t={t}, n={n}")
    params = ProtocolParams(n=n, t=t, seed=overlay_seed)
    graph = gossip_overlay(params)
    spread = spread_graph(n, params.seed)
    processes: list[Process] = [
        CheckpointingProcess(pid, params, graph=graph, spread=spread)
        for pid in range(n)
    ]
    return processes, params.gossip_phase_count * (2 + params.little_probe_rounds)


# -- entry points ------------------------------------------------------------


def run_consensus(
    inputs: Sequence[int],
    t: int,
    *,
    algorithm: str = "auto",
    crashes: Optional[str | CrashAdversary] = "random",
    seed: int = 0,
    overlay_seed: int = 0,
    max_rounds: int = 200_000,
    fast_forward: bool = True,
    optimized: bool = True,
    backend: str = "sim",
) -> RunResult:
    """Binary consensus with crashes (Figs. 3-4, Theorems 7-8).

    ``algorithm``: ``"few"`` (requires ``t < n/5``), ``"many"`` (any
    ``t < n``), or ``"auto"`` (``"few"`` when ``t < n/5``).
    ``crashes``: an adversary instance, a schedule kind for
    :func:`~repro.sim.adversary.crash_schedule`, or ``None``.
    ``backend``: ``"sim"``, ``"net"`` or ``"tcp"`` (module docstring).
    """
    n = len(inputs)
    processes, horizon = build_consensus_processes(
        inputs, t, algorithm=algorithm, overlay_seed=overlay_seed
    )
    adversary = _adversary(crashes, n, t, seed, horizon)
    return _execute(
        processes,
        adversary,
        backend=backend,
        max_rounds=max_rounds,
        fast_forward=fast_forward,
        optimized=optimized,
    )


def run_aea(
    inputs: Sequence[int],
    t: int,
    *,
    crashes: Optional[str | CrashAdversary] = "random",
    seed: int = 0,
    overlay_seed: int = 0,
    max_rounds: int = 100_000,
    optimized: bool = True,
    backend: str = "sim",
) -> RunResult:
    """Almost-Everywhere-Agreement alone (Fig. 1, Theorem 5)."""
    n = len(inputs)
    processes, horizon = build_aea_processes(inputs, t, overlay_seed=overlay_seed)
    adversary = _adversary(crashes, n, t, seed, horizon)
    return _execute(
        processes,
        adversary,
        backend=backend,
        max_rounds=max_rounds,
        optimized=optimized,
    )


def run_scv(
    n: int,
    t: int,
    holders: Sequence[int],
    common_value: Any = 1,
    *,
    crashes: Optional[str | CrashAdversary] = "random",
    seed: int = 0,
    overlay_seed: int = 0,
    max_rounds: int = 100_000,
    optimized: bool = True,
    backend: str = "sim",
) -> RunResult:
    """Spread-Common-Value alone (Fig. 2, Theorem 6).

    ``holders`` are the nodes initialised with ``common_value``; the
    problem requires at least ``3n/5`` of them.
    """
    processes, horizon = build_scv_processes(
        n, t, holders, common_value, overlay_seed=overlay_seed
    )
    adversary = _adversary(crashes, n, t, seed, horizon)
    return _execute(
        processes,
        adversary,
        backend=backend,
        max_rounds=max_rounds,
        optimized=optimized,
    )


def run_gossip(
    rumors: Sequence[Any],
    t: int,
    *,
    crashes: Optional[str | CrashAdversary] = "random",
    seed: int = 0,
    overlay_seed: int = 0,
    max_rounds: int = 100_000,
    optimized: bool = True,
    backend: str = "sim",
) -> RunResult:
    """Gossiping with crashes (Fig. 5, Theorem 9), ``t < n/5``."""
    n = len(rumors)
    processes, horizon = build_gossip_processes(rumors, t, overlay_seed=overlay_seed)
    adversary = _adversary(crashes, n, t, seed, horizon)
    return _execute(
        processes,
        adversary,
        backend=backend,
        max_rounds=max_rounds,
        optimized=optimized,
    )


def run_checkpointing(
    n: int,
    t: int,
    *,
    crashes: Optional[str | CrashAdversary] = "random",
    seed: int = 0,
    overlay_seed: int = 0,
    max_rounds: int = 200_000,
    optimized: bool = True,
    backend: str = "sim",
) -> RunResult:
    """Checkpointing with crashes (Fig. 6, Theorem 10), ``t < n/5``."""
    processes, horizon = build_checkpointing_processes(
        n, t, overlay_seed=overlay_seed
    )
    adversary = _adversary(crashes, n, t, seed, horizon)
    return _execute(
        processes,
        adversary,
        backend=backend,
        max_rounds=max_rounds,
        optimized=optimized,
    )


def run_ab_consensus(
    inputs: Sequence[int],
    t: int,
    *,
    byzantine: Optional[Sequence[int]] = None,
    behaviour: str = "equivocate",
    seed: int = 0,
    overlay_seed: int = 0,
    max_rounds: int = 100_000,
    optimized: bool = True,
    backend: str = "sim",
) -> RunResult:
    """Consensus under authenticated Byzantine faults (Fig. 7, Thm. 11).

    ``byzantine`` lists the faulty nodes (at most ``t``); ``behaviour``
    selects their strategy from ``BYZANTINE_BEHAVIOURS`` (``"silent"``,
    ``"equivocate"``, ``"spam"``).
    """
    n = len(inputs)
    if 2 * t >= n:
        raise ValueError(f"AB-Consensus requires t < n/2, got t={t}, n={n}")
    byz = frozenset(byzantine if byzantine is not None else [])
    if len(byz) > t:
        raise ValueError(f"{len(byz)} Byzantine nodes exceed the bound t={t}")
    params = ProtocolParams(n=n, t=t, seed=overlay_seed)
    service = SignatureService(n)
    spread = spread_graph(n, params.seed)
    make_byz = BYZANTINE_BEHAVIOURS[behaviour]
    processes = []
    for pid in range(n):
        if pid in byz:
            processes.append(make_byz(pid, n, params, service))
        else:
            processes.append(
                ABConsensusProcess(pid, params, inputs[pid], service, spread=spread)
            )
    return _execute(
        processes,
        NoFailures(),
        backend=backend,
        byzantine=byz,
        max_rounds=max_rounds,
        optimized=optimized,
    )
