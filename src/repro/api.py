"""High-level one-call entry points.

Each ``run_*`` helper builds the parameter derivation, the deterministic
overlay graphs, the processes and the adversary, executes the protocol
on the synchronous engine, and returns the
:class:`~repro.sim.engine.RunResult` (whose ``metrics`` carry the
paper's round/message/bit measures).  Correctness checking is left to
the caller -- :mod:`repro.properties` has one predicate per problem --
so benchmarks can time pure executions.

>>> from repro import run_consensus
>>> result = run_consensus([0, 1] * 50, t=15, crashes="random", seed=1)
>>> set(result.correct_decisions().values())
{1}
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Sequence

from repro.auth.signatures import SignatureService
from repro.core.aea import AEAProcess, aea_overlay
from repro.core.byzantine import (
    ABConsensusProcess,
    EquivocatingSource,
    SilentByzantine,
    SpammingByzantine,
)
from repro.core.checkpointing import CheckpointingProcess
from repro.core.consensus import (
    FewCrashesConsensusProcess,
    ManyCrashesConsensusProcess,
    mcc_overlay,
)
from repro.core.gossip import GossipProcess, gossip_overlay
from repro.core.params import ProtocolParams
from repro.core.scv import SCVProcess
from repro.graphs.families import spread_graph
from repro.sim.adversary import CrashAdversary, NoFailures, crash_schedule
from repro.sim.engine import Engine, RunResult

__all__ = [
    "run_aea",
    "run_ab_consensus",
    "run_checkpointing",
    "run_consensus",
    "run_gossip",
    "run_scv",
]

#: Byzantine behaviour constructors selectable by name.
BYZANTINE_BEHAVIOURS: dict[str, Callable] = {
    "silent": lambda pid, n, params, service: SilentByzantine(pid, n),
    "equivocate": EquivocatingSource,
    "spam": SpammingByzantine,
}


def _adversary(
    crashes: Optional[str | CrashAdversary],
    n: int,
    t: int,
    seed: int,
    horizon: int,
    victims: Optional[Sequence[int]] = None,
) -> CrashAdversary:
    if crashes is None:
        return NoFailures()
    if isinstance(crashes, CrashAdversary):
        return crashes
    return crash_schedule(
        n,
        t,
        seed=seed,
        kind=crashes,
        max_round=max(1, horizon),
        victims=victims,
    )


def run_consensus(
    inputs: Sequence[int],
    t: int,
    *,
    algorithm: str = "auto",
    crashes: Optional[str | CrashAdversary] = "random",
    seed: int = 0,
    overlay_seed: int = 0,
    max_rounds: int = 200_000,
    fast_forward: bool = True,
    optimized: bool = True,
) -> RunResult:
    """Binary consensus with crashes (Figs. 3-4, Theorems 7-8).

    ``algorithm``: ``"few"`` (requires ``t < n/5``), ``"many"`` (any
    ``t < n``), or ``"auto"`` (``"few"`` when ``t < n/5``).
    ``crashes``: an adversary instance, a schedule kind for
    :func:`~repro.sim.adversary.crash_schedule`, or ``None``.
    """
    n = len(inputs)
    params = ProtocolParams(n=n, t=t, seed=overlay_seed)
    if algorithm == "auto":
        algorithm = "few" if 5 * t < n else "many"
    if algorithm == "few":
        if 5 * t >= n:
            raise ValueError(f"Few-Crashes-Consensus requires t < n/5, got t={t}, n={n}")
        graph = aea_overlay(params)
        spread = spread_graph(n, params.seed)
        processes = [
            FewCrashesConsensusProcess(
                pid, params, inputs[pid], aea_graph=graph, spread=spread
            )
            for pid in range(n)
        ]
        horizon = params.little_flood_rounds + params.little_probe_rounds
    elif algorithm == "many":
        graph = mcc_overlay(params)
        processes = [
            ManyCrashesConsensusProcess(pid, params, inputs[pid], graph=graph)
            for pid in range(n)
        ]
        horizon = params.mcc_flood_rounds + params.mcc_probe_rounds
    else:
        raise ValueError(f"unknown algorithm {algorithm!r}")
    adversary = _adversary(crashes, n, t, seed, horizon)
    engine = Engine(
        processes,
        adversary,
        max_rounds=max_rounds,
        fast_forward=fast_forward,
        optimized=optimized,
    )
    return engine.run()


def run_aea(
    inputs: Sequence[int],
    t: int,
    *,
    crashes: Optional[str | CrashAdversary] = "random",
    seed: int = 0,
    overlay_seed: int = 0,
    max_rounds: int = 100_000,
    optimized: bool = True,
) -> RunResult:
    """Almost-Everywhere-Agreement alone (Fig. 1, Theorem 5)."""
    n = len(inputs)
    params = ProtocolParams(n=n, t=t, seed=overlay_seed)
    graph = aea_overlay(params)
    processes = [AEAProcess(pid, params, inputs[pid], graph) for pid in range(n)]
    horizon = params.little_flood_rounds + params.little_probe_rounds
    adversary = _adversary(crashes, n, t, seed, horizon)
    return Engine(
        processes, adversary, max_rounds=max_rounds, optimized=optimized
    ).run()


def run_scv(
    n: int,
    t: int,
    holders: Sequence[int],
    common_value: Any = 1,
    *,
    crashes: Optional[str | CrashAdversary] = "random",
    seed: int = 0,
    overlay_seed: int = 0,
    max_rounds: int = 100_000,
    optimized: bool = True,
) -> RunResult:
    """Spread-Common-Value alone (Fig. 2, Theorem 6).

    ``holders`` are the nodes initialised with ``common_value``; the
    problem requires at least ``3n/5`` of them.
    """
    params = ProtocolParams(n=n, t=t, seed=overlay_seed)
    holder_set = set(holders)
    spread = spread_graph(n, params.seed)
    processes = [
        SCVProcess(pid, params, common_value if pid in holder_set else None, spread)
        for pid in range(n)
    ]
    horizon = params.scv_spread_rounds
    adversary = _adversary(crashes, n, t, seed, horizon)
    return Engine(
        processes, adversary, max_rounds=max_rounds, optimized=optimized
    ).run()


def run_gossip(
    rumors: Sequence[Any],
    t: int,
    *,
    crashes: Optional[str | CrashAdversary] = "random",
    seed: int = 0,
    overlay_seed: int = 0,
    max_rounds: int = 100_000,
    optimized: bool = True,
) -> RunResult:
    """Gossiping with crashes (Fig. 5, Theorem 9), ``t < n/5``."""
    n = len(rumors)
    if 5 * t >= n:
        raise ValueError(f"Gossip requires t < n/5, got t={t}, n={n}")
    params = ProtocolParams(n=n, t=t, seed=overlay_seed)
    graph = gossip_overlay(params)
    processes = [GossipProcess(pid, params, rumors[pid], graph=graph) for pid in range(n)]
    horizon = params.gossip_phase_count * (2 + params.little_probe_rounds)
    adversary = _adversary(crashes, n, t, seed, horizon)
    return Engine(
        processes, adversary, max_rounds=max_rounds, optimized=optimized
    ).run()


def run_checkpointing(
    n: int,
    t: int,
    *,
    crashes: Optional[str | CrashAdversary] = "random",
    seed: int = 0,
    overlay_seed: int = 0,
    max_rounds: int = 200_000,
    optimized: bool = True,
) -> RunResult:
    """Checkpointing with crashes (Fig. 6, Theorem 10), ``t < n/5``."""
    if 5 * t >= n:
        raise ValueError(f"Checkpointing requires t < n/5, got t={t}, n={n}")
    params = ProtocolParams(n=n, t=t, seed=overlay_seed)
    graph = gossip_overlay(params)
    spread = spread_graph(n, params.seed)
    processes = [
        CheckpointingProcess(pid, params, graph=graph, spread=spread)
        for pid in range(n)
    ]
    horizon = params.gossip_phase_count * (2 + params.little_probe_rounds)
    adversary = _adversary(crashes, n, t, seed, horizon)
    return Engine(
        processes, adversary, max_rounds=max_rounds, optimized=optimized
    ).run()


def run_ab_consensus(
    inputs: Sequence[int],
    t: int,
    *,
    byzantine: Optional[Sequence[int]] = None,
    behaviour: str = "equivocate",
    seed: int = 0,
    overlay_seed: int = 0,
    max_rounds: int = 100_000,
    optimized: bool = True,
) -> RunResult:
    """Consensus under authenticated Byzantine faults (Fig. 7, Thm. 11).

    ``byzantine`` lists the faulty nodes (at most ``t``); ``behaviour``
    selects their strategy from ``BYZANTINE_BEHAVIOURS`` (``"silent"``,
    ``"equivocate"``, ``"spam"``).
    """
    n = len(inputs)
    if 2 * t >= n:
        raise ValueError(f"AB-Consensus requires t < n/2, got t={t}, n={n}")
    byz = frozenset(byzantine if byzantine is not None else [])
    if len(byz) > t:
        raise ValueError(f"{len(byz)} Byzantine nodes exceed the bound t={t}")
    params = ProtocolParams(n=n, t=t, seed=overlay_seed)
    service = SignatureService(n)
    spread = spread_graph(n, params.seed)
    make_byz = BYZANTINE_BEHAVIOURS[behaviour]
    processes = []
    for pid in range(n):
        if pid in byz:
            processes.append(make_byz(pid, n, params, service))
        else:
            processes.append(
                ABConsensusProcess(pid, params, inputs[pid], service, spread=spread)
            )
    engine = Engine(
        processes,
        NoFailures(),
        byzantine=byz,
        max_rounds=max_rounds,
        optimized=optimized,
    )
    return engine.run()
