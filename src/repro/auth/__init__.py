"""Authentication substrate: simulated unforgeable signatures."""

from repro.auth.signatures import Signature, SignatureService, SigningKey

__all__ = ["Signature", "SignatureService", "SigningKey"]
