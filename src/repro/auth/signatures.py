"""Simulated unforgeable signatures (the authenticated Byzantine model).

Section 7 assumes authentication: "a node faulty in the authenticated
Byzantine sense may undergo arbitrary state transitions but it cannot
forge messages claiming that they are forwarded from other nodes".

No cryptography is required to *simulate* this model; unforgeability is
enforced structurally:

* a :class:`SignatureService` (one per execution) mints per-node
  :class:`SigningKey` capabilities and keeps a private registry of every
  signature it has issued;
* ``SigningKey.sign(message)`` produces a :class:`Signature` token and
  registers it; a key can only sign for its own pid;
* :meth:`SignatureService.verify` accepts a signature only if it was
  registered, i.e. only if the claimed signer's capability actually
  produced it.

A Byzantine process holds only its own :class:`SigningKey`, so any
"forged" :class:`Signature` it fabricates by instantiating the
dataclass directly fails verification -- exactly the paper's model.
Messages are hashable canonical forms (tuples, ints, strings).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Hashable, Iterable

__all__ = ["Signature", "SignatureService", "SigningKey"]


@dataclass(frozen=True)
class Signature:
    """An issued signature: ``signer`` vouches for ``message``.

    ``nonce`` is the issuing counter; it makes every signature object
    unique and lets the service reject fabricated instances.
    """

    signer: int
    message: Hashable
    nonce: int

    def bits_size(self) -> int:
        """Signatures are charged a constant size (e.g. 256-bit MAC)."""
        return 256


class SigningKey:
    """The signing capability of one node.

    Only the :class:`SignatureService` can construct these (processes
    receive them pre-made); a key signs solely under its own pid.
    """

    def __init__(self, service: "SignatureService", pid: int):
        self._service = service
        self.pid = pid

    def sign(self, message: Hashable) -> Signature:
        """Sign ``message`` as this key's pid."""
        return self._service._issue(self.pid, message)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<SigningKey pid={self.pid}>"


class SignatureService:
    """Mints keys and verifies signatures for one execution."""

    def __init__(self, n: int):
        self.n = n
        self._counter = 0
        self._issued: set[tuple[int, Hashable, int]] = set()
        self._keys = [SigningKey(self, pid) for pid in range(n)]

    def key_for(self, pid: int) -> SigningKey:
        """The signing capability of ``pid``."""
        return self._keys[pid]

    def _issue(self, pid: int, message: Hashable) -> Signature:
        self._counter += 1
        signature = Signature(signer=pid, message=message, nonce=self._counter)
        self._issued.add((pid, message, signature.nonce))
        return signature

    def verify(self, signature: Any, message: Hashable, claimed_signer: int) -> bool:
        """Whether ``signature`` is a valid signature on ``message`` by
        ``claimed_signer``.

        Fabricated :class:`Signature` instances (never issued by a key)
        are rejected, which is what makes forgery impossible.
        """
        if not isinstance(signature, Signature):
            return False
        if signature.signer != claimed_signer or signature.message != message:
            return False
        return (signature.signer, signature.message, signature.nonce) in self._issued

    def count_valid(
        self, signatures: Iterable[Any], message: Hashable, allowed_signers: Iterable[int]
    ) -> int:
        """Number of *distinct* allowed signers with a valid signature on
        ``message`` among ``signatures``.

        This is the certificate check used by AB-Consensus ("each such
        value has at least ``4t`` valid signatures of little nodes").
        """
        allowed = set(allowed_signers)
        seen: set[int] = set()
        for signature in signatures:
            if not isinstance(signature, Signature):
                continue
            if signature.signer in seen or signature.signer not in allowed:
                continue
            if self.verify(signature, message, signature.signer):
                seen.add(signature.signer)
        return len(seen)
