"""Classical comparator algorithms (the "previous work" column of the
experiments): time-optimal but message-heavy solutions that the paper's
algorithms beat on communication."""

from repro.baselines.approximate import (
    ApproximateConsensusProcess,
    approximate_phase_count,
)
from repro.baselines.ds_everywhere import DSEverywhereProcess
from repro.baselines.early_stopping import EarlyStoppingConsensusProcess
from repro.baselines.flooding_consensus import FloodingConsensusProcess
from repro.baselines.lv_consensus import LVConsensusProcess
from repro.baselines.naive_checkpointing import NaiveCheckpointingProcess
from repro.baselines.naive_gossip import NaiveGossipProcess
from repro.baselines.ring_gossip import RingGossipProcess

__all__ = [
    "ApproximateConsensusProcess",
    "DSEverywhereProcess",
    "EarlyStoppingConsensusProcess",
    "FloodingConsensusProcess",
    "LVConsensusProcess",
    "NaiveCheckpointingProcess",
    "NaiveGossipProcess",
    "RingGossipProcess",
    "approximate_phase_count",
]
