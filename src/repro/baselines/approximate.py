"""Approximate consensus: phase-based averaging toward ε-agreement.

The averaging family (cf. Dolev–Lynch–Pinter–Stark–Weihl): every round
each node broadcasts its current real-valued estimate and replaces it
with an average of the values it saw (its own included).  The
correctness notion is **ε-agreement** -- decided values lie within
``eps`` of each other -- plus **range validity**: every estimate is an
average of initial values, so decisions never leave
``[min(inputs), max(inputs)]``.

Two averaging rules are exposed:

* ``mode="midpoint"`` -- ``(min + max) / 2`` of the seen values, which
  halves the spread every clean round (AlgorithmTwo-style);
* ``mode="mean"`` -- the arithmetic mean (AlgorithmOne-style).

In the paper's crash model (≤ ``t`` crashes, partial sends) at most
``t`` rounds are *dirty* (contain a crash), and in any clean round
every operational node averages the identical multiset of all
operational estimates -- so one clean round produces *exact* agreement,
which later dirty rounds cannot break (every received value already
equals the common one).  Running ``t + 1 + phases`` rounds therefore
guarantees ε-agreement for any ``eps``; the ``phases`` term is the
failure-free convergence schedule ``⌈log2(spread / eps)⌉`` that gives
the family its ε-parameterised round/bit envelope.
"""

from __future__ import annotations

import math
from typing import Any, Sequence

from repro.sim.process import Multicast, Process

__all__ = ["ApproximateConsensusProcess", "approximate_phase_count"]


def approximate_phase_count(inputs: Sequence[float], eps: float) -> int:
    """The failure-free convergence schedule: halving the input spread
    below ``eps`` takes ``⌈log2(spread / eps)⌉`` averaging rounds (at
    least one, so the schedule is never empty)."""
    if eps <= 0:
        raise ValueError(f"eps must be positive, got {eps}")
    spread = max(inputs) - min(inputs)
    if spread <= eps:
        return 1
    return max(1, math.ceil(math.log2(spread / eps)))


class ApproximateConsensusProcess(Process):
    """Every-round estimate broadcast; decide after ``t + 1 + phases``
    averaging rounds."""

    def __init__(
        self,
        pid: int,
        n: int,
        t: int,
        input_value: float,
        eps: float,
        phases: int,
        mode: str = "midpoint",
    ):
        super().__init__(pid, n)
        if mode not in ("midpoint", "mean"):
            raise ValueError(f"unknown averaging mode {mode!r}")
        self.t = t
        self.eps = float(eps)
        self.mode = mode
        self.value = float(input_value)
        self.rounds = t + 1 + phases
        self._everyone = tuple(q for q in range(n) if q != pid)

    def send(self, rnd: int):
        if rnd >= self.rounds or not self._everyone:
            return ()
        return [Multicast(self._everyone, self.value)]

    def receive(self, rnd: int, inbox: list[tuple[int, Any]]) -> None:
        if rnd >= self.rounds:
            return
        values = [self.value]
        values.extend(payload for _, payload in inbox)
        if self.mode == "midpoint":
            self.value = (min(values) + max(values)) / 2.0
        else:
            self.value = math.fsum(values) / len(values)
        if rnd == self.rounds - 1:
            self.decide(self.value)
            self.halt()

    def next_activity(self, rnd: int) -> int:
        return rnd + 1
