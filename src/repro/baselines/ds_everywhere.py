"""Baseline: Dolev–Strong run by *all* nodes (no little committee).

``n`` parallel authenticated-broadcast instances over the full node set
with combined messages; every node decides the maximum resolved value.
This is Fig. 7 without the committee trick: optimal ``O(t)`` rounds but
``Θ(n²)`` messages, the comparator that shows what AB-Consensus's
little-node structure buys (``O(t² + n)``).
"""

from __future__ import annotations

from typing import Any

from repro.auth.signatures import SignatureService
from repro.core.dolev_strong import ParallelDolevStrong
from repro.core.params import ProtocolParams
from repro.sim.process import Process

__all__ = ["DSEverywhereProcess"]


class DSEverywhereProcess(Process):
    """Full-committee parallel Dolev–Strong consensus."""

    def __init__(
        self,
        pid: int,
        params: ProtocolParams,
        input_value: int,
        service: SignatureService,
    ):
        super().__init__(pid, params.n)
        self.ds = ParallelDolevStrong(
            pid,
            params,
            input_value,
            0,
            service,
            service.key_for(pid),
            committee=params.n,
        )

    def send(self, rnd: int):
        return self.ds.outgoing(rnd)

    def receive(self, rnd: int, inbox: list[tuple[int, Any]]) -> None:
        self.ds.incoming(rnd, inbox)
        if rnd >= self.ds.cert_round:
            values = [v for _, v in (self.ds.resolved or ()) if v is not None]
            if values:
                self.decide(max(values))
            self.halt()

    def next_activity(self, rnd: int) -> int:
        return self.ds.next_activity(rnd)
