"""Baseline: early-stopping flooding consensus.

The paper's related work (Dolev–Reischuk–Strong [23]) centres on
*early-stopping* algorithms that decide in ``O(f + 1)`` rounds where
``f ≤ t`` is the number of crashes that actually occur.  This baseline
is the classical early-stopping variant of min-flooding:

* every undecided node broadcasts its current minimum each round;
* a node decides once it observes a *clean* pair of rounds -- the set
  of nodes it heard from did not shrink from round ``r − 1`` to ``r``
  (no failure manifested), which happens by round ``f + 2`` -- or at
  the hard cap ``t + 1``;
* a decider broadcasts one final tagged ``DECIDED`` message and halts;
  receivers adopt the value immediately (decision cascading), so the
  whole system halts within two rounds of the first decision.

Soundness of the clean-pair rule under partial crash-round sends: if
node ``p``'s heard-set did not shrink, then every node alive at round
``r − 1`` delivered its round-``r`` minimum to ``p`` (a sender whose
crash hid its message from ``p`` necessarily disappears from the heard
set), so ``p``'s minimum covers every value still alive in the system;
cascaded adoptions therefore agree.  The test suite drives the
hidden-value-chain adversary against exactly this argument.

``Θ(n²)`` messages per round is the price: Dolev–Lenzen prove deciding
in ``f + 1`` rounds forces ``Ω(n²)`` messages, which is why the paper's
fixed-schedule algorithms give up time adaptivity for linear
communication.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.sim.process import Multicast, Process

__all__ = ["EarlyStoppingConsensusProcess"]

_DECIDED_TAG = "D"


class EarlyStoppingConsensusProcess(Process):
    """Early-stopping min-flooding consensus with decision cascading."""

    def __init__(self, pid: int, n: int, t: int, input_value: int):
        super().__init__(pid, n)
        self.t = t
        self.minimum = input_value
        self._heard_prev: Optional[frozenset[int]] = None
        self._announce = False

    def send(self, rnd: int):
        others = tuple(q for q in range(self.n) if q != self.pid)
        if not others:
            return ()
        if self._announce:
            return [Multicast(others, (_DECIDED_TAG, self.decision))]
        if not self.decided:
            return [Multicast(others, self.minimum)]
        return ()

    def receive(self, rnd: int, inbox: list[tuple[int, Any]]) -> None:
        if self._announce:
            # The final DECIDED broadcast is out; nothing left to do.
            self.halt()
            return
        heard = {src for src, _ in inbox} | {self.pid}
        adopted = None
        for _, payload in inbox:
            if isinstance(payload, tuple) and payload[0] == _DECIDED_TAG:
                adopted = payload[1]
            elif payload < self.minimum:
                self.minimum = payload
        if self.decided:
            return
        if adopted is not None:
            # Decision cascading: a decider's value is safe to adopt.
            self.decide(adopted)
            self._announce = True
            return
        clean_pair = self._heard_prev is not None and heard >= self._heard_prev
        self._heard_prev = frozenset(heard)
        if clean_pair or rnd >= self.t:
            self.decide(self.minimum)
            self._announce = True

    def next_activity(self, rnd: int) -> int:
        return rnd + 1
