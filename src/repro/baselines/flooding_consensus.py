"""Baseline: classical full-information flooding consensus.

The folklore time-optimal algorithm (cf. Dolev–Reischuk–Strong [23]):
for ``t + 1`` rounds every node broadcasts its current minimum to
everyone, then decides on the minimum value seen.  Correct for any
``t < n`` (the standard clean-round argument), runs in the optimal
``t + 1`` rounds, but sends ``Θ(n²·t)`` messages -- this is the
comparator that Table 1's algorithms beat on communication.
"""

from __future__ import annotations

from typing import Any

from repro.sim.process import Multicast, Process

__all__ = ["FloodingConsensusProcess"]


class FloodingConsensusProcess(Process):
    """Every-round min broadcast; decide after ``t + 1`` rounds."""

    def __init__(self, pid: int, n: int, t: int, input_value: int):
        super().__init__(pid, n)
        self.t = t
        self.minimum = input_value
        self.rounds = t + 1
        self._everyone = tuple(q for q in range(n) if q != pid)

    def send(self, rnd: int):
        if rnd >= self.rounds or not self._everyone:
            return ()
        return [Multicast(self._everyone, self.minimum)]

    def receive(self, rnd: int, inbox: list[tuple[int, Any]]) -> None:
        if rnd >= self.rounds:
            return
        for _, payload in inbox:
            if payload < self.minimum:
                self.minimum = payload
        if rnd == self.rounds - 1:
            self.decide(self.minimum)
            self.halt()

    def next_activity(self, rnd: int) -> int:
        return rnd + 1
