"""Multi-valued consensus measured in payload bits (Liang–Vaidya slot).

Liang–Vaidya study consensus on *long* values, where the figure of
merit is total payload **bits**, not messages.  This comparator fills
that slot with the classical rotating-coordinator crash-model
algorithm: in round ``r`` (``r = 0 .. t``) node ``r`` multicasts its
current value and every receiver adopts it; after round ``t`` everyone
decides its current value.

Among the ``t + 1`` coordinators at least one never crashes; its round
imposes a common value on every operational node, and later rounds
cannot break that agreement (a later coordinator either already holds
the common value -- it adopted it while operational -- or is crashed
and silent).  Validity is immediate: values are only ever adopted, so
every estimate is some node's input.

The communication shape is the point: one ``width``-bit multicast per
round -- ``(t + 1) · (n - 1)`` messages, ``O(n · t · width)`` bits,
*linear in n per round* -- against flooding's ``n² · (t + 1)``
all-to-all messages for the same multi-valued instance.  This is the
family that exercises the ``payload_bits`` accounting end to end:
its certificate envelope is written in bits, so a node that pads or
re-broadcasts wide payloads blows the bound even when its message
count stays small.
"""

from __future__ import annotations

from typing import Any

from repro.sim.process import Multicast, Process

__all__ = ["LVConsensusProcess"]


class LVConsensusProcess(Process):
    """Rotating-coordinator broadcast; decide after ``t + 1`` rounds."""

    def __init__(self, pid: int, n: int, t: int, input_value: int, width: int):
        super().__init__(pid, n)
        self.t = t
        self.width = width
        self.value = input_value
        self.rounds = t + 1
        self._everyone = tuple(q for q in range(n) if q != pid)

    def send(self, rnd: int):
        if rnd >= self.rounds or rnd != self.pid or not self._everyone:
            return ()
        return [Multicast(self._everyone, self.value)]

    def receive(self, rnd: int, inbox: list[tuple[int, Any]]) -> None:
        if rnd >= self.rounds:
            return
        for _, payload in inbox:
            self.value = payload
        if rnd == self.rounds - 1:
            self.decide(self.value)
            self.halt()

    def next_activity(self, rnd: int) -> int:
        return rnd + 1
