"""Baseline: quadratic-message checkpointing.

Round 0: every node pings everyone; each node forms the membership mask
of pings it received.  Rounds 1 .. t+1: all-to-all AND-flooding of the
masks (the ``n`` bit-wise instances of flooding-min consensus, combined
into a mask per message).  Decide the final mask.

Correctness sketch: only nodes operational after round 0 ever broadcast
a mask, and such nodes received the complete ping of every node that
remains operational at the end, so every broadcast mask contains every
such node -- the AND keeps condition (2).  A node that crashed before
sending any ping is in no mask -- condition (1).  The clean-round
argument (some round among ``t + 1`` has no crash) yields equality --
condition (3).

``Θ(n²·t)`` messages, ``O(t)`` rounds: the time-optimal but
message-heavy comparator for Theorem 10 (the role the De Prisco--
Mayer--Yung [20] / pre-[25] algorithms play in the paper's Table 1
discussion).
"""

from __future__ import annotations

from typing import Any

from repro.core.checkpointing import mask_to_set
from repro.sim.process import Multicast, Process

__all__ = ["NaiveCheckpointingProcess"]


class NaiveCheckpointingProcess(Process):
    """Ping round plus ``t + 1`` rounds of mask AND-flooding."""

    def __init__(self, pid: int, n: int, t: int):
        super().__init__(pid, n)
        self.t = t
        self.mask = 1 << pid
        self._everyone = tuple(q for q in range(n) if q != pid)
        self.end_round = t + 2  # round 0 ping + rounds 1..t+1 flooding

    def send(self, rnd: int):
        if not self._everyone:
            return ()
        if rnd == 0:
            return [Multicast(self._everyone, 1)]
        if rnd < self.end_round:
            return [Multicast(self._everyone, self.mask)]
        return ()

    def receive(self, rnd: int, inbox: list[tuple[int, Any]]) -> None:
        if rnd == 0:
            for src, _ in inbox:
                self.mask |= 1 << src
            return
        if rnd < self.end_round:
            for _, payload in inbox:
                self.mask &= payload | (1 << self.pid)
            if rnd == self.end_round - 1:
                self.decide(mask_to_set(self.mask))
                self.halt()

    def next_activity(self, rnd: int) -> int:
        return rnd + 1
