"""Baseline: direct all-to-all gossip.

Round 0: every node broadcasts its ``(pid, rumor)`` pair; round 1:
every node broadcasts its full extant set (the echo makes decided sets
nearly equal and covers recipients of partial crash-round sends).
``Θ(n²)`` messages in 2 rounds -- the message-heavy comparator for
Theorem 9's ``O(n + t log n log t)``.
"""

from __future__ import annotations

from typing import Any

from repro.sim.process import Multicast, Process

__all__ = ["NaiveGossipProcess"]


class NaiveGossipProcess(Process):
    """Two-round full-exchange gossip."""

    def __init__(self, pid: int, n: int, rumor: Any):
        super().__init__(pid, n)
        self.extant: dict[int, Any] = {pid: rumor}
        self._everyone = tuple(q for q in range(n) if q != pid)

    def send(self, rnd: int):
        if not self._everyone:
            return ()
        if rnd == 0:
            return [Multicast(self._everyone, (self.pid, self.extant[self.pid]))]
        if rnd == 1:
            return [Multicast(self._everyone, tuple(self.extant.items()))]
        return ()

    def receive(self, rnd: int, inbox: list[tuple[int, Any]]) -> None:
        if rnd == 0:
            for _, payload in inbox:
                q, rumor = payload
                self.extant.setdefault(q, rumor)
        elif rnd == 1:
            for _, payload in inbox:
                for q, rumor in payload:
                    self.extant.setdefault(q, rumor)
            self.decide(tuple(sorted(self.extant.items())))
            self.halt()

    def next_activity(self, rnd: int) -> int:
        return rnd + 1
