"""Baseline: deterministic single-port gossip with round-robin ports.

At round ``r``, node ``p`` sends its extant set to node
``(p + 1 + (r mod (n−1))) mod n`` and polls the port of node
``(p − 1 − (r mod (n−1))) mod n`` -- an oblivious round-robin schedule,
so after ``n − 1`` failure-free rounds every pair has exchanged sets
directly.  Decides after ``n + 1`` rounds.

This is the protocol the Theorem 13 ``Ω(t)`` adversary is demonstrated
against (:mod:`repro.lowerbounds.gossip_adversary`): its deterministic
port schedule lets the adversary pre-compute and crash exactly the node
whose port the victim will poll next.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.sim.singleport import SinglePortProcess

__all__ = ["RingGossipProcess"]


class RingGossipProcess(SinglePortProcess):
    """Round-robin single-port gossip."""

    def __init__(self, pid: int, n: int, rumor: Any):
        super().__init__(pid, n)
        self.extant: dict[int, Any] = {pid: rumor}
        self.end_round = n + 1

    def _offset(self, rnd: int) -> int:
        return rnd % max(1, self.n - 1)

    def send(self, rnd: int) -> Optional[tuple[int, Any]]:
        if rnd >= self.end_round or self.n == 1:
            return None
        target = (self.pid + 1 + self._offset(rnd)) % self.n
        if target == self.pid:
            return None
        return (target, tuple(self.extant.items()))

    def poll(self, rnd: int) -> Optional[int]:
        if rnd >= self.end_round or self.n == 1:
            return None
        source = (self.pid - 1 - self._offset(rnd)) % self.n
        return None if source == self.pid else source

    def receive(self, rnd: int, message: Optional[tuple[int, Any]]) -> None:
        if message is not None:
            _, payload = message
            for q, rumor in payload:
                self.extant.setdefault(q, rumor)
        if rnd >= self.end_round - 1 and not self.halted:
            self.decide(tuple(sorted(self.extant.items())))
            self.halt()

    def next_activity(self, rnd: int) -> int:
        return rnd + 1

    def state_digest(self) -> tuple:
        return (self.pid, tuple(sorted(self.extant.items())), self.halted, self.decision)
