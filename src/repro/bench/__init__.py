"""Experiment harness: workload generators, per-experiment series
builders and the CLI runner behind EXPERIMENTS.md."""

from repro.bench.workloads import (
    byzantine_sample,
    input_vector,
    rumor_vector,
    table1_fault_bound,
)

__all__ = [
    "byzantine_sample",
    "input_vector",
    "rumor_vector",
    "table1_fault_bound",
]
