"""Experiment harness: workload generators, per-experiment series
builders, the parallel sweep scheduler and the CLI runner behind
EXPERIMENTS.md."""

from repro.bench.sweep import (
    SweepOutcome,
    SweepReport,
    SweepSpec,
    SweepUnit,
    derive_seed,
    expand_grid,
    run_sweep,
)
from repro.bench.workloads import (
    byzantine_sample,
    input_vector,
    rumor_vector,
    table1_fault_bound,
)

__all__ = [
    "SweepOutcome",
    "SweepReport",
    "SweepSpec",
    "SweepUnit",
    "byzantine_sample",
    "derive_seed",
    "expand_grid",
    "input_vector",
    "rumor_vector",
    "run_sweep",
    "table1_fault_bound",
]
