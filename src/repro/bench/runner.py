"""Command-line experiment runner: regenerates the paper-shaped tables.

Usage::

    python -m repro.bench.runner table1
    python -m repro.bench.runner e5 e9 --jobs 4
    python -m repro.bench.runner all --jobs 8 --out results/
    repro-bench profile smoke --jobs 4 --out obs/   # instrumented run
    repro-bench serve                               # run-server load gen

Each experiment id maps to a declarative sweep spec in
:mod:`repro.bench.series`; the scheduler in :mod:`repro.bench.sweep`
expands it into work units and fans them out over ``--jobs`` worker
processes.  Row content and order are independent of the worker count
(every unit is deterministically parameterised and results are
collected in unit order), so ``--jobs`` only changes wall-clock time.

The output is an aligned text table (the same rows recorded in
EXPERIMENTS.md); ``--out DIR`` additionally writes one JSON report
(parameters, rows, timings) and one CSV (rows only) per experiment for
machine-readable trajectory tracking.

``repro-bench profile <experiment>`` runs one experiment with live
progress heartbeats and prints its wall-clock profile (per-phase table,
per-worker utilization) instead of the result rows; ``--out DIR``
writes the telemetry artifacts -- ``<experiment>.events.jsonl`` and a
Perfetto-loadable ``<experiment>.trace.json`` with one track per worker
process (see :mod:`repro.obs`).

``repro-bench serve`` boots a :class:`repro.serve.server.RunServer`
over loopback TCP and drives it through the submit/stream client API
under steady, churn-scenario and burst load, writing the
``BENCH_serve.json`` throughput/latency artifact (see
:mod:`repro.serve.loadgen`).
"""

from __future__ import annotations

import argparse
import os
import sys
import time

from repro.bench import series
from repro.bench.sweep import run_sweep, union_columns, write_csv, write_json

__all__ = [
    "EXPERIMENTS",
    "cli_main",
    "format_table",
    "main",
    "profile_main",
    "run_experiment",
]

#: Experiment id -> (zero-argument spec builder, display title).  The
#: single registry behind both :func:`run_experiment` and the CLI; the
#: ``exp_*`` wrappers in :mod:`repro.bench.series` remain the
#: parameterisable library surface.
EXPERIMENTS = {
    "table1": (series.table1_spec, "Table 1: linear time + communication ranges"),
    "e5": (series.aea_spec, "Theorem 5: Almost-Everywhere-Agreement"),
    "e6": (series.scv_spec, "Theorem 6: Spread-Common-Value"),
    "e7": (series.consensus_few_spec, "Theorem 7: Few-Crashes-Consensus"),
    "e8": (series.consensus_many_spec, "Theorem 8/Cor 1: Many-Crashes-Consensus"),
    "e9": (series.gossip_spec, "Theorem 9: Gossip"),
    "e10": (series.checkpointing_spec, "Theorem 10: Checkpointing"),
    "e11": (series.byzantine_spec, "Theorem 11: AB-Consensus"),
    "e12": (series.singleport_spec, "Theorem 12: single-port Linear-Consensus"),
    "e13": (series.lowerbounds_spec, "Theorem 13: lower bounds"),
    "baselines": (series.baselines_spec, "Cross-comparison vs classical baselines"),
    "families": (
        series.families_spec,
        "Literature families (approximate, lv-consensus) vs the paper's: rounds/bits",
    ),
    "net": (series.net_spec, "Simulator vs. asyncio net runtime (parity + cost)"),
    "scenarios": (
        series.scenarios_spec,
        "Fault scenarios: omission / partition / churn degradation",
    ),
    "fuzz": (
        series.fuzz_spec,
        "Differential fuzz: backend parity + safety and paper-bound oracles",
    ),
    "adversary": (
        series.adversary_spec,
        "Adversary search: annealed worst-case constants vs t (crash model)",
    ),
    "smoke": (
        series.smoke_spec,
        "Profiling smoke: a seconds-scale Table 1 slice (see `profile`)",
    ),
}


def format_table(rows: list[dict]) -> str:
    """Align a list of row dicts into a printable text table.

    The column set is the union of all row keys (ordered by first
    appearance), so heterogeneous rows render every field instead of
    silently dropping keys absent from the first row.
    """
    if not rows:
        return "(no rows)"
    columns = union_columns(rows)
    cells = [[str(row.get(col, "")) for col in columns] for row in rows]
    widths = [
        max(len(col), *(len(row[i]) for row in cells)) for i, col in enumerate(columns)
    ]
    header = "  ".join(col.ljust(widths[i]) for i, col in enumerate(columns))
    rule = "  ".join("-" * w for w in widths)
    body = "\n".join(
        "  ".join(row[i].ljust(widths[i]) for i in range(len(columns)))
        for row in cells
    )
    return f"{header}\n{rule}\n{body}"


def run_experiment(name: str, jobs: int = 1) -> list[dict]:
    """Run one experiment by id and return its rows."""
    spec_builder, _ = EXPERIMENTS[name]
    return run_sweep(spec_builder(), jobs=jobs).rows()


def _profile_args(argv: list[str]) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        prog="repro-bench profile",
        description=(
            "Run one experiment instrumented: live progress heartbeats, a "
            "wall-clock profile table, and (with --out) Perfetto-loadable "
            "telemetry artifacts."
        ),
    )
    parser.add_argument(
        "experiment",
        metavar="EXPERIMENT",
        help=f"experiment id ({', '.join(EXPERIMENTS)})",
    )
    parser.add_argument(
        "--jobs", "-j", type=int, default=1,
        help="worker processes (default: 1, serial)",
    )
    parser.add_argument(
        "--out", metavar="DIR", default=None,
        help=(
            "write <DIR>/<experiment>.events.jsonl and "
            "<DIR>/<experiment>.trace.json telemetry artifacts"
        ),
    )
    parser.add_argument(
        "--progress", dest="progress", action="store_true", default=None,
        help="force progress heartbeats on (default: on when stderr is a TTY)",
    )
    parser.add_argument(
        "--no-progress", dest="progress", action="store_false",
        help="suppress progress heartbeats",
    )
    return parser.parse_args(argv)


def profile_main(argv: list[str]) -> int:
    """The ``repro-bench profile <experiment>`` subcommand."""
    from repro.obs import ProgressReporter, format_summary, sweep_telemetry

    args = _profile_args(argv)
    if args.experiment not in EXPERIMENTS:
        print(
            f"unknown experiment {args.experiment!r}; "
            f"choose from {list(EXPERIMENTS)}"
        )
        return 2
    spec_builder, title = EXPERIMENTS[args.experiment]
    spec = spec_builder()
    reporter = ProgressReporter(
        total=len(spec.expand()),
        label=f"profile {args.experiment}",
        jobs=args.jobs,
        enabled=args.progress,
    )
    report = run_sweep(spec, jobs=args.jobs, progress=reporter.unit_done)
    reporter.close()
    telemetry = sweep_telemetry(report)
    print(
        f"== profile {args.experiment}: {title}  "
        f"[{report.elapsed:.1f}s, jobs={report.jobs}]"
    )
    print(format_summary(telemetry.summary_rows()))
    workers = report.worker_stats()
    print(
        "workers: "
        + "; ".join(
            f"pid {pid}: {info['units']} units, {info['busy_seconds']}s busy, "
            f"util {info['utilization']:.0%}"
            for pid, info in workers.items()
        )
    )
    if args.out:
        os.makedirs(args.out, exist_ok=True)
        events_path = os.path.join(args.out, f"{args.experiment}.events.jsonl")
        trace_path = os.path.join(args.out, f"{args.experiment}.trace.json")
        telemetry.write(events_path)
        telemetry.write(trace_path)
        print(
            f"   telemetry: {events_path} {trace_path}  "
            "(open the trace in ui.perfetto.dev)"
        )
    return 0


def _parse_args(argv: list[str]) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.runner",
        description="Regenerate the paper-shaped experiment tables.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        default=["all"],
        metavar="EXPERIMENT",
        help=f"experiment ids ({', '.join(EXPERIMENTS)}) or 'all'",
    )
    parser.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=1,
        help="worker processes per sweep (default: 1, serial)",
    )
    parser.add_argument(
        "--out",
        metavar="DIR",
        default=None,
        help="write <DIR>/<experiment>.json and .csv artifacts",
    )
    return parser.parse_args(argv)


def main(argv: list[str]) -> int:
    if argv and argv[0] == "profile":
        return profile_main(argv[1:])
    if argv and argv[0] == "serve":
        from repro.serve.loadgen import main as serve_main

        return serve_main(argv[1:])
    args = _parse_args(argv)
    wanted = list(args.experiments)
    if wanted == ["all"]:
        wanted = list(EXPERIMENTS)
    unknown = [name for name in wanted if name not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {unknown}; choose from {list(EXPERIMENTS)}")
        return 2
    if args.out:
        os.makedirs(args.out, exist_ok=True)
    for name in wanted:
        spec_builder, title = EXPERIMENTS[name]
        spec = spec_builder()
        started = time.time()
        report = run_sweep(spec, jobs=args.jobs)
        elapsed = time.time() - started
        print(f"\n== {name}: {title}  [{elapsed:.1f}s, jobs={report.jobs}]")
        print(format_table(report.rows()))
        if args.out:
            json_path = os.path.join(args.out, f"{name}.json")
            csv_path = os.path.join(args.out, f"{name}.csv")
            write_json(report, json_path)
            write_csv(report.rows(), csv_path)
            print(f"   artifacts: {json_path} {csv_path}")
    return 0


def cli_main() -> int:
    """Entry point for the ``repro-bench`` console script."""
    return main(sys.argv[1:])


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
