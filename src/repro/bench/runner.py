"""Command-line experiment runner: regenerates the paper-shaped tables.

Usage::

    python -m repro.bench.runner table1
    python -m repro.bench.runner e5 e9
    python -m repro.bench.runner all

Each experiment id maps to a series builder in
:mod:`repro.bench.series`; the output is an aligned text table (the
same rows recorded in EXPERIMENTS.md).
"""

from __future__ import annotations

import sys
import time

from repro.bench import series

__all__ = ["EXPERIMENTS", "format_table", "main", "run_experiment"]

EXPERIMENTS = {
    "table1": (series.exp_table1, "Table 1: linear time + communication ranges"),
    "e5": (series.exp_e5_aea, "Theorem 5: Almost-Everywhere-Agreement"),
    "e6": (series.exp_e6_scv, "Theorem 6: Spread-Common-Value"),
    "e7": (series.exp_e7_consensus_few, "Theorem 7: Few-Crashes-Consensus"),
    "e8": (series.exp_e8_consensus_many, "Theorem 8/Cor 1: Many-Crashes-Consensus"),
    "e9": (series.exp_e9_gossip, "Theorem 9: Gossip"),
    "e10": (series.exp_e10_checkpointing, "Theorem 10: Checkpointing"),
    "e11": (series.exp_e11_byzantine, "Theorem 11: AB-Consensus"),
    "e12": (series.exp_e12_singleport, "Theorem 12: single-port Linear-Consensus"),
    "e13": (series.exp_e13_lowerbounds, "Theorem 13: lower bounds"),
    "baselines": (series.exp_baselines, "Cross-comparison vs classical baselines"),
}


def format_table(rows: list[dict]) -> str:
    """Align a list of row dicts into a printable text table."""
    if not rows:
        return "(no rows)"
    columns = list(rows[0].keys())
    cells = [[str(row.get(col, "")) for col in columns] for row in rows]
    widths = [
        max(len(col), *(len(row[i]) for row in cells)) for i, col in enumerate(columns)
    ]
    header = "  ".join(col.ljust(widths[i]) for i, col in enumerate(columns))
    rule = "  ".join("-" * w for w in widths)
    body = "\n".join(
        "  ".join(row[i].ljust(widths[i]) for i in range(len(columns)))
        for row in cells
    )
    return f"{header}\n{rule}\n{body}"


def run_experiment(name: str) -> list[dict]:
    """Run one experiment by id and return its rows."""
    builder, _ = EXPERIMENTS[name]
    return builder()


def main(argv: list[str]) -> int:
    wanted = argv or ["all"]
    if wanted == ["all"]:
        wanted = list(EXPERIMENTS)
    unknown = [name for name in wanted if name not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {unknown}; choose from {list(EXPERIMENTS)}")
        return 2
    for name in wanted:
        builder, title = EXPERIMENTS[name]
        started = time.time()
        rows = builder()
        elapsed = time.time() - started
        print(f"\n== {name}: {title}  [{elapsed:.1f}s]")
        print(format_table(rows))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
