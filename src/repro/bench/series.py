"""Per-experiment measurement series (the data behind EXPERIMENTS.md).

Each ``exp_*`` function runs a parameter sweep, validates every
execution against its correctness predicate (a benchmark number is only
reported for a *correct* run), and returns a list of row dicts whose
keys become the printed table columns.  The ``bound_ratio`` column of a
series divides the measured quantity by the theorem's bound expression:
Table 1's claims hold if the ratios stay bounded by a constant as the
sweep grows.
"""

from __future__ import annotations

import math
from typing import Optional

from repro import (
    check_aea,
    check_checkpointing,
    check_consensus,
    check_gossip,
    check_scv,
    run_aea,
    run_ab_consensus,
    run_checkpointing,
    run_consensus,
    run_gossip,
    run_scv,
)
from repro.baselines import (
    FloodingConsensusProcess,
    NaiveCheckpointingProcess,
    NaiveGossipProcess,
)
from repro.baselines.ring_gossip import RingGossipProcess
from repro.bench.workloads import byzantine_sample, input_vector, rumor_vector, table1_fault_bound
from repro.core.params import ProtocolParams
from repro.lowerbounds import divergence_series, isolation_report
from repro.sim import Engine, crash_schedule
from repro.singleport.linear_consensus import (
    LinearConsensusProcess,
    linear_consensus_schedule,
)
from repro.sim.singleport import SinglePortEngine

__all__ = [
    "exp_baselines",
    "exp_e5_aea",
    "exp_e6_scv",
    "exp_e7_consensus_few",
    "exp_e8_consensus_many",
    "exp_e9_gossip",
    "exp_e10_checkpointing",
    "exp_e11_byzantine",
    "exp_e12_singleport",
    "exp_e13_lowerbounds",
    "exp_table1",
]


def _log2(x: float) -> float:
    return math.log2(max(2.0, x))


def _consensus_comm_bound(params: ProtocolParams) -> float:
    """The Theorem 7 bit bound with the practical overlay constants:
    committee probing + expander spreading."""
    probing = (
        params.little_count
        * params.little_degree
        * (params.little_probe_rounds + 1)
    )
    return probing + 20.0 * params.n


def _gossip_comm_bound(params: ProtocolParams) -> float:
    """The Theorem 9 message bound with the practical constants:
    2·⌈lg n⌉ phases of committee probing plus the linear inquiry part."""
    per_phase = (
        params.little_count * params.little_degree * params.little_probe_rounds
    )
    return 4.0 * params.n + 2.0 * params.gossip_phase_count * per_phase


# -- Table 1 ----------------------------------------------------------------


def exp_table1(ns: Optional[list[int]] = None, seed: int = 1) -> list[dict]:
    """Regenerate Table 1: with ``t`` pinned at each row's optimality
    boundary, both ``rounds/(t + lg n)`` and ``comm/n`` must stay
    bounded as ``n`` grows."""
    ns = ns or [128, 256, 512]
    rows = []
    for n in ns:
        # Crash consensus at t = Θ(n / log n); communication = bits.
        t = table1_fault_bound("consensus", n)
        inputs = input_vector(n, "random", seed)
        result = run_consensus(inputs, t, algorithm="auto", seed=seed)
        check_consensus(result, inputs)
        params = ProtocolParams(n=n, t=t)
        rows.append(
            {
                "row": "crash/consensus",
                "n": n,
                "t": t,
                "rounds": result.rounds,
                "comm": result.bits,
                "rounds/(t+lg n)": round(result.rounds / (t + _log2(n)), 2),
                "comm/n": round(result.bits / n, 1),
                "comm/bound": round(result.bits / _consensus_comm_bound(params), 2),
            }
        )
    for n in ns:
        t = table1_fault_bound("gossip", n)
        rumors = rumor_vector(n, seed)
        result = run_gossip(rumors, t, crashes="random", seed=seed)
        check_gossip(result, rumors)
        params = ProtocolParams(n=n, t=t)
        rows.append(
            {
                "row": "crash/gossip",
                "n": n,
                "t": t,
                "rounds": result.rounds,
                "comm": result.messages,
                "rounds/(t+lg n)": round(result.rounds / (t + _log2(n)), 2),
                "comm/n": round(result.messages / n, 1),
                "comm/bound": round(result.messages / _gossip_comm_bound(params), 2),
            }
        )
    for n in ns:
        t = table1_fault_bound("checkpointing", n)
        result = run_checkpointing(n, t, crashes="random", seed=seed)
        check_checkpointing(result)
        params = ProtocolParams(n=n, t=t)
        ckpt_bound = _gossip_comm_bound(params) + _consensus_comm_bound(params)
        rows.append(
            {
                "row": "crash/checkpointing",
                "n": n,
                "t": t,
                "rounds": result.rounds,
                "comm": result.messages,
                "rounds/(t+lg n)": round(result.rounds / (t + _log2(n)), 2),
                "comm/n": round(result.messages / n, 1),
                "comm/bound": round(result.messages / ckpt_bound, 2),
            }
        )
    for n in ns:
        t = table1_fault_bound("byzantine", n)
        inputs = input_vector(n, "random", seed)
        byz = byzantine_sample(n, t, seed)
        result = run_ab_consensus(inputs, t, byzantine=byz, behaviour="equivocate")
        rows.append(
            {
                "row": "auth-byz/consensus",
                "n": n,
                "t": t,
                "rounds": result.rounds,
                "comm": result.messages,
                "rounds/(t+lg n)": round(result.rounds / (t + _log2(n)), 2),
                "comm/n": round(result.messages / n, 1),
                "comm/bound": round(result.messages / (30.0 * (t * t + n)), 2),
            }
        )
    return rows


# -- E5: Theorem 5 (AEA) -------------------------------------------------------


def exp_e5_aea(ns: Optional[list[int]] = None, seed: int = 1) -> list[dict]:
    ns = ns or [120, 240, 480]
    rows = []
    for n in ns:
        t = n // 6
        inputs = input_vector(n, "random", seed)
        result = run_aea(inputs, t, crashes="random", seed=seed)
        check_aea(result, inputs)
        deciders = len(result.correct_decisions())
        rows.append(
            {
                "n": n,
                "t": t,
                "rounds": result.rounds,
                "messages": result.messages,
                "bits": result.bits,
                "deciders/n": round((deciders + len(result.crashed)) / n, 3),
                "rounds/t": round(result.rounds / t, 2),
                "msgs/(n+t·lg t·d)": round(
                    result.messages / (n + t * _log2(t) * 32), 2
                ),
            }
        )
    return rows


# -- E6: Theorem 6 (SCV) -------------------------------------------------------


def exp_e6_scv(n: int = 400, seed: int = 1) -> list[dict]:
    rows = []
    import random as stdlib_random

    for t in (10, 19, 21, 40, 79):  # spans the t² ≤ n crossover at 20
        params = ProtocolParams(n=n, t=t)
        rng = stdlib_random.Random(seed)
        holders = set(rng.sample(range(n), int(0.62 * n)))
        result = run_scv(n, t, holders, 1, crashes="random", seed=seed)
        check_scv(result, 1)
        rows.append(
            {
                "n": n,
                "t": t,
                "branch": "direct(t²≤n)" if params.scv_direct_inquiry else "doubling",
                "rounds": result.rounds,
                "messages": result.messages,
                "rounds/lg t": round(result.rounds / _log2(t), 2),
                "msgs/(n+t·lg t)": round(
                    result.messages / (n + 20 * t * _log2(t)), 2
                ),
            }
        )
    return rows


# -- E7: Theorem 7 (Few-Crashes-Consensus) ----------------------------------------


def exp_e7_consensus_few(ns: Optional[list[int]] = None, seed: int = 1) -> list[dict]:
    ns = ns or [120, 240, 480]
    rows = []
    for n in ns:
        t = n // 6
        inputs = input_vector(n, "random", seed)
        result = run_consensus(inputs, t, algorithm="few", seed=seed)
        check_consensus(result, inputs)
        rows.append(
            {
                "n": n,
                "t": t,
                "rounds": result.rounds,
                "messages": result.messages,
                "bits": result.bits,
                "rounds/(t+lg n)": round(result.rounds / (t + _log2(n)), 2),
                "bits/(n+t·lg t·d)": round(result.bits / (n + t * _log2(t) * 32), 2),
            }
        )
    return rows


# -- E8: Theorem 8 / Corollary 1 (Many-Crashes-Consensus) ---------------------------


def exp_e8_consensus_many(n: int = 96, seed: int = 1) -> list[dict]:
    rows = []
    for alpha_pct in (30, 60, 90, 98):
        t = min(n - 1, max(1, n * alpha_pct // 100))
        inputs = input_vector(n, "random", seed)
        result = run_consensus(inputs, t, algorithm="many", seed=seed)
        check_consensus(result, inputs)
        base_bound = n + 3 * (1 + _log2(n)) + 7
        # Degenerate fault patterns (α → 1 with no probing survivor)
        # trigger the recovery epilogue, adding at most t + 2 rounds;
        # see DESIGN.md and the Many-Crashes-Consensus docstring.
        recovery_used = result.rounds > base_bound
        round_bound = base_bound + (t + 2 if recovery_used else 0)
        rows.append(
            {
                "n": n,
                "t": t,
                "alpha": round(t / n, 2),
                "rounds": result.rounds,
                "round_bound(n+3(1+lg n))": int(round_bound),
                "recovery": "yes" if recovery_used else "no",
                "messages": result.messages,
                "bits": result.bits,
                "rounds/bound": round(result.rounds / round_bound, 2),
            }
        )
    return rows


# -- E9: Theorem 9 (Gossip) -----------------------------------------------------


def exp_e9_gossip(ns: Optional[list[int]] = None, seed: int = 1) -> list[dict]:
    ns = ns or [120, 240, 480]
    rows = []
    for n in ns:
        t = n // 10
        rumors = rumor_vector(n, seed)
        result = run_gossip(rumors, t, crashes="random", seed=seed)
        check_gossip(result, rumors)
        rows.append(
            {
                "n": n,
                "t": t,
                "rounds": result.rounds,
                "messages": result.messages,
                "rounds/(lg n·lg t)": round(
                    result.rounds / (_log2(n) * _log2(t)), 2
                ),
                "msgs/bound": round(
                    result.messages / _gossip_comm_bound(ProtocolParams(n=n, t=t)), 2
                ),
            }
        )
    return rows


# -- E10: Theorem 10 (Checkpointing) -----------------------------------------------


def exp_e10_checkpointing(ns: Optional[list[int]] = None, seed: int = 1) -> list[dict]:
    ns = ns or [100, 200, 400]
    rows = []
    for n in ns:
        t = n // 10
        result = run_checkpointing(n, t, crashes="random", seed=seed)
        check_checkpointing(result)
        baseline_procs = [NaiveCheckpointingProcess(i, n, t) for i in range(n)]
        baseline = Engine(
            baseline_procs, crash_schedule(n, t, seed=seed, max_round=t + 2)
        ).run()
        check_checkpointing(baseline)
        rows.append(
            {
                "n": n,
                "t": t,
                "rounds": result.rounds,
                "messages": result.messages,
                "naive_msgs(n²t)": baseline.messages,
                "msg_ratio(naive/paper)": round(baseline.messages / result.messages, 2),
                "rounds/(t+lgn·lgt)": round(
                    result.rounds / (t + _log2(n) * _log2(t)), 2
                ),
            }
        )
    return rows


# -- E11: Theorem 11 (AB-Consensus) --------------------------------------------------


def exp_e11_byzantine(n: int = 400, seed: int = 1) -> list[dict]:
    rows = []
    for t in (5, 10, 20, 40):  # √n = 20: the linear-communication crossover
        inputs = input_vector(n, "random", seed)
        byz = byzantine_sample(n, t, seed)
        result = run_ab_consensus(inputs, t, byzantine=byz, behaviour="equivocate")
        rows.append(
            {
                "n": n,
                "t": t,
                "t²/n": round(t * t / n, 2),
                "rounds": result.rounds,
                "messages": result.messages,
                "rounds/t": round(result.rounds / t, 2),
                "msgs/(t²+n)": round(result.messages / (t * t + n), 2),
                "msgs/n": round(result.messages / n, 2),
            }
        )
    return rows


# -- E12: Theorem 12 (single-port Linear-Consensus) ------------------------------------


def exp_e12_singleport(ns: Optional[list[int]] = None, seed: int = 1) -> list[dict]:
    ns = ns or [60, 120, 240]
    rows = []
    for n in ns:
        t = n // 8
        params = ProtocolParams(n=n, t=t, seed=3)
        schedule, shared = linear_consensus_schedule(params)
        inputs = input_vector(n, "random", seed)
        processes = [
            LinearConsensusProcess(
                pid, params, inputs[pid], schedule=schedule, shared=shared
            )
            for pid in range(n)
        ]
        adversary = crash_schedule(n, t, seed=seed, max_round=schedule.end)
        result = SinglePortEngine(processes, adversary).run()
        check_consensus(result, inputs)
        rows.append(
            {
                "n": n,
                "t": t,
                "sp_rounds": result.rounds,
                "messages": result.messages,
                "bits": result.bits,
                "rounds/(t+lg n)": round(result.rounds / (t + _log2(n)), 1),
                "bits/(n+t·lg n·d)": round(result.bits / (n + 32 * t * _log2(n)), 2),
            }
        )
    return rows


# -- E13: Theorem 13 (lower bounds) ----------------------------------------------------


def exp_e13_lowerbounds(seed: int = 1) -> list[dict]:
    rows = []
    n = 60
    for t in (8, 16, 24):
        factory = lambda rumors: [RingGossipProcess(i, n, rumors[i]) for i in range(n)]
        rumors_a = ["x"] * n
        rumors_b = ["x"] * n
        rumors_b[7] = "y"
        report = isolation_report(factory, rumors_a, rumors_b, t, victim=0)
        rows.append(
            {
                "experiment": f"gossip isolation (t={t})",
                "measured": report.isolated_rounds,
                "bound": t // 2,
                "detail": f"crashes used {report.crashes_used}, digests matched {report.digests_matched}",
            }
        )
    n = 40
    params = ProtocolParams(n=n, t=3, seed=3)
    schedule, shared = linear_consensus_schedule(params)

    def factory(inputs):
        return [
            LinearConsensusProcess(pid, params, inputs[pid], schedule=schedule, shared=shared)
            for pid in range(n)
        ]

    report = divergence_series(factory, n)
    rows.append(
        {
            "experiment": f"consensus divergence (n={n})",
            "measured": report.first_decision_round,
            "bound": round(math.log(n, 3), 1),
            "detail": (
                f"pivot {report.pivot}, |A_i|≤3^i holds: "
                f"{report.respects_cubic_bound()}"
            ),
        }
    )
    return rows


# -- Baseline cross-comparison ---------------------------------------------------------


def exp_baselines(n: int = 240, seed: int = 1) -> list[dict]:
    t = n // 10
    inputs = input_vector(n, "random", seed)
    rows = []

    paper = run_consensus(inputs, t, algorithm="few", seed=seed)
    check_consensus(paper, inputs)
    procs = [FloodingConsensusProcess(i, n, t, inputs[i]) for i in range(n)]
    flooding = Engine(procs, crash_schedule(n, t, seed=seed, max_round=t + 1)).run()
    check_consensus(flooding, inputs)
    rows.append(
        {
            "problem": "consensus",
            "paper_msgs": paper.messages,
            "baseline_msgs": flooding.messages,
            "baseline": "flooding (t+1 rounds, all-to-all)",
            "paper_rounds": paper.rounds,
            "baseline_rounds": flooding.rounds,
        }
    )

    # Gossip is compared at its Table 1 boundary t = Θ(n / log² n): that
    # is where the linear-communication claim lives (at t = n/10 the
    # committee-degree constant still dominates at simulation sizes).
    gossip_t = table1_fault_bound("gossip", n)
    rumors = rumor_vector(n, seed)
    paper_gossip = run_gossip(rumors, gossip_t, crashes="random", seed=seed)
    check_gossip(paper_gossip, rumors)
    gprocs = [NaiveGossipProcess(i, n, rumors[i]) for i in range(n)]
    naive_gossip = Engine(
        gprocs, crash_schedule(n, gossip_t, seed=seed, max_round=2)
    ).run()
    rows.append(
        {
            "problem": f"gossip (t={gossip_t})",
            "paper_msgs": paper_gossip.messages,
            "baseline_msgs": naive_gossip.messages,
            "baseline": "all-to-all exchange",
            "paper_rounds": paper_gossip.rounds,
            "baseline_rounds": naive_gossip.rounds,
        }
    )

    paper_ckpt = run_checkpointing(n, t, crashes="random", seed=seed)
    check_checkpointing(paper_ckpt)
    cprocs = [NaiveCheckpointingProcess(i, n, t) for i in range(n)]
    naive_ckpt = Engine(cprocs, crash_schedule(n, t, seed=seed, max_round=t + 2)).run()
    rows.append(
        {
            "problem": "checkpointing",
            "paper_msgs": paper_ckpt.messages,
            "baseline_msgs": naive_ckpt.messages,
            "baseline": "ping + mask AND-flooding (n²t)",
            "paper_rounds": paper_ckpt.rounds,
            "baseline_rounds": naive_ckpt.rounds,
        }
    )
    return rows
