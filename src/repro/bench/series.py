"""Per-experiment measurement series (the data behind EXPERIMENTS.md).

Each experiment is expressed as a :class:`~repro.bench.sweep.SweepSpec`:
a declarative parameter grid plus a module-level *unit runner* mapping
one fully-bound parameter dict to one row dict.  The ``exp_*`` wrappers
(the public surface used by :mod:`repro.bench.runner` and the tests)
expand the spec and execute it through the sweep scheduler — serially
by default, or across cores with ``jobs > 1`` — so every table can be
regenerated in parallel without changing a single row.

Every unit validates its execution against the problem's correctness
predicate (a benchmark number is only reported for a *correct* run).
The ``bound_ratio``-style columns divide the measured quantity by the
theorem's bound expression: Table 1's claims hold if the ratios stay
bounded by a constant as the sweep grows.

Rows are byte-identical across runs and ``--jobs`` counts, with one
documented exception: the ``net`` series' ``sim_ms``/``net_ms``/
``net/sim`` columns are wall-clock measurements (its remaining columns
stay deterministic; see :func:`net_unit`).
"""

from __future__ import annotations

import math
from typing import Optional

from repro import (
    check_aea,
    check_approximate,
    check_checkpointing,
    check_consensus,
    check_gossip,
    check_scv,
    run_aea,
    run_ab_consensus,
    run_approximate,
    run_checkpointing,
    run_consensus,
    run_flooding,
    run_gossip,
    run_lv_consensus,
    run_scv,
)
from repro.baselines import (
    FloodingConsensusProcess,
    NaiveCheckpointingProcess,
    NaiveGossipProcess,
)
from repro.baselines.ring_gossip import RingGossipProcess
from repro.bench.sweep import SweepSpec, derive_seed, run_sweep
from repro.bench.workloads import byzantine_sample, input_vector, rumor_vector, table1_fault_bound
from repro.check.driver import build_fuzz_spec
from repro.check.oracles import check_parity
from repro.core.params import ProtocolParams
from repro.lowerbounds import divergence_series, isolation_report
from repro.sim import Engine, crash_schedule
from repro.singleport.linear_consensus import (
    LinearConsensusProcess,
    linear_consensus_schedule,
)
from repro.sim.singleport import SinglePortEngine

__all__ = [
    "exp_adversary",
    "exp_baselines",
    "exp_families",
    "exp_fuzz",
    "exp_e5_aea",
    "exp_e6_scv",
    "exp_e7_consensus_few",
    "exp_e8_consensus_many",
    "exp_e9_gossip",
    "exp_e10_checkpointing",
    "exp_e11_byzantine",
    "exp_e12_singleport",
    "exp_e13_lowerbounds",
    "exp_net",
    "exp_scenarios",
    "exp_table1",
    "smoke_spec",
]


def _log2(x: float) -> float:
    return math.log2(max(2.0, x))


def _consensus_comm_bound(params: ProtocolParams) -> float:
    """The Theorem 7 bit bound with the practical overlay constants:
    committee probing + expander spreading."""
    probing = (
        params.little_count
        * params.little_degree
        * (params.little_probe_rounds + 1)
    )
    return probing + 20.0 * params.n


def _gossip_comm_bound(params: ProtocolParams) -> float:
    """The Theorem 9 message bound with the practical constants:
    2·⌈lg n⌉ phases of committee probing plus the linear inquiry part."""
    per_phase = (
        params.little_count * params.little_degree * params.little_probe_rounds
    )
    return 4.0 * params.n + 2.0 * params.gossip_phase_count * per_phase


# -- Table 1 ----------------------------------------------------------------


def table1_unit(params: dict) -> dict:
    """One Table 1 cell: ``params`` binds ``problem``, ``n`` and ``seed``."""
    problem = params["problem"]
    n = params["n"]
    seed = params["seed"]
    t = table1_fault_bound(problem, n)
    if problem == "consensus":
        # Crash consensus at t = Θ(n / log n); communication = bits.
        inputs = input_vector(n, "random", seed)
        result = run_consensus(inputs, t, algorithm="auto", seed=seed)
        check_consensus(result, inputs)
        pp = ProtocolParams(n=n, t=t)
        comm = result.bits
        bound = _consensus_comm_bound(pp)
        row_name = "crash/consensus"
    elif problem == "gossip":
        rumors = rumor_vector(n, seed)
        result = run_gossip(rumors, t, crashes="random", seed=seed)
        check_gossip(result, rumors)
        pp = ProtocolParams(n=n, t=t)
        comm = result.messages
        bound = _gossip_comm_bound(pp)
        row_name = "crash/gossip"
    elif problem == "checkpointing":
        result = run_checkpointing(n, t, crashes="random", seed=seed)
        check_checkpointing(result)
        pp = ProtocolParams(n=n, t=t)
        comm = result.messages
        bound = _gossip_comm_bound(pp) + _consensus_comm_bound(pp)
        row_name = "crash/checkpointing"
    elif problem == "byzantine":
        inputs = input_vector(n, "random", seed)
        byz = byzantine_sample(n, t, seed)
        result = run_ab_consensus(inputs, t, byzantine=byz, behaviour="equivocate")
        comm = result.messages
        bound = 30.0 * (t * t + n)
        row_name = "auth-byz/consensus"
    else:
        raise ValueError(f"unknown Table 1 problem {problem!r}")
    return {
        "row": row_name,
        "n": n,
        "t": t,
        "rounds": result.rounds,
        "comm": comm,
        "rounds/(t+lg n)": round(result.rounds / (t + _log2(n)), 2),
        "comm/n": round(comm / n, 1),
        "comm/bound": round(comm / bound, 2),
    }


def table1_spec(ns: Optional[list[int]] = None, seed: int = 1) -> SweepSpec:
    ns = ns or [128, 256, 512]
    return SweepSpec(
        name="table1",
        runner=table1_unit,
        grid={
            "problem": ["consensus", "gossip", "checkpointing", "byzantine"],
            "n": ns,
            "seed": [seed],
        },
        base_seed=seed,
    )


def smoke_spec(n: int = 48, seed: int = 1) -> SweepSpec:
    """A seconds-scale slice of the Table 1 grid, for profiling smoke runs.

    ``repro-bench profile smoke`` is what the CI observability job runs:
    one unit per Table 1 problem at a small ``n`` -- enough work to
    produce a non-trivial multi-unit timeline and exercise the telemetry
    exporters, small enough to finish in seconds.
    """
    return SweepSpec(
        name="smoke",
        runner=table1_unit,
        grid={
            "problem": ["consensus", "gossip", "checkpointing", "byzantine"],
            "n": [n],
            "seed": [seed],
        },
        base_seed=seed,
    )


def exp_table1(
    ns: Optional[list[int]] = None, seed: int = 1, jobs: int = 1
) -> list[dict]:
    """Regenerate Table 1: with ``t`` pinned at each row's optimality
    boundary, both ``rounds/(t + lg n)`` and ``comm/n`` must stay
    bounded as ``n`` grows."""
    return run_sweep(table1_spec(ns, seed), jobs=jobs).rows()


# -- E5: Theorem 5 (AEA) -------------------------------------------------------


def aea_unit(params: dict) -> dict:
    n, seed = params["n"], params["seed"]
    t = n // 6
    inputs = input_vector(n, "random", seed)
    result = run_aea(inputs, t, crashes="random", seed=seed)
    check_aea(result, inputs)
    deciders = len(result.correct_decisions())
    return {
        "n": n,
        "t": t,
        "rounds": result.rounds,
        "messages": result.messages,
        "bits": result.bits,
        "deciders/n": round((deciders + len(result.crashed)) / n, 3),
        "rounds/t": round(result.rounds / t, 2),
        "msgs/(n+t·lg t·d)": round(result.messages / (n + t * _log2(t) * 32), 2),
    }


def aea_spec(ns: Optional[list[int]] = None, seed: int = 1) -> SweepSpec:
    ns = ns or [120, 240, 480]
    return SweepSpec(
        name="e5", runner=aea_unit, grid={"n": ns, "seed": [seed]}, base_seed=seed
    )


def exp_e5_aea(
    ns: Optional[list[int]] = None, seed: int = 1, jobs: int = 1
) -> list[dict]:
    return run_sweep(aea_spec(ns, seed), jobs=jobs).rows()


# -- E6: Theorem 6 (SCV) -------------------------------------------------------


def scv_unit(params: dict) -> dict:
    import random as stdlib_random

    n, t, seed = params["n"], params["t"], params["seed"]
    pp = ProtocolParams(n=n, t=t)
    rng = stdlib_random.Random(seed)
    holders = set(rng.sample(range(n), int(0.62 * n)))
    result = run_scv(n, t, holders, 1, crashes="random", seed=seed)
    check_scv(result, 1)
    return {
        "n": n,
        "t": t,
        "branch": "direct(t²≤n)" if pp.scv_direct_inquiry else "doubling",
        "rounds": result.rounds,
        "messages": result.messages,
        "rounds/lg t": round(result.rounds / _log2(t), 2),
        "msgs/(n+t·lg t)": round(result.messages / (n + 20 * t * _log2(t)), 2),
    }


def scv_spec(n: int = 400, seed: int = 1) -> SweepSpec:
    return SweepSpec(
        name="e6",
        runner=scv_unit,
        # spans the t² ≤ n crossover at t = √n
        grid={"t": [10, 19, 21, 40, 79], "n": [n], "seed": [seed]},
        base_seed=seed,
    )


def exp_e6_scv(n: int = 400, seed: int = 1, jobs: int = 1) -> list[dict]:
    return run_sweep(scv_spec(n, seed), jobs=jobs).rows()


# -- E7: Theorem 7 (Few-Crashes-Consensus) ----------------------------------------


def consensus_few_unit(params: dict) -> dict:
    n, seed = params["n"], params["seed"]
    t = params.get("t", n // 6)
    inputs = input_vector(n, "random", seed)
    result = run_consensus(inputs, t, algorithm="few", seed=seed)
    check_consensus(result, inputs)
    return {
        "n": n,
        "t": t,
        "rounds": result.rounds,
        "messages": result.messages,
        "bits": result.bits,
        "rounds/(t+lg n)": round(result.rounds / (t + _log2(n)), 2),
        "bits/(n+t·lg t·d)": round(result.bits / (n + t * _log2(t) * 32), 2),
    }


def consensus_few_spec(ns: Optional[list[int]] = None, seed: int = 1) -> SweepSpec:
    ns = ns or [120, 240, 480]
    return SweepSpec(
        name="e7",
        runner=consensus_few_unit,
        grid={"n": ns, "seed": [seed]},
        base_seed=seed,
    )


def exp_e7_consensus_few(
    ns: Optional[list[int]] = None, seed: int = 1, jobs: int = 1
) -> list[dict]:
    return run_sweep(consensus_few_spec(ns, seed), jobs=jobs).rows()


# -- E8: Theorem 8 / Corollary 1 (Many-Crashes-Consensus) ---------------------------


def consensus_many_unit(params: dict) -> dict:
    n, alpha_pct, seed = params["n"], params["alpha_pct"], params["seed"]
    t = min(n - 1, max(1, n * alpha_pct // 100))
    inputs = input_vector(n, "random", seed)
    result = run_consensus(inputs, t, algorithm="many", seed=seed)
    check_consensus(result, inputs)
    base_bound = n + 3 * (1 + _log2(n)) + 7
    # Degenerate fault patterns (α → 1 with no probing survivor)
    # trigger the recovery epilogue, adding at most t + 2 rounds;
    # see DESIGN.md and the Many-Crashes-Consensus docstring.
    recovery_used = result.rounds > base_bound
    round_bound = base_bound + (t + 2 if recovery_used else 0)
    return {
        "n": n,
        "t": t,
        "alpha": round(t / n, 2),
        "rounds": result.rounds,
        "round_bound(n+3(1+lg n))": int(round_bound),
        "recovery": "yes" if recovery_used else "no",
        "messages": result.messages,
        "bits": result.bits,
        "rounds/bound": round(result.rounds / round_bound, 2),
    }


def consensus_many_spec(n: int = 96, seed: int = 1) -> SweepSpec:
    return SweepSpec(
        name="e8",
        runner=consensus_many_unit,
        grid={"alpha_pct": [30, 60, 90, 98], "n": [n], "seed": [seed]},
        base_seed=seed,
    )


def exp_e8_consensus_many(n: int = 96, seed: int = 1, jobs: int = 1) -> list[dict]:
    return run_sweep(consensus_many_spec(n, seed), jobs=jobs).rows()


# -- E9: Theorem 9 (Gossip) -----------------------------------------------------


def gossip_unit(params: dict) -> dict:
    n, seed = params["n"], params["seed"]
    t = params.get("t", n // 10)
    rumors = rumor_vector(n, seed)
    result = run_gossip(rumors, t, crashes="random", seed=seed)
    check_gossip(result, rumors)
    return {
        "n": n,
        "t": t,
        "rounds": result.rounds,
        "messages": result.messages,
        "rounds/(lg n·lg t)": round(result.rounds / (_log2(n) * _log2(t)), 2),
        "msgs/bound": round(
            result.messages / _gossip_comm_bound(ProtocolParams(n=n, t=t)), 2
        ),
    }


def gossip_spec(ns: Optional[list[int]] = None, seed: int = 1) -> SweepSpec:
    ns = ns or [120, 240, 480]
    return SweepSpec(
        name="e9", runner=gossip_unit, grid={"n": ns, "seed": [seed]}, base_seed=seed
    )


def exp_e9_gossip(
    ns: Optional[list[int]] = None, seed: int = 1, jobs: int = 1
) -> list[dict]:
    return run_sweep(gossip_spec(ns, seed), jobs=jobs).rows()


# -- E10: Theorem 10 (Checkpointing) -----------------------------------------------


def checkpointing_unit(params: dict) -> dict:
    n, seed = params["n"], params["seed"]
    t = params.get("t", n // 10)
    result = run_checkpointing(n, t, crashes="random", seed=seed)
    check_checkpointing(result)
    baseline_procs = [NaiveCheckpointingProcess(i, n, t) for i in range(n)]
    baseline = Engine(
        baseline_procs, crash_schedule(n, t, seed=seed, max_round=t + 2)
    ).run()
    check_checkpointing(baseline)
    return {
        "n": n,
        "t": t,
        "rounds": result.rounds,
        "messages": result.messages,
        "naive_msgs(n²t)": baseline.messages,
        "msg_ratio(naive/paper)": round(baseline.messages / result.messages, 2),
        "rounds/(t+lgn·lgt)": round(result.rounds / (t + _log2(n) * _log2(t)), 2),
    }


def checkpointing_spec(ns: Optional[list[int]] = None, seed: int = 1) -> SweepSpec:
    ns = ns or [100, 200, 400]
    return SweepSpec(
        name="e10",
        runner=checkpointing_unit,
        grid={"n": ns, "seed": [seed]},
        base_seed=seed,
    )


def exp_e10_checkpointing(
    ns: Optional[list[int]] = None, seed: int = 1, jobs: int = 1
) -> list[dict]:
    return run_sweep(checkpointing_spec(ns, seed), jobs=jobs).rows()


# -- E11: Theorem 11 (AB-Consensus) --------------------------------------------------


def byzantine_unit(params: dict) -> dict:
    n, t, seed = params["n"], params["t"], params["seed"]
    inputs = input_vector(n, "random", seed)
    byz = byzantine_sample(n, t, seed)
    result = run_ab_consensus(inputs, t, byzantine=byz, behaviour="equivocate")
    return {
        "n": n,
        "t": t,
        "t²/n": round(t * t / n, 2),
        "rounds": result.rounds,
        "messages": result.messages,
        "rounds/t": round(result.rounds / t, 2),
        "msgs/(t²+n)": round(result.messages / (t * t + n), 2),
        "msgs/n": round(result.messages / n, 2),
    }


def byzantine_spec(n: int = 400, seed: int = 1) -> SweepSpec:
    return SweepSpec(
        name="e11",
        runner=byzantine_unit,
        # √n = 20: the linear-communication crossover
        grid={"t": [5, 10, 20, 40], "n": [n], "seed": [seed]},
        base_seed=seed,
    )


def exp_e11_byzantine(n: int = 400, seed: int = 1, jobs: int = 1) -> list[dict]:
    return run_sweep(byzantine_spec(n, seed), jobs=jobs).rows()


# -- E12: Theorem 12 (single-port Linear-Consensus) ------------------------------------


def singleport_unit(params: dict) -> dict:
    n, seed = params["n"], params["seed"]
    t = n // 8
    pp = ProtocolParams(n=n, t=t, seed=3)
    schedule, shared = linear_consensus_schedule(pp)
    inputs = input_vector(n, "random", seed)
    processes = [
        LinearConsensusProcess(pid, pp, inputs[pid], schedule=schedule, shared=shared)
        for pid in range(n)
    ]
    adversary = crash_schedule(n, t, seed=seed, max_round=schedule.end)
    result = SinglePortEngine(processes, adversary).run()
    check_consensus(result, inputs)
    return {
        "n": n,
        "t": t,
        "sp_rounds": result.rounds,
        "messages": result.messages,
        "bits": result.bits,
        "rounds/(t+lg n)": round(result.rounds / (t + _log2(n)), 1),
        "bits/(n+t·lg n·d)": round(result.bits / (n + 32 * t * _log2(n)), 2),
    }


def singleport_spec(ns: Optional[list[int]] = None, seed: int = 1) -> SweepSpec:
    ns = ns or [60, 120, 240]
    return SweepSpec(
        name="e12",
        runner=singleport_unit,
        grid={"n": ns, "seed": [seed]},
        base_seed=seed,
    )


def exp_e12_singleport(
    ns: Optional[list[int]] = None, seed: int = 1, jobs: int = 1
) -> list[dict]:
    return run_sweep(singleport_spec(ns, seed), jobs=jobs).rows()


# -- E13: Theorem 13 (lower bounds) ----------------------------------------------------


def lowerbounds_unit(params: dict) -> dict:
    kind = params["kind"]
    if kind == "gossip_isolation":
        n, t = params["n"], params["t"]
        factory = lambda rumors: [
            RingGossipProcess(i, n, rumors[i]) for i in range(n)
        ]
        rumors_a = ["x"] * n
        rumors_b = ["x"] * n
        rumors_b[7] = "y"
        report = isolation_report(factory, rumors_a, rumors_b, t, victim=0)
        return {
            "experiment": f"gossip isolation (t={t})",
            "measured": report.isolated_rounds,
            "bound": t // 2,
            "detail": (
                f"crashes used {report.crashes_used}, "
                f"digests matched {report.digests_matched}"
            ),
        }
    if kind == "divergence":
        n = params["n"]
        pp = ProtocolParams(n=n, t=3, seed=3)
        schedule, shared = linear_consensus_schedule(pp)

        def factory(inputs):
            return [
                LinearConsensusProcess(
                    pid, pp, inputs[pid], schedule=schedule, shared=shared
                )
                for pid in range(n)
            ]

        report = divergence_series(factory, n)
        return {
            "experiment": f"consensus divergence (n={n})",
            "measured": report.first_decision_round,
            "bound": round(math.log(n, 3), 1),
            "detail": (
                f"pivot {report.pivot}, |A_i|≤3^i holds: "
                f"{report.respects_cubic_bound()}"
            ),
        }
    raise ValueError(f"unknown lower-bound experiment kind {kind!r}")


def lowerbounds_spec(seed: int = 1) -> SweepSpec:
    # Heterogeneous units: a rectangular grid cannot mix the isolation
    # t-sweep with the single divergence run, so list them explicitly.
    units = [
        {"kind": "gossip_isolation", "n": 60, "t": t, "seed": seed}
        for t in (8, 16, 24)
    ]
    units.append({"kind": "divergence", "n": 40, "seed": seed})
    return SweepSpec(
        name="e13", runner=lowerbounds_unit, units=units, base_seed=seed
    )


def exp_e13_lowerbounds(seed: int = 1, jobs: int = 1) -> list[dict]:
    return run_sweep(lowerbounds_spec(seed), jobs=jobs).rows()


# -- Baseline cross-comparison ---------------------------------------------------------


def baselines_unit(params: dict) -> dict:
    problem, n, seed = params["problem"], params["n"], params["seed"]
    t = n // 10
    if problem == "consensus":
        inputs = input_vector(n, "random", seed)
        paper = run_consensus(inputs, t, algorithm="few", seed=seed)
        check_consensus(paper, inputs)
        procs = [FloodingConsensusProcess(i, n, t, inputs[i]) for i in range(n)]
        flooding = Engine(
            procs, crash_schedule(n, t, seed=seed, max_round=t + 1)
        ).run()
        check_consensus(flooding, inputs)
        return {
            "problem": "consensus",
            "paper_msgs": paper.messages,
            "baseline_msgs": flooding.messages,
            "baseline": "flooding (t+1 rounds, all-to-all)",
            "paper_rounds": paper.rounds,
            "baseline_rounds": flooding.rounds,
        }
    if problem == "gossip":
        # Gossip is compared at its Table 1 boundary t = Θ(n / log² n):
        # that is where the linear-communication claim lives (at t = n/10
        # the committee-degree constant still dominates at simulation
        # sizes).
        gossip_t = table1_fault_bound("gossip", n)
        rumors = rumor_vector(n, seed)
        paper = run_gossip(rumors, gossip_t, crashes="random", seed=seed)
        check_gossip(paper, rumors)
        gprocs = [NaiveGossipProcess(i, n, rumors[i]) for i in range(n)]
        naive = Engine(
            gprocs, crash_schedule(n, gossip_t, seed=seed, max_round=2)
        ).run()
        return {
            "problem": f"gossip (t={gossip_t})",
            "paper_msgs": paper.messages,
            "baseline_msgs": naive.messages,
            "baseline": "all-to-all exchange",
            "paper_rounds": paper.rounds,
            "baseline_rounds": naive.rounds,
        }
    if problem == "checkpointing":
        paper = run_checkpointing(n, t, crashes="random", seed=seed)
        check_checkpointing(paper)
        cprocs = [NaiveCheckpointingProcess(i, n, t) for i in range(n)]
        naive = Engine(
            cprocs, crash_schedule(n, t, seed=seed, max_round=t + 2)
        ).run()
        return {
            "problem": "checkpointing",
            "paper_msgs": paper.messages,
            "baseline_msgs": naive.messages,
            "baseline": "ping + mask AND-flooding (n²t)",
            "paper_rounds": paper.rounds,
            "baseline_rounds": naive.rounds,
        }
    raise ValueError(f"unknown baseline problem {problem!r}")


def baselines_spec(n: int = 240, seed: int = 1) -> SweepSpec:
    return SweepSpec(
        name="baselines",
        runner=baselines_unit,
        grid={
            "problem": ["consensus", "gossip", "checkpointing"],
            "n": [n],
            "seed": [seed],
        },
        base_seed=seed,
    )


def exp_baselines(n: int = 240, seed: int = 1, jobs: int = 1) -> list[dict]:
    return run_sweep(baselines_spec(n, seed), jobs=jobs).rows()


# -- Literature families vs the paper's algorithms ---------------------------


def families_unit(params: dict) -> dict:
    """One cross-family cell: one ``(family, backend)`` run on a
    comparable instance, reported in the ``BENCH_families.json`` row
    shape (``tests/test_bench_artifacts.py``'s ``ROW_FIELDS``).

    Instances are derived from the unit seed, so the protocol-metric
    columns (``rounds``/``messages``/``bits``/``completed``) are
    deterministic and must agree across backends; ``msgs_per_sec`` /
    ``elapsed_sec`` are wall-clock measurements and jitter like the
    ``net`` series' timing columns (excluded from the byte-identical
    contract).  Every run is validated by its family's correctness
    predicate before its numbers are reported.
    """
    import random as _random
    import time as _time

    family, n, t = params["family"], params["n"], params["t"]
    seed, backend = params["seed"], params["backend"]
    width = params.get("width", 128)
    rng = _random.Random(derive_seed(seed, ("families", family, n, t)))
    kw = dict(
        crashes=None, backend="sim", optimized=(backend != "sim-ref")
    )
    start = _time.perf_counter()
    if family == "consensus":
        inputs = [rng.randint(0, 1) for _ in range(n)]
        result = run_consensus(inputs, t, **kw)
        check_consensus(result, inputs)
    elif family == "flooding":
        inputs = [rng.randrange(0, 2**width) for _ in range(n)]
        result = run_flooding(inputs, t, **kw)
        check_consensus(result, inputs)
    elif family == "approximate":
        inputs = [round(rng.uniform(0.0, 100.0), 4) for _ in range(n)]
        eps = params.get("eps", 0.5)
        result = run_approximate(inputs, t, eps=eps, **kw)
        check_approximate(result, inputs, eps)
    elif family == "lv-consensus":
        inputs = [rng.randrange(0, 2**width) for _ in range(n)]
        result = run_lv_consensus(inputs, t, width=width, **kw)
        check_consensus(result, inputs)
    else:
        raise ValueError(f"unknown bench family {family!r}")
    elapsed = _time.perf_counter() - start
    return {
        "family": family,
        "n": n,
        "t": t,
        "backend": backend,
        "msgs_per_sec": int(result.messages / max(elapsed, 1e-9)),
        "rounds": result.rounds,
        "messages": result.messages,
        "bits": result.bits,
        "elapsed_sec": round(elapsed, 4),
        "completed": result.completed,
    }


def families_spec(n: int = 40, t: int = 8, seed: int = 1) -> SweepSpec:
    return SweepSpec(
        name="families",
        runner=families_unit,
        grid={
            "family": ["consensus", "flooding", "approximate", "lv-consensus"],
            "n": [n],
            "t": [t],
            "seed": [seed],
            "backend": ["sim-opt", "sim-ref"],
        },
        base_seed=seed,
    )


def exp_families(
    n: int = 40, t: int = 8, seed: int = 1, jobs: int = 1
) -> list[dict]:
    return run_sweep(families_spec(n, t, seed), jobs=jobs).rows()


# -- Simulator vs. net runtime ----------------------------------------------------------


def net_unit(params: dict) -> dict:
    """One sim-vs-net comparison: run the same protocol, seed and crash
    schedule on the lock-step engine and on the asyncio runtime
    (in-memory transport), report both costs and check exact parity.

    Unlike every other series, this row mixes deterministic columns
    (``problem``/``n``/``t``/``rounds``/``messages``/``bits``/``parity``
    -- identical across runs and ``--jobs`` counts) with wall-clock
    *measurements* (``sim_ms``/``net_ms``/``net/sim``), which jitter
    between runs like any timing and are excluded from the sweep
    harness's byte-identical-rows contract."""
    import time

    problem, n, seed = params["problem"], params["n"], params["seed"]
    t = n // 6

    def execute(backend: str):
        started = time.perf_counter()
        if problem == "consensus":
            inputs = input_vector(n, "random", seed)
            result = run_consensus(inputs, t, seed=seed, backend=backend)
            check_consensus(result, inputs)
        elif problem == "gossip":
            rumors = rumor_vector(n, seed)
            result = run_gossip(rumors, t, seed=seed, backend=backend)
            check_gossip(result, rumors)
        elif problem == "checkpointing":
            result = run_checkpointing(n, t, seed=seed, backend=backend)
            check_checkpointing(result)
        else:
            raise ValueError(f"unknown net-series problem {problem!r}")
        return result, time.perf_counter() - started

    sim, sim_s = execute("sim")
    net, net_s = execute("net")
    # One parity definition across tests / fuzzing / bench certification;
    # the labels carry the unit context so a violation raised from a
    # pool worker still names its row.
    check_parity(sim, net, f"sim[{problem} n={n} seed={seed}]", "net")
    return {
        "problem": problem,
        "n": n,
        "t": t,
        "rounds": sim.rounds,
        "messages": sim.messages,
        "bits": sim.bits,
        "parity": "exact",
        "sim_ms": round(1000 * sim_s, 1),
        "net_ms": round(1000 * net_s, 1),
        "net/sim": round(net_s / sim_s, 2) if sim_s else float("inf"),
    }


def scenario_unit(params: dict) -> dict:
    """One fault-model degradation cell: run the protocol under a seeded
    omission / partition / churn scenario on all three backends, certify
    exact metric parity, and *report* (rather than assert) whether the
    problem's correctness properties survived the extended fault class.

    The paper proves its guarantees for the crash model only, so a
    ``violated`` safety column under partitions is a finding, not a
    bug — this series measures how the algorithms degrade outside their
    model (the Dwork–Halpern–Waarts question).
    """
    from repro import PropertyViolation
    from repro.scenarios import scenario_schedule

    problem, model, n, seed = (
        params["problem"],
        params["model"],
        params["n"],
        params["seed"],
    )
    t = n // 6
    horizon = 16
    if model == "omission":
        scenario = scenario_schedule(
            n, seed=seed, omission_links=4 * n, max_round=horizon,
            name=f"omission-{n}-{seed}",
        )
    elif model == "partition":
        scenario = scenario_schedule(
            n, seed=seed, partition_windows=2, max_round=horizon,
            name=f"partition-{n}-{seed}",
        )
    elif model == "churn":
        scenario = scenario_schedule(
            n, seed=seed, churn_nodes=max(1, t // 2), max_round=horizon,
            name=f"churn-{n}-{seed}",
        )
    elif model == "mixed":
        scenario = scenario_schedule(
            n, seed=seed, crashes=t // 3, omission_links=n,
            partition_windows=1, churn_nodes=max(1, t // 4),
            max_round=horizon, name=f"mixed-{n}-{seed}",
        )
    else:
        raise ValueError(f"unknown scenario model {model!r}")

    def execute(**kw):
        if problem == "consensus":
            inputs = input_vector(n, "random", seed)
            result = run_consensus(inputs, t, scenario=scenario, **kw)
            checker = lambda: check_consensus(result, inputs)
        elif problem == "gossip":
            rumors = rumor_vector(n, seed)
            result = run_gossip(rumors, t, scenario=scenario, **kw)
            checker = lambda: check_gossip(result, rumors)
        else:
            raise ValueError(f"unknown scenario problem {problem!r}")
        return result, checker

    opt, checker = execute()
    ref, _ = execute(optimized=False)
    net, _ = execute(backend="net")
    for label, other in (("sim-ref", ref), ("net", net)):
        # One parity definition across tests / fuzzing / bench rows; the
        # label carries the unit context for pool-worker tracebacks.
        check_parity(
            opt, other, f"sim-opt[{problem}/{model} n={n} seed={seed}]", label
        )
    try:
        checker()
        safety = "ok"
    except PropertyViolation as exc:
        safety = f"violated ({type(exc).__name__})"
    return {
        "problem": problem,
        "model": model,
        "n": n,
        "t": t,
        "faults": scenario.fault_budget(),
        "rounds": opt.rounds,
        "messages": opt.messages,
        "dropped": opt.metrics.dropped_messages,
        "parity": "exact",
        "safety": safety,
    }


def scenarios_spec(n: int = 60, seed: int = 1) -> SweepSpec:
    return SweepSpec(
        name="scenarios",
        runner=scenario_unit,
        grid={
            "problem": ["consensus", "gossip"],
            "model": ["omission", "partition", "churn", "mixed"],
            "n": [n],
            "seed": [seed],
        },
        base_seed=seed,
    )


def exp_scenarios(n: int = 60, seed: int = 1, jobs: int = 1) -> list[dict]:
    """Fault-model degradation series: omission / partition / churn /
    mixed scenarios on consensus and gossip, every row parity-certified
    across sim-opt, sim-ref and net, with safety reported as data."""
    return run_sweep(scenarios_spec(n, seed), jobs=jobs).rows()


def net_spec(ns: Optional[list[int]] = None, seed: int = 1) -> SweepSpec:
    ns = ns or [60, 120, 240]
    return SweepSpec(
        name="net",
        runner=net_unit,
        grid={
            "problem": ["consensus", "gossip", "checkpointing"],
            "n": ns,
            "seed": [seed],
        },
        base_seed=seed,
    )


def exp_net(ns: Optional[list[int]] = None, seed: int = 1, jobs: int = 1) -> list[dict]:
    """Sim-vs-net cost series: every row certifies exact metric parity
    and reports the wall-clock ratio of the asyncio runtime over the
    lock-step engine for the same execution."""
    return run_sweep(net_spec(ns, seed), jobs=jobs).rows()


# -- Differential fuzzing (repro.check) --------------------------------------


def fuzz_spec(budget: int = 35, seed: int = 0) -> SweepSpec:
    """The :mod:`repro.check` differential-fuzz series as a sweep.

    Each unit is one sampled ``(family, params, scenario, backends)``
    configuration run differentially across sim-opt/sim-ref/net with
    every oracle armed; violations surface as row data (``violations`` /
    ``oracles`` columns), and ``python -m repro.check`` is the
    fail-fast/shrinking front end over the *same* spec
    (:func:`repro.check.driver.build_fuzz_spec` is the single unit-shape
    definition, so the two surfaces cannot drift).  Deterministic given
    ``seed``; families cycle so any ``budget`` ≥ 7 covers all.
    """
    return build_fuzz_spec(seed, budget)


def exp_fuzz(budget: int = 35, seed: int = 0, jobs: int = 1) -> list[dict]:
    """Run the differential-fuzz series and return its rows."""
    return run_sweep(fuzz_spec(budget, seed), jobs=jobs).rows()


# -- Adversary search (repro.check.search) ------------------------------------


def adversary_unit(params: dict) -> dict:
    """One worst-case-constant cell: anneal over crash/churn scenario
    space for the worst measured communication ratio of one pinned
    ``(family, n, t)`` instance, and report the *measured constant* --
    the worst observed communication as a multiple of the instance's
    Table 1 envelope expression.  The per-``t`` curve this sweep traces
    is a result the paper itself doesn't report: its theorems bound the
    constant, the search measures how much of that bound an adaptive
    crash adversary can actually consume.
    """
    from repro.check.oracles import BOUND_CONSTANTS
    from repro.check.search import make_search_config, run_search

    config = make_search_config(
        params["family"],
        seed=params["search_seed"],
        budget=params["budget"],
        method=params.get("method") or "anneal",
        moves="crash",  # stay inside the proven crash model
        objective="comm",
        n=params["n"],
        t=params["t"],
    )
    result = run_search(config)
    row = result.to_row()
    measure, constant = BOUND_CONSTANTS[params["family"]]
    return {
        "family": row["family"],
        "n": row["n"],
        "t": row["t"],
        "measure": measure,
        "budget": row["budget"],
        "baseline_ratio": row["baseline_energy"],
        "worst_ratio": row["best_energy"],
        "gain": row["gain"],
        # observed = measured_constant * envelope; the theorem's
        # (calibrated) constant is the envelope_constant column.
        "envelope_constant": constant,
        "measured_constant": round(row["best_energy"] * constant, 4),
        "worst_rounds_ratio": row["best_rounds_ratio"],
        "faults": row["faults"],
        "evaluations": row["evaluations"],
        "spot_checks": row["spot_checks"],
    }


def adversary_spec(
    n: int = 24,
    ts: Optional[list[int]] = None,
    seed: int = 0,
    budget: int = 60,
) -> SweepSpec:
    """The ``repro-bench adversary`` series: per-``t`` worst-case
    constants for the kernel families, via the annealing adversary
    search (crash-model moves, communication objective).

    ``t`` stays below ``(n - 1) / 5`` so every family accepts the pinned
    instance; rows are deterministic given ``seed`` and jobs-independent
    like every sweep.  ``benchmarks/bench_adversary.py`` wraps this spec
    into the committed ``BENCH_adversary.json`` artifact.
    """
    from repro.sim.vec import KERNEL_FAMILIES

    ts = ts or [1, 2, 3, 4]
    units = [
        {
            "family": family,
            "n": n,
            "t": t,
            "search_seed": seed,
            "seed": seed,
            "budget": budget,
        }
        for family in KERNEL_FAMILIES
        for t in ts
    ]
    return SweepSpec(
        name="adversary", runner=adversary_unit, units=units, base_seed=seed
    )


def exp_adversary(
    n: int = 24,
    ts: Optional[list[int]] = None,
    seed: int = 0,
    budget: int = 60,
    jobs: int = 1,
) -> list[dict]:
    """Run the adversary-search series and return its per-``t`` rows."""
    return run_sweep(adversary_spec(n, ts, seed, budget), jobs=jobs).rows()
