"""Declarative parallel experiment sweeps.

The paper's claims are asymptotic, so checking them empirically means
running dense (n, t, crash-kind, seed, algorithm) grids — far more
executions than a serial loop handles comfortably.  This module turns a
declarative grid into independent work units, fans them out across
cores with :mod:`multiprocessing`, collects the results in declaration
order, and serialises them as JSON/CSV artifacts for trajectory
tracking.

Determinism contract
--------------------
A sweep's output depends only on its spec, never on the worker count:

* units are expanded in a fixed order (cartesian product over the grid
  axes in declaration order, last axis varying fastest);
* every unit that does not pin a ``seed`` gets one derived from the
  spec's ``base_seed`` and the unit's own parameters via
  :func:`derive_seed` — a pure function of the unit, independent of
  expansion order and of which worker executes it;
* results are collected with ``Pool.imap_unordered`` -- so a
  ``progress=`` hook sees every completion the moment it happens, never
  stalled behind a slow head-of-line unit -- and then sorted back into
  unit order, so ``run_sweep(spec, jobs=4)`` returns rows identical to
  ``run_sweep(spec, jobs=1)`` (pinned by ``tests/test_sweep.py``).

Work units must be picklable: spec runners are module-level functions
taking one ``params`` dict and returning one row dict.

>>> spec = SweepSpec(
...     name="demo",
...     runner=describe_unit,
...     grid={"n": [2, 4], "kind": "demo", "seed": [7]},
... )
>>> [row["n"] for row in run_sweep(spec).rows()]
[2, 4]
"""

from __future__ import annotations

import csv
import hashlib
import itertools
import json
import multiprocessing
import os
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Optional, Sequence

__all__ = [
    "SweepOutcome",
    "SweepReport",
    "SweepSpec",
    "SweepUnit",
    "derive_seed",
    "describe_unit",
    "expand_grid",
    "read_csv",
    "read_json",
    "run_sweep",
    "union_columns",
    "write_csv",
    "write_json",
]


def derive_seed(base_seed: int, key: Any) -> int:
    """A deterministic 32-bit seed from ``base_seed`` and a unit key.

    The key is canonicalised (mappings are sorted by key) and hashed, so
    the result is a pure function of the unit's parameters: independent
    of grid declaration order, expansion index, worker id and Python
    hash randomisation.

    >>> derive_seed(1, {"n": 8, "t": 2}) == derive_seed(1, {"t": 2, "n": 8})
    True
    >>> derive_seed(1, {"n": 8}) != derive_seed(2, {"n": 8})
    True
    """
    if isinstance(key, Mapping):
        key = tuple(sorted((str(k), repr(v)) for k, v in key.items()))
    material = repr((base_seed, key)).encode()
    return int.from_bytes(hashlib.sha256(material).digest()[:4], "big")


def expand_grid(grid: Mapping[str, Any]) -> list[dict]:
    """Expand a declarative grid into unit-parameter dicts.

    Axes combine as a cartesian product in declaration order with the
    last axis varying fastest (row-major, like nested for-loops).  A
    scalar axis value is treated as a single-point axis, so fixed
    parameters can be declared inline.

    >>> expand_grid({"a": [1, 2], "b": "x"})
    [{'a': 1, 'b': 'x'}, {'a': 2, 'b': 'x'}]
    """
    axes = []
    for name, values in grid.items():
        if isinstance(values, (str, bytes)) or not isinstance(
            values, (list, tuple, range)
        ):
            values = (values,)
        axes.append([(name, value) for value in values])
    return [dict(combo) for combo in itertools.product(*axes)]


@dataclass
class SweepUnit:
    """One independent execution of a sweep: a fully bound parameter set."""

    index: int
    experiment: str
    params: dict


@dataclass
class SweepOutcome:
    """The result of one executed :class:`SweepUnit`.

    ``started`` is a wall-clock (``time.time``) epoch stamp -- unlike
    ``perf_counter`` it is comparable across worker processes, which is
    what lets :func:`repro.obs.sweep_telemetry` place units on a shared
    timeline.  ``worker`` is the executing worker's OS pid (the parent's
    pid for inline runs); both default to zero for artifacts predating
    this field.
    """

    unit: SweepUnit
    row: dict
    elapsed: float
    started: float = 0.0
    worker: int = 0


@dataclass(frozen=True)
class SweepSpec:
    """A declarative sweep: what to run and over which parameter grid.

    Parameters
    ----------
    name:
        Experiment identifier, used in artifact metadata and filenames.
    runner:
        A **module-level** (picklable) function mapping one unit-params
        dict to one row dict.  Exceptions propagate and abort the sweep:
        a benchmark row is only meaningful for a correct run.
    grid:
        Declarative axes for :func:`expand_grid`.  Ignored when
        ``units`` is given.
    units:
        Explicit unit-parameter dicts for heterogeneous sweeps that a
        rectangular grid cannot express (e.g. the Theorem 13 series,
        which mixes isolation and divergence experiments).
    base_seed:
        Seed material for units that do not pin ``"seed"`` themselves;
        see :func:`derive_seed`.
    """

    name: str
    runner: Callable[[dict], dict]
    grid: Optional[Mapping[str, Any]] = None
    units: Optional[Sequence[Mapping[str, Any]]] = None
    base_seed: int = 1

    def expand(self) -> list[SweepUnit]:
        """Materialise the ordered work-unit list, seeding each unit."""
        if self.units is not None:
            param_sets = [dict(params) for params in self.units]
        elif self.grid is not None:
            param_sets = expand_grid(self.grid)
        else:
            raise ValueError(f"sweep {self.name!r} declares neither grid nor units")
        expanded = []
        for index, params in enumerate(param_sets):
            if "seed" not in params:
                params["seed"] = derive_seed(self.base_seed, params)
            expanded.append(
                SweepUnit(index=index, experiment=self.name, params=params)
            )
        return expanded


@dataclass
class SweepReport:
    """Ordered outcomes of one sweep plus artifact serialisation."""

    name: str
    outcomes: list[SweepOutcome]
    jobs: int = 1
    elapsed: float = 0.0
    #: extra metadata recorded into the JSON artifact (git rev, host, ...)
    meta: dict = field(default_factory=dict)

    def rows(self) -> list[dict]:
        """The result rows in unit order (what the text table prints)."""
        return [outcome.row for outcome in self.outcomes]

    def to_dict(self) -> dict:
        return {
            "experiment": self.name,
            "jobs": self.jobs,
            "elapsed_seconds": round(self.elapsed, 3),
            "meta": dict(self.meta),
            "units": [
                {
                    "index": outcome.unit.index,
                    "params": outcome.unit.params,
                    "row": outcome.row,
                    "elapsed_seconds": round(outcome.elapsed, 3),
                    "worker": outcome.worker,
                }
                for outcome in self.outcomes
            ],
            "workers": self.worker_stats(),
        }

    def worker_stats(self) -> dict:
        """Per-worker unit counts, busy seconds and utilization."""
        workers: dict[str, dict] = {}
        for outcome in self.outcomes:
            info = workers.setdefault(
                str(outcome.worker), {"units": 0, "busy_seconds": 0.0}
            )
            info["units"] += 1
            info["busy_seconds"] += outcome.elapsed
        wall = max(self.elapsed, 1e-9)
        for info in workers.values():
            info["busy_seconds"] = round(info["busy_seconds"], 3)
            info["utilization"] = round(info["busy_seconds"] / wall, 3)
        return dict(sorted(workers.items()))


def _execute_unit(task: tuple[Callable[[dict], dict], SweepUnit]) -> SweepOutcome:
    runner, unit = task
    wall_started = time.time()
    started = time.perf_counter()
    row = runner(dict(unit.params))
    return SweepOutcome(
        unit=unit,
        row=row,
        elapsed=time.perf_counter() - started,
        started=wall_started,
        worker=os.getpid(),
    )


def run_sweep(
    spec: SweepSpec,
    jobs: int = 1,
    *,
    meta: Optional[Mapping[str, Any]] = None,
    progress: Optional[Callable[[SweepOutcome], None]] = None,
) -> SweepReport:
    """Execute every unit of ``spec`` and return the ordered report.

    ``jobs`` caps worker processes; ``jobs <= 1`` (or a single unit)
    runs inline in this process, which keeps tracebacks direct and
    avoids pool startup for trivial sweeps.  ``progress`` (e.g. a
    :class:`repro.obs.ProgressReporter`'s ``unit_done``) is called with
    each :class:`SweepOutcome` in *completion* order, as results stream
    back over the pool's result pipe; the returned report is sorted into
    unit order either way, so the hook never affects the rows (the
    determinism contract in the module docstring).
    """
    units = spec.expand()
    tasks = [(spec.runner, unit) for unit in units]
    started = time.perf_counter()
    if jobs <= 1 or len(units) <= 1:
        outcomes = []
        for task in tasks:
            outcome = _execute_unit(task)
            outcomes.append(outcome)
            if progress is not None:
                progress(outcome)
        used = 1
    else:
        used = min(jobs, len(units))
        with multiprocessing.get_context().Pool(used) as pool:
            outcomes = []
            for outcome in pool.imap_unordered(_execute_unit, tasks):
                outcomes.append(outcome)
                if progress is not None:
                    progress(outcome)
        outcomes.sort(key=lambda outcome: outcome.unit.index)
    return SweepReport(
        name=spec.name,
        outcomes=outcomes,
        jobs=used,
        elapsed=time.perf_counter() - started,
        meta=dict(meta or {}),
    )


def describe_unit(params: dict) -> dict:
    """A trivial sweep runner that echoes its parameters (doctest/demo)."""
    return dict(params)


# -- artifacts ---------------------------------------------------------------


def union_columns(rows: Sequence[Mapping[str, Any]]) -> list[str]:
    """All row keys, ordered by first appearance across the whole list.

    Rows produced by heterogeneous sweeps need not share a key set; a
    table or CSV header must cover the union, not just the first row.
    """
    columns: dict[str, None] = {}
    for row in rows:
        for key in row:
            columns.setdefault(key)
    return list(columns)


def write_json(report: SweepReport, path: str | os.PathLike) -> None:
    """Serialise a full report (params + rows + timings) as JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report.to_dict(), handle, indent=2, default=str)
        handle.write("\n")


def read_json(path: str | os.PathLike) -> dict:
    """Load a :func:`write_json` artifact back into a plain dict."""
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def write_csv(rows: Sequence[Mapping[str, Any]], path: str | os.PathLike) -> None:
    """Write result rows as CSV with a union-of-columns header."""
    columns = union_columns(rows)
    with open(path, "w", encoding="utf-8", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=columns, restval="")
        writer.writeheader()
        for row in rows:
            writer.writerow(row)


def read_csv(path: str | os.PathLike) -> list[dict]:
    """Load a :func:`write_csv` artifact; cell values come back as str."""
    with open(path, "r", encoding="utf-8", newline="") as handle:
        return [dict(row) for row in csv.DictReader(handle)]
