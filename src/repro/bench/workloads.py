"""Workload generators shared by the benchmark harness and examples."""

from __future__ import annotations

import math
import random
from typing import Any

__all__ = [
    "byzantine_sample",
    "input_vector",
    "rumor_vector",
    "table1_fault_bound",
]


def input_vector(n: int, kind: str = "random", seed: int = 0) -> list[int]:
    """A binary input assignment.

    ``kind``: ``"random"`` (iid bits), ``"zeros"``, ``"ones"``,
    ``"minority_one"`` (a single 1), ``"alternating"``.
    """
    rng = random.Random(seed)
    if kind == "random":
        return [rng.randint(0, 1) for _ in range(n)]
    if kind == "zeros":
        return [0] * n
    if kind == "ones":
        return [1] * n
    if kind == "minority_one":
        values = [0] * n
        values[rng.randrange(n)] = 1
        return values
    if kind == "alternating":
        return [i % 2 for i in range(n)]
    raise ValueError(f"unknown input kind {kind!r}")


def rumor_vector(n: int, seed: int = 0) -> list[Any]:
    """Distinct rumors, one per node."""
    return [f"rumor-{seed}-{i}" for i in range(n)]


def byzantine_sample(n: int, t: int, seed: int = 0, little_bias: float = 0.5) -> list[int]:
    """A Byzantine node set of size ``t``; ``little_bias`` is the
    fraction drawn from the committee (attacking little nodes is the
    interesting case for AB-Consensus)."""
    rng = random.Random(seed)
    committee = min(n, max(5 * t, 8))
    from_little = min(int(t * little_bias), committee)
    chosen = set(rng.sample(range(committee), from_little))
    rest = [pid for pid in range(n) if pid not in chosen]
    chosen.update(rng.sample(rest, t - len(chosen)))
    return sorted(chosen)


def table1_fault_bound(problem: str, n: int) -> int:
    """The Table 1 optimality-range boundary for each problem row.

    * crash consensus: ``t = Θ(n / log n)``
    * crash gossip/checkpointing: ``t = Θ(n / log² n)``
    * authenticated Byzantine consensus: ``t = Θ(√n)``
    """
    log_n = max(1.0, math.log2(n))
    if problem == "consensus":
        return max(1, int(n / (2 * log_n)))
    if problem in ("gossip", "checkpointing"):
        return max(1, int(n / (log_n * log_n)))
    if problem == "byzantine":
        return max(1, int(math.sqrt(n) / 2))
    raise ValueError(f"unknown problem {problem!r}")
