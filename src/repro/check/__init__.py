"""``repro.check`` -- differential fuzzing with paper-bound oracles.

The paper's claims are *exact* -- agreement / validity / termination
plus the Table 1 round and communication budgets -- and the repository
has three execution substrates (``Engine`` optimized and reference, the
:mod:`repro.net` runtime) plus a scenario generator whose combined
state space no hand-written test matrix covers.  This package closes
the gap mechanically:

* :mod:`repro.check.oracles` -- one definition of "identical
  execution" (:func:`~repro.check.oracles.check_parity`, shared with
  the engine parity tests and the bench certification) plus two oracle
  classes applied to every fuzzed run: **safety/liveness** (the
  :mod:`repro.properties` predicates, crash-model invariants such as
  post-crash silence and churn-rejoin consistency) and **paper-bound
  certificates** (rounds and communication within the Table 1
  envelopes, explicit constants recorded per run);
* :mod:`repro.check.driver` -- deterministic sampling of
  ``(protocol family, params, seeded Scenario, backend set)``
  configurations and their differential execution: the primary run
  records a :class:`repro.trace.Trace` on ``sim-opt``, every other
  backend replays it bit-for-bit (divergence = the first differing
  event, not a boolean);
* :mod:`repro.check.shrink` -- greedy deletion/narrowing over a
  failing scenario's events (via
  :meth:`repro.scenarios.Scenario.shrink_candidates`), re-running after
  each mutation, down to a minimal scenario that still trips the same
  oracle, emitted as a self-contained trace artifact that
  :func:`repro.trace.replay_trace` reproduces anywhere;
* :mod:`repro.check.search` -- the *optimization-guided* complement to
  blind fuzzing: simulated annealing (or greedy hill-climb) over
  scenario space with grow+shrink moves, maximizing the measured bound
  ratio from the paper-bound certificates; ``python -m repro.check
  --search`` / ``repro-bench adversary``, with the worst scenarios
  emitted as replayable trace artifacts and regression-tested from
  ``tests/corpus/``;
* :mod:`repro.check.cli` -- ``python -m repro.check --seed 0 --budget
  200`` (deterministic given ``--seed``, parallel via the sweep
  scheduler); the same series runs as ``repro-bench fuzz`` and as the
  nightly CI job.
"""

from repro.check.driver import (
    FAMILIES,
    FuzzConfig,
    build_fuzz_spec,
    fuzz_unit,
    run_config,
    sample_config,
)
from repro.check.oracles import (
    OracleViolation,
    bound_certificate,
    check_parity,
    run_oracles,
)
from repro.check.driver import sample_instance
from repro.check.search import (
    SearchConfig,
    SearchResult,
    build_search_spec,
    make_search_config,
    record_search_trace,
    run_search,
    search_unit,
)
from repro.check.shrink import ShrinkResult, emit_artifact, shrink_scenario

__all__ = [
    "FAMILIES",
    "FuzzConfig",
    "OracleViolation",
    "SearchConfig",
    "SearchResult",
    "ShrinkResult",
    "bound_certificate",
    "build_fuzz_spec",
    "build_search_spec",
    "check_parity",
    "emit_artifact",
    "fuzz_unit",
    "make_search_config",
    "record_search_trace",
    "run_config",
    "run_oracles",
    "run_search",
    "sample_config",
    "sample_instance",
    "search_unit",
    "shrink_scenario",
]
