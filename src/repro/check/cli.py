"""``python -m repro.check`` -- the differential fuzzing entry point.

Usage::

    python -m repro.check --seed 0 --budget 200            # the default gauntlet
    python -m repro.check --seed 7 --budget 50 --jobs 4    # parallel, same rows
    python -m repro.check --seed 0 --only 13               # replay one config
    python -m repro.check --families gossip,scv --tcp      # narrow + real sockets
    python -m repro.check --search --seed 0                # adversary search
    python -m repro.check --search --objective comm --moves crash --budget 200

The run is deterministic given ``--seed``: configuration ``i`` is a
pure function of ``(seed, i)``, so a violation reported by the nightly
job reproduces locally from its index alone.  Work units fan out over
``--jobs`` processes via the sweep scheduler (rows independent of the
worker count).  On any violation the failing scenario is shrunk to a
minimal one (greedy deletion/narrowing, re-running after each
mutation) and written to ``--out`` as a self-contained trace artifact
that ``repro.trace.replay_trace(path)`` reproduces anywhere; the exit
status is non-zero.

``--search`` switches from blind fuzzing to the optimization-guided
adversary search of :mod:`repro.check.search`: one simulated-annealing
(or ``--method greedy``) walk per family over scenario space,
maximizing the measured bound ratio, with the top-``k`` worst scenarios
emitted as self-contained replayable trace artifacts (search
trajectory in ``Trace.meta["repro.search"]``).  Deterministic given
``--seed``, jobs-independent down to the artifact bytes.

Long budgets used to print nothing until the end; now a throttled
heartbeat (configs done/budget, configs/sec, eta, worker utilization,
last sampled family/kind) goes to stderr while the sweep runs -- on by
default when stderr is a TTY, forced either way with ``--progress`` /
``--no-progress``.  Heartbeats ride the sweep scheduler's completion
stream, so they never affect the rows (stdout stays machine-readable).
"""

from __future__ import annotations

import argparse
import sys

from repro.bench.sweep import run_sweep
from repro.check.driver import (
    DEFAULT_BACKENDS,
    FAMILIES,
    build_fuzz_spec,
    describe_fuzz_outcome,
    sample_config,
)
from repro.check.search import (
    METHODS,
    MOVE_SETS,
    OBJECTIVES,
    SEARCH_BACKENDS,
    build_search_spec,
    describe_search_outcome,
    record_search_trace,
)
from repro.check.shrink import emit_artifact, shrink_scenario
from repro.obs import ProgressReporter

__all__ = ["main"]

#: Replay backends the driver understands (the primary is always
#: sim-opt); validated at argument-parse time.  ``vec`` joins the
#: default rotation automatically for kernel families when numpy is
#: installed; naming it here forces it for every config instead.
KNOWN_BACKENDS = ("sim-ref", "net", "tcp", "vec")


def _parse_args(argv) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        prog="python -m repro.check",
        description=(
            "Differential fuzzing of the paper's protocols across "
            "sim-opt/sim-ref/net with safety and paper-bound oracles; "
            "violations are shrunk to minimal replayable scenarios."
        ),
    )
    parser.add_argument("--seed", type=int, default=0, help="series seed (default 0)")
    parser.add_argument(
        "--budget", type=int, default=100,
        help="number of configurations to run (default 100)",
    )
    parser.add_argument(
        "--jobs", "-j", type=int, default=1,
        help="worker processes (default 1; rows are jobs-independent)",
    )
    parser.add_argument(
        "--only", type=str, default=None, metavar="I[,J...]",
        help="run only these configuration indices of the seed's series",
    )
    parser.add_argument(
        "--families", type=str, default="",
        help=f"comma-joined subset of {','.join(FAMILIES)}",
    )
    parser.add_argument(
        "--backends", type=str, default="",
        help=(
            "comma-joined replay backends (default "
            f"{','.join(DEFAULT_BACKENDS)}); the primary always runs sim-opt"
        ),
    )
    parser.add_argument(
        "--tcp", action="store_true",
        help="also replay every configuration over loopback TCP sockets",
    )
    parser.add_argument(
        "--out", type=str, default="fuzz-artifacts", metavar="DIR",
        help="directory for shrunk trace artifacts (default fuzz-artifacts/)",
    )
    parser.add_argument(
        "--no-shrink", action="store_true",
        help="report violations without shrinking (faster triage loop)",
    )
    parser.add_argument(
        "--progress", dest="progress", action="store_true", default=None,
        help=(
            "print periodic progress lines to stderr (configs done/budget, "
            "configs/sec, eta, current family/seed); the default is on when "
            "stderr is a TTY"
        ),
    )
    parser.add_argument(
        "--no-progress", dest="progress", action="store_false",
        help="suppress progress lines even on a TTY",
    )
    parser.add_argument(
        "--max-shrink-runs", type=int, default=150,
        help="re-run budget per shrink (default 150)",
    )
    search = parser.add_argument_group(
        "adversary search (--search)",
        "annealing over scenario space for the worst measured bound ratio",
    )
    search.add_argument(
        "--search", action="store_true",
        help=(
            "run the optimization-guided adversary search instead of blind "
            "fuzzing: one walk per family, --budget scenario evaluations each"
        ),
    )
    search.add_argument(
        "--method", choices=METHODS, default="anneal",
        help="optimizer: simulated annealing or greedy hill-climb with "
             "restarts (default anneal)",
    )
    search.add_argument(
        "--objective", choices=OBJECTIVES, default="max",
        help=(
            "what to maximize: rounds-ratio, comm-ratio, or the larger of "
            "the two (default max; use comm to climb the communication "
            "constant on the oblivious-schedule families)"
        ),
    )
    search.add_argument(
        "--moves", choices=MOVE_SETS, default="all",
        help=(
            "move set: all fault classes, or crash/churn only to stay "
            "inside the paper's crash model (default all)"
        ),
    )
    search.add_argument(
        "--backend", choices=SEARCH_BACKENDS, default="auto",
        help=(
            "evaluation backend (default auto: vec for kernel families "
            "when numpy is present, otherwise the optimized engine); every "
            "25th evaluation is cross-verified on a second backend"
        ),
    )
    search.add_argument(
        "--top-k", type=int, default=3, metavar="K",
        help="adversarial scenarios emitted as trace artifacts per family "
             "(default 3)",
    )
    search.add_argument(
        "--n", type=int, default=None,
        help="pin the instance size (default: sampled per family, the same "
             "distribution the fuzzer draws from)",
    )
    search.add_argument(
        "--t", type=int, default=None,
        help="pin the instance fault bound (default: sampled)",
    )
    return parser.parse_args(argv)


def _families_tuple(arg: str):
    names = tuple(f for f in arg.split(",") if f)
    for name in names:
        if name not in FAMILIES:
            raise SystemExit(
                f"unknown family {name!r}; choose from {', '.join(FAMILIES)}"
            )
    return names or FAMILIES


def _backends_tuple(arg: str):
    names = tuple(b for b in arg.split(",") if b)
    for name in names:
        if name not in KNOWN_BACKENDS:
            raise SystemExit(
                f"unknown backend {name!r}; choose from "
                f"{', '.join(KNOWN_BACKENDS)}"
            )
    return names or DEFAULT_BACKENDS


def _search_main(args, families) -> int:
    """The ``--search`` mode: one adversary search per family."""
    spec = build_search_spec(
        args.seed,
        args.budget,
        families=families,
        method=args.method,
        backend=args.backend,
        moves=args.moves,
        objective=args.objective,
        n=args.n,
        t=args.t,
        top_k=args.top_k,
    )
    reporter = ProgressReporter(
        total=len(spec.expand()),
        label="repro.check --search",
        jobs=args.jobs,
        describe=describe_search_outcome,
        enabled=args.progress,
    )
    report = run_sweep(spec, jobs=args.jobs, progress=reporter.unit_done)
    reporter.close()
    rows = report.rows()
    print(
        f"repro.check --search: {len(rows)} families x {args.budget} "
        f"evaluations ({args.method}, objective={args.objective}, "
        f"moves={args.moves}, seed={args.seed}) "
        f"[{report.elapsed:.1f}s, jobs={report.jobs}]"
    )
    for row in rows:
        print(
            f"  {row['family']:>16} (n={row['n']}, t={row['t']}, "
            f"{row['backend']}): baseline {row['baseline_energy']:.4f} -> "
            f"best {row['best_energy']:.4f} (gain {row['gain']:+.4f}, "
            f"rounds-ratio {row['best_rounds_ratio']:.4f}, comm-ratio "
            f"{row['best_comm_ratio']:.4f}, faults {row['faults']}, "
            f"{row['evaluations']} runs, {row['spot_checks']} spot-checks)"
        )
        # Top-k adversarial scenarios -> self-contained replayable
        # artifacts, written in row order (jobs-independent bytes).
        for entry in row["top"]:
            path = record_search_trace(row, entry, args.out)
            print(
                f"    #{entry['rank']} energy {entry['energy']:.4f} "
                f"(step {entry['step']}): {path}"
            )
    best = max(rows, key=lambda r: r["best_energy"], default=None)
    if best is not None:
        print(
            f"worst case overall: {best['family']} at "
            f"{best['best_energy']:.4f} "
            f"(replay any artifact with repro.trace.replay_trace)"
        )
    return 0


def main(argv=None) -> int:
    args = _parse_args(argv if argv is not None else sys.argv[1:])
    families = _families_tuple(args.families)
    if args.search:
        return _search_main(args, families)
    backends = _backends_tuple(args.backends)
    if args.tcp and "tcp" not in backends:
        backends = backends + ("tcp",)
    indices = None
    if args.only is not None:
        indices = [int(part) for part in args.only.split(",") if part]
    spec = build_fuzz_spec(
        args.seed,
        args.budget,
        families=",".join(families) if args.families else "",
        backends=",".join(backends),
        indices=indices,
    )
    reporter = ProgressReporter(
        total=len(spec.expand()),
        label="repro.check",
        jobs=args.jobs,
        describe=describe_fuzz_outcome,
        enabled=args.progress,
    )
    report = run_sweep(spec, jobs=args.jobs, progress=reporter.unit_done)
    reporter.close()
    rows = report.rows()

    clean = [row for row in rows if not row["violations"]]
    failures = [row for row in rows if row["violations"]]
    by_family: dict[str, int] = {}
    for row in rows:
        by_family[row["family"]] = by_family.get(row["family"], 0) + 1
    print(
        f"repro.check: {len(rows)} configurations (seed={args.seed}, "
        f"backends sim-opt+{'+'.join(backends)}), "
        f"{len(clean)} clean, {len(failures)} violating "
        f"[{report.elapsed:.1f}s, jobs={report.jobs}]"
    )
    print(
        "families: "
        + ", ".join(f"{name}={count}" for name, count in sorted(by_family.items()))
    )
    ratios = [row["comm_ratio"] for row in rows if row.get("comm_ratio")]
    if ratios:
        print(
            f"paper-bound certificates: {len(ratios)} armed, "
            f"max comm/bound ratio {max(ratios):.3f}"
        )

    for row in failures:
        index = row["index"]
        print(f"\nVIOLATION at index {index} ({row['family']}, {row['kind']}):")
        for violation in row.get("violation_details", []):
            print(f"  [{violation['oracle']}] {violation['detail']}")
        config = sample_config(
            args.seed, index, families=families, backends=backends
        )
        if args.no_shrink:
            continue
        shrunk = shrink_scenario(
            config,
            row.get("violation_details", []),
            max_runs=args.max_shrink_runs,
        )
        path = emit_artifact(config, shrunk, args.out)
        summary = shrunk.summary()
        print(
            f"  shrunk scenario {summary['original_size']} -> "
            f"{summary['minimal_size']} (size units) in {summary['steps']} "
            f"steps / {summary['runs']} re-runs"
        )
        print(f"  artifact: {path}  (replay_trace(path) reproduces it)")
    return 1 if failures else 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
