"""Deterministic sampling and differential execution of fuzz configs.

One **fuzz configuration** is ``(protocol family, instance parameters,
seeded random Scenario, backend set)``, sampled as a pure function of
``(seed, index)`` -- re-running with the same seed replays the exact
same configurations, which is what makes a nightly fuzz failure
reproducible from its printed index alone.

Differential execution re-uses the trace machinery instead of
re-implementing comparison: the primary run executes on the optimized
engine with a :class:`repro.trace.TraceRecorder` attached, and every
other backend (reference engine, asyncio runtime over memory or TCP)
**replays the trace with verification** -- so a cross-backend
divergence is reported as the first differing event
(:class:`repro.trace.TraceDivergence`), not as a boolean.  The oracles
of :mod:`repro.check.oracles` then run on the primary result.

``fuzz_unit`` is the module-level (picklable) sweep runner: the
``repro-bench fuzz`` series and the ``python -m repro.check`` CLI both
fan configurations out through the PR 1 sweep scheduler, so ``--jobs``
parallelism never changes a row.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Optional, Sequence

from repro import api
from repro.bench.sweep import SweepSpec, derive_seed
from repro.check.oracles import (
    OracleViolation,
    check_parity,
    in_crash_model,
    run_oracles,
)
from repro.core.params import ProtocolParams
from repro.scenarios import Scenario, scenario_schedule
from repro.sim.vec import HAVE_NUMPY, KERNEL_FAMILIES
from repro.trace import TraceDivergence, replay_trace

__all__ = [
    "FAMILIES",
    "FuzzConfig",
    "build_fuzz_spec",
    "describe_fuzz_outcome",
    "fuzz_unit",
    "run_config",
    "sample_config",
    "sample_instance",
]

#: Every protocol family the driver covers; ``sample_config`` cycles
#: through them by index, so any contiguous index range covers all.
FAMILIES = (
    "consensus-few",
    "consensus-many",
    "aea",
    "scv",
    "gossip",
    "checkpointing",
    "ab-consensus",
    "flooding",
    # Appended after the original eight: sample_config keys family
    # choice on ``index % len(FAMILIES)``, but the digest pins in
    # tests/test_search.py address families by *name*, so appending
    # keeps every existing pin valid.
    "approximate",
    "lv-consensus",
)

#: Default replay backends for differential comparison; ``tcp`` joins
#: behind the CLI's ``--tcp`` flag (slow: real sockets per config).
DEFAULT_BACKENDS = ("sim-ref", "net")

#: Scenario kinds and their sampling weights (cumulative thresholds).
_KIND_WEIGHTS = (
    ("none", 0.15),
    ("crash", 0.50),
    ("omission", 0.62),
    ("partition", 0.74),
    ("churn", 0.87),
    ("mixed", 1.0),
)


@dataclass(frozen=True)
class FuzzConfig:
    """One fully-bound fuzz configuration (pure data)."""

    index: int
    seed: int
    family: str
    recipe: dict
    scenario: Optional[Scenario]
    kind: str
    max_rounds: int
    backends: tuple[str, ...] = DEFAULT_BACKENDS
    #: force the safety oracle on/off regardless of the in-model gate
    #: (``None`` = gate normally); the deliberate-fault tests arm it
    #: for out-of-model scenarios to exercise the catch->shrink->replay
    #: pipeline end to end
    include_safety: Optional[bool] = None
    #: extra metadata for reports (victim pool, horizon, ...)
    info: dict = field(default_factory=dict)

    def with_scenario(self, scenario: Optional[Scenario]) -> "FuzzConfig":
        return replace(self, scenario=scenario)


def sample_instance(
    family: str,
    rng: random.Random,
    seed: int,
    *,
    n: Optional[int] = None,
    t: Optional[int] = None,
) -> dict:
    """A random JSON-safe protocol recipe for ``family``.

    The single instance distribution shared by the blind fuzzer
    (:func:`sample_config`) and the adversary search
    (:mod:`repro.check.search`), so "a random instance of family X"
    means the same thing to both.  With ``n``/``t`` ``None`` the shape
    is drawn from ``rng`` exactly as the fuzzer always has (the
    pin test in ``tests/test_search.py`` freezes that stream); passing
    either pins it instead -- the search's per-``t`` sweeps use this to
    hold the instance fixed while only the scenario varies.
    """

    def shape(n_lo: int, n_hi: int, t_cap) -> tuple[int, int]:
        size = n if n is not None else rng.randrange(n_lo, n_hi)
        bound = t if t is not None else rng.randrange(1, t_cap(size))
        return size, bound

    if family == "consensus-few":
        n_, t_ = shape(20, 56, lambda size: (size - 1) // 5 + 1)
        inputs = [rng.randint(0, 1) for _ in range(n_)]
        return {"name": "consensus", "inputs": inputs, "t": t_, "algorithm": "few"}
    if family == "consensus-many":
        n_, t_ = shape(16, 40, lambda size: max(2, size // 2))
        inputs = [rng.randint(0, 1) for _ in range(n_)]
        return {"name": "consensus", "inputs": inputs, "t": t_, "algorithm": "many"}
    if family == "aea":
        n_, t_ = shape(24, 60, lambda size: max(2, size // 6 + 1))
        inputs = [rng.randint(0, 1) for _ in range(n_)]
        return {"name": "aea", "inputs": inputs, "t": t_}
    if family == "scv":
        n_, t_ = shape(20, 56, lambda size: (size - 1) // 5 + 1)
        holders = sorted(rng.sample(range(n_), max(3 * n_ // 5 + 1, 7 * n_ // 10)))
        return {"name": "scv", "n": n_, "t": t_, "holders": holders,
                "common_value": 1}
    if family == "gossip":
        n_, t_ = shape(20, 50, lambda size: (size - 1) // 5 + 1)
        rumors = [f"rumor-{seed}-{i}" for i in range(n_)]
        return {"name": "gossip", "rumors": rumors, "t": t_}
    if family == "checkpointing":
        n_, t_ = shape(20, 50, lambda size: (size - 1) // 5 + 1)
        return {"name": "checkpointing", "n": n_, "t": t_}
    if family == "ab-consensus":
        n_, t_ = shape(16, 40, lambda size: max(2, (size - 1) // 2))
        byz_cap = min(t_, max(1, int(n_**0.5)))
        byz = sorted(rng.sample(range(n_), rng.randrange(0, byz_cap + 1)))
        inputs = [rng.randint(0, 1) for _ in range(n_)]
        return {
            "name": "ab_consensus",
            "inputs": inputs,
            "t": t_,
            "byzantine": byz,
            "behaviour": rng.choice(("silent", "equivocate", "spam")),
        }
    if family == "flooding":
        n_, t_ = shape(20, 57, lambda size: max(2, size // 4))
        inputs = [rng.randrange(0, 2**16) for _ in range(n_)]
        return {"name": "flooding", "inputs": inputs, "t": t_}
    if family == "approximate":
        n_, t_ = shape(16, 44, lambda size: max(2, size // 3))
        # Four-decimal floats survive the JSON round-trip of traces and
        # shrink artifacts exactly (repr-based float serialisation).
        inputs = [round(rng.uniform(0.0, 100.0), 4) for _ in range(n_)]
        return {
            "name": "approximate",
            "inputs": inputs,
            "t": t_,
            "eps": rng.choice((0.5, 1.0, 2.0, 4.0)),
            "mode": rng.choice(("midpoint", "mean")),
        }
    if family == "lv-consensus":
        n_, t_ = shape(16, 48, lambda size: max(2, size // 3))
        width = rng.choice((16, 64, 256))
        inputs = [rng.randrange(0, 2**width) for _ in range(n_)]
        return {"name": "lv_consensus", "inputs": inputs, "t": t_,
                "width": width}
    raise ValueError(f"unknown family {family!r}")


def _instance_shape(recipe: dict) -> tuple[int, int]:
    if "inputs" in recipe:
        return len(recipe["inputs"]), recipe["t"]
    if "rumors" in recipe:
        return len(recipe["rumors"]), recipe["t"]
    return recipe["n"], recipe["t"]


def _fault_horizon(family: str, params: ProtocolParams) -> int:
    """The round window faults are placed in -- the same horizon the
    ``build_*_processes`` builders report for crash schedules."""
    if family in ("consensus-few", "aea"):
        return params.little_flood_rounds + params.little_probe_rounds
    if family == "consensus-many":
        return params.mcc_flood_rounds + params.mcc_probe_rounds
    if family == "scv":
        return params.scv_spread_rounds
    if family in ("gossip", "checkpointing"):
        return params.gossip_phase_count * (2 + params.little_probe_rounds)
    if family == "ab-consensus":
        return 8
    if family == "flooding":
        return params.t + 1
    if family == "approximate":
        # t + 1 + phases rounds; phases depends on inputs/eps (not in
        # params), so use the widest sampled schedule (eps=0.5 over a
        # 100-wide input range gives ceil(log2(200)) = 8 phases).
        return params.t + 9
    if family == "lv-consensus":
        return params.t + 1
    raise ValueError(f"unknown family {family!r}")


def _sample_scenario(
    family: str,
    recipe: dict,
    rng: random.Random,
    window: int,
    name: str,
) -> tuple[str, Optional[Scenario]]:
    n, t = _instance_shape(recipe)
    draw = rng.random()
    kind = next(label for label, ceiling in _KIND_WEIGHTS if draw < ceiling)
    if kind == "none":
        return kind, None
    # Crash/churn victims must avoid the Byzantine set (the substrates
    # reject an adversary crashing a Byzantine node).
    victims = [p for p in range(n) if p not in set(recipe.get("byzantine", ()))]
    counts = {
        "crash": dict(crashes=rng.randrange(1, t + 1)),
        "omission": dict(omission_links=rng.randrange(1, 2 * n)),
        "partition": dict(partition_windows=rng.randrange(1, 3)),
        "churn": dict(churn_nodes=rng.randrange(1, min(max(t, 1), 3) + 1)),
        "mixed": dict(
            crashes=rng.randrange(0, max(1, t // 2) + 1),
            omission_links=rng.randrange(1, n),
            partition_windows=rng.randrange(0, 2),
            churn_nodes=rng.randrange(0, min(max(t, 1), 2) + 1),
        ),
    }[kind]
    scenario = scenario_schedule(
        n, rng=rng, max_round=window, victims=victims, name=name, **counts
    )
    return kind, scenario


def sample_config(
    seed: int,
    index: int,
    *,
    families: Sequence[str] = FAMILIES,
    backends: Sequence[str] = DEFAULT_BACKENDS,
) -> FuzzConfig:
    """The ``index``-th fuzz configuration of a ``seed``-keyed series.

    A pure function of its arguments (randomness comes from a
    ``random.Random`` seeded via :func:`repro.bench.sweep.derive_seed`;
    the module-level ``random`` state is never touched).  Families cycle
    by index so every budget ≥ ``len(families)`` covers all of them.
    """
    rng = random.Random(derive_seed(seed, ("repro.check", index)))
    family = families[index % len(families)]
    recipe = sample_instance(family, rng, seed)
    n, t = _instance_shape(recipe)
    params = ProtocolParams(n=n, t=t, seed=recipe.get("overlay_seed", 0))
    horizon = _fault_horizon(family, params)
    window = max(4, min(horizon, 24))
    kind, scenario = _sample_scenario(
        family, recipe, rng, window, name=f"fuzz-{seed}-{index}"
    )
    # Generous but *bounded* safety net: a run that fails to quiesce
    # (e.g. a churn node rejoined past its protocol's schedule) burns
    # a few hundred rounds and reports completed=False instead of
    # stalling the fuzzer at an engine-default six-figure bound.
    max_rounds = 4 * horizon + 4 * n + 64
    backends = tuple(backends)
    if (
        backends == DEFAULT_BACKENDS
        and family in KERNEL_FAMILIES
        and HAVE_NUMPY
    ):
        # Kernel families additionally run on the vectorized backend and
        # must match the primary run on the full parity surface.
        backends = backends + ("vec",)
    return FuzzConfig(
        index=index,
        seed=seed,
        family=family,
        recipe=recipe,
        scenario=scenario,
        kind=kind,
        max_rounds=max_rounds,
        backends=backends,
        info={"horizon": horizon, "event_window": window},
    )


# -- differential execution ---------------------------------------------------


def _execution_kwargs(config: FuzzConfig) -> dict:
    kwargs: dict = {"max_rounds": config.max_rounds}
    if config.recipe.get("name") != "ab_consensus":
        kwargs["crashes"] = None  # failure-free unless the scenario says so
    if config.scenario is not None:
        kwargs["scenario"] = config.scenario
    return kwargs


def run_config(config: FuzzConfig) -> dict:
    """Execute one configuration differentially and run every oracle.

    Returns a JSON-safe report row: the instance shape, the primary
    run's headline metrics, the violated oracles (empty when clean) and
    the paper-bound certificate when one armed.  Never raises on a
    violation -- violations are data, so a sweep over many
    configurations completes and reports them all.
    """
    primary = api.run_recipe(
        config.recipe,
        backend="sim",
        optimized=True,
        record_trace=True,
        **_execution_kwargs(config),
    )
    trace = primary.trace
    violations: list[dict] = []
    for backend in config.backends:
        try:
            if backend == "sim-ref":
                replay_trace(trace, backend="sim", optimized=False)
            elif backend in ("net", "tcp"):
                replay_trace(trace, backend=backend)
            elif backend == "vec":
                # A replay would route through the engine fallback, so
                # run the kernel path independently (the fault schedule
                # is pure data) and compare the full parity surface.
                vec_result = api.run_recipe(
                    config.recipe,
                    backend="vec",
                    **_execution_kwargs(config),
                )
                check_parity(primary, vec_result, "sim-opt", "vec")
            else:
                raise ValueError(f"unknown replay backend {backend!r}")
        except (TraceDivergence, OracleViolation) as exc:
            violations.append(
                {"oracle": f"parity:{backend}", "detail": str(exc)}
            )

    clean = None
    if (
        config.scenario is not None
        and config.scenario.crashes
        and in_crash_model(config.recipe, config.scenario)
    ):
        # Failure-free baseline of the same instance, for the
        # rounds-within-O(t) certificate.
        clean = api.run_recipe(
            config.recipe,
            backend="sim",
            crashes=None,
            max_rounds=config.max_rounds,
        )
    oracle_violations, certificate = run_oracles(
        config.family,
        config.recipe,
        primary,
        scenario=config.scenario,
        trace=trace,
        clean=clean,
        max_rounds=config.max_rounds,
        include_safety=config.include_safety,
    )
    violations.extend(oracle_violations)

    n, t = _instance_shape(config.recipe)
    row = {
        "index": config.index,
        "family": config.family,
        "n": n,
        "t": t,
        "kind": config.kind,
        "faults": config.scenario.fault_budget() if config.scenario else 0,
        "rounds": primary.rounds,
        "messages": primary.messages,
        "bits": primary.bits,
        "dropped": primary.metrics.dropped_messages,
        "completed": primary.completed,
        "in_model": in_crash_model(config.recipe, config.scenario),
        "violations": len(violations),
        "oracles": ";".join(v["oracle"] for v in violations),
    }
    if violations:
        row["violation_details"] = violations
    if certificate is not None:
        row["comm_ratio"] = certificate["comm_ratio"]
        # Compact certificate column for tables/CSV; the full dict is in
        # the violation detail whenever the bound oracle fires.
        row["certificate"] = (
            f"rounds {certificate['rounds']}<={certificate['round_bound']}, "
            f"{certificate['comm_measure']} {certificate['comm']}"
            f"<={certificate['constant']:g}x{certificate['envelope']:g}"
        )
    return row


def fuzz_unit(params: dict) -> dict:
    """Sweep-runner form of :func:`run_config` (module-level, picklable).

    ``params`` binds ``fuzz_seed`` and ``index`` plus optional
    comma-joined ``families`` and ``backends`` overrides -- the unit
    shape used by the ``repro-bench fuzz`` series and the CLI.
    """
    families = tuple(
        f for f in (params.get("families") or "").split(",") if f
    ) or FAMILIES
    backends = tuple(
        b for b in (params.get("backends") or "").split(",") if b
    ) or DEFAULT_BACKENDS
    config = sample_config(
        params["fuzz_seed"],
        params["index"],
        families=families,
        backends=backends,
    )
    return run_config(config)


def describe_fuzz_outcome(outcome) -> str:
    """Progress-line phrase for one completed fuzz unit.

    Fed to :class:`repro.obs.ProgressReporter` by the CLI; the generic
    describer would print the series seed (identical for every unit),
    whereas triage wants the configuration index and what it sampled::

        repro.check: 120/200 units, 14.3/s, eta 6s, ... last #119 gossip/churn
    """
    row = getattr(outcome, "row", None) or {}
    params = getattr(getattr(outcome, "unit", None), "params", None) or {}
    bits = [f"#{row.get('index', params.get('index', '?'))}"]
    family = row.get("family")
    if family:
        kind = row.get("kind")
        bits.append(f"{family}/{kind}" if kind else str(family))
    if row.get("violations"):
        bits.append(f"VIOLATIONS={row['violations']}")
    return " ".join(bits)


def build_fuzz_spec(
    seed: int,
    budget: int,
    *,
    families: str = "",
    backends: str = "",
    indices=None,
) -> SweepSpec:
    """The fuzz series as a :class:`~repro.bench.sweep.SweepSpec`.

    The single definition of the fuzz unit shape, shared by the
    ``python -m repro.check`` CLI and the ``repro-bench fuzz`` series so
    their rows can never diverge for the same seed.  ``families`` /
    ``backends`` are comma-joined overrides (empty = defaults);
    ``indices`` restricts to explicit configuration indices (the CLI's
    ``--only`` path) instead of ``range(budget)``.
    """
    index_range = list(indices) if indices is not None else list(range(budget))
    units = [
        {
            "index": index,
            "fuzz_seed": seed,
            "seed": seed,
            "families": families,
            "backends": backends,
        }
        for index in index_range
    ]
    return SweepSpec(name="fuzz", runner=fuzz_unit, units=units, base_seed=seed)
