"""Execution oracles: parity, safety/liveness, and paper-bound certificates.

Three oracle classes, in increasing specificity:

* :func:`check_parity` -- *the* definition of "identical execution"
  used across the repository: the engine parity tests
  (``tests/test_engine_parity.py``), the scenario parity tests, the
  ``repro-bench net`` / ``scenarios`` certification rows and the fuzz
  driver all call this one function, so what "parity" means can never
  drift between tests, fuzzing and bench certification.

* :func:`run_oracles` -- per-run checks on a finished execution:

  - **safety/liveness** (crash-model runs only): the
    :mod:`repro.properties` predicate of the protocol family --
    agreement, validity, termination;
  - **model invariants** (every run, any fault class): metrics
    self-consistency, post-crash silence (a crashed node records no
    sends until its rejoin -- the "no decision by a crashed-at-decision
    node" discipline made checkable: crashed nodes take no actions, so
    any activity after the crash round is an engine bug), and
    churn-rejoin consistency (a completed run never leaves a reachable
    rejoin unapplied);
  - **paper-bound certificates** (crash-model runs only): rounds within
    ``clean + O(t)`` of the failure-free execution of the same instance
    and communication within the Table 1 envelope of the instance, with
    the envelope expression, its constant and the observed ratio
    recorded explicitly per run (:func:`bound_certificate`).

Violations are plain dicts (JSON-safe, sweep-friendly); the exception
form :class:`OracleViolation` is raised by :func:`check_parity` and by
the test-facing wrappers so a failing oracle reads like an assertion.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Optional

from repro.core.params import ProtocolParams
from repro.baselines.approximate import approximate_phase_count
from repro.properties import (
    PropertyViolation,
    check_aea,
    check_approximate,
    check_checkpointing,
    check_consensus,
    check_gossip,
    check_scv,
)
from repro.scenarios import Scenario

__all__ = [
    "BOUND_CONSTANTS",
    "OracleViolation",
    "bound_certificate",
    "check_parity",
    "in_crash_model",
    "run_oracles",
]


class OracleViolation(AssertionError):
    """An execution violated an oracle; the message names which one."""


# -- parity: one definition of "identical execution" -------------------------

#: The observable surface two executions must agree on to count as
#: identical, as ``(label, extractor)`` pairs; compared in order so the
#: first differing field is named.
PARITY_FIELDS: tuple[tuple[str, Callable[[Any], Any]], ...] = (
    ("metrics summary", lambda r: r.metrics.summary()),
    ("per-node messages", lambda r: r.metrics.per_node_messages),
    ("per-node bits", lambda r: r.metrics.per_node_bits),
    ("per-round messages", lambda r: r.metrics.per_round_messages),
    ("decisions", lambda r: r.decisions),
    ("crash set", lambda r: r.crashed),
    ("completion", lambda r: r.completed),
)


def check_parity(a, b, a_label: str = "a", b_label: str = "b") -> None:
    """Require two :class:`~repro.sim.engine.RunResult`\\ s to be
    observably identical.

    Compares the full observable surface -- rounds/messages/bits (and
    the drop/faulty tallies via the metrics summary), per-node and
    per-round counters, decisions, crash sets, completion -- and raises
    :class:`OracleViolation` naming the first differing field with both
    values.  This is the single parity definition shared by the engine
    parity tests, the scenario tests, the bench certification rows and
    the fuzz driver.
    """
    for label, extract in PARITY_FIELDS:
        va, vb = extract(a), extract(b)
        if va != vb:
            raise OracleViolation(
                f"parity violated on {label}: {a_label} {va!r} != "
                f"{b_label} {vb!r}"
            )


# -- safety / liveness --------------------------------------------------------


def _safety_check(recipe: dict, result) -> None:
    name = recipe.get("name")
    if name in ("consensus", "ab_consensus", "flooding", "lv_consensus"):
        check_consensus(result, recipe["inputs"])
    elif name == "approximate":
        check_approximate(result, recipe["inputs"], recipe["eps"])
    elif name == "aea":
        check_aea(result, recipe["inputs"])
    elif name == "scv":
        check_scv(result, recipe.get("common_value", 1))
    elif name == "gossip":
        check_gossip(result, recipe["rumors"])
    elif name == "checkpointing":
        check_checkpointing(result)
    else:
        raise ValueError(f"no safety predicate for protocol {name!r}")


def in_crash_model(recipe: dict, scenario: Optional[Scenario]) -> bool:
    """Whether a run is inside the paper's proven fault model.

    The paper proves safety, liveness and the Table 1 budgets for
    **crash faults with partial sends, at most ``t`` of them** (plus the
    authenticated-Byzantine model, whose budget is the Byzantine set
    itself).  Omission, partition and churn are deliberate
    out-of-model stressors -- a wrong decision under a permanent
    partition is a *measurement*, not a bug -- so the safety and bound
    oracles only arm inside the model; parity and the model invariants
    apply to every run regardless.
    """
    if scenario is None:
        return True
    if scenario.omissions or scenario.partitions or scenario.churn:
        return False
    if recipe.get("name") == "ab_consensus":
        # The Byzantine budget is spent on the byzantine set; extra
        # scheduled crashes leave the proven model.
        return not scenario.crashes
    return scenario.fault_budget() <= recipe["t"]


# -- model invariants (any fault class) --------------------------------------


def _metrics_consistency(result) -> Optional[str]:
    m = result.metrics
    if m.rounds < 0 or m.messages < 0 or m.bits < 0 or m.dropped_messages < 0:
        return f"negative tally in {m.summary()!r}"
    per_node = sum(m.per_node_messages.values())
    per_round = sum(m.per_round_messages.values())
    if not (m.messages == per_node == per_round):
        return (
            f"message totals disagree: headline {m.messages}, per-node "
            f"{per_node}, per-round {per_round}"
        )
    if m.bits != sum(m.per_node_bits.values()):
        return (
            f"bit totals disagree: headline {m.bits}, per-node "
            f"{sum(m.per_node_bits.values())}"
        )
    return None


def _post_crash_silence(trace) -> Optional[str]:
    """No sends recorded for a pid between its crash round (exclusive)
    and its next rejoin -- crashed nodes take no actions."""
    crashed_at: dict[int, int] = {}
    for event in trace.events:
        rnd = event["round"]
        for pid in event["rejoins"]:
            crashed_at.pop(pid, None)
        for src in event["sends"]:
            crash_round = crashed_at.get(src)
            if crash_round is not None and crash_round < rnd:
                return (
                    f"node {src} crashed at round {crash_round} but the "
                    f"trace records sends by it at round {rnd}"
                )
        for pid in event["crashes"]:
            # Nominations of already-halted pids never take effect, but
            # such pids record no sends either, so tracking them here
            # cannot produce a false positive.
            crashed_at.setdefault(pid, rnd)
    return None


def _churn_consistency(
    result, scenario: Optional[Scenario], max_rounds: int
) -> Optional[str]:
    """A completed run never leaves a reachable rejoin unapplied: every
    churn pid whose rejoin round lies inside ``max_rounds`` must end the
    run operational (its crash leg either never fired -- the node had
    halted -- or was undone by the rejoin)."""
    if scenario is None or not result.completed:
        return None
    stuck = [
        spec.pid
        for spec in scenario.churn
        if spec.rejoin_round < max_rounds and spec.pid in result.crashed
    ]
    if stuck:
        return (
            f"run completed with churn pids {stuck} still crashed although "
            "their rejoin rounds were reachable"
        )
    return None


# -- paper-bound certificates -------------------------------------------------

#: Family -> (communication measure, envelope constant).  The constants
#: are practical-instantiation headroom over the Table 1 envelope
#: expressions below (overlay degrees are capped, committees have
#: floors), calibrated on seeded fuzz sweeps and then doubled; the
#: certificate records the constant and the observed ratio per run, so
#: a drifting implementation shows up as ratios creeping toward 1.0
#: before it becomes a violation.
BOUND_CONSTANTS: dict[str, tuple[str, float]] = {
    "consensus-few": ("bits", 8.0),
    "consensus-many": ("bits", 8.0),
    "aea": ("messages", 6.0),
    "scv": ("messages", 8.0),
    "gossip": ("messages", 6.0),
    "checkpointing": ("messages", 6.0),
    "ab-consensus": ("messages", 150.0),
    "flooding": ("messages", 2.0),
    "approximate": ("bits", 2.0),
    "lv-consensus": ("bits", 2.0),
}

#: Slack added to the failure-free round count: the paper's running
#: times are ``O(t + log n)`` over the oblivious schedule, and the only
#: fault-triggered extension in this implementation is the
#: Many-Crashes-Consensus recovery epilogue of ``t + 2`` rounds.
ROUND_SLACK = 8


def _log2(x: float) -> float:
    return math.log2(max(2.0, x))


def _comm_envelope(
    family: str, params: ProtocolParams, recipe: Optional[dict] = None
) -> float:
    """The Table 1 communication envelope for one instance, with the
    practical overlay constants (committee probing + linear part).

    The literature families added next to Table 1 carry their envelope
    parameters (``eps``, ``width``) in the recipe rather than in
    :class:`ProtocolParams`, so ``recipe`` is threaded through for them.
    """
    n, t = params.n, params.t
    probing = (
        params.little_count
        * params.little_degree
        * (params.little_probe_rounds + 1)
    )
    if family == "consensus-few":
        return probing + 20.0 * n
    if family == "consensus-many":
        # Flooding over the degree-d(α) overlay plus probing and the
        # phase/recovery parts; candidates are single bits here.
        return params.mcc_degree * n * (params.mcc_probe_rounds + 4) + 20.0 * n
    if family == "aea":
        return probing + 4.0 * n
    if family == "scv":
        return 4.0 * n + 20.0 * t * _log2(t)
    if family == "gossip":
        per_phase = (
            params.little_count
            * params.little_degree
            * params.little_probe_rounds
        )
        return 4.0 * n + 2.0 * params.gossip_phase_count * per_phase
    if family == "checkpointing":
        per_phase = (
            params.little_count
            * params.little_degree
            * params.little_probe_rounds
        )
        return 8.0 * n + 2.0 * params.gossip_phase_count * per_phase + probing
    if family == "ab-consensus":
        return float(t * t + n)
    if family == "flooding":
        # Every operational node multicasts to everyone for t + 1 rounds.
        return float(n * n * (t + 1))
    if family == "approximate":
        # Every node multicasts one 64-bit float estimate to everyone
        # for the full t + 1 + phases schedule.
        phases = approximate_phase_count(recipe["inputs"], recipe["eps"])
        return 64.0 * n * (n - 1) * (t + 1 + phases)
    if family == "lv-consensus":
        # One width-bit coordinator multicast per round: linear in n,
        # the per-bit budget this family exists to pin.
        return float((t + 1) * (n - 1) * recipe["width"])
    raise ValueError(f"no communication envelope for family {family!r}")


def bound_certificate(
    family: str, recipe: dict, result, clean=None
) -> dict:
    """The paper-bound certificate for one in-model run.

    Returns a JSON-safe dict recording, with explicit constants:

    * ``rounds`` vs ``round_bound = clean_rounds + t + ROUND_SLACK``
      (the failure-free execution of the same instance plus the paper's
      ``O(t)`` fault tax; ``clean`` is the run itself for failure-free
      configurations);
    * the communication measure (``bits`` for consensus, ``messages``
      elsewhere, matching Table 1) vs ``constant * envelope`` where the
      envelope expression is the instance's Table 1 budget.

    ``ok`` summarises both checks; the caller turns ``ok=False`` into a
    violation carrying this certificate as its detail.
    """
    if "inputs" in recipe:
        n = len(recipe["inputs"])
    elif "rumors" in recipe:
        n = len(recipe["rumors"])
    else:
        n = recipe["n"]
    t = recipe["t"]
    params = ProtocolParams(n=n, t=t, seed=recipe.get("overlay_seed", 0))
    measure, constant = BOUND_CONSTANTS[family]
    observed = result.bits if measure == "bits" else result.messages
    envelope = _comm_envelope(family, params, recipe)
    comm_bound = constant * envelope
    clean_rounds = (clean or result).rounds
    round_bound = clean_rounds + t + ROUND_SLACK
    return {
        "family": family,
        "n": n,
        "t": t,
        "rounds": result.rounds,
        "clean_rounds": clean_rounds,
        "round_slack": ROUND_SLACK,
        "round_bound": round_bound,
        "rounds_ok": result.rounds <= round_bound,
        "comm_measure": measure,
        "comm": observed,
        "envelope": round(envelope, 1),
        "constant": constant,
        "comm_bound": round(comm_bound, 1),
        "comm_ratio": round(observed / comm_bound, 4) if comm_bound else None,
        "comm_ok": observed <= comm_bound,
        "ok": result.rounds <= round_bound and observed <= comm_bound,
    }


# -- the per-run oracle battery ----------------------------------------------


def run_oracles(
    family: str,
    recipe: dict,
    result,
    *,
    scenario: Optional[Scenario] = None,
    trace=None,
    clean=None,
    max_rounds: int = 100_000,
    include_safety: Optional[bool] = None,
    include_bounds: Optional[bool] = None,
) -> tuple[list[dict], Optional[dict]]:
    """Apply every applicable oracle to one finished run.

    Returns ``(violations, certificate)``: violations as JSON-safe
    ``{"oracle": name, "detail": text}`` dicts (empty when clean), and
    the :func:`bound_certificate` when the bound oracles armed.  The
    safety and bound oracles arm automatically for in-model runs
    (:func:`in_crash_model`); ``include_safety`` / ``include_bounds``
    force them on or off -- the deliberate-fault tests use this to
    check that, say, a split-vote partition *is* caught as an agreement
    violation when the safety oracle is armed.
    """
    violations: list[dict] = []
    in_model = in_crash_model(recipe, scenario)
    check_safety = in_model if include_safety is None else include_safety
    check_bounds = (
        (in_model and result.completed)
        if include_bounds is None
        else include_bounds
    )

    if check_safety:
        try:
            _safety_check(recipe, result)
        except PropertyViolation as exc:
            violations.append({"oracle": "safety", "detail": str(exc)})

    detail = _metrics_consistency(result)
    if detail:
        violations.append({"oracle": "invariant:metrics", "detail": detail})
    if trace is not None:
        detail = _post_crash_silence(trace)
        if detail:
            violations.append(
                {"oracle": "invariant:post-crash-silence", "detail": detail}
            )
    detail = _churn_consistency(result, scenario, max_rounds)
    if detail:
        violations.append({"oracle": "invariant:churn-rejoin", "detail": detail})

    certificate = None
    if check_bounds:
        certificate = bound_certificate(family, recipe, result, clean)
        if not certificate["ok"]:
            violations.append(
                {"oracle": "bounds", "detail": repr(certificate)}
            )
    return violations, certificate
