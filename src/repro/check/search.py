"""Optimization-guided adversary search over scenario space.

The fuzzer of :mod:`repro.check.driver` samples fault scenarios
*blindly*, so its measured Table 1 ratios (worst comm/bound ≈ 0.5 over
the calibration seeds) say little about the true adversarial frontier.
This module turns the paper-bound certificate into an **objective** and
searches for the worst case:

* **move set** -- :meth:`repro.scenarios.Scenario.shrink_candidates`
  closed under its inverse :meth:`~repro.scenarios.Scenario.grow_candidates`
  (add/extend crash, omission-window, partition-window and churn events,
  crash-count capped at the instance's ``t``), so the walk moves through
  scenario space in both directions;
* **energy** -- the larger of the measured rounds-ratio
  (``rounds / round_bound``) and communication-ratio (``comm /
  comm_bound``) from :func:`repro.check.oracles.bound_certificate`,
  against a failure-free baseline of the same instance; runs that fail
  to complete score ``-1`` and are never adopted;
* **optimizer** -- simulated annealing (geometric cooling, Metropolis
  acceptance) or a greedy hill-climb with restarts
  (``method="greedy"``), both driven exclusively by a
  :func:`~repro.bench.sweep.derive_seed`-keyed ``random.Random`` so a
  search is a pure function of ``(seed, config)``;
* **evaluation** -- :func:`repro.api.run_recipe` on the vectorized
  backend for the kernel families (when numpy is present) and the
  optimized engine otherwise, with every ``spot_check_every``-th fresh
  evaluation cross-verified on a second backend through
  :func:`~repro.check.oracles.check_parity` -- an optimizer steering by
  a buggy backend would chase phantoms.

Surfaces: ``python -m repro.check --search`` (one search per family,
top-k scenarios emitted as self-contained replayable trace artifacts
with the search trajectory in ``Trace.meta``), ``repro-bench
adversary`` (a per-``t`` sweep writing worst-case constants into
``BENCH_adversary.json``), and the committed ``tests/corpus/``
regression corpus replayed by ``tests/test_adversary_corpus.py``.
"""

from __future__ import annotations

import math
import os
import random
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro import api
from repro.bench.sweep import SweepSpec, derive_seed
from repro.check.driver import (
    _fault_horizon,
    _instance_shape,
    sample_instance,
)
from repro.check.oracles import bound_certificate, check_parity
from repro.core.params import ProtocolParams
from repro.scenarios import Scenario
from repro.sim.vec import HAVE_NUMPY, KERNEL_FAMILIES

__all__ = [
    "SearchConfig",
    "SearchResult",
    "build_search_spec",
    "describe_search_outcome",
    "make_search_config",
    "record_search_trace",
    "resolve_search_backend",
    "run_search",
    "search_unit",
]

#: Move-set restrictions: ``all`` walks the full fault vocabulary
#: (omissions and partitions are out-of-model stressors); ``crash``
#: keeps the walk inside the paper's proven crash model -- the mode the
#: ``repro-bench adversary`` constants are measured in, so they are
#: comparable against the Table 1 claims.
MOVE_SETS = ("all", "crash")

METHODS = ("anneal", "greedy")

SEARCH_BACKENDS = ("auto", "vec", "sim")

#: What the walk maximizes: the rounds-ratio, the communication-ratio,
#: or the larger of the two.  ``max`` is the headline number (what the
#: acceptance gate compares against the blind fuzzer); ``comm`` is the
#: interesting *search* axis for the oblivious-schedule families, where
#: rounds are fault-insensitive but crash timing changes how much
#: probing/inquiry traffic the run pays -- under ``max`` that signal
#: would be masked by the larger, flat rounds term.
OBJECTIVES = ("rounds", "comm", "max")


@dataclass(frozen=True)
class SearchConfig:
    """One fully-bound adversary search (pure data, picklable)."""

    family: str
    recipe: dict
    seed: int
    #: scenario evaluations (the unit of cost: one protocol run each)
    budget: int = 120
    method: str = "anneal"
    #: ``auto`` resolves to ``vec`` for kernel families when numpy is
    #: present, ``sim`` (optimized engine) otherwise
    backend: str = "auto"
    moves: str = "all"
    objective: str = "max"
    top_k: int = 3
    #: fault-event placement window (rounds), mirroring the fuzzer's
    window: int = 8
    max_rounds: int = 512
    #: cap on :meth:`Scenario.fault_budget` for grown candidates (the
    #: instance's ``t``: the search never exceeds the crash model by count)
    crash_budget: int = 1
    #: crash/churn victim pool (Byzantine pids excluded)
    victims: tuple[int, ...] = ()
    initial_temperature: float = 0.04
    cooling: float = 0.95
    #: greedy only: restart from the empty scenario after this many
    #: consecutive rejected proposals
    restart_after: int = 12
    #: cross-backend parity check every Nth fresh evaluation (0 = never)
    spot_check_every: int = 25
    #: grow candidates drawn per proposal
    grow_samples: int = 6


def resolve_search_backend(family: str, backend: str) -> str:
    """Resolve ``auto`` to the fastest certified backend for ``family``."""
    if backend == "auto":
        if family in KERNEL_FAMILIES and HAVE_NUMPY:
            return "vec"
        return "sim"
    if backend == "vec" and not HAVE_NUMPY:
        return "sim"
    return backend


def make_search_config(
    family: str,
    *,
    seed: int = 0,
    budget: int = 120,
    method: str = "anneal",
    backend: str = "auto",
    moves: str = "all",
    objective: str = "max",
    n: Optional[int] = None,
    t: Optional[int] = None,
    top_k: int = 3,
) -> SearchConfig:
    """Bind a search to a concrete instance of ``family``.

    The instance is drawn from :func:`repro.check.driver.sample_instance`
    -- the *same* distribution the blind fuzzer uses, so search-vs-fuzz
    comparisons are apples to apples -- with ``n``/``t`` optionally
    pinned (the per-``t`` bench sweep).  Deterministic given the
    arguments.
    """
    if method not in METHODS:
        raise ValueError(f"unknown search method {method!r}; choose from {METHODS}")
    if moves not in MOVE_SETS:
        raise ValueError(f"unknown move set {moves!r}; choose from {MOVE_SETS}")
    if backend not in SEARCH_BACKENDS:
        raise ValueError(
            f"unknown search backend {backend!r}; choose from {SEARCH_BACKENDS}"
        )
    if objective not in OBJECTIVES:
        raise ValueError(
            f"unknown objective {objective!r}; choose from {OBJECTIVES}"
        )
    rng = random.Random(derive_seed(seed, ("repro.search", family)))
    recipe = sample_instance(family, rng, seed, n=n, t=t)
    n_, t_ = _instance_shape(recipe)
    params = ProtocolParams(n=n_, t=t_, seed=recipe.get("overlay_seed", 0))
    horizon = _fault_horizon(family, params)
    window = max(4, min(horizon, 24))
    max_rounds = 4 * horizon + 4 * n_ + 64
    victims = tuple(
        p for p in range(n_) if p not in set(recipe.get("byzantine", ()))
    )
    return SearchConfig(
        family=family,
        recipe=recipe,
        seed=seed,
        budget=budget,
        method=method,
        backend=resolve_search_backend(family, backend),
        moves=moves,
        objective=objective,
        top_k=top_k,
        window=window,
        max_rounds=max_rounds,
        crash_budget=t_,
        victims=victims,
    )


# -- evaluation ---------------------------------------------------------------


class _Evaluator:
    """Scenario -> energy, with caching, a failure-free baseline and
    periodic cross-backend spot verification.

    The cache is keyed by the (hashable, value-compared) scenario, so
    re-proposing a previously-visited point costs nothing; only *fresh*
    evaluations count against the budget and the spot-check cadence.
    """

    def __init__(self, config: SearchConfig):
        self.config = config
        self.cache: dict[Scenario, dict] = {}
        self.fresh = 0
        self.cache_hits = 0
        self.spot_checks = 0
        # Failure-free baseline of the same instance: the clean_rounds
        # anchor of the rounds bound, computed once on the primary.
        self.clean = self._run(None, self.config.backend)

    def _kwargs(self, scenario: Optional[Scenario]) -> dict:
        kwargs: dict = {"max_rounds": self.config.max_rounds}
        if self.config.recipe.get("name") != "ab_consensus":
            kwargs["crashes"] = None  # failure-free unless the scenario says so
        if scenario is not None and scenario.shrink_size() > 0:
            kwargs["scenario"] = scenario
        return kwargs

    def _run(self, scenario: Optional[Scenario], backend: str):
        if backend == "vec":
            return api.run_recipe(
                self.config.recipe, backend="vec", **self._kwargs(scenario)
            )
        if backend == "sim":
            return api.run_recipe(
                self.config.recipe,
                backend="sim",
                optimized=True,
                **self._kwargs(scenario),
            )
        if backend == "sim-ref":
            return api.run_recipe(
                self.config.recipe,
                backend="sim",
                optimized=False,
                **self._kwargs(scenario),
            )
        raise ValueError(f"unknown evaluation backend {backend!r}")

    def evaluate(self, scenario: Scenario) -> dict:
        """Energy and certificate for one scenario (cached)."""
        hit = self.cache.get(scenario)
        if hit is not None:
            self.cache_hits += 1
            return hit
        self.fresh += 1
        result = self._run(scenario, self.config.backend)
        every = self.config.spot_check_every
        if every and self.fresh % every == 0:
            # Cross-backend spot verification: the optimizer must not be
            # steered by a backend-specific artifact.  vec is verified
            # against the optimized engine, sim against the reference
            # loop.  A divergence raises OracleViolation -- loudly.
            spot_backend = "sim" if self.config.backend == "vec" else "sim-ref"
            spot = self._run(scenario, spot_backend)
            check_parity(
                result,
                spot,
                f"{self.config.backend}[{self.config.family} "
                f"seed={self.config.seed}]",
                spot_backend,
            )
            self.spot_checks += 1
        certificate = bound_certificate(
            self.config.family, self.config.recipe, result, clean=self.clean
        )
        rounds_ratio = (
            certificate["rounds"] / certificate["round_bound"]
            if certificate["round_bound"]
            else 0.0
        )
        # Recompute at full precision: the certificate rounds its ratio
        # to 4 decimals, which would hide the few-message gradients the
        # comm objective climbs.
        comm_ratio = (
            certificate["comm"] / certificate["comm_bound"]
            if certificate["comm_bound"]
            else 0.0
        )
        objective_value = {
            "rounds": rounds_ratio,
            "comm": comm_ratio,
            "max": max(rounds_ratio, comm_ratio),
        }[self.config.objective]
        # Incomplete runs are not measurements of the bound (the paper's
        # budgets quantify *terminating* executions); score them below
        # every completed run so the walk never adopts one.
        energy = objective_value if result.completed else -1.0
        evaluation = {
            "energy": round(energy, 6),
            "rounds_ratio": round(rounds_ratio, 6),
            "comm_ratio": round(comm_ratio, 6),
            "completed": result.completed,
            "faults": scenario.fault_budget(),
            "size": scenario.shrink_size(),
            "certificate": certificate,
        }
        self.cache[scenario] = evaluation
        return evaluation


def _propose(
    current: Scenario, config: SearchConfig, rng: random.Random
) -> Optional[Scenario]:
    """One neighbour of ``current`` under the grow+shrink move set."""
    grows = list(
        current.grow_candidates(
            max_round=config.window,
            crash_budget=config.crash_budget,
            victims=config.victims,
            rng=rng,
            samples=config.grow_samples,
        )
    )
    shrinks = list(current.shrink_candidates())
    if config.moves == "crash":
        grows = [c for c in grows if not c.omissions and not c.partitions]
    pool = grows + shrinks
    if not pool:
        return None
    return pool[rng.randrange(len(pool))]


# -- the search loop ----------------------------------------------------------


@dataclass
class SearchResult:
    """Outcome of one adversary search."""

    config: SearchConfig
    #: the worst scenario found (the empty scenario when nothing beat
    #: the failure-free run)
    best_scenario: Scenario
    #: evaluation dict of ``best_scenario``
    best: dict
    #: evaluation of the empty (failure-free) starting scenario
    baseline: dict
    #: per-step records: proposal energy, acceptance, running best
    trajectory: list[dict] = field(default_factory=list)
    #: top-k distinct scenarios by energy (first-found wins ties)
    top: list[dict] = field(default_factory=list)
    evaluations: int = 0
    cache_hits: int = 0
    spot_checks: int = 0
    restarts: int = 0

    def to_row(self) -> dict:
        """Flatten into a JSON-safe sweep row (byte-identical across
        ``--jobs`` counts: everything downstream -- artifacts included --
        derives from this row, never from worker-local state)."""
        n, t = _instance_shape(self.config.recipe)
        return {
            "family": self.config.family,
            "n": n,
            "t": t,
            "method": self.config.method,
            "backend": self.config.backend,
            "moves": self.config.moves,
            "objective": self.config.objective,
            "seed": self.config.seed,
            "budget": self.config.budget,
            "best_energy": self.best["energy"],
            "best_rounds_ratio": self.best["rounds_ratio"],
            "best_comm_ratio": self.best["comm_ratio"],
            "baseline_energy": self.baseline["energy"],
            "gain": round(self.best["energy"] - self.baseline["energy"], 6),
            "faults": self.best["faults"],
            "evaluations": self.evaluations,
            "cache_hits": self.cache_hits,
            "spot_checks": self.spot_checks,
            "restarts": self.restarts,
            "recipe": self.config.recipe,
            "best_scenario": self.best_scenario.to_dict(),
            "best_certificate": self.best["certificate"],
            "top": self.top,
            "trajectory": self.trajectory,
        }


def run_search(config: SearchConfig) -> SearchResult:
    """Walk scenario space for ``config.budget`` evaluations.

    Deterministic: all randomness comes from one ``random.Random``
    derived from ``(config.seed, family, method)``; protocol runs are
    deterministic state machines, so the whole search -- trajectory,
    best scenario, top-k list -- is a pure function of the config.
    """
    evaluator = _Evaluator(config)
    rng = random.Random(
        derive_seed(config.seed, ("repro.search", config.family, config.method))
    )
    n, _ = _instance_shape(config.recipe)
    empty = Scenario(n=n, name=f"search-{config.family}-{config.seed}")
    baseline = evaluator.evaluate(empty)

    current, current_eval = empty, baseline
    best, best_eval = empty, baseline
    # Scenario -> (energy, first step seen); distinct-by-value top-k.
    seen_at: dict[Scenario, tuple[float, int]] = {empty: (baseline["energy"], 0)}
    trajectory: list[dict] = []
    temperature = config.initial_temperature
    stall = 0
    restarts = 0

    for step in range(1, config.budget + 1):
        candidate = _propose(current, config, rng)
        if candidate is None:
            continue
        evaluation = evaluator.evaluate(candidate)
        energy = evaluation["energy"]
        if candidate not in seen_at:
            seen_at[candidate] = (energy, step)
        delta = energy - current_eval["energy"]
        if config.method == "anneal":
            accepted = delta >= 0 or (
                evaluation["completed"]
                and rng.random() < math.exp(delta / max(temperature, 1e-9))
            )
            temperature *= config.cooling
        else:  # greedy hill-climb with restarts
            accepted = delta > 0
            stall = 0 if accepted else stall + 1
            if stall >= config.restart_after:
                current, current_eval = empty, baseline
                stall = 0
                restarts += 1
        if accepted:
            current, current_eval = candidate, evaluation
            if energy > best_eval["energy"]:
                best, best_eval = candidate, evaluation
        trajectory.append(
            {
                "step": step,
                "energy": energy,
                "accepted": accepted,
                "best": best_eval["energy"],
                "size": evaluation["size"],
                "faults": evaluation["faults"],
            }
        )

    ranked = sorted(
        seen_at.items(), key=lambda item: (-item[1][0], item[1][1])
    )[: config.top_k]
    top = [
        {
            "rank": rank,
            "energy": energy,
            "step": first_step,
            "scenario": scenario.to_dict(),
            "evaluation": {
                k: v
                for k, v in evaluator.cache.get(scenario, baseline).items()
                if k != "certificate"
            },
            "certificate": evaluator.cache.get(scenario, baseline)["certificate"],
        }
        for rank, (scenario, (energy, first_step)) in enumerate(ranked, start=1)
    ]
    return SearchResult(
        config=config,
        best_scenario=best,
        best=best_eval,
        baseline=baseline,
        trajectory=trajectory,
        top=top,
        evaluations=evaluator.fresh,
        cache_hits=evaluator.cache_hits,
        spot_checks=evaluator.spot_checks,
        restarts=restarts,
    )


# -- sweep plumbing (CLI / repro-bench) ---------------------------------------


def search_unit(params: dict) -> dict:
    """Sweep-runner form of :func:`run_search` (module-level, picklable).

    ``params`` binds ``family`` and ``search_seed`` plus the optional
    knobs of :func:`make_search_config`; the row carries everything the
    parent needs (top-k scenarios included), so artifact emission happens
    in the parent process in row order -- ``--jobs`` can never change
    the bytes written.
    """
    config = make_search_config(
        params["family"],
        seed=params["search_seed"],
        budget=params["budget"],
        method=params.get("method") or "anneal",
        backend=params.get("backend") or "auto",
        moves=params.get("moves") or "all",
        objective=params.get("objective") or "max",
        n=params.get("n"),
        t=params.get("t"),
        top_k=params.get("top_k") or 3,
    )
    return run_search(config).to_row()


def build_search_spec(
    seed: int,
    budget: int,
    *,
    families: Sequence[str],
    method: str = "anneal",
    backend: str = "auto",
    moves: str = "all",
    objective: str = "max",
    n: Optional[int] = None,
    t: Optional[int] = None,
    top_k: int = 3,
) -> SweepSpec:
    """One adversary search per family, as a :class:`SweepSpec`.

    The single unit-shape definition shared by ``python -m repro.check
    --search`` and the ``repro-bench adversary`` series.
    """
    units = [
        {
            "family": family,
            "search_seed": seed,
            "seed": seed,
            "budget": budget,
            "method": method,
            "backend": backend,
            "moves": moves,
            "objective": objective,
            "n": n,
            "t": t,
            "top_k": top_k,
        }
        for family in families
    ]
    return SweepSpec(name="search", runner=search_unit, units=units, base_seed=seed)


def describe_search_outcome(outcome) -> str:
    """Progress-line phrase for one completed search unit."""
    row = getattr(outcome, "row", None) or {}
    params = getattr(getattr(outcome, "unit", None), "params", None) or {}
    family = row.get("family", params.get("family", "?"))
    bits = [str(family)]
    if "best_energy" in row:
        bits.append(f"best {row['best_energy']:.3f}")
        bits.append(f"(baseline {row['baseline_energy']:.3f})")
    return " ".join(bits)


# -- artifacts ----------------------------------------------------------------


def record_search_trace(
    row: dict,
    entry: dict,
    out_dir: str | os.PathLike,
    *,
    label: Optional[str] = None,
) -> str:
    """Write one top-k scenario as a self-contained replayable trace.

    ``row`` is a :meth:`SearchResult.to_row` dict, ``entry`` one of its
    ``top`` items.  Re-executes the scenario on the optimized engine
    with trace recording (the kernel backends share its fault semantics
    bit-for-bit, and a trace needs the engine's recording hooks),
    annotates ``Trace.meta["repro.search"]`` with the certificate, the
    search trajectory and the exact reproduction commands, and saves to
    ``out_dir``.  ``repro.trace.replay_trace(path)`` reproduces the run
    standalone; ``tests/test_adversary_corpus.py`` replays the committed
    corpus on every test run.
    """
    os.makedirs(out_dir, exist_ok=True)
    scenario = Scenario.from_dict(entry["scenario"])
    recipe = row["recipe"]
    # Re-derive the execution envelope exactly as the search did.
    config = make_search_config(
        row["family"],
        seed=row["seed"],
        budget=row["budget"],
        method=row["method"],
        backend=row["backend"],
        moves=row["moves"],
        objective=row.get("objective", "max"),
        n=row["n"],
        t=row["t"],
        top_k=len(row.get("top", ())) or 3,
    )
    kwargs: dict = {"max_rounds": config.max_rounds}
    if recipe.get("name") != "ab_consensus":
        kwargs["crashes"] = None
    if scenario.shrink_size() > 0:
        kwargs["scenario"] = scenario
    result = api.run_recipe(
        recipe, backend="sim", optimized=True, record_trace=True, **kwargs
    )
    trace = result.trace
    name = label or (
        f"search-{row['family']}-seed{row['seed']}-rank{entry['rank']}"
    )
    cli = (
        f"python -m repro.check --search --seed {row['seed']} "
        f"--budget {row['budget']} --families {row['family']} "
        f"--method {row['method']} --moves {row['moves']} "
        f"--objective {row.get('objective', 'max')}"
    )
    trace.meta = {
        "repro.search": {
            "family": row["family"],
            "seed": row["seed"],
            "budget": row["budget"],
            "method": row["method"],
            "moves": row["moves"],
            "objective": row.get("objective", "max"),
            "rank": entry["rank"],
            "energy": entry["energy"],
            "evaluation": entry["evaluation"],
            "certificate": entry["certificate"],
            "scenario": entry["scenario"],
            "baseline_energy": row["baseline_energy"],
            "trajectory": row.get("trajectory", []),
            "reproduce": {
                "cli": cli,
                "replay": (
                    "python -c \"from repro import replay_trace; "
                    f"replay_trace('{name}.trace.json')\""
                ),
            },
        }
    }
    path = os.path.join(os.fspath(out_dir), f"{name}.trace.json")
    trace.save(path)
    # CI hook: mirror into the uploaded-artifacts directory (same
    # contract as repro.check.shrink.emit_artifact).
    mirror = os.environ.get("REPRO_CHECK_ARTIFACT_DIR")
    if mirror and os.path.abspath(mirror) != os.path.abspath(os.fspath(out_dir)):
        os.makedirs(mirror, exist_ok=True)
        trace.save(os.path.join(mirror, f"{name}.trace.json"))
    return path
