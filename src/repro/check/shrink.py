"""Greedy scenario shrinking and artifact emission.

A fuzz failure arrives as a (possibly large) random scenario; what a
bug report needs is the *minimal* scenario that still trips the same
oracle.  :func:`shrink_scenario` runs the classical greedy loop over
:meth:`repro.scenarios.Scenario.shrink_candidates` -- delete a whole
fault event, demote churn to crash, halve an omission round list or a
partition window, simplify a ``keep`` budget -- re-running the full
differential check after each mutation and keeping any candidate that
still fails in the same oracle *category* (``parity`` / ``safety`` /
``bounds`` / ``invariant``).  Termination is unconditional: every
candidate strictly decreases :meth:`Scenario.shrink_size`, and the run
budget caps the worst case.

The minimal failing run is then re-executed once more with trace
recording and written as a **self-contained artifact**
(:func:`emit_artifact`): one JSON trace whose embedded protocol recipe,
scenario and ``meta`` block (violated oracles, original scenario,
shrink statistics, reproduction command) make
``repro.trace.replay_trace(path)`` reproduce the execution anywhere --
no source-tree context required.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace
from typing import Iterable, Optional

from repro import api
from repro.check.driver import FuzzConfig, run_config
from repro.scenarios import Scenario

__all__ = ["ShrinkResult", "emit_artifact", "oracle_categories", "shrink_scenario"]


def oracle_categories(violations: Iterable[dict]) -> frozenset[str]:
    """The coarse oracle classes of a violation list (``parity:net`` and
    ``parity:sim-ref`` both count as ``parity``), the equivalence used
    to decide whether a shrunk candidate reproduces "the same" failure."""
    return frozenset(v["oracle"].split(":")[0] for v in violations)


@dataclass
class ShrinkResult:
    """Outcome of one shrink loop."""

    original: Optional[Scenario]
    minimal: Optional[Scenario]
    categories: frozenset[str]
    steps: int
    runs: int
    #: violations of the final (minimal) configuration
    violations: list[dict]

    def summary(self) -> dict:
        return {
            "categories": sorted(self.categories),
            "steps": self.steps,
            "runs": self.runs,
            "original_size": (
                self.original.shrink_size() if self.original else 0
            ),
            "minimal_size": self.minimal.shrink_size() if self.minimal else 0,
        }


def _shrink_backends(
    config: FuzzConfig, categories: frozenset[str], violations: list[dict]
) -> tuple[str, ...]:
    """Replay only what the failure needs: parity failures keep exactly
    the diverging backends, pure oracle failures re-run sim-only."""
    if "parity" not in categories:
        return ()
    diverged = {
        v["oracle"].split(":", 1)[1]
        for v in violations
        if v["oracle"].startswith("parity:")
    }
    return tuple(b for b in config.backends if b in diverged)


def shrink_scenario(
    config: FuzzConfig,
    violations: list[dict],
    *,
    max_runs: int = 150,
) -> ShrinkResult:
    """Reduce ``config.scenario`` to a minimal scenario that still fails.

    ``violations`` is the original failing run's violation list (from
    :func:`repro.check.driver.run_config`); a candidate counts as still
    failing when its own violations intersect the same oracle
    categories.  Each probe is one full differential check, so
    ``max_runs`` bounds the total work; the greedy loop restarts from
    the first successful mutation, which keeps the sequence of adopted
    scenarios strictly shrinking.
    """
    categories = oracle_categories(violations)
    original = config.scenario
    if original is None or not categories:
        return ShrinkResult(original, original, categories, 0, 0, violations)
    backends = _shrink_backends(config, categories, violations)
    runs = 0
    steps = 0
    current = original
    current_violations = violations

    def probe(candidate: Scenario) -> Optional[list[dict]]:
        nonlocal runs
        runs += 1
        row = run_config(replace(config, scenario=candidate, backends=backends))
        found = row.get("violation_details", [])
        if oracle_categories(found) & categories:
            return found
        return None

    progress = True
    while progress and runs < max_runs:
        progress = False
        for candidate in current.shrink_candidates():
            if runs >= max_runs:
                break
            found = probe(candidate)
            if found is not None:
                current = candidate
                current_violations = found
                steps += 1
                progress = True
                break
    return ShrinkResult(
        original, current, categories, steps, runs, current_violations
    )


def emit_artifact(
    config: FuzzConfig,
    shrink: ShrinkResult,
    out_dir: str | os.PathLike,
    *,
    label: Optional[str] = None,
) -> str:
    """Write the minimal failing run as one self-contained trace file.

    Re-executes the minimal configuration on the primary backend with
    trace recording, annotates the trace's ``meta`` block with the
    violated oracles, the original (pre-shrink) scenario and the exact
    reproduction commands, and saves it under ``out_dir``.  Returns the
    artifact path; ``repro.trace.replay_trace(path)`` reproduces the
    execution standalone on any backend.
    """
    os.makedirs(out_dir, exist_ok=True)
    minimal = config.with_scenario(shrink.minimal)
    from repro.check.driver import _execution_kwargs  # local: avoid cycle

    result = api.run_recipe(
        minimal.recipe,
        backend="sim",
        optimized=True,
        record_trace=True,
        **_execution_kwargs(minimal),
    )
    trace = result.trace
    name = label or f"fuzz-seed{config.seed}-index{config.index}"
    repro_cli = (
        f"python -m repro.check --seed {config.seed} "
        f"--only {config.index} --budget {config.index + 1}"
    )
    trace.meta = {
        "repro.check": {
            "violations": shrink.violations,
            "family": config.family,
            "kind": config.kind,
            "shrink": shrink.summary(),
            "original_scenario": (
                shrink.original.to_dict() if shrink.original else None
            ),
            "reproduce": {
                "cli": repro_cli,
                "replay": f"python -c \"from repro import replay_trace; "
                f"replay_trace('{name}.trace.json')\"",
            },
        }
    }
    path = os.path.join(os.fspath(out_dir), f"{name}.trace.json")
    trace.save(path)
    # CI hook: mirror every artifact into the directory the workflow
    # uploads on failure, so a shrunk trace produced inside a failing
    # test run (tmp_path) is preserved too.
    mirror = os.environ.get("REPRO_CHECK_ARTIFACT_DIR")
    if mirror and os.path.abspath(mirror) != os.path.abspath(os.fspath(out_dir)):
        os.makedirs(mirror, exist_ok=True)
        trace.save(os.path.join(mirror, f"{name}.trace.json"))
    return path
