"""The paper's algorithms (Sections 4-7)."""

from repro.core.aea import AEAComponent, AEAProcess, aea_overlay
from repro.core.byzantine import (
    ABConsensusProcess,
    EquivocatingSource,
    SilentByzantine,
    SpammingByzantine,
)
from repro.core.checkpointing import CheckpointingProcess, mask_to_set, set_to_mask
from repro.core.consensus import (
    FewCrashesConsensusProcess,
    ManyCrashesConsensusProcess,
    mcc_overlay,
)
from repro.core.dolev_strong import AuthenticatedSet, ParallelDolevStrong
from repro.core.gossip import GossipProcess, SetDelta, gossip_overlay
from repro.core.local_probe import LocalProbe
from repro.core.params import DEGREE_CAP, LITTLE_FLOOR, ProtocolParams
from repro.core.scv import SCVComponent, SCVProcess

__all__ = [
    "ABConsensusProcess",
    "AEAComponent",
    "AEAProcess",
    "AuthenticatedSet",
    "CheckpointingProcess",
    "DEGREE_CAP",
    "EquivocatingSource",
    "FewCrashesConsensusProcess",
    "GossipProcess",
    "LITTLE_FLOOR",
    "LocalProbe",
    "ManyCrashesConsensusProcess",
    "ParallelDolevStrong",
    "ProtocolParams",
    "SCVComponent",
    "SCVProcess",
    "SetDelta",
    "SilentByzantine",
    "SpammingByzantine",
    "aea_overlay",
    "gossip_overlay",
    "mask_to_set",
    "mcc_overlay",
    "set_to_mask",
]
