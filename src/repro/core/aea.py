"""Algorithm ``Almost-Everywhere-Agreement`` (Fig. 1, Theorem 5).

Little nodes (the ``min(n, max(5t, floor))`` smallest names) flood rumor
1 over a committee Ramanujan graph ``G`` for Part 1, run local probing
for Part 2 (survivors decide their candidate value), and notify their
*related* nodes (same residue modulo the committee size) in Part 3.

The implementation generalises the paper's binary rumor to any
*join-semilattice over non-negative integers with bitwise OR*: with
candidates in ``{0, 1}`` this is exactly Fig. 1 (rumor 1 floods, rumor 0
is silence); with ``n``-bit masks it is the "combined messages" variant
used by the checkpointing algorithm's ``n`` concurrent consensus
instances (Fig. 6).  In both cases a node transmits whenever its
candidate *grows*, which for the binary case happens only on the
``0 → 1`` transition of the pseudocode.

The class is a *component*: it exposes ``outgoing``/``incoming``/
``next_activity``/``finished`` against absolute round numbers so that
:class:`~repro.core.consensus.FewCrashesConsensusProcess` can chain it
with Spread-Common-Value.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.core.local_probe import LocalProbe
from repro.core.params import ProtocolParams
from repro.graphs.graph import Graph
from repro.graphs.ramanujan import certified_ramanujan_graph
from repro.sim.process import Multicast, Process

__all__ = ["AEAComponent", "AEAProcess", "aea_overlay"]


def aea_overlay(params: ProtocolParams) -> Graph:
    """The committee overlay ``G``: a certified (near-)Ramanujan graph
    on the little nodes (paper: ``G(5t, 5^8)``)."""
    return certified_ramanujan_graph(
        params.little_count, params.little_degree, seed=params.seed
    )


class AEAComponent:
    """Per-node state machine for Almost-Everywhere-Agreement.

    Parameters
    ----------
    pid, params:
        The node and the shared parameter derivation.
    input_value:
        Non-negative integer candidate (``0``/``1`` for the paper's
        binary case, an ``n``-bit mask for the vectorised case).
    start_round:
        Absolute round at which Part 1 begins.
    graph:
        The committee overlay; pass the shared instance so every node
        uses the identical deterministic graph.
    """

    def __init__(
        self,
        pid: int,
        params: ProtocolParams,
        input_value: int,
        start_round: int,
        graph: Graph,
    ):
        if input_value < 0:
            raise ValueError(f"candidates must be non-negative, got {input_value}")
        self.pid = pid
        self.params = params
        self.graph = graph
        self.candidate = input_value
        self.start_round = start_round
        self.is_little = params.is_little(pid)

        flood = params.little_flood_rounds
        probe_rounds = params.little_probe_rounds
        #: Part boundaries in absolute rounds.
        self.flood_end = start_round + flood  # Part 1 occupies [start, flood_end)
        self.probe_start = self.flood_end
        self.notify_round = self.flood_end + probe_rounds
        self.end_round = self.notify_round + 1

        self.decision: Optional[int] = None
        self._pending_flood = self.is_little and self.candidate != 0
        neighbors = graph.neighbors(pid) if self.is_little else ()
        self._probe = LocalProbe(
            neighbors=neighbors,
            delta=params.little_delta,
            start_round=self.probe_start,
            rounds=probe_rounds,
            payload_fn=lambda: self.candidate,
        )

    # -- component interface ---------------------------------------------

    def outgoing(self, rnd: int) -> list:
        out: list = []
        if self.is_little and self.start_round <= rnd < self.flood_end:
            if self._pending_flood:
                self._pending_flood = False
                neighbors = self.graph.neighbors(self.pid)
                if neighbors:
                    out.append(Multicast(neighbors, self.candidate))
        elif self.is_little and self._probe.in_window(rnd):
            probe_out = self._probe.outgoing(rnd)
            if probe_out is not None:
                dsts, payload = probe_out
                out.append(Multicast(dsts, payload))
        elif rnd == self.notify_round and self.is_little and self.decision is not None:
            related = self.params.related_nodes(self.pid)
            if related:
                out.append(Multicast(tuple(related), self.decision))
        return out

    def incoming(self, rnd: int, inbox: list[tuple[int, Any]]) -> None:
        if self.is_little and self.start_round <= rnd < self.flood_end:
            merged = self.candidate
            for _, payload in inbox:
                merged |= payload
            if merged != self.candidate:
                self.candidate = merged
                # Schedule the flood of the grown candidate for the next
                # round of Part 1 (the pseudocode's "received rumor 1 in
                # the previous round for the first time").
                if rnd + 1 < self.flood_end:
                    self._pending_flood = True
        elif self.is_little and self._probe.in_window(rnd):
            self._probe.note_receptions(rnd, len(inbox))
            merged = self.candidate
            for _, payload in inbox:
                merged |= payload
            # Fig. 1 Part 2 clause (b); Lemma 4 shows this never fires
            # for surviving nodes when t < n/5.
            self.candidate = merged
            if self._probe.finished(rnd) and self._probe.survived:
                self.decision = self.candidate
        elif rnd == self.notify_round:
            if not self.is_little:
                for _, payload in inbox:
                    self.decision = payload
                    break

    def next_activity(self, rnd: int) -> int:
        if not self.is_little:
            # Non-little nodes act only at the notify round (they
            # receive the notification and finish).
            return max(rnd + 1, self.notify_round)
        if rnd < self.flood_end:
            if self._pending_flood:
                return rnd + 1
            return max(rnd + 1, self.probe_start)
        if rnd <= self.notify_round:
            return rnd + 1
        return rnd + 1

    def finished(self, rnd: int) -> bool:
        return rnd >= self.notify_round

    @property
    def survived_probing(self) -> bool:
        return self._probe.survived


class AEAProcess(Process):
    """Standalone process wrapper running only AEA (used by the E5
    benchmarks and the AEA unit tests)."""

    def __init__(
        self,
        pid: int,
        params: ProtocolParams,
        input_value: int,
        graph: Optional[Graph] = None,
    ):
        super().__init__(pid, params.n)
        overlay = graph if graph is not None else aea_overlay(params)
        self.component = AEAComponent(pid, params, input_value, 0, overlay)

    def send(self, rnd: int):
        return self.component.outgoing(rnd)

    def receive(self, rnd: int, inbox: list[tuple[int, Any]]) -> None:
        self.component.incoming(rnd, inbox)
        if self.component.finished(rnd):
            if self.component.decision is not None:
                self.decide(self.component.decision)
            self.halt()

    def next_activity(self, rnd: int) -> int:
        return self.component.next_activity(rnd)
