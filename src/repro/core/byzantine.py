"""Algorithm ``AB-Consensus`` (Fig. 7, Theorem 11): consensus under
authenticated Byzantine faults, ``t < n/2``, in ``O(t)`` rounds with
``O(t² + n)`` messages from non-faulty nodes.

Parts (little nodes = the ``min(n, max(5t, floor))`` smallest names):

1. little nodes run the combined parallel ``DS-algorithm``
   (:class:`~repro.core.dolev_strong.ParallelDolevStrong`), ending with
   identical resolved value vectors and an :class:`AuthenticatedSet`
   certificate carrying enough little signatures that no Byzantine
   coalition (≤ ``t`` signers) can fabricate one;
2. little nodes send the authenticated set to their *related* nodes
   (same residue modulo the committee size);
3. the set propagates through the constant-degree expander ``H``
   (the Spread-Common-Value Part 1 mechanism); receivers verify the
   certificate and drop forgeries;
4. nodes still lacking a set send *signed inquiries* to every little
   node, which reply to verified inquirers.  Everyone decides on the
   maximum value of the (unique) authenticated common set.

Also defined here: Byzantine little/plain behaviours used by the tests
and benchmarks (silent, equivocating source, spamming forger).
"""

from __future__ import annotations

from typing import Any, Optional

from repro.auth.signatures import SignatureService, SigningKey
from repro.core.dolev_strong import AuthenticatedSet, ParallelDolevStrong, ds_message, vector_message
from repro.core.params import ProtocolParams
from repro.graphs.families import spread_graph
from repro.graphs.graph import Graph
from repro.sim.adversary import ByzantineProcess
from repro.sim.process import Multicast, Process

__all__ = [
    "ABConsensusProcess",
    "EquivocatingSource",
    "SilentByzantine",
    "SpammingByzantine",
    "inquiry_message",
]


def inquiry_message(pid: int) -> tuple:
    """Canonical signed form of a Part 4 inquiry."""
    return ("inq", pid)


class ABConsensusProcess(Process):
    """Honest participant of AB-Consensus."""

    def __init__(
        self,
        pid: int,
        params: ProtocolParams,
        input_value: int,
        service: SignatureService,
        *,
        spread: Optional[Graph] = None,
    ):
        super().__init__(pid, params.n)
        self.params = params
        self.service = service
        self.key = service.key_for(pid)
        self.m = params.byz_little_count
        self.is_little = pid < self.m
        self.threshold = params.byz_certificate_threshold
        self.spread = spread if spread is not None else spread_graph(params.n, params.seed)

        self.ds: Optional[ParallelDolevStrong] = None
        if self.is_little:
            self.ds = ParallelDolevStrong(pid, params, input_value, 0, service, self.key)

        #: Part boundaries (absolute rounds).
        self.p1_end = params.t + 2  # DS relay rounds + certificate round
        self.p2_round = self.p1_end
        self.p3_start = self.p1_end + 1
        self.p3_end = self.p3_start + params.scv_spread_rounds
        self.p4_inquiry = self.p3_end
        self.p4_response = self.p3_end + 1
        self.end_round = self.p4_response + 1

        self.common: Optional[AuthenticatedSet] = None
        self._pending_forward = False
        self._inquirers: list[int] = []

    # -- verification --------------------------------------------------------

    def _verify_set(self, candidate: Any) -> bool:
        if not isinstance(candidate, AuthenticatedSet):
            return False
        if len(candidate.values) != self.m:
            return False
        valid = self.service.count_valid(
            candidate.signatures,
            vector_message(candidate.values),
            range(self.m),
        )
        return valid >= self.threshold

    def _adopt(self, candidate: Any, forward: bool) -> None:
        if self.common is None and self._verify_set(candidate):
            self.common = candidate
            self._pending_forward = forward

    # -- engine interface -------------------------------------------------------

    def send(self, rnd: int):
        out: list = []
        if rnd < self.p1_end:
            if self.ds is not None:
                out.extend(self.ds.outgoing(rnd))
            return out
        if rnd == self.p2_round:
            if self.ds is not None and self.ds.certificate is not None:
                # Adopt own certificate and notify related nodes.
                self._adopt(self.ds.certificate, forward=True)
                related = tuple(range(self.pid + self.m, self.n, self.m))
                if related and self.common is not None:
                    out.append(Multicast(related, self.common))
            return out
        if rnd < self.p3_end:
            if self._pending_forward and self.common is not None:
                self._pending_forward = False
                neighbors = self.spread.neighbors(self.pid)
                if neighbors:
                    out.append(Multicast(neighbors, self.common))
            return out
        if rnd == self.p4_inquiry:
            if self.common is None:
                little = tuple(q for q in range(self.m) if q != self.pid)
                if little:
                    signature = self.key.sign(inquiry_message(self.pid))
                    out.append(Multicast(little, ("inq", self.pid, signature)))
            return out
        if rnd == self.p4_response:
            if self.is_little and self.common is not None and self._inquirers:
                out.append(Multicast(tuple(self._inquirers), self.common))
                self._inquirers = []
            return out
        return out

    def receive(self, rnd: int, inbox: list[tuple[int, Any]]) -> None:
        if rnd < self.p1_end:
            if self.ds is not None:
                self.ds.incoming(rnd, inbox)
            return
        if rnd == self.p2_round:
            for _, payload in inbox:
                self._adopt(payload, forward=True)
            return
        if rnd < self.p3_end:
            for _, payload in inbox:
                self._adopt(payload, forward=rnd + 1 < self.p3_end)
            return
        if rnd == self.p4_inquiry:
            if self.is_little and self.common is not None:
                for src, payload in inbox:
                    if not (isinstance(payload, tuple) and len(payload) == 3):
                        continue
                    tag, claimed, signature = payload
                    if tag != "inq" or claimed != src:
                        continue
                    if self.service.verify(signature, inquiry_message(src), src):
                        self._inquirers.append(src)
            return
        if rnd == self.p4_response:
            for _, payload in inbox:
                self._adopt(payload, forward=False)
            if self.common is not None:
                self.decide(self.common.max_value())
            self.halt()

    def next_activity(self, rnd: int) -> int:
        if rnd < self.p1_end:
            if self.ds is None:
                return self.p4_inquiry if self.common is None else self.p4_response
            return min(self.ds.next_activity(rnd), self.p1_end)
        if rnd < self.p3_end:
            if self._pending_forward:
                return rnd + 1
            return max(rnd + 1, self.p4_inquiry)
        return rnd + 1


class SilentByzantine(ByzantineProcess):
    """A Byzantine node that never sends anything (fail-silent)."""

    def next_activity(self, rnd: int) -> int:
        return rnd + 10_000


class EquivocatingSource(ByzantineProcess):
    """A Byzantine little node that equivocates in its own DS instance:
    value 0 (properly signed) to the first half of the committee, value 1
    to the second half.  Honest DS resolves its instance to null.
    """

    def __init__(self, pid: int, n: int, params: ProtocolParams, service: SignatureService):
        super().__init__(pid, n)
        self.params = params
        self.key = service.key_for(pid)
        self.m = params.byz_little_count

    def send(self, rnd: int):
        if rnd != 0 or self.pid >= self.m:
            return ()
        others = [q for q in range(self.m) if q != self.pid]
        half = len(others) // 2
        out = []
        for value, group in ((0, others[:half]), (1, others[half:])):
            if not group:
                continue
            chain = (self.key.sign(ds_message(self.pid, value)),)
            out.append(Multicast(tuple(group), ((self.pid, value, chain),)))
        return out

    def next_activity(self, rnd: int) -> int:
        return rnd + 1 if rnd < 1 else rnd + 10_000


class SpammingByzantine(ByzantineProcess):
    """A Byzantine node that floods fabricated certificates and junk
    every round; all of it fails verification at honest receivers, and
    none of it is charged to the non-faulty message count."""

    def __init__(self, pid: int, n: int, params: ProtocolParams, service: SignatureService):
        super().__init__(pid, n)
        self.params = params
        self.key = service.key_for(pid)
        self.m = params.byz_little_count
        self._horizon = params.t + 4 + params.scv_spread_rounds

    def send(self, rnd: int):
        if rnd > self._horizon:
            return ()
        # A forged "authenticated" set: self-signed only, so it can never
        # reach the certificate threshold at any honest verifier.
        values = tuple((i, 1) for i in range(self.m))
        forged = AuthenticatedSet(
            values, (self.key.sign(vector_message(values)),)
        )
        targets = tuple(q for q in range(min(self.n, 16)) if q != self.pid)
        return [Multicast(targets, forged)] if targets else []

    def next_activity(self, rnd: int) -> int:
        return rnd + 1 if rnd <= self._horizon else rnd + 10_000
