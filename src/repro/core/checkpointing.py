"""Algorithm ``Checkpointing`` (Fig. 6, Theorem 10), for ``t < n/5``.

Part 1 runs :class:`~repro.core.gossip.GossipProcess` with a dummy rumor
so every node assembles an extant set of node names.  Part 2 runs ``n``
concurrent instances of ``Few-Crashes-Consensus`` -- the ``i``-th with
input 1 iff node ``i`` is present in the local extant set -- with the
per-instance messages of a round combined into one message (the paper:
"these messages are combined into one big message").

The combination is exact, not approximate: the ``n`` instances of the
OR-based consensus evolve identically in *control flow* (who floods,
who survives probing, who inquires) and differ only in the candidate
*bit*, so a round's combined message is the ``n``-bit candidate mask and
the generic integer-join implementation of
:class:`~repro.core.consensus.FewCrashesConsensusProcess` runs all
instances at once.  Bit accounting is honest: a mask message costs up to
``n`` bits (``payload_bits`` of the mask), while message *counts* --
the metric of Theorem 10 -- match the combined algorithm.

The decided extant set is ``{i : instance i decided 1}``, satisfying:

1. a node that crashed before sending anything is in no decided set
   (its bit is 0 everywhere, so validity forces 0);
2. a node that halted operational is in every decided set (gossip puts
   its pair everywhere, so every input bit is 1 and validity forces 1);
3. all decided sets are equal (per-instance agreement).
"""

from __future__ import annotations

from typing import Any, Optional

from repro.core.consensus import FewCrashesConsensusProcess
from repro.core.gossip import GossipProcess, gossip_overlay
from repro.core.params import ProtocolParams
from repro.graphs.families import spread_graph
from repro.graphs.graph import Graph
from repro.sim.process import Process

__all__ = ["CheckpointingProcess", "mask_to_set", "set_to_mask"]

#: The dummy rumor gossiped in Part 1 (its value is irrelevant; only
#: presence of the pair matters).
_DUMMY_RUMOR = 1


def set_to_mask(members: set[int]) -> int:
    """Encode a set of pids as the bitmask consumed by the combined
    consensus instances."""
    mask = 0
    for pid in members:
        mask |= 1 << pid
    return mask


def mask_to_set(mask: int) -> frozenset[int]:
    """Decode a decision mask back into the extant set of pids."""
    members = set()
    index = 0
    while mask:
        if mask & 1:
            members.add(index)
        mask >>= 1
        index += 1
    return frozenset(members)


class CheckpointingProcess(Process):
    """Per-node checkpointing state machine: gossip, then combined
    consensus."""

    def __init__(
        self,
        pid: int,
        params: ProtocolParams,
        *,
        graph: Optional[Graph] = None,
        spread: Optional[Graph] = None,
    ):
        super().__init__(pid, params.n)
        self.params = params
        self._overlay = graph if graph is not None else gossip_overlay(params)
        self._spread = spread if spread is not None else spread_graph(params.n, params.seed)
        self.gossip = GossipProcess(pid, params, _DUMMY_RUMOR, graph=self._overlay)
        self._consensus_start = self.gossip.end_round
        self.consensus: Optional[FewCrashesConsensusProcess] = None

    def _ensure_consensus(self) -> FewCrashesConsensusProcess:
        if self.consensus is None:
            present = {q for q, _ in self.gossip.extant.items()}
            # The gossip overlay and the AEA committee overlay are the
            # same deterministic graph (both G(little_count, d) with the
            # shared seed), so it is passed straight through.
            proc = FewCrashesConsensusProcess(
                self.pid,
                self.params,
                set_to_mask(present),
                aea_graph=self._overlay,
                spread=self._spread,
            )
            # Shift the embedded consensus schedule to start after gossip.
            proc = _ShiftedConsensus(proc, self._consensus_start)
            self.consensus = proc
        return self.consensus

    def send(self, rnd: int):
        if rnd < self._consensus_start:
            return self.gossip.send(rnd)
        return self._ensure_consensus().send(rnd)

    def receive(self, rnd: int, inbox: list[tuple[int, Any]]) -> None:
        if rnd < self._consensus_start:
            self.gossip.receive(rnd, inbox)
            # Gossip halts itself; the checkpointing wrapper continues.
            self.gossip.halted = False
            return
        consensus = self._ensure_consensus()
        consensus.receive(rnd, inbox)
        if consensus.halted:
            if consensus.decided:
                self.decide(mask_to_set(consensus.decision))
            self.halt()

    def next_activity(self, rnd: int) -> int:
        if rnd < self._consensus_start - 1:
            return min(self.gossip.next_activity(rnd), self._consensus_start)
        if rnd < self._consensus_start:
            return self._consensus_start
        return self._ensure_consensus().next_activity(rnd)


class _ShiftedConsensus:
    """Run a :class:`FewCrashesConsensusProcess` with its schedule
    shifted by a fixed offset (so it can follow the gossip part)."""

    def __init__(self, inner: FewCrashesConsensusProcess, offset: int):
        self._inner = inner
        self._offset = offset

    def send(self, rnd: int):
        return self._inner.send(rnd - self._offset)

    def receive(self, rnd: int, inbox) -> None:
        self._inner.receive(rnd - self._offset, inbox)

    def next_activity(self, rnd: int) -> int:
        return self._inner.next_activity(rnd - self._offset) + self._offset

    @property
    def halted(self) -> bool:
        return self._inner.halted

    @property
    def decided(self) -> bool:
        return self._inner.decided

    @property
    def decision(self):
        return self._inner.decision
