"""Consensus with crashes: Figs. 3 and 4 (Theorems 7 and 8).

* :class:`FewCrashesConsensusProcess` -- ``Few-Crashes-Consensus``:
  Almost-Everywhere-Agreement followed by Spread-Common-Value, for
  ``t < n/5``.  Runs in ``O(t + log n)`` rounds with ``O(n + t log t)``
  one-bit messages.

* :class:`ManyCrashesConsensusProcess` -- ``Many-Crashes-Consensus(α)``:
  works for any ``0 < t < n``; flooding over a Ramanujan overlay on all
  nodes (Part 1, ``n − 1`` rounds), local probing (Part 2, survivors
  decide), and ``1 + ⌈lg((1+3α)n/4)⌉`` inquiry phases over doubling
  overlays (Part 3).  At most ``n + 3(1 + lg n)`` rounds and
  ``(5/(1−α))^8 · n·lg n`` one-bit messages (Theorem 8 / Corollary 1).

Like :class:`~repro.core.aea.AEAComponent`, the candidate algebra is
OR over non-negative integers, so the same code runs the paper's binary
consensus (candidates in ``{0, 1}``) and the ``n`` combined instances of
the checkpointing pipeline (``n``-bit masks).
"""

from __future__ import annotations

from typing import Any, Optional

from repro.core.aea import AEAComponent, aea_overlay
from repro.core.local_probe import LocalProbe
from repro.core.params import ProtocolParams
from repro.core.scv import SCVComponent
from repro.graphs.families import mcc_phase_graph, spread_graph
from repro.graphs.graph import Graph
from repro.graphs.ramanujan import certified_ramanujan_graph
from repro.sim.process import Multicast, Process

__all__ = [
    "FewCrashesConsensusProcess",
    "ManyCrashesConsensusProcess",
    "mcc_overlay",
]

# Inquiry and HELP payloads are single-bit flags: message roles are
# determined by the round in which they are sent (Section 4).
_INQUIRY = 1
_HELP = 1


class FewCrashesConsensusProcess(Process):
    """``Few-Crashes-Consensus`` (Fig. 3): AEA, then SCV.

    The AEA decision (present in at least ``3/5`` of the nodes by
    Theorem 5) is adopted as the SCV common value; the SCV decision is
    the consensus decision.
    """

    def __init__(
        self,
        pid: int,
        params: ProtocolParams,
        input_value: int,
        *,
        aea_graph: Optional[Graph] = None,
        spread: Optional[Graph] = None,
    ):
        super().__init__(pid, params.n)
        self.params = params
        overlay = aea_graph if aea_graph is not None else aea_overlay(params)
        self.aea = AEAComponent(pid, params, input_value, 0, overlay)
        self._spread = spread if spread is not None else spread_graph(params.n, params.seed)
        self.scv: Optional[SCVComponent] = None
        self._scv_start = self.aea.end_round

    def _ensure_scv(self) -> SCVComponent:
        if self.scv is None:
            self.scv = SCVComponent(
                self.pid,
                self.params,
                self.aea.decision,
                self._scv_start,
                self._spread,
            )
        return self.scv

    def send(self, rnd: int):
        if rnd < self._scv_start:
            return self.aea.outgoing(rnd)
        return self._ensure_scv().outgoing(rnd)

    def receive(self, rnd: int, inbox: list[tuple[int, Any]]) -> None:
        if rnd < self._scv_start:
            self.aea.incoming(rnd, inbox)
            return
        scv = self._ensure_scv()
        scv.incoming(rnd, inbox)
        if scv.finished(rnd):
            if scv.decision is not None:
                self.decide(scv.decision)
            self.halt()

    def next_activity(self, rnd: int) -> int:
        if rnd < self._scv_start - 1:
            return min(self.aea.next_activity(rnd), self._scv_start)
        if rnd < self._scv_start:
            return self._scv_start
        return self._ensure_scv().next_activity(rnd)


def mcc_overlay(params: ProtocolParams) -> Graph:
    """The full overlay ``G`` of Many-Crashes-Consensus:
    a certified (near-)Ramanujan graph on all ``n`` nodes with degree
    ``d(α)`` (paper: ``(4/(1−α))^8``, here capped; see
    :attr:`~repro.core.params.ProtocolParams.mcc_degree`)."""
    return certified_ramanujan_graph(
        params.n, params.mcc_degree, seed=params.seed, certify=params.n <= 2048
    )


class ManyCrashesConsensusProcess(Process):
    """``Many-Crashes-Consensus(α)`` (Fig. 4), for any ``0 < t < n``."""

    def __init__(
        self,
        pid: int,
        params: ProtocolParams,
        input_value: int,
        *,
        graph: Optional[Graph] = None,
    ):
        super().__init__(pid, params.n)
        if input_value < 0:
            raise ValueError(f"candidates must be non-negative, got {input_value}")
        self.params = params
        self.graph = graph if graph is not None else mcc_overlay(params)
        self.candidate = input_value

        self.flood_end = params.mcc_flood_rounds  # Part 1: [0, flood_end)
        probe_rounds = params.mcc_probe_rounds
        self.phase_start = self.flood_end + probe_rounds  # Part 3 base
        self.phase_count = params.mcc_phase_count
        self.phase_end = self.phase_start + 2 * self.phase_count
        # Recovery epilogue for degenerate fault patterns (e.g. t = n-1
        # leaving a lone survivor that local probing starves): one HELP
        # round, and -- only when someone is still undecided -- t + 1
        # rounds of tagged flooding over the complete graph.  Healthy
        # executions halt right after the silent HELP round, so Theorem
        # 8's round bound gains one round; see DESIGN.md.
        self.help_round = self.phase_end
        self.recovery_end = self.help_round + 1 + (params.t + 1)
        self.end_round = self.recovery_end

        self._pending_flood = self.candidate != 0
        self._recovering = False
        self._seen_decided: Optional[int] = None
        self._min_candidate = input_value
        self._inquirers: list[int] = []
        self._probe = LocalProbe(
            neighbors=self.graph.neighbors(pid),
            delta=params.mcc_delta,
            start_round=self.flood_end,
            rounds=probe_rounds,
            payload_fn=lambda: self.candidate,
        )

    # -- round classification ----------------------------------------------

    def _phase_of(self, rnd: int) -> Optional[tuple[int, bool]]:
        offset = rnd - self.phase_start
        if offset < 0 or rnd >= self.phase_end:
            return None
        return (offset // 2 + 1, offset % 2 == 0)

    # -- engine interface -----------------------------------------------------

    def send(self, rnd: int):
        out: list = []
        if rnd < self.flood_end:
            if self._pending_flood:
                self._pending_flood = False
                neighbors = self.graph.neighbors(self.pid)
                if neighbors:
                    out.append(Multicast(neighbors, self.candidate))
            return out
        if self._probe.in_window(rnd):
            probe_out = self._probe.outgoing(rnd)
            if probe_out is not None:
                dsts, payload = probe_out
                out.append(Multicast(dsts, payload))
            return out
        phase = self._phase_of(rnd)
        if phase is not None:
            index, is_inquiry = phase
            if is_inquiry and not self.decided:
                overlay = mcc_phase_graph(
                    self.params.n, index, self.params.alpha, self.params.seed
                )
                neighbors = overlay.neighbors(self.pid)
                if neighbors:
                    out.append(Multicast(neighbors, _INQUIRY))
            elif not is_inquiry and self.decided and self._inquirers:
                out.append(Multicast(tuple(self._inquirers), self.decision))
                self._inquirers = []
            return out
        everyone = tuple(q for q in range(self.n) if q != self.pid)
        if rnd == self.help_round:
            if not self.decided and everyone:
                out.append(Multicast(everyone, _HELP))
        elif self.help_round < rnd < self.recovery_end:
            if self._recovering and everyone:
                decided_value = self.decision if self.decided else self._seen_decided
                out.append(Multicast(everyone, (decided_value, self._min_candidate)))
        return out

    def receive(self, rnd: int, inbox: list[tuple[int, Any]]) -> None:
        if rnd < self.flood_end:
            merged = self.candidate
            for _, payload in inbox:
                merged |= payload
            if merged != self.candidate:
                self.candidate = merged
                if rnd + 1 < self.flood_end:
                    self._pending_flood = True
            return
        if self._probe.in_window(rnd):
            self._probe.note_receptions(rnd, len(inbox))
            merged = self.candidate
            for _, payload in inbox:
                merged |= payload
            self.candidate = merged
            if self._probe.finished(rnd) and self._probe.survived:
                self.decide(self.candidate)
            return
        phase = self._phase_of(rnd)
        if phase is not None:
            _, is_inquiry = phase
            if is_inquiry:
                if self.decided and inbox:
                    self._inquirers = [src for src, _ in inbox]
            else:
                if not self.decided and inbox:
                    self.decide(inbox[0][1])
            return
        if rnd == self.help_round:
            self._min_candidate = self.candidate
            if not self.decided or inbox:
                # Someone (possibly this node) still needs a decision:
                # enter the recovery flood.
                self._recovering = True
            else:
                self.halt()
            return
        if self.help_round < rnd < self.recovery_end:
            for _, payload in inbox:
                decided_value, min_candidate = payload
                if decided_value is not None and self._seen_decided is None:
                    self._seen_decided = decided_value
                if min_candidate < self._min_candidate:
                    self._min_candidate = min_candidate
            if rnd == self.recovery_end - 1:
                if not self.decided:
                    if self._seen_decided is not None:
                        self.decide(self._seen_decided)
                    else:
                        self.decide(self._min_candidate)
                self.halt()

    def next_activity(self, rnd: int) -> int:
        if rnd < self.flood_end:
            if self._pending_flood:
                return rnd + 1
            return max(rnd + 1, self.flood_end)
        if rnd < self.phase_start:
            return rnd + 1
        if rnd < self.phase_end:
            if not self.decided or self._inquirers:
                return rnd + 1
            return max(rnd + 1, self.help_round)
        if rnd < self.recovery_end:
            if self._recovering or rnd == self.help_round:
                return rnd + 1
            return max(rnd + 1, self.recovery_end - 1)
        return rnd + 1
