"""The Dolev–Strong authenticated-broadcast substrate (``DS-algorithm``).

Section 7 uses Dolev & Strong's t-resilient Byzantine Broadcast [24] as
a black box: ``5t`` little nodes run ``5t`` *parallel* instances (one
per little source), with per-round messages between a sender/receiver
pair combined into one.  This module implements that combined parallel
execution as a component over a signature service.

Protocol (relative rounds ``ρ = 0 .. t``):

* ``ρ = 0``: source ``j`` signs ``("ds", j, v_j)`` and sends it to every
  little node.
* On receiving, at round ``ρ``, a chain on value ``v`` for instance
  ``j`` with at least ``ρ + 1`` *distinct valid little* signatures whose
  first signer is ``j``: accept ``v`` (at most two values tracked per
  instance), and -- if newly accepted and relay rounds remain -- append
  the own signature and relay to every little node at round ``ρ + 1``.
* After round ``t``: instance ``j`` resolves to its unique accepted
  value, or ``None`` (null) if zero or several values were accepted.

A final *certificate round* (``ρ = t + 1``, the assembly step for the
paper's "authenticated common set of values" with at least ``4t`` little
signatures) has every little node sign the canonical resolved vector and
exchange the signatures; honest nodes end with an
:class:`AuthenticatedSet` carrying ``≥ m − t`` little signatures.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.auth.signatures import Signature, SignatureService, SigningKey
from repro.core.params import ProtocolParams
from repro.sim.process import Multicast

__all__ = ["AuthenticatedSet", "ParallelDolevStrong", "ds_message", "vector_message"]


def ds_message(instance: int, value: Any) -> tuple:
    """Canonical signed form of a DS relay for ``instance``/``value``."""
    return ("ds", instance, value)


def vector_message(values: tuple) -> tuple:
    """Canonical signed form of the resolved value vector."""
    return ("abset", values)


class AuthenticatedSet:
    """An authenticated common set of values (Fig. 7's central object).

    ``values`` is the canonical tuple ``((instance, value-or-None), ...)``
    over all little instances; ``signatures`` are little-node signatures
    on :func:`vector_message`.  Verification = at least the certificate
    threshold of distinct valid little signatures.
    """

    __slots__ = ("values", "signatures")

    def __init__(self, values: tuple, signatures: tuple):
        self.values = values
        self.signatures = signatures

    def bits_size(self) -> int:
        value_bits = 32 * max(1, len(self.values))
        return value_bits + 256 * len(self.signatures)

    def max_value(self):
        """The decision rule: the maximum non-null value."""
        present = [v for _, v in self.values if v is not None]
        return max(present) if present else None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<AuthenticatedSet {len(self.values)} values, {len(self.signatures)} sigs>"


class ParallelDolevStrong:
    """Combined parallel Dolev–Strong for the little committee.

    One instance of this component runs at each *honest* little node;
    Byzantine little nodes substitute arbitrary behaviour (they hold
    only their own signing key, so the acceptance rule contains them).
    """

    def __init__(
        self,
        pid: int,
        params: ProtocolParams,
        input_value: Any,
        start_round: int,
        service: SignatureService,
        key: SigningKey,
        committee: int | None = None,
    ):
        self.pid = pid
        self.params = params
        self.service = service
        self.key = key
        self.start_round = start_round
        #: Instances/participants; Fig. 7 uses the little committee, the
        #: DS-everywhere baseline passes ``committee=n``.
        self.m = committee if committee is not None else params.byz_little_count
        self.relay_rounds = params.t + 1  # ρ = 0 .. t
        self.cert_round = start_round + self.relay_rounds
        self.end_round = self.cert_round + 1

        self.input_value = input_value
        #: instance -> {value: chain} for accepted values (at most 2 kept).
        self.accepted: dict[int, dict[Any, tuple]] = {}
        #: relays queued for the next round: list of (instance, value, chain).
        self._outbox: list[tuple[int, Any, tuple]] = []
        self.resolved: Optional[tuple] = None
        self.certificate: Optional[AuthenticatedSet] = None
        self._cert_sigs: list[Signature] = []

    # -- helpers ---------------------------------------------------------

    def _little(self) -> tuple[int, ...]:
        return tuple(q for q in range(self.m) if q != self.pid)

    def _chain_valid(self, instance: int, value: Any, chain: tuple, rho: int) -> bool:
        """Acceptance check for a chain received at relative round ``rho``."""
        if not chain or len(chain) < rho + 1:
            return False
        message = ds_message(instance, value)
        signers: list[int] = []
        for signature in chain:
            if not isinstance(signature, Signature):
                return False
            if signature.signer >= self.m:
                return False
            if not self.service.verify(signature, message, signature.signer):
                return False
            signers.append(signature.signer)
        if len(set(signers)) != len(signers):
            return False
        return signers[0] == instance

    def _resolve(self) -> tuple:
        items = []
        for instance in range(self.m):
            values = self.accepted.get(instance, {})
            if len(values) == 1:
                (value,) = values.keys()
            else:
                value = None  # zero accepted, or equivocation detected
            items.append((instance, value))
        return tuple(items)

    # -- component interface -----------------------------------------------

    def outgoing(self, rnd: int) -> list:
        rho = rnd - self.start_round
        if rho < 0 or rnd >= self.end_round:
            return []
        out: list = []
        if rho == 0:
            chain = (self.key.sign(ds_message(self.pid, self.input_value)),)
            self.accepted[self.pid] = {self.input_value: chain}
            items = ((self.pid, self.input_value, chain),)
            out.append(Multicast(self._little(), items))
        elif rho < self.relay_rounds:
            if self._outbox:
                items = tuple(self._outbox)
                self._outbox = []
                out.append(Multicast(self._little(), items))
        elif rnd == self.cert_round:
            self.resolved = self._resolve()
            own = self.key.sign(vector_message(self.resolved))
            self._cert_sigs.append(own)
            out.append(Multicast(self._little(), ("cert", own)))
        return out

    def incoming(self, rnd: int, inbox: list[tuple[int, Any]]) -> None:
        rho = rnd - self.start_round
        if rho < 0 or rnd >= self.end_round:
            return
        if rho < self.relay_rounds:
            for _, payload in inbox:
                if not isinstance(payload, tuple):
                    continue
                for item in payload:
                    if not (isinstance(item, tuple) and len(item) == 3):
                        continue
                    instance, value, chain = item
                    if not isinstance(instance, int) or not 0 <= instance < self.m:
                        continue
                    bucket = self.accepted.setdefault(instance, {})
                    if value in bucket or len(bucket) >= 2:
                        continue
                    if not self._chain_valid(instance, value, tuple(chain), rho):
                        continue
                    new_chain = tuple(chain) + (
                        self.key.sign(ds_message(instance, value)),
                    )
                    bucket[value] = new_chain
                    if rho + 1 < self.relay_rounds:
                        self._outbox.append((instance, value, new_chain))
        elif rnd == self.cert_round:
            assert self.resolved is not None
            message = vector_message(self.resolved)
            for src, payload in inbox:
                if not (isinstance(payload, tuple) and len(payload) == 2):
                    continue
                tag, signature = payload
                if tag != "cert":
                    continue
                if self.service.verify(signature, message, src):
                    self._cert_sigs.append(signature)
            self.certificate = AuthenticatedSet(self.resolved, tuple(self._cert_sigs))

    def next_activity(self, rnd: int) -> int:
        if rnd < self.start_round:
            return self.start_round
        if rnd < self.cert_round:
            return rnd + 1 if self._outbox else self.cert_round
        return rnd + 1

    def finished(self, rnd: int) -> bool:
        return rnd >= self.cert_round
