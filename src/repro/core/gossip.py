"""Algorithm ``Gossip`` (Fig. 5, Theorem 9), for ``t < n/5``.

Every node starts with a *rumor*; every node must decide on an *extant
set* of ``(node, rumor)`` pairs such that (1) a node that crashed before
sending anything appears in no decided set, and (2) a node that halted
operational appears in every decided set (decided sets need not be
equal).

Structure (little nodes = the committee of smallest names):

* **Part 1 -- build extant sets.**  ``⌈lg n⌉`` phases; in phase ``i`` a
  little node that survived the previous phase's probing *inquires* its
  neighbors in the Lemma 5 graph ``G_i`` (degree doubling per phase)
  that are still absent from its extant set; inquired nodes respond with
  their own pair; then the little nodes run local probing on the
  committee graph ``G``, piggybacking their extant sets.
* **Part 2 -- build completion sets.**  Symmetric phases in which little
  survivors *push* their (now complete) extant sets to ``G_i`` neighbors
  not yet in their *completion set* (the set of nodes known to have been
  served), and probing spreads completion sets so the little nodes share
  the coverage work.

Implementation note: probe messages logically carry "the current extant
set" (linear-size messages, as the paper states); on the wire we ship a
*delta* since this sender's previous probe send, while the charged bit
size is that of the full set (:class:`SetDelta.bits_size`).  This is
behaviour-preserving because knowledge is monotone and delivery between
operational nodes is guaranteed, and it keeps the simulator's processing
cost near-linear.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.core.local_probe import LocalProbe
from repro.core.params import ProtocolParams
from repro.graphs.families import scv_inquiry_graph
from repro.graphs.graph import Graph
from repro.graphs.ramanujan import certified_ramanujan_graph
from repro.sim.process import Multicast, Process

__all__ = ["GossipProcess", "SetDelta", "gossip_overlay"]

_INQUIRY = 1

#: Bits charged per extant-set entry: a node name (~log n, padded), a
#: rumor word and framing.  Only the totals matter for the experiments.
_ENTRY_BITS = 48


class SetDelta:
    """Wire form of "the current extant/completion set".

    ``entries`` carries only the pairs added since this sender's last
    probe send; ``full_size`` is the size of the sender's full set, used
    both for bit accounting (the paper sends the whole set) and as a
    consistency check.
    """

    __slots__ = ("entries", "full_size")

    def __init__(self, entries: tuple, full_size: int):
        self.entries = entries
        self.full_size = full_size

    def bits_size(self) -> int:
        return max(1, self.full_size * _ENTRY_BITS)


def gossip_overlay(params: ProtocolParams) -> Graph:
    """The committee probing graph ``G`` (paper: ``G(5t, 5^8)``)."""
    return certified_ramanujan_graph(
        params.little_count, params.little_degree, seed=params.seed
    )


class GossipProcess(Process):
    """Per-node gossip state machine."""

    def __init__(
        self,
        pid: int,
        params: ProtocolParams,
        rumor: Any,
        *,
        graph: Optional[Graph] = None,
    ):
        super().__init__(pid, params.n)
        self.params = params
        self.graph = graph if graph is not None else gossip_overlay(params)
        self.is_little = params.is_little(pid)

        #: Extant set: known (node, rumor) pairs; absent nodes are the
        #: missing keys ("nil pairs").
        self.extant: dict[int, Any] = {pid: rumor}
        #: Completion set (Part 2): nodes known to have been served.
        self.completion: set[int] = {pid}

        self.gamma = params.little_probe_rounds
        self.phase_len = 2 + self.gamma
        self.phases = params.gossip_phase_count
        self.part1_end = self.phases * self.phase_len
        self.end_round = 2 * self.part1_end

        self._survived_last = True  # phase 1 has no survival gate
        #: Whether this node performed the final (complete-graph) Part 1
        #: inquiry.  Part 2 pushes are gated on this in addition to the
        #: paper's previous-probing gate: a pusher that did the final
        #: inquiry provably holds the pair of every node alive at that
        #: round, which hardens condition (2) against the (rare) case of
        #: a node pausing late in Part 1 and recovering in Part 2.
        self._did_final_inquiry = False
        self._probe: Optional[LocalProbe] = None
        self._inquirers: list[int] = []
        self._extant_delta: dict[int, Any] = dict(self.extant)
        self._completion_delta: set[int] = set(self.completion)

    # -- schedule ------------------------------------------------------------

    def _locate(self, rnd: int) -> Optional[tuple[int, int, int]]:
        """Map ``rnd`` to ``(part, phase_index, offset)``.

        ``part`` is 1 or 2, ``phase_index`` is 1-based, ``offset`` is the
        position within the phase: 0 = inquiry/push, 1 = response/absorb,
        ``2 .. 1+γ`` = probing rounds.
        """
        if rnd < 0 or rnd >= self.end_round:
            return None
        part = 1 if rnd < self.part1_end else 2
        local = rnd if part == 1 else rnd - self.part1_end
        return (part, local // self.phase_len + 1, local % self.phase_len)

    def _probe_for(self, rnd: int, offset: int) -> LocalProbe:
        """The probing instance of the current phase (created at its
        first probing round)."""
        if offset == 2 or self._probe is None or not self._probe.in_window(rnd):
            start = rnd - (offset - 2)
            if self._probe is None or self._probe.start_round != start:
                self._probe = LocalProbe(
                    neighbors=self.graph.neighbors(self.pid) if self.is_little else (),
                    delta=self.params.little_delta,
                    start_round=start,
                    rounds=self.gamma,
                    payload_fn=lambda: None,  # payloads are built inline
                )
        return self._probe

    # -- engine interface -------------------------------------------------------

    def send(self, rnd: int):
        where = self._locate(rnd)
        if where is None:
            return ()
        part, index, offset = where
        out: list = []
        if offset == 0:
            if self.is_little and self._survived_last:
                overlay = scv_inquiry_graph(self.n, index, self.params.seed)
                if part == 1:
                    if index == self.phases:
                        self._did_final_inquiry = True
                    absent = tuple(
                        q for q in overlay.neighbors(self.pid) if q not in self.extant
                    )
                    if absent:
                        out.append(Multicast(absent, _INQUIRY))
                elif self._did_final_inquiry:
                    fresh = tuple(
                        q
                        for q in overlay.neighbors(self.pid)
                        if q not in self.completion
                    )
                    if fresh:
                        payload = SetDelta(tuple(self.extant.items()), len(self.extant))
                        out.append(Multicast(fresh, payload))
                        self.completion.update(fresh)
                        self._completion_delta.update(fresh)
        elif offset == 1:
            if self._inquirers:
                own_pair = (self.pid, self.extant[self.pid])
                out.append(Multicast(tuple(self._inquirers), own_pair))
                self._inquirers = []
        else:
            if self.is_little:
                probe = self._probe_for(rnd, offset)
                if not probe.paused and probe.neighbors:
                    if part == 1:
                        payload = SetDelta(
                            tuple(self._extant_delta.items()), len(self.extant)
                        )
                        self._extant_delta = {}
                    else:
                        payload = SetDelta(
                            tuple(self._completion_delta), len(self.completion)
                        )
                        self._completion_delta = set()
                    out.append(Multicast(probe.neighbors, payload))
        return out

    def receive(self, rnd: int, inbox: list[tuple[int, Any]]) -> None:
        where = self._locate(rnd)
        if where is None:
            return
        part, _, offset = where
        if offset == 0:
            if part == 1:
                if inbox:
                    self._inquirers = [src for src, _ in inbox]
            else:
                # Part 2 pushes arrive in the same round they are sent.
                for _, payload in inbox:
                    self._absorb_extant(payload.entries)
        elif offset == 1:
            if part == 1:
                for _, payload in inbox:
                    q, rumor = payload
                    self._learn(q, rumor)
            # Part 2 offset 1 is an absorption slack round; pushes were
            # already merged at offset 0.
        else:
            if self.is_little:
                probe = self._probe_for(rnd, offset)
                probe.note_receptions(rnd, len(inbox))
                for _, payload in inbox:
                    if part == 1:
                        self._absorb_extant(payload.entries)
                    else:
                        fresh = [
                            q for q in payload.entries if q not in self.completion
                        ]
                        self.completion.update(fresh)
                        self._completion_delta.update(fresh)
                if probe.finished(rnd):
                    self._survived_last = probe.survived
        if rnd >= self.end_round - 1:
            self.decide(tuple(sorted(self.extant.items())))
            self.halt()

    def next_activity(self, rnd: int) -> int:
        if self.is_little:
            return rnd + 1
        if self._inquirers:
            return rnd + 1
        return max(rnd + 1, self.end_round - 1)

    # -- internals ----------------------------------------------------------------

    def _learn(self, q: int, rumor: Any) -> None:
        if q not in self.extant:
            self.extant[q] = rumor
            self._extant_delta[q] = rumor

    def _absorb_extant(self, entries: tuple) -> None:
        for q, rumor in entries:
            self._learn(q, rumor)
