"""The local-probing primitive (Proposition 1, used by Figs. 1, 4, 5).

Local probing runs for ``γ`` consecutive rounds on an overlay graph:
normally a participating node sends a message to each overlay neighbor
every round; if in some round it receives fewer than ``δ`` messages it
*pauses prematurely* (stops sending for the remainder of the window).
A node *survives* the instance if it never paused.

Proposition 1 ties survival to ``(γ, δ)``-dense neighborhoods and
``δ``-survival subsets; the tests check both directions against the
combinatorial definitions in :mod:`repro.graphs.compactness`.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

__all__ = ["LocalProbe"]


class LocalProbe:
    """Per-process state machine for one local-probing instance.

    Parameters
    ----------
    neighbors:
        The process's overlay neighborhood.
    delta:
        Pause threshold ``δ``: receiving fewer than ``δ`` probe messages
        in a probing round pauses the node.
    start_round, rounds:
        The probing window ``[start_round, start_round + rounds)`` in
        absolute round numbers.
    payload_fn:
        Called each probing round to produce the payload to send (the
        algorithms piggyback their current rumor / extant set / completion
        set on probe messages).
    """

    def __init__(
        self,
        neighbors: tuple[int, ...],
        delta: int,
        start_round: int,
        rounds: int,
        payload_fn: Callable[[], Any],
    ):
        self.neighbors = neighbors
        self.delta = delta
        self.start_round = start_round
        self.rounds = rounds
        self.payload_fn = payload_fn
        self.paused = False
        self._last_probe_round = start_round + rounds - 1

    def in_window(self, rnd: int) -> bool:
        """Whether ``rnd`` lies in the probing window."""
        return self.start_round <= rnd <= self._last_probe_round

    def outgoing(self, rnd: int) -> Optional[tuple[tuple[int, ...], Any]]:
        """Destinations and payload to send this probing round.

        ``None`` when outside the window or paused.  A node with an
        empty neighborhood trivially participates but sends nothing.
        """
        if not self.in_window(rnd) or self.paused:
            return None
        if not self.neighbors:
            return None
        return (self.neighbors, self.payload_fn())

    def note_receptions(self, rnd: int, count: int) -> None:
        """Account the probe messages received in round ``rnd``.

        Receiving fewer than ``δ`` messages in any probing round pauses
        the node prematurely (it keeps receiving but stops sending).
        """
        if not self.in_window(rnd) or self.paused:
            return
        if count < self.delta:
            self.paused = True

    def finished(self, rnd: int) -> bool:
        """Whether the probing window has fully elapsed by round ``rnd``."""
        return rnd >= self._last_probe_round

    @property
    def survived(self) -> bool:
        """Survival = never paused (valid once the window has elapsed)."""
        return not self.paused
