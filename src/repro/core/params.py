"""Parameter derivation shared by all algorithms.

The paper fixes its constants for the proofs (overlay degree
``d = 5^8``, ``5t`` little nodes, probing threshold
``δ(d) = ½(d^{7/8} − d^{5/8})``, probing duration ``2 + lg n``).  Those
constants make the *asymptotic* analysis go through but are unusable at
simulation scale (``5^8 = 390625 > n``), so this module centralises the
mapping from the paper's formulas to practical values:

* the *shape* of every formula is preserved (``δ`` is computed from the
  actual degree with the paper's formula; probing runs ``2 + ⌈lg m⌉``
  rounds; flooding runs the paper's worst-case path length);
* only magnitudes are capped (degree at :data:`DEGREE_CAP` or ``m − 1``).

``ProtocolParams.paper()`` returns the uncapped values for the
bound-checking tests and documentation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from repro.graphs.ramanujan import paper_delta

__all__ = ["ProtocolParams", "DEGREE_CAP", "LITTLE_FLOOR"]

#: Practical cap on overlay vertex degree.  32 keeps the simulations
#: fast while giving λ/d ≈ 0.35, comfortably enough expansion for the
#: flooding and probing arguments at the scales we run (n ≤ ~4000).
DEGREE_CAP = 32

#: Minimum size of the little-node committee.  The paper assumes ``5t``
#: little nodes with ``t ≥ 1``; the floor keeps the committee overlay
#: non-degenerate for ``t = 0`` and tiny ``t``.
LITTLE_FLOOR = 8


def _ceil_log2(x: int) -> int:
    return max(1, math.ceil(math.log2(max(2, x))))


@dataclass(frozen=True)
class ProtocolParams:
    """All derived quantities for one ``(n, t)`` instance.

    Attributes
    ----------
    n, t:
        System size and the fault bound, both known to every node
        (Section 2: "the numbers n and t are known ... and can be parts
        of codes of algorithms").
    seed:
        Seed of every deterministic overlay construction; part of the
        algorithm code, so two nodes always build identical graphs.
    degree_cap:
        Practical overlay-degree cap (see module docstring).
    """

    n: int
    t: int
    seed: int = 0
    degree_cap: int = DEGREE_CAP
    little_floor: int = LITTLE_FLOOR

    def __post_init__(self) -> None:
        if self.n < 1:
            raise ValueError(f"n must be positive, got {self.n}")
        if not 0 <= self.t < self.n:
            raise ValueError(f"t must satisfy 0 <= t < n, got t={self.t}, n={self.n}")

    # -- little nodes ----------------------------------------------------

    @property
    def little_count(self) -> int:
        """Size of the little-node committee: ``min(n, max(5t, floor))``."""
        return min(self.n, max(5 * self.t, self.little_floor))

    def is_little(self, pid: int) -> bool:
        """Little nodes are the ``little_count`` smallest names."""
        return pid < self.little_count

    def related_little(self, pid: int) -> int:
        """The unique little node related to ``pid`` (same residue
        modulo the committee size)."""
        return pid % self.little_count

    def related_nodes(self, little_pid: int) -> list[int]:
        """All non-little nodes related to ``little_pid``."""
        m = self.little_count
        return list(range(little_pid + m, self.n, m))

    # -- the committee overlay G (AEA Parts 1-2, Gossip probing) ---------

    @property
    def little_degree(self) -> int:
        """Practical degree of the committee Ramanujan graph ``G``.

        Paper: ``d = 5^8``; here capped at ``degree_cap`` and at
        ``m − 1`` (complete committee for tiny committees).
        """
        return min(self.degree_cap, max(1, self.little_count - 1))

    @property
    def little_delta(self) -> int:
        """Probing threshold ``δ`` from the paper formula on the actual degree."""
        return paper_delta(self.little_degree)

    @property
    def little_probe_rounds(self) -> int:
        """Probing duration ``γ = 2 + ⌈lg m⌉`` (Fig. 1 Part 2)."""
        return 2 + _ceil_log2(self.little_count)

    @property
    def little_flood_rounds(self) -> int:
        """Part 1 flooding duration, the paper's ``5t − 1`` worst-case
        path length over the committee (at least 1)."""
        return max(1, self.little_count - 1)

    # -- the full overlay for Many-Crashes-Consensus ---------------------

    @property
    def alpha(self) -> float:
        """``α = t / n``."""
        return self.t / self.n

    @property
    def mcc_degree(self) -> int:
        """Degree ``d(α) = (4/(1−α))^8`` capped for practicality.

        The paper's value explodes as ``α → 1``; the cap grows with
        ``1/(1−α)`` (more faults need denser overlays) but stays
        simulation-friendly.
        """
        if self.t == 0:
            return min(self.degree_cap, max(1, self.n - 1))
        nominal = (4.0 / (1.0 - self.alpha)) ** 8
        practical_cap = max(
            self.degree_cap, math.ceil(3.0 * self.degree_cap / (1.0 - self.alpha))
        )
        return min(max(1, self.n - 1), min(math.ceil(nominal), practical_cap))

    @property
    def mcc_delta(self) -> int:
        """Probing threshold for the full overlay.

        The paper formula on the capped degree can exceed the minimum
        degree the overlay retains after ``t`` adversarial crashes;
        survival then becomes impossible and the algorithm deadlocks.
        We take the paper formula clipped to ``(1−α)·d/4``, which keeps
        the survival-set argument alive at practical degrees.
        """
        formula = paper_delta(self.mcc_degree)
        safety = max(1, math.floor((1.0 - self.alpha) * self.mcc_degree / 4.0))
        return max(1, min(formula, safety))

    @property
    def mcc_probe_rounds(self) -> int:
        """``2 + ⌈lg n⌉`` (Fig. 4 Part 2)."""
        return 2 + _ceil_log2(self.n)

    @property
    def mcc_flood_rounds(self) -> int:
        """Part 1 flooding duration ``n − 1`` (Fig. 4)."""
        return max(1, self.n - 1)

    @property
    def mcc_phase_count(self) -> int:
        """``1 + ⌈lg((1+3α)n/4)⌉`` phases in Part 3 (Fig. 4)."""
        m_value = (1.0 + 3.0 * self.alpha) * self.n / 4.0
        return 1 + max(1, math.ceil(math.log2(max(2.0, m_value))))

    # -- Spread-Common-Value ----------------------------------------------

    @property
    def scv_spread_rounds(self) -> int:
        """Part 1 duration ``⌈log_{3/2}((2n/5) / max(t, n/t))⌉`` plus
        slack (Fig. 2).

        ``t = 0`` degenerates the formula; the practical reading is the
        expander-flooding time ``O(log n)``, which the slack term also
        guards for small committees.
        """
        if self.t == 0:
            denominator = float(self.n)
        else:
            denominator = max(float(self.t), self.n / self.t)
        numerator = max(2.0 * self.n / 5.0, 1.0)
        base = math.log(max(numerator / denominator, 1.0), 1.5)
        return math.ceil(base) + _ceil_log2(self.n) + 2

    @property
    def scv_direct_inquiry(self) -> bool:
        """Whether Part 2 uses the ``t² ≤ n`` branch (inquire all little
        nodes directly)."""
        return self.t * self.t <= self.n

    @property
    def scv_phase_count(self) -> int:
        """``⌈lg(t + 1)⌉`` phases in the doubling branch, plus slack.

        The +2 slack covers the gap between the paper's probabilistic
        Lemma 5 graphs and our seeded instantiation; the final phases
        are degree-capped complete graphs so termination is guaranteed.
        """
        return max(1, math.ceil(math.log2(self.t + 2))) + 2

    # -- Gossip -----------------------------------------------------------

    @property
    def gossip_phase_count(self) -> int:
        """``⌈lg n⌉`` phases in each gossip part (Fig. 5)."""
        return _ceil_log2(self.n)

    # -- Byzantine / AB-Consensus ------------------------------------------

    @property
    def byz_little_count(self) -> int:
        """Committee for AB-Consensus: ``min(n, max(5t, floor))``.

        Fig. 7 requires ``t < n/2`` overall and uses ``5t`` little
        nodes; when ``5t > n`` the committee is everyone (the paper's
        linear-communication regime is ``t = O(√n)`` anyway).
        """
        return min(self.n, max(5 * self.t, self.little_floor))

    @property
    def byz_certificate_threshold(self) -> int:
        """Signatures required on an authenticated common set.

        Paper: ``4t`` little signatures.  With ``m`` little nodes of
        which at most ``t`` are Byzantine, honest nodes can always
        gather ``m − t`` signatures and Byzantine nodes at most ``t``;
        any threshold in ``(t, m − t]`` is sound, and ``4t`` is exactly
        the paper's choice when ``m = 5t``.
        """
        m = self.byz_little_count
        return max(1, min(4 * self.t, m - self.t)) if self.t > 0 else 1

    # -- misc ---------------------------------------------------------------

    def with_seed(self, seed: int) -> "ProtocolParams":
        """A copy with a different overlay seed."""
        return replace(self, seed=seed)

    @classmethod
    def paper(cls, n: int, t: int) -> "ProtocolParams":
        """The paper's uncapped constants (degree ``5^8``), for
        documentation and bound computation only -- building overlays at
        this degree is infeasible unless ``n`` is astronomically large.
        """
        return cls(n=n, t=t, degree_cap=5**8)
