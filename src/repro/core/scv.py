"""Algorithm ``Spread-Common-Value`` (Fig. 2, Theorem 6).

An instance starts with at least ``κn`` nodes holding a *common value*
(everyone else holds ``null``); every non-faulty node must decide on the
common value.  Part 1 floods the value over a constant-degree expander
``H``; Part 2 mops up: if ``t² ≤ n`` the undecided nodes ask every
little node directly, otherwise they run ``⌈lg(t+1)⌉`` inquiry phases
over the Lemma 5 graphs ``G_i`` of doubling degree.

Values are opaque (the checkpointing pipeline passes ``n``-bit masks);
in the crash model all non-null values in one instance are equal, so a
node adopts the first value it receives.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.core.params import ProtocolParams
from repro.graphs.families import scv_inquiry_graph, spread_graph
from repro.graphs.graph import Graph
from repro.sim.process import Multicast, Process

__all__ = ["SCVComponent", "SCVProcess"]

#: Payload of an inquiry message; the round number determines the role
#: (Section 4: "the role of a message is determined by the round in
#: which it is sent"), so one bit suffices.
_INQUIRY = 1


class SCVComponent:
    """Per-node state machine for Spread-Common-Value.

    Parameters
    ----------
    value:
        The common value, or ``None`` at non-initialised nodes.
    start_round:
        Absolute round at which Part 1 begins.
    spread:
        The shared expander ``H``.
    """

    def __init__(
        self,
        pid: int,
        params: ProtocolParams,
        value: Optional[Any],
        start_round: int,
        spread: Optional[Graph] = None,
    ):
        self.pid = pid
        self.params = params
        self.value = value
        self.start_round = start_round
        self.spread = spread if spread is not None else spread_graph(params.n, params.seed)

        self.spread_rounds = params.scv_spread_rounds
        #: Part 2 begins right after the last flooding round.
        self.inquiry_start = start_round + self.spread_rounds
        if params.scv_direct_inquiry:
            # Branch A (t² ≤ n): one inquiry round, one response round.
            self.end_round = self.inquiry_start + 2
        else:
            self.end_round = self.inquiry_start + 2 * params.scv_phase_count

        # Forward the value on the round after we first hold it.
        self._pending_forward = value is not None
        self._inquirers: list[int] = []

    # -- helpers -----------------------------------------------------------

    def _phase_of(self, rnd: int) -> Optional[tuple[int, bool]]:
        """Map ``rnd`` to ``(phase index, is_inquiry_round)`` of Part 2."""
        offset = rnd - self.inquiry_start
        if offset < 0 or rnd >= self.end_round:
            return None
        return (offset // 2 + 1, offset % 2 == 0)

    # -- component interface ------------------------------------------------

    def outgoing(self, rnd: int) -> list:
        out: list = []
        if self.start_round <= rnd < self.inquiry_start:
            if self._pending_forward:
                self._pending_forward = False
                neighbors = self.spread.neighbors(self.pid)
                if neighbors:
                    out.append(Multicast(neighbors, self.value))
            return out

        phase = self._phase_of(rnd)
        if phase is None:
            return out
        index, is_inquiry = phase
        if self.params.scv_direct_inquiry:
            if is_inquiry and self.value is None:
                little = tuple(
                    q for q in range(self.params.little_count) if q != self.pid
                )
                if little:
                    out.append(Multicast(little, _INQUIRY))
            elif not is_inquiry and self.value is not None and self._inquirers:
                out.append(Multicast(tuple(self._inquirers), self.value))
                self._inquirers = []
        else:
            if is_inquiry and self.value is None:
                graph = scv_inquiry_graph(self.params.n, index, self.params.seed)
                neighbors = graph.neighbors(self.pid)
                if neighbors:
                    out.append(Multicast(neighbors, _INQUIRY))
            elif not is_inquiry and self.value is not None and self._inquirers:
                out.append(Multicast(tuple(self._inquirers), self.value))
                self._inquirers = []
        return out

    def incoming(self, rnd: int, inbox: list[tuple[int, Any]]) -> None:
        if self.start_round <= rnd < self.inquiry_start:
            if self.value is None:
                for _, payload in inbox:
                    self.value = payload
                    if rnd + 1 < self.inquiry_start:
                        self._pending_forward = True
                    break
            return

        phase = self._phase_of(rnd)
        if phase is None:
            return
        _, is_inquiry = phase
        if is_inquiry:
            # Only inquiries travel in inquiry rounds (roles are fixed
            # by round number), so every sender is an inquirer.
            if self.value is not None and inbox:
                self._inquirers = [src for src, _ in inbox]
        else:
            # Symmetrically, only responses (values) travel here.
            if self.value is None and inbox:
                self.value = inbox[0][1]

    def next_activity(self, rnd: int) -> int:
        if rnd < self.inquiry_start:
            if self._pending_forward:
                return rnd + 1
            return max(rnd + 1, self.inquiry_start)
        if rnd < self.end_round:
            if self.value is None or self._inquirers:
                return rnd + 1
            # Decided and not responding: next duty is the final round
            # (where the wrapper halts).
            return max(rnd + 1, self.end_round - 1)
        return rnd + 1

    def finished(self, rnd: int) -> bool:
        return rnd >= self.end_round - 1

    @property
    def decision(self) -> Optional[Any]:
        return self.value


class SCVProcess(Process):
    """Standalone SCV wrapper (E6 benchmarks and unit tests)."""

    def __init__(
        self,
        pid: int,
        params: ProtocolParams,
        value: Optional[Any],
        spread: Optional[Graph] = None,
    ):
        super().__init__(pid, params.n)
        self.component = SCVComponent(pid, params, value, 0, spread)

    def send(self, rnd: int):
        return self.component.outgoing(rnd)

    def receive(self, rnd: int, inbox: list[tuple[int, Any]]) -> None:
        self.component.incoming(rnd, inbox)
        if self.component.finished(rnd):
            if self.component.decision is not None:
                self.decide(self.component.decision)
            self.halt()

    def next_activity(self, rnd: int) -> int:
        return self.component.next_activity(rnd)
