"""Overlay-graph substrate: (near-)Ramanujan constructions and the
combinatorics (expansion, compactness, dense neighborhoods) of paper
Section 3.
"""

from repro.graphs.compactness import (
    compactness_profile,
    dense_neighborhood,
    generalized_neighborhood,
    is_survival_subset,
    survival_subset,
)
from repro.graphs.expander import (
    edges_between,
    induced_volume,
    is_connected_within,
    is_ramanujan,
    mixing_lemma_gap,
    ramanujan_bound,
    second_eigenvalue,
    spectral_certificate,
)
from repro.graphs.families import (
    mcc_phase_degree,
    mcc_phase_graph,
    random_out_graph,
    scv_inquiry_degree,
    scv_inquiry_graph,
    spread_graph,
)
from repro.graphs.graph import Graph
from repro.graphs.lps import lps_graph, lps_parameters_ok, lps_vertex_count
from repro.graphs.ramanujan import (
    certified_ramanujan_graph,
    clear_graph_cache,
    complete_graph,
    ell_expansion_size,
    margulis_graph,
    paper_delta,
    paper_ell,
)

__all__ = [
    "Graph",
    "certified_ramanujan_graph",
    "clear_graph_cache",
    "compactness_profile",
    "complete_graph",
    "dense_neighborhood",
    "edges_between",
    "ell_expansion_size",
    "generalized_neighborhood",
    "induced_volume",
    "is_connected_within",
    "is_ramanujan",
    "is_survival_subset",
    "lps_graph",
    "lps_parameters_ok",
    "lps_vertex_count",
    "margulis_graph",
    "mcc_phase_degree",
    "mcc_phase_graph",
    "mixing_lemma_gap",
    "paper_delta",
    "paper_ell",
    "ramanujan_bound",
    "random_out_graph",
    "scv_inquiry_degree",
    "scv_inquiry_graph",
    "second_eigenvalue",
    "spectral_certificate",
    "spread_graph",
    "survival_subset",
]
