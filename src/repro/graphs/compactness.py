"""Compactness, survival subsets and dense neighborhoods (Section 2-3).

These are the combinatorial notions the paper's local-probing analysis
is built on:

* a ``δ``-*survival subset* ``C ⊆ B``: every vertex of ``G|C`` has
  degree at least ``δ`` (Proposition 1 shows every member of a survival
  subset survives local probing);
* the fixed-point operator ``F_B`` from the proof of Theorem 2, whose
  complement is the canonical maximal survival subset;
* ``(γ, δ)``-*dense neighborhoods* (the survive/not-survive
  characterisation of Proposition 1);
* ``(ℓ, ε, δ)``-*compactness* checking, by direct search over given or
  sampled vertex subsets.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Iterable, Optional

from repro.graphs.graph import Graph

__all__ = [
    "compactness_profile",
    "dense_neighborhood",
    "generalized_neighborhood",
    "is_survival_subset",
    "survival_subset",
]


def survival_subset(graph: Graph, vertices: Iterable[int], delta: int) -> frozenset[int]:
    """The maximal ``δ``-survival subset of ``B = vertices``.

    Computes the fixed point ``B* = ∪ Y_i`` of the operator ``F_B`` from
    Theorem 2 (iteratively absorb vertices with fewer than ``δ``
    neighbors among the not-yet-absorbed) and returns ``C = B \\ B*``.
    ``C`` may be empty; when non-empty, every vertex of ``G|C`` has at
    least ``δ`` neighbors in ``C``.
    """
    alive = set(vertices)
    degrees = {v: sum(1 for u in graph.adj[v] if u in alive) for v in alive}
    queue = deque(v for v, deg in degrees.items() if deg < delta)
    queued = set(queue)
    while queue:
        victim = queue.popleft()
        if victim not in alive:
            continue
        alive.discard(victim)
        for u in graph.adj[victim]:
            if u in alive:
                degrees[u] -= 1
                if degrees[u] < delta and u not in queued:
                    queue.append(u)
                    queued.add(u)
    return frozenset(alive)


def is_survival_subset(
    graph: Graph, base: Iterable[int], candidate: Iterable[int], delta: int
) -> bool:
    """Whether ``candidate ⊆ base`` is a ``δ``-survival subset for ``base``."""
    base_set = set(base)
    cand_set = set(candidate)
    if not cand_set <= base_set:
        return False
    for v in cand_set:
        inside = sum(1 for u in graph.adj[v] if u in cand_set)
        if inside < delta:
            return False
    return True


def generalized_neighborhood(
    graph: Graph, sources: Iterable[int], radius: int
) -> frozenset[int]:
    """``N^i_G(W)``: vertices within distance ``radius`` of ``sources``."""
    frontier = set(sources)
    seen = set(frontier)
    for _ in range(radius):
        nxt: set[int] = set()
        for u in frontier:
            for v in graph.adj[u]:
                if v not in seen:
                    seen.add(v)
                    nxt.add(v)
        if not nxt:
            break
        frontier = nxt
    return frozenset(seen)


def dense_neighborhood(
    graph: Graph,
    center: int,
    gamma: int,
    delta: int,
    within: Optional[Iterable[int]] = None,
) -> Optional[frozenset[int]]:
    """A maximal ``(γ, δ)``-dense neighborhood for ``center``, or ``None``.

    Definition (Section 2): ``S ⊆ N^γ(center)`` such that every vertex
    of ``S ∩ N^{γ-1}(center)`` has at least ``δ`` neighbors in ``S``.
    The maximal such ``S`` is obtained by pruning: start from the full
    ball and repeatedly delete inner vertices violating the degree
    condition.  Returns ``None`` when the fixed point no longer contains
    ``center`` (then no dense neighborhood for ``center`` exists, since
    pruning preserves all dense neighborhoods).
    """
    allowed = set(within) if within is not None else set(range(graph.n))
    if center not in allowed:
        return None
    inner_ball = generalized_neighborhood(graph, [center], gamma - 1) & allowed
    ball = generalized_neighborhood(graph, [center], gamma) & allowed
    candidate = set(ball)
    changed = True
    while changed:
        changed = False
        for v in list(candidate & inner_ball):
            inside = sum(1 for u in graph.adj[v] if u in candidate)
            if inside < delta:
                candidate.discard(v)
                changed = True
    if center not in candidate:
        return None
    return frozenset(candidate)


def compactness_profile(
    graph: Graph,
    ell: int,
    delta: int,
    *,
    trials: int = 20,
    seed: int = 0,
    adversarial: bool = True,
) -> float:
    """Empirical ``(ℓ, ε, δ)``-compactness: the worst ratio ``|C|/ℓ``.

    Samples ``trials`` vertex sets ``B`` of size ``ell`` (random plus,
    when ``adversarial``, BFS-ball-shaped sets, which are the hardest
    for survival since their boundary is thin) and reports the minimum
    over samples of ``|survival_subset(B)| / ell``.  Theorem 2 predicts
    at least ``3/4`` for genuinely Ramanujan graphs with the paper's
    parameters.
    """
    if not 1 <= ell <= graph.n:
        raise ValueError(f"ell must be within [1, n], got {ell}")
    rng = random.Random(seed)
    worst = 1.0
    samples: list[set[int]] = []
    for _ in range(trials):
        samples.append(set(rng.sample(range(graph.n), ell)))
    if adversarial:
        for _ in range(max(1, trials // 4)):
            start = rng.randrange(graph.n)
            ball: list[int] = []
            seen = {start}
            queue = deque([start])
            while queue and len(ball) < ell:
                u = queue.popleft()
                ball.append(u)
                for v in graph.adj[u]:
                    if v not in seen:
                        seen.add(v)
                        queue.append(v)
            if len(ball) == ell:
                samples.append(set(ball))
    for subset in samples:
        surviving = survival_subset(graph, subset, delta)
        worst = min(worst, len(surviving) / ell)
    return worst
