"""Spectral and combinatorial expander analysis (paper Section 3).

The paper's proofs rest on a single spectral quantity of a ``d``-regular
graph: ``λ = max(|λ₂|, |λₙ|)``.  A graph is Ramanujan when
``λ ≤ 2·sqrt(d − 1)``.  Everything else (Theorems 1-4) is derived from
``λ`` through the Expander Mixing Lemma, so this module provides:

* :func:`second_eigenvalue` -- compute ``λ``;
* :func:`is_ramanujan` / :func:`spectral_certificate` -- certification;
* :func:`edges_between` and :func:`mixing_lemma_gap` -- direct checks of
  the Expander Mixing Lemma used by the property tests;
* :func:`is_connected_within` -- connectivity of induced subgraphs,
  which underlies the agreement arguments (Lemmas 4 and 9).
"""

from __future__ import annotations

import math
from collections import deque
from typing import Iterable, Optional

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.graphs.graph import Graph

__all__ = [
    "adjacency_matrix",
    "edges_between",
    "induced_volume",
    "is_connected_within",
    "is_ramanujan",
    "mixing_lemma_gap",
    "ramanujan_bound",
    "second_eigenvalue",
    "spectral_certificate",
]

#: Below this vertex count a dense eigensolve is faster and exact.
_DENSE_CUTOFF = 600


def ramanujan_bound(d: int) -> float:
    """The Ramanujan spectral bound ``2·sqrt(d − 1)``."""
    if d < 1:
        raise ValueError(f"degree must be positive, got {d}")
    return 2.0 * math.sqrt(max(d - 1, 0))


def adjacency_matrix(graph: Graph) -> sp.csr_matrix:
    """Sparse adjacency matrix of ``graph``."""
    rows: list[int] = []
    cols: list[int] = []
    for u in range(graph.n):
        for v in graph.adj[u]:
            rows.append(u)
            cols.append(v)
    data = np.ones(len(rows), dtype=np.float64)
    return sp.csr_matrix((data, (rows, cols)), shape=(graph.n, graph.n))


def second_eigenvalue(graph: Graph) -> float:
    """``λ = max(|λ₂|, |λₙ|)`` of the adjacency matrix.

    For a connected non-bipartite ``d``-regular graph this is the second
    largest eigenvalue magnitude.  Complete graphs return 1.0.
    """
    n = graph.n
    if n <= 2:
        return 0.0
    matrix = adjacency_matrix(graph)
    if n <= _DENSE_CUTOFF:
        eigenvalues = np.linalg.eigvalsh(matrix.toarray())
        magnitudes = np.sort(np.abs(eigenvalues))[::-1]
        return float(magnitudes[1])
    # Sparse path: the two largest-magnitude eigenvalues are the trivial
    # one (== d for regular graphs) and λ.
    values = spla.eigsh(matrix, k=2, which="LM", return_eigenvectors=False, tol=1e-8)
    magnitudes = np.sort(np.abs(values))[::-1]
    return float(magnitudes[1])


def is_ramanujan(graph: Graph, d: Optional[int] = None, slack: float = 0.0) -> bool:
    """Whether ``λ ≤ 2·sqrt(d−1)·(1 + slack)``.

    ``slack`` admits *near*-Ramanujan graphs: seeded random regular
    graphs achieve ``λ ≤ 2·sqrt(d−1) + o(1)`` and every property the
    paper uses degrades continuously in ``λ``, so a small slack is the
    substitution documented in DESIGN.md.
    """
    degree = d if d is not None else graph.max_degree
    if graph.n <= degree + 1:
        return True  # complete graph: λ = 1
    return second_eigenvalue(graph) <= ramanujan_bound(degree) * (1.0 + slack)


def spectral_certificate(graph: Graph, d: Optional[int] = None) -> dict:
    """A report of the spectral quality of ``graph``.

    Returns ``{"lambda": λ, "bound": 2*sqrt(d-1), "ratio": λ/bound}``;
    ``ratio <= 1`` means genuinely Ramanujan.
    """
    degree = d if d is not None else graph.max_degree
    lam = second_eigenvalue(graph)
    bound = ramanujan_bound(degree)
    return {"lambda": lam, "bound": bound, "ratio": lam / bound if bound else 0.0}


def edges_between(graph: Graph, first: Iterable[int], second: Iterable[int]) -> int:
    """``e(A, B)``: edges connecting disjoint vertex sets ``A`` and ``B``."""
    set_a = set(first)
    set_b = set(second)
    if set_a & set_b:
        raise ValueError("edges_between requires disjoint sets")
    count = 0
    for u in set_a:
        for v in graph.adj[u]:
            if v in set_b:
                count += 1
    return count


def induced_volume(graph: Graph, vertices: Iterable[int]) -> int:
    """``vol(S)``: number of edges with both endpoints in ``S`` (Lemma 1)."""
    subset = set(vertices)
    count = 0
    for u in subset:
        for v in graph.adj[u]:
            if v in subset and u < v:
                count += 1
    return count


def mixing_lemma_gap(graph: Graph, first: Iterable[int], second: Iterable[int]) -> float:
    """Expander Mixing Lemma slack for sets ``A``, ``B``.

    Returns ``λ·sqrt(|A||B|) − |e(A,B) − d|A||B|/n|``; non-negative
    values mean the lemma's inequality holds (it always does -- this is
    used as a sanity property test of the eigenvalue computation).
    """
    set_a = set(first)
    set_b = set(second)
    d = graph.max_degree
    lam = second_eigenvalue(graph)
    expected = d * len(set_a) * len(set_b) / graph.n
    actual = edges_between(graph, set_a, set_b)
    return lam * math.sqrt(len(set_a) * len(set_b)) - abs(actual - expected)


def is_connected_within(graph: Graph, vertices: Optional[Iterable[int]] = None) -> bool:
    """Whether the subgraph induced by ``vertices`` is connected.

    ``None`` means the whole graph.  The empty set and singletons count
    as connected.
    """
    subset = set(vertices) if vertices is not None else set(range(graph.n))
    if len(subset) <= 1:
        return True
    start = next(iter(subset))
    seen = {start}
    queue = deque([start])
    while queue:
        u = queue.popleft()
        for v in graph.adj[u]:
            if v in subset and v not in seen:
                seen.add(v)
                queue.append(v)
    return len(seen) == len(subset)
