"""Per-phase overlay graph families used by the algorithms.

Three families appear in the paper:

* graph ``H`` (Spread-Common-Value Part 1, AB-Consensus Part 3): a
  constant-degree Ramanujan graph with degree ``Δ ≥ 64``;
* the inquiry graphs ``G_i`` of Lemma 5 (SCV Part 2, Gossip): random
  graphs where each vertex draws ``b_i = 10·2^i`` Bernoulli neighbors,
  guaranteeing large external neighborhoods for small sets;
* the phase graphs of Many-Crashes-Consensus Part 3: Ramanujan graphs
  ``G(2n, d_i)`` with ``d_i = 64/(3(1−α)(1+3α))·2^i``.

All are deterministic functions of their parameters and are memoised.
Degrees are capped at ``n − 1``; once a family's degree reaches the cap
the graph is complete, which realises the paper's final phases (whose
theoretical degrees exceed ``n``) exactly.
"""

from __future__ import annotations

import math
import random

from repro.graphs.graph import Graph
from repro.graphs.ramanujan import certified_ramanujan_graph, complete_graph

__all__ = [
    "mcc_phase_degree",
    "mcc_phase_graph",
    "random_out_graph",
    "scv_inquiry_degree",
    "scv_inquiry_graph",
    "spread_graph",
]

_CACHE: dict[tuple, Graph] = {}

#: Practical degree for the spreading graph H.  The paper sets Δ ≥ 64 to
#: get edge expansion ≥ Δ/3; degree 16 keeps simulations fast while the
#: flooding analysis only needs *some* constant expansion (checked by
#: the Lemma 6 shape test).
SPREAD_DEGREE = 16

#: Base ``b_i = SCV_INQUIRY_BASE · 2^i`` of the Lemma 5 family (paper: 10).
SCV_INQUIRY_BASE = 4


def spread_graph(n: int, seed: int = 0, degree: int = SPREAD_DEGREE) -> Graph:
    """Graph ``H``: a certified constant-degree expander on all nodes."""
    return certified_ramanujan_graph(n, min(degree, max(1, n - 1)), seed=seed)


def random_out_graph(n: int, out_degree: int, seed: int, name: str = "") -> Graph:
    """Symmetrised random out-degree graph (Lemma 5 construction).

    Every vertex draws ``out_degree`` distinct targets uniformly; the
    union of choices, symmetrised, is the edge set.  This mirrors the
    probabilistic-method construction in Lemma 5 (there via Bernoulli
    trials of mean ``b_i``); a positive-probability graph is realised by
    fixing the seed.
    """
    if out_degree >= n - 1:
        return complete_graph(n)
    key = ("out", n, out_degree, seed)
    if key in _CACHE:
        return _CACHE[key]
    rng = random.Random((seed << 20) ^ (n << 8) ^ out_degree)
    edges = []
    population = range(n)
    for u in range(n):
        for v in rng.sample(population, out_degree + 1):
            if v != u:
                edges.append((u, v))
    graph = Graph.from_edges(n, edges, name=name or f"Out({n},{out_degree})#s{seed}")
    _CACHE[key] = graph
    return graph


def scv_inquiry_degree(i: int, n: int) -> int:
    """Out-degree ``b_i = SCV_INQUIRY_BASE · 2^i`` capped at ``n − 1``."""
    return min(SCV_INQUIRY_BASE * (2**i), max(1, n - 1))


def scv_inquiry_graph(n: int, i: int, seed: int = 0) -> Graph:
    """The Lemma 5 graph ``G_i`` on all ``n`` nodes for phase ``i``."""
    return random_out_graph(
        n, scv_inquiry_degree(i, n), seed + 1000 + i, name=f"G_{i}({n})"
    )


def mcc_phase_degree(i: int, n: int, alpha: float) -> int:
    """Degree ``d_i = 64/(3(1−α)(1+3α))·2^i`` capped at ``n − 1``.

    ``α = t/n``; the cap realises the paper's final phases, whose
    nominal degree exceeds ``n`` (the complete graph is the only
    ``(n-1)``-regular graph and is trivially Ramanujan).
    """
    if not 0.0 <= alpha < 1.0:
        raise ValueError(f"alpha must be in [0, 1), got {alpha}")
    base = 64.0 / (3.0 * (1.0 - alpha) * (1.0 + 3.0 * alpha)) if alpha > 0 else 8.0
    nominal = math.ceil(base * (2**i))
    return min(nominal, max(1, n - 1))


def mcc_phase_graph(n: int, i: int, alpha: float, seed: int = 0) -> Graph:
    """Phase graph for Many-Crashes-Consensus Part 3.

    The paper uses Ramanujan ``G(2n, d_i)``; here the graph lives on the
    ``n`` actual nodes (the ``2n`` in the paper is an analysis
    convenience for Theorem 4's disjoint-set argument).  Constructed via
    the random-out family, which has the required vertex expansion for
    the Part 3 argument, and is much cheaper than spectral certification
    for the large per-phase degrees.
    """
    degree = mcc_phase_degree(i, n, alpha)
    out = max(1, degree // 2)
    return random_out_graph(n, out, seed + 5000 + i, name=f"MCC_G_{i}({n})")
