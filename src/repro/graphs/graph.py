"""A minimal immutable undirected-graph type used for overlay networks.

Overlay graphs in the paper are simple graphs on the node names; the
algorithms only ever need neighbor lookups, so the representation is a
tuple of sorted neighbor tuples.  All constructions in this package are
deterministic functions of their parameters (including seeds), which is
what makes the *algorithms* deterministic end to end.
"""

from __future__ import annotations

from typing import Iterable, Iterator

__all__ = ["Graph"]


class Graph:
    """Immutable simple undirected graph on vertices ``0..n-1``."""

    __slots__ = ("n", "adj", "name")

    def __init__(self, n: int, adj: tuple[tuple[int, ...], ...], name: str = ""):
        if len(adj) != n:
            raise ValueError(f"adjacency has {len(adj)} rows for n={n}")
        self.n = n
        self.adj = adj
        self.name = name

    @classmethod
    def from_edges(cls, n: int, edges: Iterable[tuple[int, int]], name: str = "") -> "Graph":
        """Build a graph from an edge list, dropping loops and duplicates."""
        neighbor_sets: list[set[int]] = [set() for _ in range(n)]
        for u, v in edges:
            if u == v:
                continue
            if not (0 <= u < n and 0 <= v < n):
                raise ValueError(f"edge ({u}, {v}) out of range for n={n}")
            neighbor_sets[u].add(v)
            neighbor_sets[v].add(u)
        adj = tuple(tuple(sorted(s)) for s in neighbor_sets)
        return cls(n, adj, name)

    def neighbors(self, v: int) -> tuple[int, ...]:
        return self.adj[v]

    def degree(self, v: int) -> int:
        return len(self.adj[v])

    def edges(self) -> Iterator[tuple[int, int]]:
        for u in range(self.n):
            for v in self.adj[u]:
                if u < v:
                    yield (u, v)

    @property
    def edge_count(self) -> int:
        return sum(len(row) for row in self.adj) // 2

    @property
    def max_degree(self) -> int:
        return max((len(row) for row in self.adj), default=0)

    @property
    def min_degree(self) -> int:
        return min((len(row) for row in self.adj), default=0)

    def is_regular(self) -> bool:
        return self.max_degree == self.min_degree

    def has_edge(self, u: int, v: int) -> bool:
        row = self.adj[u]
        # Rows are sorted tuples; for the small degrees used here a
        # linear scan is faster than building sets.
        return v in row

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        label = self.name or "graph"
        return f"<Graph {label}: n={self.n}, m={self.edge_count}, dmax={self.max_degree}>"
