"""Lubotzky–Phillips–Sarnak (LPS) Ramanujan graphs ``X^{p,q}``.

These are the *provably* Ramanujan graphs the paper's Section 3 builds
on (via [19, 31, 34]): for distinct primes ``p, q ≡ 1 (mod 4)`` with
``p`` a quadratic residue mod ``q``, the Cayley graph of ``PSL(2, q)``
with respect to the ``p + 1`` integer-quaternion generators of norm
``p`` is a non-bipartite ``(p+1)``-regular graph on ``q(q² − 1)/2``
vertices with ``λ ≤ 2·sqrt(p)``.

Construction (following Davidoff–Sarnak–Valette [19]):

1. enumerate the ``p + 1`` integer solutions of
   ``a₀² + a₁² + a₂² + a₃² = p`` with ``a₀ > 0`` odd and ``a₁, a₂, a₃``
   even;
2. fix ``i`` with ``i² ≡ −1 (mod q)`` and map each solution to the
   matrix ``[[a₀ + i·a₁, a₂ + i·a₃], [−a₂ + i·a₃, a₀ − i·a₁]]`` over
   ``F_q`` (determinant ``p``), rescaled by ``sqrt(p)⁻¹`` to land in
   ``SL(2, q)``;
3. vertices are the elements of ``PSL(2, q)`` (``SL(2, q)`` modulo
   ``±I``); edges connect ``g`` to ``g·s`` for every generator ``s``.

The available sizes are sparse (``n = q(q² − 1)/2``), which is exactly
why the library's default overlays are the seeded certified graphs --
LPS is provided for users who want zero probabilistic input *and* the
genuine Ramanujan bound, and as ground truth for the spectral tests.
"""

from __future__ import annotations

import math

from repro.graphs.graph import Graph

__all__ = ["lps_graph", "lps_parameters_ok", "lps_vertex_count"]

_CACHE: dict[tuple[int, int], Graph] = {}


def _is_prime(x: int) -> bool:
    if x < 2:
        return False
    for f in range(2, int(math.isqrt(x)) + 1):
        if x % f == 0:
            return False
    return True


def _legendre(a: int, q: int) -> int:
    """The Legendre symbol ``(a/q)`` for odd prime ``q``."""
    value = pow(a % q, (q - 1) // 2, q)
    return -1 if value == q - 1 else value


def _sqrt_mod(a: int, q: int) -> int:
    """A square root of ``a`` modulo prime ``q`` (brute force; ``q`` is
    small in every supported configuration)."""
    a %= q
    for x in range(q):
        if (x * x) % q == a:
            return x
    raise ValueError(f"{a} is not a quadratic residue mod {q}")


def lps_parameters_ok(p: int, q: int) -> bool:
    """Whether ``(p, q)`` yields the non-bipartite PSL(2, q) graph."""
    return (
        p != q
        and _is_prime(p)
        and _is_prime(q)
        and p % 4 == 1
        and q % 4 == 1
        and q > 2 * math.isqrt(p) + 1  # connectivity condition q > 2√p
        and _legendre(p, q) == 1
    )


def lps_vertex_count(q: int) -> int:
    """``|PSL(2, q)| = q(q² − 1)/2``."""
    return q * (q * q - 1) // 2


def _norm_p_quadruples(p: int) -> list[tuple[int, int, int, int]]:
    """The ``p + 1`` quadruples with ``a₀ > 0`` odd, ``a₁,a₂,a₃`` even."""
    bound = int(math.isqrt(p))
    evens = [x for x in range(-bound, bound + 1) if x % 2 == 0]
    found = []
    for a0 in range(1, bound + 1, 2):
        for a1 in evens:
            for a2 in evens:
                rest = p - a0 * a0 - a1 * a1 - a2 * a2
                if rest < 0:
                    continue
                a3 = int(math.isqrt(rest))
                if a3 * a3 == rest and a3 % 2 == 0:
                    for sign in ((a3,) if a3 == 0 else (a3, -a3)):
                        found.append((a0, a1, a2, sign))
    return sorted(set(found))


def _psl_canonical(m: tuple[int, int, int, int], q: int) -> tuple[int, int, int, int]:
    """Canonical representative of ``{M, −M}`` in PSL(2, q)."""
    neg = tuple((q - x) % q for x in m)
    return min(m, neg)


def _mat_mul(x: tuple, y: tuple, q: int) -> tuple[int, int, int, int]:
    a, b, c, d = x
    e, f, g, h = y
    return (
        (a * e + b * g) % q,
        (a * f + b * h) % q,
        (c * e + d * g) % q,
        (c * f + d * h) % q,
    )


def lps_graph(p: int, q: int) -> Graph:
    """The LPS Ramanujan graph ``X^{p,q}`` (non-bipartite case).

    Raises ``ValueError`` for unsupported parameters; use
    :func:`lps_parameters_ok` to screen.  Supported small instances:
    ``(13, 5)`` (120 vtx... bipartite check applies), ``(5, 29)``,
    ``(13, 17)`` -- see the tests for the certified ones.
    """
    if not lps_parameters_ok(p, q):
        raise ValueError(
            f"(p, q) = ({p}, {q}) does not satisfy the LPS conditions "
            "(distinct primes ≡ 1 mod 4, q > 2√p, and (p/q) = 1)"
        )
    key = (p, q)
    if key in _CACHE:
        return _CACHE[key]

    i_unit = _sqrt_mod(q - 1, q)
    scale = pow(_sqrt_mod(p, q), q - 2, q)  # sqrt(p)^{-1} mod q

    generators = []
    for a0, a1, a2, a3 in _norm_p_quadruples(p):
        matrix = (
            (a0 + i_unit * a1) * scale % q,
            (a2 + i_unit * a3) * scale % q,
            (-a2 + i_unit * a3) * scale % q,
            (a0 - i_unit * a1) * scale % q,
        )
        generators.append(_psl_canonical(matrix, q))
    generators = sorted(set(generators))
    if len(generators) != p + 1:
        raise RuntimeError(
            f"expected {p + 1} LPS generators, derived {len(generators)}"
        )

    # Enumerate PSL(2, q): all (a, b, c, d) with ad − bc = 1, modulo ±I.
    elements: dict[tuple[int, int, int, int], int] = {}
    order = []
    for a in range(q):
        for b in range(q):
            for c in range(q):
                if a != 0:
                    d = (1 + b * c) * pow(a, q - 2, q) % q
                    candidates = ((a, b, c, d),)
                elif b != 0:
                    c_val = (q - pow(b, q - 2, q)) % q
                    if c != c_val:
                        continue
                    candidates = tuple((0, b, c_val, d) for d in range(q))
                else:
                    continue
                for m in candidates:
                    canon = _psl_canonical(m, q)
                    if canon not in elements:
                        elements[canon] = len(order)
                        order.append(canon)
    n = lps_vertex_count(q)
    if len(order) != n:
        raise RuntimeError(f"PSL(2,{q}) enumeration found {len(order)} != {n}")

    edges = []
    for g in order:
        gid = elements[g]
        for s in generators:
            h = _psl_canonical(_mat_mul(g, s, q), q)
            edges.append((gid, elements[h]))
    graph = Graph.from_edges(n, edges, name=f"LPS({p},{q})")
    _CACHE[key] = graph
    return graph
