"""Constructions of (near-)Ramanujan overlay graphs (paper Section 3).

The paper assumes explicit Ramanujan graphs ``G(n, d)`` with constant
degree (e.g. ``d = 5^8``) exist for every ``n``.  Explicit families
(Lubotzky–Phillips–Sarnak) exist only for special ``(n, d)`` pairs, so
this reproduction substitutes:

* :func:`certified_ramanujan_graph` -- a seeded random ``d``-regular
  graph accepted only if its measured ``λ`` satisfies the (slackened)
  Ramanujan bound.  Random regular graphs are near-Ramanujan with high
  probability (Friedman's theorem), so a handful of retries suffices;
  the result is a deterministic function of ``(n, d, seed)``.
* :func:`margulis_graph` -- the fully explicit Margulis–Gabber–Galil
  8-regular expander on ``m × m`` torus vertices, for users who want a
  construction with zero probabilistic input (its spectral bound is
  weaker than Ramanujan; it is certified at build time too).

Constructed graphs are memoised: benchmark sweeps rebuild the same
overlays many times.
"""

from __future__ import annotations

import math
from typing import Optional

import networkx as nx

from repro.graphs.expander import ramanujan_bound, second_eigenvalue
from repro.graphs.graph import Graph

__all__ = [
    "certified_ramanujan_graph",
    "clear_graph_cache",
    "complete_graph",
    "ell_expansion_size",
    "margulis_graph",
    "paper_delta",
    "paper_ell",
]

#: Default multiplicative slack admitted on the Ramanujan bound.
DEFAULT_SLACK = 0.12

#: How many seeds to try before giving up certification.
DEFAULT_TRIES = 16

_CACHE: dict[tuple, Graph] = {}


def clear_graph_cache() -> None:
    """Drop all memoised graphs (used by tests)."""
    _CACHE.clear()


def paper_ell(n: int, d: int) -> float:
    """``ℓ(n, d) = 4·n·d^{-1/8}`` (Section 3)."""
    return 4.0 * n * d ** (-1.0 / 8.0)


def paper_delta(d: int) -> int:
    """``δ(d) = ½(d^{7/8} − d^{5/8})`` rounded up, and at least 1.

    This is the local-probing survival threshold the paper derives from
    the degree; we apply the same formula to the *practical* degree.
    """
    raw = 0.5 * (d ** (7.0 / 8.0) - d ** (5.0 / 8.0))
    return max(1, math.ceil(raw))


def ell_expansion_size(n: int, d: int) -> int:
    """Integer version of ``ℓ(n, d)``, clamped to ``[1, n]``."""
    return max(1, min(n, math.ceil(paper_ell(n, d))))


def complete_graph(n: int) -> Graph:
    """``K_n`` -- the degenerate overlay used when ``d ≥ n − 1``."""
    key = ("complete", n)
    if key not in _CACHE:
        everyone = tuple(range(n))
        adj = tuple(
            tuple(v for v in everyone if v != u) for u in range(n)
        )
        _CACHE[key] = Graph(n, adj, name=f"K_{n}")
    return _CACHE[key]


def certified_ramanujan_graph(
    n: int,
    d: int,
    seed: int = 0,
    *,
    slack: float = DEFAULT_SLACK,
    tries: int = DEFAULT_TRIES,
    certify: Optional[bool] = None,
) -> Graph:
    """A ``d``-regular graph on ``n`` vertices with certified ``λ``.

    Degenerate cases: ``d ≥ n − 1`` returns the complete graph; if
    ``n·d`` is odd the degree is bumped by one (regular graphs need an
    even degree sum).

    ``certify=None`` (default) certifies when the eigensolve is cheap
    (``n ≤ 4096``); pass ``True``/``False`` to force.  Certification
    failures retry with the next seed; exhausting ``tries`` raises --
    in practice the first seed passes for all ``(n, d)`` used here.
    """
    if n < 1:
        raise ValueError(f"n must be positive, got {n}")
    if d >= n - 1 or n <= 3:
        return complete_graph(n)
    if (n * d) % 2 == 1:
        d += 1
        if d >= n - 1:
            return complete_graph(n)
    do_certify = certify if certify is not None else n <= 4096
    key = ("ramanujan", n, d, seed, slack if do_certify else None)
    if key in _CACHE:
        return _CACHE[key]

    bound = ramanujan_bound(d) * (1.0 + slack)
    last_lambda = None
    for attempt in range(tries):
        candidate_seed = seed + attempt
        nx_graph = nx.random_regular_graph(d, n, seed=candidate_seed)
        adj = tuple(tuple(sorted(nx_graph.neighbors(v))) for v in range(n))
        graph = Graph(n, adj, name=f"G({n},{d})#s{candidate_seed}")
        if not do_certify:
            _CACHE[key] = graph
            return graph
        lam = second_eigenvalue(graph)
        last_lambda = lam
        if lam <= bound:
            _CACHE[key] = graph
            return graph
    raise RuntimeError(
        f"no seed in [{seed}, {seed + tries}) produced a near-Ramanujan "
        f"G({n},{d}); best λ={last_lambda:.3f} vs bound {bound:.3f}"
    )


def margulis_graph(m: int) -> Graph:
    """The Margulis–Gabber–Galil expander on ``n = m²`` vertices.

    Vertices are the torus ``Z_m × Z_m``; each vertex ``(x, y)`` is
    adjacent to ``(x ± 2y, y)``, ``(x ± (2y + 1), y)``, ``(x, y ± 2x)``
    and ``(x, y ± (2x + 1))`` (arithmetic mod ``m``).  The construction
    is fully explicit and deterministic with second eigenvalue bounded
    away from the degree (``λ ≤ 5·sqrt(2) < 8``); it is offered as the
    zero-randomness alternative overlay.
    """
    if m < 2:
        raise ValueError(f"m must be at least 2, got {m}")
    key = ("margulis", m)
    if key in _CACHE:
        return _CACHE[key]
    n = m * m

    def vid(x: int, y: int) -> int:
        return (x % m) * m + (y % m)

    edges = []
    for x in range(m):
        for y in range(m):
            u = vid(x, y)
            for v in (
                vid(x + 2 * y, y),
                vid(x - 2 * y, y),
                vid(x + 2 * y + 1, y),
                vid(x - 2 * y - 1, y),
                vid(x, y + 2 * x),
                vid(x, y - 2 * x),
                vid(x, y + 2 * x + 1),
                vid(x, y - 2 * x - 1),
            ):
                edges.append((u, v))
    graph = Graph.from_edges(n, edges, name=f"Margulis({m})")
    _CACHE[key] = graph
    return graph
