"""Executable constructions behind the Theorem 13 lower bound
``Ω(t + log n)`` for consensus/gossip/checkpointing in the single-port
model."""

from repro.lowerbounds.divergence import (
    DivergenceReport,
    divergence_series,
    find_pivotal_index,
    staircase,
)
from repro.lowerbounds.gossip_adversary import IsolationReport, isolation_report

__all__ = [
    "DivergenceReport",
    "IsolationReport",
    "divergence_series",
    "find_pivotal_index",
    "isolation_report",
    "staircase",
]
