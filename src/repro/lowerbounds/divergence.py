"""The ``Ω(log n)`` part of Theorem 13: state divergence in the
single-port model grows by at most a factor of 3 per round.

The proof builds two initial configurations ``C0``/``C1`` differing at a
single pivotal node and shows by induction that after round ``i`` at
most ``3^i`` nodes can have different states in the two executions;
since all nodes must eventually decide differently (0 vs 1), the run
needs ``Ω(log₃ n)`` rounds.

:func:`find_pivotal_index` locates the pivot by scanning the paper's
staircase configurations ``C*_{<i}``; :func:`divergence_series` runs the
two executions in lock-step and reports ``|A_i|`` per round.  The
property test and benchmark E13 check ``|A_i| ≤ 3^i`` and that decision
happens no earlier than ``log₃ n`` rounds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.sim.singleport import SinglePortEngine, SinglePortProcess

__all__ = ["DivergenceReport", "divergence_series", "find_pivotal_index", "staircase"]

#: A factory building the full process vector for an input configuration.
ProtocolFactory = Callable[[Sequence[int]], list[SinglePortProcess]]


def staircase(n: int, i: int) -> list[int]:
    """The paper's configuration ``C*_{<i}``: names below ``i`` start
    with 0, the rest with 1."""
    return [0 if pid < i else 1 for pid in range(n)]


def _failure_free_decision(factory: ProtocolFactory, inputs: Sequence[int]):
    result = SinglePortEngine(factory(inputs)).run()
    decisions = set(result.correct_decisions().values())
    if len(decisions) != 1:
        raise AssertionError(f"protocol broke agreement on {inputs[:8]}...: {decisions}")
    return decisions.pop()


def find_pivotal_index(factory: ProtocolFactory, n: int) -> int:
    """The index ``i`` such that ``C*_{<i}`` decides 1 and ``C*_{<i+1}``
    decides 0 (it exists by validity; located by binary search since the
    staircase decisions are monotone for the OR/flooding-style protocols
    reproduced here)."""
    if _failure_free_decision(factory, staircase(n, 1)) != 1:
        raise AssertionError("C*_{<1} (all but node 0 hold 1) must decide 1")
    if _failure_free_decision(factory, staircase(n, n + 1)) != 0:
        raise AssertionError("C*_{<n+1} (all zeros) must decide 0")
    low, high = 1, n + 1  # decision(low) == 1, decision(high) == 0
    while high - low > 1:
        mid = (low + high) // 2
        if _failure_free_decision(factory, staircase(n, mid)) == 1:
            low = mid
        else:
            high = mid
    return low  # C*_{<low} -> 1 and C*_{<low+1} -> 0 differ at node low


@dataclass
class DivergenceReport:
    """Per-round divergence between the two pivotal executions."""

    pivot: int
    #: ``divergence[i]`` = number of nodes whose state digests differ at
    #: the end of round ``i``.
    divergence: list[int]
    #: First round at which any process decided, per execution.
    first_decision_round: int

    def respects_cubic_bound(self) -> bool:
        """The Theorem 13 invariant ``|A_i| ≤ 3^i`` (with ``A_0`` the
        single pivot)."""
        return all(
            count <= 3 ** (i + 1) for i, count in enumerate(self.divergence)
        )


def divergence_series(factory: ProtocolFactory, n: int, max_rounds: int = 0) -> DivergenceReport:
    """Run the two pivotal executions and measure state divergence."""
    pivot = find_pivotal_index(factory, n)
    inputs_one = staircase(n, pivot)      # decides 1
    inputs_zero = staircase(n, pivot + 1)  # decides 0

    digests: dict[int, list[tuple]] = {0: [], 1: []}
    decision_rounds: dict[int, int] = {}

    def observer_for(tag: int):
        def observer(rnd: int, processes) -> None:
            digests[tag].append(tuple(p.state_digest() for p in processes))
            if tag not in decision_rounds and any(p.decided for p in processes):
                decision_rounds[tag] = rnd

        return observer

    engine_zero = SinglePortEngine(factory(inputs_zero))
    engine_one = SinglePortEngine(factory(inputs_one))
    if max_rounds:
        engine_zero.max_rounds = max_rounds
        engine_one.max_rounds = max_rounds
    engine_zero.run(observer=observer_for(0))
    engine_one.run(observer=observer_for(1))

    rounds = min(len(digests[0]), len(digests[1]))
    series = []
    for rnd in range(rounds):
        row_zero = digests[0][rnd]
        row_one = digests[1][rnd]
        series.append(sum(1 for a, b in zip(row_zero, row_one) if a != b))
    first_decision = min(decision_rounds.values()) if decision_rounds else rounds
    return DivergenceReport(
        pivot=pivot, divergence=series, first_decision_round=first_decision
    )
