"""The ``Ω(t)`` part of Theorem 13: an adversary that keeps one node
ignorant for ``⌊t/2⌋`` rounds of any deterministic single-port gossip.

Following the proof, the adversary maintains two executions started from
configurations that differ only in the rumor of a chosen victim-relevant
node, pre-computes (by simulating the deterministic protocol) which port
the victim will poll each round, and crashes that node before it ever
sends -- spending at most two crashes per round across the two
executions.  While the budget lasts, the victim's state is identical in
both executions, so it cannot decide a correct extant set.

:func:`isolation_report` works for any deterministic
:class:`~repro.sim.singleport.SinglePortProcess` gossip protocol; the
tests and bench E13 run it against the round-robin ring baseline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Sequence

from repro.sim.adversary import CrashSpec, ScheduledCrashes
from repro.sim.singleport import SinglePortEngine, SinglePortProcess

__all__ = ["IsolationReport", "isolation_report"]

ProtocolFactory = Callable[[Sequence[Any]], list[SinglePortProcess]]


@dataclass
class IsolationReport:
    """Outcome of the isolation attack."""

    victim: int
    #: Rounds for which the victim's state was provably identical in the
    #: two executions (the measured lower bound on its decision time).
    isolated_rounds: int
    #: Crashes spent (≤ t).
    crashes_used: int
    #: Whether the victim's digests matched in every isolated round.
    digests_matched: bool


def _poll_targets(
    factory: ProtocolFactory,
    rumors: Sequence[Any],
    crashed: dict[int, CrashSpec],
    victim: int,
    upto_round: int,
) -> list[int]:
    """Simulate the deterministic protocol under the current crash
    schedule and record which port the victim polls each round."""
    targets: list[int] = []
    processes = factory(rumors)
    original_poll = processes[victim].poll

    def spying_poll(rnd: int):
        port = original_poll(rnd)
        if rnd == len(targets):
            targets.append(port if port is not None else -1)
        return port

    processes[victim].poll = spying_poll  # type: ignore[method-assign]
    engine = SinglePortEngine(
        processes, ScheduledCrashes(crashed), fast_forward=False
    )
    engine.max_rounds = upto_round + 1
    engine.run()
    return targets


def isolation_report(
    factory: ProtocolFactory,
    rumors_a: Sequence[Any],
    rumors_b: Sequence[Any],
    t: int,
    victim: int = 0,
) -> IsolationReport:
    """Run the Theorem 13 construction.

    ``rumors_a``/``rumors_b`` are two rumor configurations (the proof
    uses two assignments the victim must distinguish); the adversary has
    budget ``t`` and crashes, round by round, the node whose port the
    victim polls next in either execution.
    """
    n = len(rumors_a)
    if len(rumors_b) != n:
        raise ValueError("configurations must have equal length")
    crashes: dict[int, CrashSpec] = {}
    rounds = 0
    while len(crashes) + 2 <= t:
        advanced = False
        for rumors in (rumors_a, rumors_b):
            targets = _poll_targets(factory, rumors, crashes, victim, rounds)
            if rounds < len(targets):
                port = targets[rounds]
                if port >= 0 and port != victim and port not in crashes:
                    if len(crashes) >= t:
                        break
                    # Crash before it ever sends anything.
                    crashes[port] = CrashSpec(round=0, keep=0)
                    advanced = True
        if not advanced and rounds > 0:
            pass  # ports already covered this round; budget unspent
        rounds += 1

    # Verify the invariant: victim state digests equal through `rounds`.
    digests: dict[int, list] = {0: [], 1: []}
    for tag, rumors in ((0, rumors_a), (1, rumors_b)):
        processes = factory(rumors)
        engine = SinglePortEngine(processes, ScheduledCrashes(crashes))
        engine.max_rounds = rounds + 1

        def observer(rnd, procs, tag=tag):
            digests[tag].append(procs[victim].state_digest())

        engine.run(observer=observer)
    matched = all(
        a == b
        for a, b in zip(digests[0][:rounds], digests[1][:rounds])
    )
    return IsolationReport(
        victim=victim,
        isolated_rounds=rounds,
        crashes_used=len(crashes),
        digests_matched=matched,
    )
