"""``repro.net`` -- asyncio message-passing runtime for the paper's protocols.

The simulator in :mod:`repro.sim.engine` executes protocols inside one
lock-step loop.  This package runs the *same* :class:`~repro.sim.process.Process`
objects as concurrent asyncio tasks exchanging real messages over
pluggable transports:

* an **in-memory hub** (:class:`~repro.net.transport.MemoryHub`) for
  tests and single-machine experiments, and
* a **TCP hub** (:class:`~repro.net.transport.TCPHub`) for real
  socket-level runs, including multi-OS-process deployments where worker
  processes host disjoint shards of the node set.

A coordinator task (:class:`~repro.net.runtime.Session`) implements
the paper's synchronous model as a barrier per round: every message sent
in round ``r`` is delivered before any process observes round ``r``'s
receive phase, faults are injected from the same
:class:`~repro.sim.adversary.CrashAdversary` schedules the simulator
uses -- crashes with partial sends, and the extended
:mod:`repro.scenarios` classes (per-link omission, partitions, churn
with rejoin) -- and the run produces the same
:class:`~repro.sim.metrics.Metrics` (including ``dropped_messages``):
the parity tests pin identical decisions, crash sets and
message/bit/drop totals against :class:`~repro.sim.engine.Engine` for
the same schedule.  :mod:`repro.trace` recorders/checkers attach to the
coordinator for record/replay across substrates.

Every layer is *session-multiplexed*: frames carry an instance tag
(:mod:`repro.net.codec`), the hubs route by ``(instance, address)``
and one TCP connection (:class:`~repro.net.transport.TCPMux`) can host
any number of per-instance endpoints, so many protocol instances share
one transport -- the substrate of the :mod:`repro.serve` run-server.
Single runs use instance ``0`` throughout and are unaffected.

Entry points: :func:`~repro.net.runtime.run_protocol_net` executes a
process list end-to-end in one OS process over either transport;
:func:`~repro.net.runtime.serve_tcp` / :func:`~repro.net.runtime.host_nodes_tcp`
split the coordinator and node shards across OS processes (see
``examples/net_consensus.py``).  The high-level ``repro.api.run_*``
helpers accept ``backend="net"`` / ``backend="tcp"`` and route here.
"""

from repro.net.codec import MAX_FRAME_BYTES, FrameTooLargeError
from repro.net.faults import NetFaultInjector, RuntimeView
from repro.net.runtime import (
    NetRuntimeError,
    Session,
    Synchronizer,
    host_nodes_tcp,
    run_node,
    run_protocol_net,
    serve_tcp,
)
from repro.net.transport import (
    MemoryHub,
    SlowConsumerError,
    TCPHub,
    TCPMux,
    connect_tcp,
    open_mux,
)

__all__ = [
    "FrameTooLargeError",
    "MAX_FRAME_BYTES",
    "MemoryHub",
    "NetFaultInjector",
    "NetRuntimeError",
    "RuntimeView",
    "Session",
    "SlowConsumerError",
    "Synchronizer",
    "TCPHub",
    "TCPMux",
    "connect_tcp",
    "host_nodes_tcp",
    "open_mux",
    "run_node",
    "run_protocol_net",
    "serve_tcp",
]
