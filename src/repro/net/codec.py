"""Wire format shared by every transport.

A frame is one pickled Python object with a fixed binary header.  Both
transports move *encoded bytes* -- the in-memory hub too -- so payload
serialisability is exercised uniformly: anything that runs over the
memory transport runs over TCP unchanged.

Pickle is the codec because protocol payloads are arbitrary Python
values (ints, tuples, ``SetDelta``/``Signature`` objects exposing
``bits_size``).  That makes the runtime a *trusted-cluster* transport:
frames are only ever exchanged between mutually trusting worker
processes of one experiment, never with untrusted peers.

Header layout (big-endian, both directions)::

    [u32 body_len][i32 src][i32 dst][u32 instance]

``instance`` is the protocol-instance tag: the hubs route by
``(instance, dst)``, so one physical connection can carry frames for
many concurrent protocol instances (see
:class:`~repro.net.transport.TCPMux`).  Single-instance runs use
instance ``0`` throughout.  Two destination addresses are reserved:

* :data:`CONTROL` (``-1``) -- hub control frames.  The body is a
  pickled ``("bind", addr)`` / ``("unbind", addr)`` tuple; the header's
  ``instance`` names the instance being (un)bound.  Binding attaches
  ``(instance, addr)`` to the sending connection's routing entry.
* :data:`BATCH` (``-2``) -- a *batch* frame: many inner frames
  coalesced into one wire write (see :func:`encode_batch`).

Frame batching
--------------
A batch frame's body is a blob table followed by an entry table::

    [u32 nblobs] { [u32 blob_len] blob }*
    [u32 nframes] { [i32 src][i32 dst][u32 instance][u32 blob_idx] }*

Entries reference blobs by index, so a payload pickled once is written
once per batch no matter how many frames carry it -- a multicast's
fan-out, or a thousand sessions' identical ``START`` bodies, intern to
a single blob (*shared-pickle payload interning*).  Batches never
reorder: entry order is send order, and receivers route entries in
order, preserving the transports' FIFO contract.

Frame-size guard
----------------
The ``u32`` length field can nominally announce a body of up to 4 GiB;
a corrupt or truncated frame (one flipped length byte, a reader
desynchronised mid-stream) would make ``readexactly`` await -- and
eventually allocate -- that much before anything notices.
:func:`check_frame_size` bounds every announced length *before* the
body is read: the TCP hub's ingress loop and every connection reader
validate against a configurable limit (:data:`MAX_FRAME_BYTES` by
default; :data:`MAX_BATCH_BYTES` for whole batch frames) and fail fast
with :class:`FrameTooLargeError` naming the peer, the read phase and --
for batched frames -- the instance, instead of stalling the round
barrier on a multi-gigabyte read.  Batched frames are guarded twice:
the whole batch at the header read, and every inner frame's blob at
:func:`decode_batch` time.  The paper's protocols exchange payloads of
at most a few ``n``-bit sets, so the default limits are generous by
orders of magnitude.
"""

from __future__ import annotations

import pickle
import struct
from typing import Any, Iterable

__all__ = [
    "BATCH",
    "CONTROL",
    "HEADER",
    "MAX_BATCH_BYTES",
    "MAX_FRAME_BYTES",
    "FrameTooLargeError",
    "check_frame_size",
    "decode",
    "decode_batch",
    "encode",
    "encode_batch",
    "set_codec_probe",
]

#: Optional telemetry probe (see :mod:`repro.obs`): when set, every
#: :func:`encode` / :func:`decode` call aggregates its wall-clock cost
#: into the recorder's ``codec.encode`` / ``codec.decode`` phase stats
#: via :meth:`~repro.obs.Recorder.sample` -- aggregates only, never
#: per-frame events, so a million-frame run stays cheap to profile.
#: Unset (the default), the cost is one module-global truth test per
#: call.
_PROBE: Any = None


def set_codec_probe(recorder: Any) -> None:
    """Install (or with ``None`` remove) the codec timing probe.

    The probe is process-global because the codec is: the net runners
    install it for the duration of one instrumented run and remove it
    in their cleanup path.  Runs without telemetry never touch it.
    """
    global _PROBE
    _PROBE = recorder if recorder is not None and recorder.enabled else None

#: ``(body_len, src, dst, instance)`` -- the one header layout, both
#: directions; the hub routes by ``(instance, dst)`` without rewriting.
HEADER = struct.Struct(">IiiI")

#: Reserved destination: hub control frames (bind/unbind).
CONTROL = -1

#: Reserved destination: batch frames (see :func:`encode_batch`).
BATCH = -2

_U32 = struct.Struct(">I")
_ENTRY = struct.Struct(">iiII")

#: Default ceiling on one frame body, in bytes (64 MiB).  Far above any
#: legitimate protocol payload at simulation scale, far below the 4 GiB
#: a corrupt ``u32`` length header can announce.
MAX_FRAME_BYTES = 64 * 1024 * 1024

#: Default ceiling on one *batch* frame body (256 MiB).  A batch
#: coalesces many inner frames, so its envelope is allowed more than a
#: single frame; every inner frame is still held to the per-frame limit
#: by :func:`decode_batch`.
MAX_BATCH_BYTES = 4 * MAX_FRAME_BYTES


class FrameTooLargeError(RuntimeError):
    """A frame header announced a body beyond the configured limit.

    Raised *before* the body is read (or, for a batch's inner frames,
    before the blob is routed), so a corrupt or oversized frame
    surfaces as a named error at the reader instead of an unbounded
    ``readexactly`` await.  The message carries the peer, the read
    phase and -- when known -- the protocol instance, for triage.
    """


def check_frame_size(
    length: int,
    *,
    limit: int = MAX_FRAME_BYTES,
    peer: str,
    phase: str,
    instance: int | None = None,
) -> int:
    """Validate an announced frame-body length against ``limit``.

    Returns ``length`` unchanged when acceptable; raises
    :class:`FrameTooLargeError` naming ``peer`` (who sent the header),
    ``phase`` (which read loop hit it) and, when given, the protocol
    ``instance`` the frame belongs to.  A negative ``limit`` disables
    the guard (for tests that need to exercise the raw path).
    """
    if 0 <= limit < length:
        where = f" for instance {instance}" if instance is not None else ""
        raise FrameTooLargeError(
            f"frame from {peer}{where} announces a {length}-byte body, over "
            f"the {limit}-byte limit ({phase}); the stream is corrupt or the "
            "peer is misbehaving -- dropping the connection instead of "
            "reading it"
        )
    return length


def encode(obj: Any) -> bytes:
    """Serialise one frame body.

    The codec is round-agnostic: round numbers, phase tags and send
    sequence numbers live *inside* the frame tuple
    (:mod:`repro.net.runtime` defines the frame kinds), so the wire
    format never changes when the round protocol grows.  Multicast
    senders call this once per send group and fan the encoded bytes out
    via :meth:`~repro.net.transport.Endpoint.send_encoded`, which is
    what keeps a payload's pickling cost independent of its recipient
    count.
    """
    probe = _PROBE
    if probe is None:
        return pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    start = probe.clock()
    body = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    probe.sample("codec.encode", probe.clock() - start)
    return body


def decode(body: bytes) -> Any:
    """Deserialise one frame body.

    Always produces a fresh object graph — even over the in-memory
    transport a receiver gets an equal *copy*, never the sender's
    instance — so payload mutation can never leak between nodes within
    or across rounds.
    """
    probe = _PROBE
    if probe is None:
        return pickle.loads(body)
    start = probe.clock()
    obj = pickle.loads(body)
    probe.sample("codec.decode", probe.clock() - start)
    return obj


def encode_batch(frames: Iterable[tuple[int, int, int, bytes]]) -> bytes:
    """Coalesce ``(src, dst, instance, body)`` frames into one batch body.

    Bodies are interned: frames carrying the same payload bytes (same
    object, or equal value -- a multicast fan-out, or many sessions'
    identical control frames) share one blob, referenced by index.  The
    wire cost of a ``k``-destination multicast is therefore one payload
    plus ``k`` fixed-size entries, and a thousand concurrent sessions'
    simultaneous ``START(r)`` frames cost one body.  Entry order is
    frame order, so batching never reorders a connection's stream.
    """
    blobs: list[bytes] = []
    by_id: dict[int, int] = {}
    by_value: dict[bytes, int] = {}
    parts_entries: list[bytes] = []
    for src, dst, instance, body in frames:
        idx = by_id.get(id(body))
        if idx is None:
            idx = by_value.get(body)
            if idx is None:
                idx = len(blobs)
                blobs.append(body)
                by_value[body] = idx
            by_id[id(body)] = idx
        parts_entries.append(_ENTRY.pack(src, dst, instance, idx))
    parts: list[bytes] = [_U32.pack(len(blobs))]
    for blob in blobs:
        parts.append(_U32.pack(len(blob)))
        parts.append(blob)
    parts.append(_U32.pack(len(parts_entries)))
    parts.extend(parts_entries)
    return b"".join(parts)


def decode_batch(
    body: bytes,
    *,
    limit: int = MAX_FRAME_BYTES,
    peer: str,
    phase: str,
) -> list[tuple[int, int, int, bytes]]:
    """Unpack a batch body into ``(src, dst, instance, blob)`` frames.

    The max-frame guard is enforced *per inner frame*: every entry's
    blob length is checked against the single-frame ``limit`` (the
    whole-batch envelope was already checked at the header read), and a
    violation raises :class:`FrameTooLargeError` naming the peer, the
    phase and the offending frame's instance.  A structurally corrupt
    batch (truncated tables, out-of-range blob index) raises
    ``ValueError`` -- like the guard, before anything is routed.
    """
    view = memoryview(body)
    offset = 0
    try:
        (nblobs,) = _U32.unpack_from(view, offset)
        offset += _U32.size
        blob_spans: list[tuple[int, int]] = []
        for _ in range(nblobs):
            (blob_len,) = _U32.unpack_from(view, offset)
            offset += _U32.size
            if offset + blob_len > len(view):
                raise ValueError("truncated blob")
            blob_spans.append((offset, blob_len))
            offset += blob_len
        (nframes,) = _U32.unpack_from(view, offset)
        offset += _U32.size
        entries = []
        for _ in range(nframes):
            entries.append(_ENTRY.unpack_from(view, offset))
            offset += _ENTRY.size
    except struct.error as exc:
        raise ValueError(f"corrupt batch frame from {peer} ({phase}): {exc}")
    blobs: list[bytes | None] = [None] * nblobs
    frames: list[tuple[int, int, int, bytes]] = []
    for src, dst, instance, idx in entries:
        if not 0 <= idx < nblobs:
            raise ValueError(
                f"corrupt batch frame from {peer} ({phase}): "
                f"blob index {idx} out of range"
            )
        start, blob_len = blob_spans[idx]
        check_frame_size(
            blob_len, limit=limit, peer=peer, phase=phase, instance=instance
        )
        blob = blobs[idx]
        if blob is None:
            blob = blobs[idx] = bytes(view[start : start + blob_len])
        frames.append((src, dst, instance, blob))
    return frames
