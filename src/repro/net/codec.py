"""Wire format shared by every transport.

A frame is one pickled Python object with a fixed binary header.  Both
transports move *encoded bytes* -- the in-memory hub too -- so payload
serialisability is exercised uniformly: anything that runs over the
memory transport runs over TCP unchanged.

Pickle is the codec because protocol payloads are arbitrary Python
values (ints, tuples, ``SetDelta``/``Signature`` objects exposing
``bits_size``).  That makes the runtime a *trusted-cluster* transport:
frames are only ever exchanged between mutually trusting worker
processes of one experiment, never with untrusted peers.

Header layouts (big-endian):

* endpoint -> hub:   ``[u32 body_len][i32 dst]`` + body
* hub -> endpoint:   ``[u32 body_len][i32 src]`` + body

The hub rewrites the 4-byte address field when forwarding, so a
destination learns the sender without the body being examined en route.

Frame-size guard
----------------
The ``u32`` length field can nominally announce a body of up to 4 GiB;
a corrupt or truncated frame (one flipped length byte, a reader
desynchronised mid-stream) would make ``readexactly`` await -- and
eventually allocate -- that much before anything notices.
:func:`check_frame_size` bounds every announced length *before* the
body is read: both the TCP hub's ingress loop and every
:class:`~repro.net.transport.TCPEndpoint` reader validate against a
configurable limit (:data:`MAX_FRAME_BYTES` by default) and fail fast
with :class:`FrameTooLargeError` naming the peer and the read phase,
instead of stalling the round barrier on a multi-gigabyte read.  The
paper's protocols exchange payloads of at most a few ``n``-bit sets, so
the default limit is generous by orders of magnitude.
"""

from __future__ import annotations

import pickle
import struct
from typing import Any

__all__ = [
    "HEADER",
    "HELLO",
    "MAX_FRAME_BYTES",
    "FrameTooLargeError",
    "check_frame_size",
    "decode",
    "encode",
    "set_codec_probe",
]

#: Optional telemetry probe (see :mod:`repro.obs`): when set, every
#: :func:`encode` / :func:`decode` call aggregates its wall-clock cost
#: into the recorder's ``codec.encode`` / ``codec.decode`` phase stats
#: via :meth:`~repro.obs.Recorder.sample` -- aggregates only, never
#: per-frame events, so a million-frame run stays cheap to profile.
#: Unset (the default), the cost is one module-global truth test per
#: call.
_PROBE: Any = None


def set_codec_probe(recorder: Any) -> None:
    """Install (or with ``None`` remove) the codec timing probe.

    The probe is process-global because the codec is: the net runners
    install it for the duration of one instrumented run and remove it
    in their cleanup path.  Runs without telemetry never touch it.
    """
    global _PROBE
    _PROBE = recorder if recorder is not None and recorder.enabled else None

#: ``(body_len, address)`` -- address is dst on the way to the hub and
#: src on the way out.
HEADER = struct.Struct(">Ii")

#: One-shot handshake a TCP endpoint sends on connect: its own address.
HELLO = struct.Struct(">i")

#: Default ceiling on one frame body, in bytes (64 MiB).  Far above any
#: legitimate protocol payload at simulation scale, far below the 4 GiB
#: a corrupt ``u32`` length header can announce.
MAX_FRAME_BYTES = 64 * 1024 * 1024


class FrameTooLargeError(RuntimeError):
    """A frame header announced a body beyond the configured limit.

    Raised *before* the body is read, so a corrupt or truncated frame
    surfaces as a named error at the reader instead of an unbounded
    ``readexactly`` await.  The message carries the peer and the read
    phase for triage.
    """


def check_frame_size(
    length: int, *, limit: int = MAX_FRAME_BYTES, peer: str, phase: str
) -> int:
    """Validate an announced frame-body length against ``limit``.

    Returns ``length`` unchanged when acceptable; raises
    :class:`FrameTooLargeError` naming ``peer`` (who sent the header)
    and ``phase`` (which read loop hit it) otherwise.  A negative
    ``limit`` disables the guard (for tests that need to exercise the
    raw path).
    """
    if 0 <= limit < length:
        raise FrameTooLargeError(
            f"frame from {peer} announces a {length}-byte body, over the "
            f"{limit}-byte limit ({phase}); the stream is corrupt or the "
            "peer is misbehaving -- dropping the connection instead of "
            "reading it"
        )
    return length


def encode(obj: Any) -> bytes:
    """Serialise one frame body.

    The codec is round-agnostic: round numbers, phase tags and send
    sequence numbers live *inside* the frame tuple
    (:mod:`repro.net.runtime` defines the frame kinds), so the wire
    format never changes when the round protocol grows.  Multicast
    senders call this once per send group and fan the encoded bytes out
    via :meth:`~repro.net.transport.Endpoint.send_encoded`, which is
    what keeps a payload's pickling cost independent of its recipient
    count.
    """
    probe = _PROBE
    if probe is None:
        return pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    start = probe.clock()
    body = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    probe.sample("codec.encode", probe.clock() - start)
    return body


def decode(body: bytes) -> Any:
    """Deserialise one frame body.

    Always produces a fresh object graph — even over the in-memory
    transport a receiver gets an equal *copy*, never the sender's
    instance — so payload mutation can never leak between nodes within
    or across rounds.
    """
    probe = _PROBE
    if probe is None:
        return pickle.loads(body)
    start = probe.clock()
    obj = pickle.loads(body)
    probe.sample("codec.decode", probe.clock() - start)
    return obj
