"""Wire format shared by every transport.

A frame is one pickled Python object with a fixed binary header.  Both
transports move *encoded bytes* -- the in-memory hub too -- so payload
serialisability is exercised uniformly: anything that runs over the
memory transport runs over TCP unchanged.

Pickle is the codec because protocol payloads are arbitrary Python
values (ints, tuples, ``SetDelta``/``Signature`` objects exposing
``bits_size``).  That makes the runtime a *trusted-cluster* transport:
frames are only ever exchanged between mutually trusting worker
processes of one experiment, never with untrusted peers.

Header layouts (big-endian):

* endpoint -> hub:   ``[u32 body_len][i32 dst]`` + body
* hub -> endpoint:   ``[u32 body_len][i32 src]`` + body

The hub rewrites the 4-byte address field when forwarding, so a
destination learns the sender without the body being examined en route.
"""

from __future__ import annotations

import pickle
import struct
from typing import Any

__all__ = ["HEADER", "HELLO", "decode", "encode"]

#: ``(body_len, address)`` -- address is dst on the way to the hub and
#: src on the way out.
HEADER = struct.Struct(">Ii")

#: One-shot handshake a TCP endpoint sends on connect: its own address.
HELLO = struct.Struct(">i")


def encode(obj: Any) -> bytes:
    """Serialise one frame body.

    The codec is round-agnostic: round numbers, phase tags and send
    sequence numbers live *inside* the frame tuple
    (:mod:`repro.net.runtime` defines the frame kinds), so the wire
    format never changes when the round protocol grows.  Multicast
    senders call this once per send group and fan the encoded bytes out
    via :meth:`~repro.net.transport.Endpoint.send_encoded`, which is
    what keeps a payload's pickling cost independent of its recipient
    count.
    """
    return pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)


def decode(body: bytes) -> Any:
    """Deserialise one frame body.

    Always produces a fresh object graph — even over the in-memory
    transport a receiver gets an equal *copy*, never the sender's
    instance — so payload mutation can never leak between nodes within
    or across rounds.
    """
    return pickle.loads(body)
