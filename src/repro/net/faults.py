"""Runtime fault injection: simulator crash schedules on the net runtime.

The simulator's adversaries (:mod:`repro.sim.adversary`,
:mod:`repro.sim.adaptive`) are written against the live
:class:`~repro.sim.engine.Engine`: they read ``engine.round``, call
``engine.operational(pid)`` and inspect ``engine.processes[pid].halted``
/ ``.decided``.  The net runtime's coordinator does not hold the process
objects (in a multi-OS-process deployment they live in worker
processes), but it *does* track exactly that observable status from the
nodes' round reports.

:class:`RuntimeView` re-presents the coordinator's status table through
the engine's query surface, so any existing adversary -- oblivious
:class:`~repro.sim.adversary.ScheduledCrashes` schedules as well as the
adaptive ones -- drives the net runtime unchanged, and the same seed
produces the same crash set on both substrates (pinned by the parity
tests).  :class:`NetFaultInjector` wraps the adversary with the
engine's validity checks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping, Optional

from repro.sim.adversary import CrashAdversary
from repro.sim.process import ProtocolError

__all__ = ["NetFaultInjector", "NodeStatus", "RuntimeView"]


@dataclass
class NodeStatus:
    """Last observable state a node reported to the coordinator."""

    pid: int
    halted: bool = False
    decided: bool = False
    decision: Any = None
    #: next spontaneous-activity round, reported only when requested
    wake: Optional[int] = None


class RuntimeView:
    """An engine-shaped read-only view over the coordinator's status.

    Exposes the attributes adversaries consume: ``round``, ``crashed``,
    ``operational(pid)`` and ``processes`` (a pid-indexed sequence of
    :class:`NodeStatus`, which carries the ``pid`` / ``halted`` /
    ``decided`` fields the adaptive adversaries inspect).
    """

    def __init__(self, statuses: list[NodeStatus], crashed: set[int]):
        self.processes = statuses
        self.crashed = crashed
        self.round = 0
        self.n = len(statuses)

    def operational(self, pid: int) -> bool:
        return pid not in self.crashed


class NetFaultInjector:
    """Applies a :class:`~repro.sim.adversary.CrashAdversary` per round.

    Wraps the adversary's full per-round surface — crash nominations,
    churn rejoins and link masks — with the engine's validity checks, in
    the same order the engine consults them at the top of each round:
    :meth:`rejoins_for_round` (before the crash nomination, so adaptive
    adversaries observe post-rejoin state), then
    :meth:`crashes_for_round`, then :meth:`blocked_links` for the round's
    send phase.
    """

    def __init__(self, adversary: CrashAdversary, byzantine: frozenset[int]):
        self.adversary = adversary
        self.byzantine = byzantine
        for pid in adversary.rejoin_pids():
            if pid in byzantine:
                raise ProtocolError(
                    f"adversary scheduled churn on Byzantine node {pid}"
                )

    def crashes_for_round(
        self, rnd: int, view: RuntimeView
    ) -> dict[int, Optional[int]]:
        """pid -> partial-send ``keep`` budget for nodes crashing at ``rnd``."""
        view.round = rnd
        crashing = self.adversary.crashes_for_round(rnd, view)  # type: ignore[arg-type]
        for pid in crashing:
            if pid in self.byzantine:
                raise ProtocolError(
                    f"adversary attempted to crash Byzantine node {pid}"
                )
        return crashing

    def rejoins_for_round(self, rnd: int):
        """Pids whose churn schedule rejoins them at ``rnd`` (the
        coordinator reinstates only those currently crashed)."""
        return self.adversary.rejoins_for_round(rnd)

    def rejoin_pids(self) -> frozenset[int]:
        """All churn pids; node tasks hosting them snapshot initial state."""
        return self.adversary.rejoin_pids()

    def next_rejoin(self, pid: int, rnd: int) -> Optional[int]:
        """Earliest rejoin of ``pid`` after ``rnd``; a crashing node with
        one pending keeps its connection open instead of exiting."""
        return self.adversary.next_rejoin(pid, rnd)

    def blocked_links(
        self, rnd: int
    ) -> Optional[Mapping[int, frozenset[int]]]:
        """The round's link mask; each participant receives its own
        blocked-destination set inside the ``START`` frame."""
        return self.adversary.blocked_links(rnd)

    def next_event_round(self, rnd: int) -> Optional[int]:
        return self.adversary.next_event_round(rnd)
