"""The asyncio round-synchronised runtime.

Execution model
---------------
Every node is one asyncio task (:func:`run_node`) hosting an unmodified
:class:`~repro.sim.process.Process`; a coordinator task
(:class:`Session`) implements the synchronous model of Section 2
as a two-phase barrier per round:

0. ``REJOIN(r)`` -- before opening the round, crashed nodes whose churn
   schedule rejoins them at ``r`` are reinstated: the node task (which
   kept its connection open awaiting exactly this) resets its process
   to the pre-``on_start`` snapshot, runs ``on_start`` again and
   reports ``REJOINED``; the coordinator restores it to the live set so
   it participates in round ``r``'s send phase.
1. ``START(r)`` -- the coordinator opens round ``r`` for every live
   node, attaching the partial-send budget ``keep`` for nodes the fault
   injector crashes this round, the node's blocked-destination set for
   link faults (omission/partition scenarios), whether a crashing node
   should await a rejoin, and whether to report trace records.  Each
   node runs its ``send(r)`` hook, normalises and truncates its sends
   through the engine's own ``collect_sends`` + ``apply_link_filter``,
   transmits one data frame per surviving point-to-point message
   *directly to the destination endpoint* (multicasts are expanded on
   the wire), counts its own messages, payload bits and dropped
   messages, and reports ``SENT`` with its per-destination counts.
2. ``DELIVER(r)`` -- once every live node has reported, the coordinator
   tells each surviving node how many round-``r`` frames to expect.
   The node collects exactly that many (data frames may already have
   arrived and are buffered by round), orders the inbox by
   ``(sender, send-order)`` -- byte-for-byte the simulator's delivery
   order -- runs ``receive(r)``, and reports ``DONE``.

The barrier guarantees the paper's synchrony: no process observes round
``r + 1`` before every round-``r`` message is delivered.  Crash faults,
link faults, churn, fast-forward over quiescent stretches, termination,
and the rounds/messages/bits/dropped accounting all mirror the
simulator's reference loop statement by statement, which is what makes
the sim/net parity tests exact rather than statistical.  When a trace
recorder or checker is attached (:mod:`repro.trace`), nodes compute the
structural digest of every payload next to the wire and ship the
records inside their ``SENT`` reports, so the coordinator records or
verifies the same events the engine would.

Deployment shapes
-----------------
* :func:`run_protocol_net` -- everything (hub, coordinator, all nodes)
  in one OS process, over the in-memory or TCP transport.
* :func:`serve_tcp` + :func:`host_nodes_tcp` -- the coordinator and
  disjoint node shards in separate OS processes, meeting at a
  :class:`~repro.net.transport.TCPHub` (see ``examples/net_consensus.py``).
* :mod:`repro.serve` -- a long-lived run-server advancing *many*
  :class:`Session` objects concurrently on one event loop, their frames
  multiplexed over shared hub connections by instance tag.

A :class:`Session` is one protocol instance's coordinator state: it
owns nothing global (no hub, no loop, no transport), so any number of
sessions can run as sibling tasks over endpoints of one
:class:`~repro.net.transport.TCPMux`.  Frame *batching* in the
transport layer then coalesces the round traffic of all concurrently
advancing sessions into shared wire writes.
"""

from __future__ import annotations

import asyncio
import copy
import time
from typing import Any, Iterable, Mapping, Optional, Sequence

from repro.net.codec import encode, set_codec_probe
from repro.net.faults import NetFaultInjector, NodeStatus, RuntimeView
from repro.obs.recorder import coerce_recorder
from repro.net.transport import Endpoint, MemoryHub, TCPHub, connect_tcp
from repro.sim.adversary import CrashAdversary, NoFailures
from repro.sim.engine import (
    RunResult,
    apply_link_filter,
    check_pid_order,
    collect_sends,
)
from repro.sim.metrics import Metrics
from repro.sim.process import Process, ProtocolError, payload_bits_cached
from repro.trace import payload_digest

__all__ = [
    "NetRuntimeError",
    "Session",
    "Synchronizer",
    "host_nodes_tcp",
    "run_node",
    "run_protocol_net",
    "serve_tcp",
]


class NetRuntimeError(RuntimeError):
    """A node task or transport failed; carries the remote traceback text."""


# Frame kinds (first element of every decoded frame body).
_READY = "ready"
_START = "start"
_SENT = "sent"
_DELIVER = "deliver"
_DONE = "done"
_STOP = "stop"
_ERROR = "error"
_DATA = "data"
_REJOIN = "rejoin"
_REJOINED = "rejoined"


def _status_of(proc: Process) -> tuple[bool, bool, Any]:
    return proc.halted, proc.decided, proc.decision


# -- node side ---------------------------------------------------------------


async def run_node(
    proc: Process,
    endpoint: Endpoint,
    coordinator: int,
    *,
    churn: bool = False,
    telemetry: Any = None,
) -> None:
    """Host one process on one endpoint until it halts, crashes for good
    or is stopped.

    ``churn`` marks a node with a scheduled rejoin
    (:meth:`~repro.sim.adversary.CrashAdversary.rejoin_pids`): its
    pre-``on_start`` state is snapshotted so a later ``REJOIN`` frame
    can reset it, and on crashing it keeps the connection open awaiting
    that frame instead of exiting.  Protocol errors (invalid
    destinations, broken ``next_activity`` contracts, exceptions
    escaping the hooks) are reported to the coordinator as ``ERROR``
    frames so they surface in the driving process even when this node
    lives in a remote worker.

    ``telemetry`` (a live :class:`repro.obs.TelemetryRecorder` sharing
    the coordinator's event loop, or ``None``) adds ``node.send`` /
    ``node.deliver`` spans on a per-node track.  Only the in-process
    runners wire it; nodes hosted in remote worker processes
    (:func:`host_nodes_tcp`) have no recorder, so a distributed profile
    shows the coordinator's barrier view only.
    """
    try:
        await _node_loop(proc, endpoint, coordinator, churn, telemetry)
    except asyncio.CancelledError:
        raise
    except Exception as exc:  # report, then end this node quietly
        try:
            await endpoint.send(
                coordinator, (_ERROR, proc.pid, type(exc).__name__, str(exc))
            )
        except Exception:
            pass  # transport already down; nothing left to tell
    finally:
        await endpoint.close()


async def _await_rejoin(endpoint: Endpoint) -> bool:
    """A crashed churn node's downtime: drain and discard traffic until
    the coordinator rejoins (``True``) or stops (``False``) this node.

    Data frames arriving here were addressed to a crashed node; they are
    lost exactly as in the simulator (where crashed pids never consume
    their inbox).  Per-sink FIFO ordering guarantees every such frame
    precedes the ``REJOIN`` frame, so nothing from the downtime can leak
    into the post-rejoin inbox.
    """
    while True:
        _src, frame = await endpoint.recv()
        kind = frame[0]
        if kind == _DATA:
            continue
        if kind == _REJOIN:
            return True
        if kind == _STOP:
            return False
        raise NetRuntimeError(
            f"crashed node awaiting rejoin received unexpected frame {kind!r}"
        )


async def _node_loop(
    proc: Process,
    endpoint: Endpoint,
    coordinator: int,
    churn: bool,
    telemetry: Any = None,
) -> None:
    pid = proc.pid
    n = proc.n
    tel = coerce_recorder(telemetry)
    track = f"node-{pid}"
    # Churn nodes snapshot their pre-on_start state: a REJOIN restores
    # it (fresh deep copy per rejoin) and runs on_start again -- the
    # same reset the engine applies.
    snapshot = copy.deepcopy(proc.__dict__) if churn else None
    proc.on_start()
    await endpoint.send(coordinator, (_READY, pid, *_status_of(proc)))
    if proc.halted:
        # Halted during on_start: the coordinator never opens a round
        # for this node (the simulator's send/receive loops skip it).
        return

    # Data frames buffered by round: a peer that reaches round r + 1
    # first may deliver before this node's START(r + 1) arrives.
    buffers: dict[int, list[tuple[int, int, Any]]] = {}
    bits_cache: dict[int, tuple[Any, int]] = {}

    while True:
        src, frame = await endpoint.recv()
        kind = frame[0]
        if kind == _DATA:
            _, rnd, seq, payload = frame
            buffers.setdefault(rnd, []).append((src, seq, payload))
        elif kind == _START:
            _, rnd, crashing, keep, blocked, will_rejoin, record = frame
            bits_cache.clear()
            if tel is not None:
                t_send = tel.clock()
            if crashing:
                await _send_phase(
                    proc, endpoint, coordinator, rnd, keep, bits_cache,
                    blocked, record,
                )
                if tel is not None:
                    tel.span("node.send", rnd, t_send, tel.clock(), track=track)
                if not will_rejoin:
                    return  # crashed for good: no further activity
                if snapshot is None:
                    raise NetRuntimeError(
                        f"node {pid} is scheduled to rejoin but was hosted "
                        "without churn=True (pass the adversary's "
                        "rejoin_pids() to host_nodes_tcp/run_node)"
                    )
                if not await _await_rejoin(endpoint):
                    return  # run ended while this node was down
                # State reset: everything buffered during the downtime
                # is lost, the process restarts from its initial state.
                buffers.clear()
                proc.__dict__.clear()
                proc.__dict__.update(copy.deepcopy(snapshot))
                proc.on_start()
                await endpoint.send(
                    coordinator, (_REJOINED, pid, *_status_of(proc))
                )
                if proc.halted:
                    return
                continue
            await _send_phase(
                proc, endpoint, coordinator, rnd, None, bits_cache,
                blocked, record,
            )
            if tel is not None:
                tel.span("node.send", rnd, t_send, tel.clock(), track=track)
            if proc.halted:
                # Halted inside send(): the engine skips such a process
                # from the receive phase onwards, and the coordinator
                # (told via the SENT report) never contacts it again --
                # exit now rather than wait for a frame that won't come.
                return
        elif kind == _DELIVER:
            _, rnd, expect, need_wake = frame
            if tel is not None:
                t_deliver = tel.clock()
            inbox = await _collect_inbox(endpoint, buffers, rnd, expect)
            proc.receive(rnd, inbox)
            if tel is not None:
                tel.span(
                    "node.deliver", rnd, t_deliver, tel.clock(), track=track
                )
            wake: Optional[int] = None
            if need_wake and not proc.halted:
                wake = proc.next_activity(rnd)
            await endpoint.send(
                coordinator, (_DONE, rnd, pid, *_status_of(proc), wake)
            )
            if proc.halted:
                return
        elif kind == _STOP:
            return
        else:
            raise NetRuntimeError(f"node {pid} received unknown frame {kind!r}")


async def _send_phase(
    proc: Process,
    endpoint: Endpoint,
    coordinator: int,
    rnd: int,
    keep: Optional[int],
    bits_cache: dict,
    blocked: tuple[int, ...] = (),
    record: bool = False,
) -> None:
    """One node's send phase: normalise, validate and (for a crashing
    node) truncate the sends with the engine's own
    :func:`repro.sim.engine.collect_sends`, then remove link-blocked
    destinations with :func:`repro.sim.engine.apply_link_filter` -- the
    single sources of partial-send and omission semantics on both
    substrates -- then transmit one data frame per surviving
    point-to-point message, accumulate message/bit/dropped counts
    locally (plus per-group trace records when ``record``) and flush one
    ``SENT`` report."""
    pid = proc.pid
    groups = collect_sends(proc, rnd, keep, proc.n)
    dropped = 0
    if blocked:
        groups, dropped = apply_link_filter(groups, frozenset(blocked))
    msgs = 0
    bits = 0
    dest_counts: dict[int, int] = {}
    records: Optional[list] = [] if record else None
    for seq, (dsts, payload) in enumerate(groups):
        bits_each = payload_bits_cached(payload, bits_cache)
        if records is not None:
            # Digest computed next to the wire, so the coordinator's
            # trace records exactly what this node serialised.
            records.append((tuple(dsts), bits_each, payload_digest(payload)))
        # One frame body per send group: ``seq`` is the group index
        # (receivers order by ``(src, seq)`` with a stable sort, so
        # same-group duplicates keep their on-wire FIFO order), which
        # lets a multicast pickle its payload once, not once per
        # destination.
        body = encode((_DATA, rnd, seq, payload))
        for dst in dsts:
            await endpoint.send_encoded(dst, body)
            dest_counts[dst] = dest_counts.get(dst, 0) + 1
        msgs += len(dsts)
        bits += bits_each * len(dsts)
    await endpoint.send(
        coordinator,
        (_SENT, rnd, pid, dest_counts, msgs, bits, dropped, records,
         *_status_of(proc)),
    )


async def _collect_inbox(
    endpoint: Endpoint,
    buffers: dict[int, list[tuple[int, int, Any]]],
    rnd: int,
    expect: int,
) -> list[tuple[int, Any]]:
    """Wait until all ``expect`` round-``rnd`` frames arrived, then order
    them by ``(sender pid, per-sender send order)`` -- the simulator's
    delivery order.  The sort key excludes the payload (payloads need
    not be comparable); stability preserves on-wire FIFO order for
    same-group duplicates."""
    while len(buffers.get(rnd, ())) < expect:
        src, frame = await endpoint.recv()
        if frame[0] != _DATA:
            raise NetRuntimeError(
                f"expected data frames for round {rnd}, got {frame[0]!r}"
            )
        buffers.setdefault(frame[1], []).append((src, frame[2], frame[3]))
    pending = sorted(buffers.pop(rnd, []), key=lambda entry: (entry[0], entry[1]))
    return [(src, payload) for src, _seq, payload in pending]


# -- coordinator side --------------------------------------------------------


class Session:
    """One protocol instance's round-barrier coordinator.

    Drives the crash phase (via :class:`~repro.net.faults.NetFaultInjector`),
    the send/deliver barrier, fast-forward over quiescent rounds, the
    termination condition, and the :class:`~repro.sim.metrics.Metrics`
    accounting -- all statement-for-statement mirrors of the simulator's
    reference loop, so a seeded schedule yields identical rounds,
    message/bit totals, per-node and per-round tallies, crash sets and
    decisions on both substrates.

    A session carries no global state: it talks to its nodes through
    whatever endpoint :meth:`run` is handed, so one event loop can
    advance many sessions concurrently over per-instance endpoints of a
    shared transport (the run-server in :mod:`repro.serve` does exactly
    this, with ``instance`` tagging each session's frames on the wire).
    ``instance`` is a label only -- it never enters the barrier logic,
    which is what keeps multiplexed runs bit-identical to single runs.
    """

    def __init__(
        self,
        n: int,
        adversary: Optional[CrashAdversary] = None,
        *,
        byzantine: frozenset[int] = frozenset(),
        max_rounds: int = 100_000,
        fast_forward: bool = True,
        timeout: Optional[float] = 120.0,
        recorder: Optional[Any] = None,
        telemetry: Any = None,
        instance: int = 0,
    ):
        self.n = n
        #: protocol-instance tag; purely diagnostic in the session (the
        #: transport layer does the actual routing by it)
        self.instance = instance
        #: optional per-round progress hook ``on_round(session, rnd)``,
        #: invoked after each round's deliver barrier closes.  ``None``
        #: (the default) costs one truth test per round; the run-server
        #: uses it to stream round/metrics updates to watchers.
        self.on_round: Optional[Any] = None
        self.byzantine = frozenset(byzantine)
        self.injector = NetFaultInjector(
            adversary if adversary is not None else NoFailures(), self.byzantine
        )
        self.max_rounds = max_rounds
        self.fast_forward = fast_forward
        self.timeout = timeout
        #: trace hook (:class:`repro.trace.TraceRecorder` / ``TraceChecker``);
        #: when set, nodes are asked to ship per-group send records in
        #: their ``SENT`` reports and every fault event is forwarded
        self.recorder = recorder
        #: wall-clock instrumentation (see :mod:`repro.obs`); the
        #: coordinator's send/deliver spans include the barrier wait for
        #: the corresponding node reports
        self.telemetry = coerce_recorder(telemetry)
        self.metrics = Metrics()
        self.crashed: set[int] = set()
        self.statuses = [NodeStatus(pid) for pid in range(n)]
        self.view = RuntimeView(self.statuses, self.crashed)
        #: pid -> (phase, round, time.monotonic()) of the node's last
        #: completed report.  Always maintained (one dict store per
        #: report frame, telemetry or not) so a barrier timeout can name
        #: the laggard: "stuck in phase X of round R" plus how long ago
        #: each missing node last reported.
        self.last_progress: dict[int, tuple[str, int, float]] = {}

    async def run(self, endpoint: Endpoint) -> RunResult:
        """Execute to completion and return an engine-shaped result.

        ``result.processes`` holds the coordinator's
        :class:`~repro.net.faults.NodeStatus` records -- pid-indexed
        stand-ins carrying the ``pid`` / ``halted`` / ``decided`` /
        ``decision`` fields, enough for ``correct_pids()`` and the
        ``check_*`` predicates to work on a distributed run's result.
        The single-process runners replace them with the locally hosted
        process objects.
        """
        tel = self.telemetry
        if tel is not None:
            tel.run_begin(n=self.n)
        try:
            await self._await_ready(endpoint)
            completed, last_active_round = await self._round_loop(endpoint)
        finally:
            # Also on error: without STOP frames, remote node tasks stay
            # blocked in recv() and their worker processes never exit.
            # Best-effort -- the original exception must propagate even
            # if the transport is already broken.
            try:
                await self._stop_survivors(endpoint)
            except Exception:
                pass
        if not completed and all(
            pid in self.crashed or pid in self.byzantine for pid in range(self.n)
        ):
            completed = True
            self.metrics.rounds = max(last_active_round + 1, 0)
        decisions = {
            s.pid: s.decision for s in self.statuses if s.decided
        }
        result = RunResult(
            processes=tuple(self.statuses),
            metrics=self.metrics,
            crashed=set(self.crashed),
            byzantine=self.byzantine,
            completed=completed,
            decisions=decisions,
        )
        if tel is not None:
            tel.run_end(completed=completed)
            result.telemetry = tel.finish(result)
        return result

    # -- protocol steps --------------------------------------------------

    async def _recv(
        self,
        endpoint: Endpoint,
        context: str = "",
        pending: Optional[Iterable[int]] = None,
    ) -> tuple:
        if self.timeout is None:
            src, frame = await endpoint.recv()
        else:
            try:
                src, frame = await asyncio.wait_for(endpoint.recv(), self.timeout)
            except asyncio.TimeoutError:
                where = f"session {self.instance}: " if self.instance else ""
                raise NetRuntimeError(
                    f"{where}coordinator timed out after {self.timeout}s "
                    f"waiting for node reports ({context or 'unknown phase'}; "
                    "a node task or worker process died?)"
                    + self._laggard_detail(pending)
                ) from None
        if frame[0] == _ERROR:
            _, pid, kind, text = frame
            if kind == "ProtocolError":
                raise ProtocolError(text)
            raise NetRuntimeError(f"node {pid} failed with {kind}: {text}")
        return frame

    def _laggard_detail(self, pending: Optional[Iterable[int]]) -> str:
        """Per-missing-pid last-completed-span lines for timeout errors.

        Built from :attr:`last_progress` (maintained on every report
        frame, so available whether or not telemetry is enabled): names
        which nodes the barrier is stuck on and what each last finished.
        """
        if not pending:
            return ""
        now = time.monotonic()
        lines = []
        for pid in sorted(pending)[:8]:
            entry = self.last_progress.get(pid)
            if entry is None:
                lines.append(f"pid {pid}: no reports received yet")
            else:
                phase, rnd, ts = entry
                where = phase if rnd < 0 else f"{phase} of round {rnd}"
                lines.append(
                    f"pid {pid}: last completed {where}, {now - ts:.1f}s ago"
                )
        more = len(list(pending)) - len(lines)
        if more > 0:
            lines.append(f"... and {more} more")
        return " | laggards: " + "; ".join(lines)

    async def _await_ready(self, endpoint: Endpoint) -> None:
        pending = set(range(self.n))
        while pending:
            frame = await self._recv(
                endpoint,
                f"ready phase, missing pids {sorted(pending)}",
                pending=pending,
            )
            if frame[0] != _READY:
                raise NetRuntimeError(f"expected ready, got {frame[0]!r}")
            _, pid, halted, decided, decision = frame
            pending.discard(pid)
            self._update(pid, halted, decided, decision)
            self.last_progress[pid] = ("ready", -1, time.monotonic())

    def _update(self, pid: int, halted: bool, decided: bool, decision: Any) -> None:
        status = self.statuses[pid]
        status.halted = halted
        status.decided = decided
        status.decision = decision

    async def _rejoin_phase(self, endpoint: Endpoint, rnd: int) -> list[int]:
        """Reinstate crashed churn nodes scheduled to rejoin at ``rnd``.

        Mirrors the engine's rejoin phase: only currently-crashed pids
        rejoin; each gets a ``REJOIN`` frame, resets to its snapshot,
        runs ``on_start`` and reports ``REJOINED`` with fresh status
        before the round opens (so no round-``rnd`` data frame can race
        ahead of the reset).  Returns the sorted reinstated pids.
        """
        scheduled = self.injector.rejoins_for_round(rnd)
        if not scheduled:
            return []
        rejoining = sorted(pid for pid in scheduled if pid in self.crashed)
        for pid in rejoining:
            await endpoint.send(pid, (_REJOIN, rnd))
        pending = set(rejoining)
        while pending:
            frame = await self._recv(
                endpoint,
                f"rejoin phase of round {rnd}, missing pids {sorted(pending)}",
                pending=pending,
            )
            if frame[0] != _REJOINED:
                raise NetRuntimeError(f"expected rejoined, got {frame[0]!r}")
            _, pid, halted, decided, decision = frame
            pending.discard(pid)
            self.crashed.discard(pid)
            self._update(pid, halted, decided, decision)
            self.statuses[pid].wake = None
            self.last_progress[pid] = ("rejoin", rnd, time.monotonic())
        return rejoining

    async def _round_loop(self, endpoint: Endpoint) -> tuple[bool, int]:
        rnd = 0
        completed = False
        last_active_round = -1
        hit_max = True
        record = self.recorder is not None
        tel = self.telemetry
        decided_seen: set[int] = set()
        while rnd < self.max_rounds:
            if tel is not None:
                t_round = tel.clock()
            rejoining = await self._rejoin_phase(endpoint, rnd)
            if tel is not None:
                t_rejoin = tel.clock()
                if rejoining:
                    tel.span("rejoin", rnd, t_round, t_rejoin)
                    for pid in rejoining:
                        tel.point("rejoin", rnd, t_rejoin, pid=pid)
            crashing = self.injector.crashes_for_round(rnd, self.view)
            blocked = self.injector.blocked_links(rnd)
            if record:
                self.recorder.round_events(rnd, crashing, rejoining, blocked)
            if tel is not None:
                t_crash = tel.clock()
                tel.span("crash", rnd, t_rejoin, t_crash)
                for pid in crashing:
                    tel.point("crash", rnd, t_crash, pid=pid, keep=crashing[pid])

            # Send phase: open the round for every live node.
            participants = [
                pid
                for pid in range(self.n)
                if pid not in self.crashed and not self.statuses[pid].halted
            ]
            for pid in participants:
                crashes_now = pid in crashing
                mask = ()
                if blocked:
                    dsts = blocked.get(pid)
                    if dsts:
                        mask = tuple(sorted(dsts))
                will_rejoin = (
                    crashes_now and self.injector.next_rejoin(pid, rnd) is not None
                )
                await endpoint.send(
                    pid,
                    (_START, rnd, crashes_now, crashing.get(pid), mask,
                     will_rejoin, record),
                )
            expected = [0] * self.n
            delivered_any = False
            pending = set(participants)
            while pending:
                frame = await self._recv(
                    endpoint,
                    f"send phase of round {rnd}, missing pids {sorted(pending)}",
                    pending=pending,
                )
                if frame[0] != _SENT:
                    raise NetRuntimeError(f"expected sent, got {frame[0]!r}")
                (_, r, pid, dest_counts, msgs, bits, dropped, records,
                 halted, decided, decision) = frame
                pending.discard(pid)
                self._update(pid, halted, decided, decision)
                self.last_progress[pid] = ("send", rnd, time.monotonic())
                for dst, count in dest_counts.items():
                    expected[dst] += count
                if msgs:
                    delivered_any = True
                    self.metrics.record_send(
                        pid, msgs, bits, rnd, pid not in self.byzantine
                    )
                if dropped:
                    if pid not in self.byzantine:
                        self.metrics.record_drop(dropped)
                    if record:
                        self.recorder.record_drops(rnd, pid, dropped)
                    if tel is not None:
                        tel.point(
                            "drop", rnd, tel.clock(), pid=pid, count=dropped
                        )
                if record and records:
                    for dsts, bits_each, digest in records:
                        self.recorder.record_send_digest(
                            rnd, pid, dsts, bits_each, digest
                        )
            for pid in crashing:
                if pid in participants:
                    self.crashed.add(pid)
            if tel is not None:
                # The send span covers opening the round plus the
                # barrier wait for every live node's SENT report.
                t_send = tel.clock()
                tel.span("send", rnd, t_crash, t_send)

            # Receive phase: survivors consume their (possibly empty) inbox.
            need_wake = self.fast_forward and not delivered_any
            receivers = [
                pid
                for pid in participants
                if pid not in self.crashed and not self.statuses[pid].halted
            ]
            for pid in receivers:
                await endpoint.send(pid, (_DELIVER, rnd, expected[pid], need_wake))
            pending = set(receivers)
            while pending:
                frame = await self._recv(
                    endpoint,
                    f"receive phase of round {rnd}, missing pids {sorted(pending)}",
                    pending=pending,
                )
                if frame[0] != _DONE:
                    raise NetRuntimeError(f"expected done, got {frame[0]!r}")
                _, r, pid, halted, decided, decision, wake = frame
                pending.discard(pid)
                self._update(pid, halted, decided, decision)
                self.last_progress[pid] = ("deliver", rnd, time.monotonic())
                self.statuses[pid].wake = wake
                if wake is not None and wake <= rnd:
                    raise ProtocolError(
                        f"process {pid} declared next_activity {wake} <= {rnd}"
                    )
            if tel is not None:
                # Likewise, deliver covers the DONE barrier wait.
                t_deliver = tel.clock()
                tel.span("deliver", rnd, t_send, t_deliver)
                tel.span("round", rnd, t_round, t_deliver)
                for status in self.statuses:
                    if status.decided and status.pid not in decided_seen:
                        decided_seen.add(status.pid)
                        tel.point("decide", rnd, t_deliver, pid=status.pid)

            if delivered_any:
                last_active_round = rnd

            if self.on_round is not None:
                self.on_round(self, rnd)

            # Termination: all operational non-Byzantine nodes halted and
            # no crashed node still has a scheduled rejoin ahead -- the
            # engine's rule exactly (see Engine._rejoin_pending): a
            # pending rejoin always fires before the run ends, and one at
            # or beyond max_rounds exhausts the safety bound instead.
            if all(
                self.statuses[pid].halted
                for pid in range(self.n)
                if pid not in self.crashed and pid not in self.byzantine
            ) and not self._rejoin_pending(rnd):
                self.metrics.rounds = rnd + 1
                completed = True
                hit_max = False
                break

            rnd = self._advance(rnd, delivered_any, receivers)
        if hit_max:
            self.metrics.rounds = self.max_rounds
        return completed, last_active_round

    def _rejoin_pending(self, rnd: int) -> bool:
        """Mirror of :meth:`repro.sim.engine.Engine._rejoin_pending`."""
        for pid in self.crashed:
            if self.injector.next_rejoin(pid, rnd) is not None:
                return True
        return False

    def _advance(self, rnd: int, delivered_any: bool, receivers: list[int]) -> int:
        """The engine's quiescence fast-forward over reported wake rounds."""
        if not self.fast_forward or delivered_any:
            return rnd + 1
        nxt = self.max_rounds
        for pid in receivers:
            status = self.statuses[pid]
            if status.halted or status.wake is None:
                continue
            nxt = min(nxt, status.wake)
        crash_event = self.injector.next_event_round(rnd)
        if crash_event is not None:
            nxt = min(nxt, max(crash_event, rnd + 1))
        return max(rnd + 1, nxt)

    async def _stop_survivors(self, endpoint: Endpoint) -> None:
        # Halted nodes have already detached (both hubs drop frames to
        # detached addresses), and so have permanently-crashed ones --
        # but a crashed *churn* node awaiting a rejoin that will never
        # come is still listening.  STOP every pid rather than guess
        # which ones remain attached.
        for pid in range(self.n):
            await endpoint.send(pid, (_STOP,))


#: Backwards-compatible name from before sessions were per-instance
#: objects: the coordinator used to be the one-and-only "Synchronizer".
Synchronizer = Session


# -- runners -----------------------------------------------------------------


async def _run_async(
    processes: Sequence[Process],
    adversary: Optional[CrashAdversary],
    byzantine: frozenset[int],
    max_rounds: int,
    fast_forward: bool,
    transport: str,
    host: str,
    port: int,
    timeout: Optional[float],
    recorder: Optional[Any] = None,
    telemetry: Any = None,
    batching: bool = True,
) -> RunResult:
    n = len(processes)
    tel = coerce_recorder(telemetry)
    if tel is not None:
        # Label and open the run span before any transport setup so the
        # node/coordinator spans all land inside it; install the codec
        # probe so frame encode/decode cost aggregates into the stats.
        tel.run_begin(
            backend="net" if transport == "memory" else "tcp", n=n
        )
        set_codec_probe(tel)
    hub: Any
    if transport == "memory":
        hub = MemoryHub()
        endpoints: list[Endpoint] = [hub.endpoint(addr) for addr in range(n + 1)]
    elif transport == "tcp":
        hub = TCPHub(host, port, batching=batching)
        await hub.start()
        endpoints = [
            await connect_tcp(host, hub.port, addr, batching=batching)
            for addr in range(n + 1)
        ]
    else:
        raise ValueError(f"unknown transport {transport!r}")
    sync = Session(
        n,
        adversary,
        byzantine=byzantine,
        max_rounds=max_rounds,
        fast_forward=fast_forward,
        timeout=timeout,
        recorder=recorder,
        telemetry=tel,
    )
    churn_pids = (
        adversary.rejoin_pids() if adversary is not None else frozenset()
    )
    node_tasks = [
        asyncio.create_task(
            run_node(
                proc,
                endpoints[proc.pid],
                n,
                churn=proc.pid in churn_pids,
                telemetry=tel,
            )
        )
        for proc in processes
    ]
    try:
        result = await sync.run(endpoints[n])
        await asyncio.gather(*node_tasks)
    finally:
        if tel is not None:
            set_codec_probe(None)
        for task in node_tasks:
            if not task.done():
                task.cancel()
        await asyncio.gather(*node_tasks, return_exceptions=True)
        await endpoints[n].close()
        if transport == "tcp":
            await hub.close()
    result.processes = list(processes)
    return result


def run_protocol_net(
    processes: Sequence[Process],
    adversary: Optional[CrashAdversary] = None,
    *,
    byzantine: frozenset[int] = frozenset(),
    max_rounds: int = 100_000,
    fast_forward: bool = True,
    transport: str = "memory",
    host: str = "127.0.0.1",
    port: int = 0,
    timeout: Optional[float] = 120.0,
    recorder: Optional[Any] = None,
    telemetry: Any = None,
    batching: bool = True,
) -> RunResult:
    """Execute ``processes`` on the net runtime in this OS process.

    The drop-in counterpart of ``Engine(processes, adversary).run()``:
    same process objects, same adversary schedules (including the
    extended omission/partition/churn surface of
    :mod:`repro.scenarios`), same
    :class:`~repro.sim.engine.RunResult` (with ``result.processes``
    holding the locally hosted instances).  ``transport`` selects the
    in-memory hub or a loopback TCP hub (real sockets, one OS process);
    ``recorder`` attaches a :mod:`repro.trace` recorder/checker;
    ``telemetry`` (see :mod:`repro.obs`) adds coordinator round/phase
    spans, per-node ``node.send``/``node.deliver`` tracks and aggregated
    codec timings, sealed onto ``result.telemetry``.  ``batching``
    (TCP only) toggles wire-write coalescing in the transport --
    delivery semantics and results are identical either way; the off
    position exists to measure the speedup (``BENCH_net.json``).
    """
    check_pid_order(processes)
    return asyncio.run(
        _run_async(
            processes,
            adversary,
            frozenset(byzantine),
            max_rounds,
            fast_forward,
            transport,
            host,
            port,
            timeout,
            recorder,
            telemetry,
            batching,
        )
    )


async def serve_tcp(
    n: int,
    adversary: Optional[CrashAdversary] = None,
    *,
    byzantine: frozenset[int] = frozenset(),
    max_rounds: int = 100_000,
    fast_forward: bool = True,
    host: str = "127.0.0.1",
    port: int = 0,
    hub: Optional[TCPHub] = None,
    timeout: Optional[float] = 120.0,
    recorder: Optional[Any] = None,
    telemetry: Any = None,
) -> RunResult:
    """Run the hub and coordinator for an ``n``-node TCP deployment.

    Node shards connect from worker processes via :func:`host_nodes_tcp`;
    this coroutine returns once the protocol terminates.  Pass a
    pre-``start()``-ed ``hub`` to bind the port race-free before
    spawning workers (read the bound port from ``hub.port``; ownership
    transfers -- this coroutine closes it).  Without ``hub``, one is
    created on ``host``/``port``; pick a fixed ``port`` the workers
    know, since an ephemeral one is not reported back.
    """
    if hub is None:
        hub = TCPHub(host, port)
        await hub.start()
    tel = coerce_recorder(telemetry)
    if tel is not None:
        tel.run_begin(backend="tcp", n=n)
        set_codec_probe(tel)
    endpoint = await connect_tcp(hub.host, hub.port, n)
    try:
        sync = Session(
            n,
            adversary,
            byzantine=byzantine,
            max_rounds=max_rounds,
            fast_forward=fast_forward,
            timeout=timeout,
            recorder=recorder,
            telemetry=tel,
        )
        return await sync.run(endpoint)
    finally:
        if tel is not None:
            set_codec_probe(None)
        await endpoint.close()
        await hub.close()


async def host_nodes_tcp(
    processes: Mapping[int, Process] | Sequence[Process],
    host: str,
    port: int,
    *,
    deadline: float = 30.0,
    churn_pids: Iterable[int] = (),
) -> None:
    """Host a shard of nodes in this OS process, dialing a remote hub.

    ``processes`` maps pid to process (or is a sequence of processes
    whose ``pid`` attributes name their addresses); each node gets its
    own endpoint connection.  ``churn_pids`` names the pids with a
    scheduled crash-and-rejoin (the coordinator's adversary's
    ``rejoin_pids()``) so those nodes snapshot their initial state and
    survive their crash leg; workers of a churn scenario must pass it.
    Returns when every hosted node has halted, crashed for good or been
    stopped by the coordinator.
    """
    procs = (
        list(processes.values())
        if isinstance(processes, Mapping)
        else list(processes)
    )
    churn = frozenset(churn_pids)
    endpoints = [
        await connect_tcp(host, port, proc.pid, deadline=deadline)
        for proc in procs
    ]
    await asyncio.gather(
        *(
            run_node(proc, endpoint, proc.n, churn=proc.pid in churn)
            for proc, endpoint in zip(procs, endpoints)
        )
    )
