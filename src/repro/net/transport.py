"""Pluggable transports: an in-memory hub and a TCP hub.

Both expose the same endpoint interface -- ``await send(dst, obj)``,
``await recv() -> (src, obj)``, ``await close()`` -- over a hub (star)
topology: every endpoint holds one link to a central router that
forwards frames by destination address.  Addresses are the node pids
``0..n-1`` plus the coordinator at address ``n``.

The hub is infrastructure (a software switch), not a protocol
participant: message and bit accounting happens at the sending node
exactly as in the simulator, so the topology does not affect the
paper's communication measures.  A full-mesh TCP transport (one socket
per node pair) would slot in behind the same endpoint interface.

Frames for a destination that has not attached yet are buffered and
flushed on attach, which makes startup order irrelevant; frames for a
destination that has already detached (a crashed or halted node) are
dropped, mirroring the simulator's "crashed nodes receive nothing".
"""

from __future__ import annotations

import asyncio
import sys
from typing import Any, Optional

from repro.net.codec import (
    HEADER,
    HELLO,
    MAX_FRAME_BYTES,
    FrameTooLargeError,
    check_frame_size,
    decode,
    encode,
)

__all__ = [
    "Endpoint",
    "MemoryEndpoint",
    "MemoryHub",
    "TCPEndpoint",
    "TCPHub",
    "connect_tcp",
]


class Endpoint:
    """Interface every transport endpoint implements.

    Ordering contract: frames from one sender to one destination are
    delivered FIFO, and a destination's frames from *all* senders pass
    through one sink queue in routing order.  The round runtime builds
    on both properties — a node's ``SENT`` report can never overtake
    its own data frames, and a crashed churn node can discard its
    entire downtime backlog safely because every stale frame is queued
    before the coordinator's ``REJOIN``.
    """

    address: int

    async def send(self, dst: int, obj: Any) -> None:
        """Encode and send one frame to ``dst`` (fire-and-forget:
        frames to detached or never-attached addresses are buffered or
        dropped by the hub, mirroring the simulator's delivery rules)."""
        await self.send_encoded(dst, encode(obj))

    async def send_encoded(self, dst: int, body: bytes) -> None:
        """Send an already-:func:`~repro.net.codec.encode`-d frame body.

        Lets a multicast sender serialise its payload once and reuse the
        bytes across destinations instead of re-pickling per recipient.
        """
        raise NotImplementedError

    async def recv(self) -> tuple[int, Any]:
        """Await the next inbound frame as ``(source address, body)``.

        Blocks indefinitely; the round runtime guarantees liveness by
        always answering a node's report with a next-phase frame
        (``DELIVER``, ``START``, ``REJOIN`` or ``STOP``).
        """
        raise NotImplementedError

    async def close(self) -> None:
        """Detach from the hub; subsequent frames to this address are
        dropped (a crashed or halted node receives nothing)."""
        raise NotImplementedError


class _Router:
    """Shared attach/route/detach bookkeeping behind both hubs.

    Each attached address owns one sink queue (``(src, body)`` items).
    Frames for an address that has not attached yet are buffered and
    flushed on attach (startup order becomes irrelevant); frames for an
    address that attached and then detached — a crashed or halted node —
    are dropped, mirroring the simulator's "crashed nodes receive
    nothing".  Both transports inherit this, so their delivery semantics
    cannot drift apart.
    """

    def __init__(self) -> None:
        self._sinks: dict[int, asyncio.Queue] = {}
        self._seen: set[int] = set()
        self._pending: dict[int, list[tuple[int, bytes]]] = {}

    def _attach(self, address: int) -> asyncio.Queue:
        sink: asyncio.Queue = asyncio.Queue()
        self._sinks[address] = sink
        self._seen.add(address)
        for item in self._pending.pop(address, []):
            sink.put_nowait(item)
        return sink

    def _route(self, src: int, dst: int, body: bytes) -> None:
        sink = self._sinks.get(dst)
        if sink is not None:
            sink.put_nowait((src, body))
        elif dst not in self._seen:
            self._pending.setdefault(dst, []).append((src, body))
        # else: destination detached (crashed/halted); drop.

    def _detach(self, address: int, sink: Optional[asyncio.Queue] = None) -> None:
        if sink is None or self._sinks.get(address) is sink:
            self._sinks.pop(address, None)


# -- in-memory ---------------------------------------------------------------


class MemoryHub(_Router):
    """Routes encoded frames between same-process endpoints via queues."""

    def endpoint(self, address: int) -> "MemoryEndpoint":
        """Attach ``address`` and return its endpoint (flushing any
        frames buffered for it before it attached)."""
        return MemoryEndpoint(self, address, self._attach(address))

    def route(self, src: int, dst: int, body: bytes) -> None:
        """Forward one frame; synchronous, so routing order *is* send
        order -- the FIFO guarantee of :class:`Endpoint` for free."""
        self._route(src, dst, body)

    def detach(self, address: int) -> None:
        """Drop ``address`` from the routing table; later frames to it
        are discarded (crashed/halted node semantics)."""
        self._detach(address)


class MemoryEndpoint(Endpoint):
    """One attachment point on a :class:`MemoryHub`.

    Frames are pickled on send and unpickled on receive even though they
    never leave the process, so the memory transport exercises the exact
    delivery semantics (payloads arrive as equal *copies*, not as shared
    objects) of the TCP transport.
    """

    def __init__(self, hub: MemoryHub, address: int, queue: asyncio.Queue):
        self._hub = hub
        self.address = address
        self._queue = queue

    async def send_encoded(self, dst: int, body: bytes) -> None:
        self._hub.route(self.address, dst, body)

    async def recv(self) -> tuple[int, Any]:
        src, body = await self._queue.get()
        return src, decode(body)

    async def close(self) -> None:
        self._hub.detach(self.address)


# -- TCP ---------------------------------------------------------------------


class TCPHub(_Router):
    """A TCP frame router (software switch) on one listening socket.

    Endpoints connect, announce their address (:data:`~repro.net.codec.HELLO`),
    then exchange ``[len][addr]`` framed bodies; the hub rewrites the
    address field from destination to source when forwarding.

    Each connection's sink queue is drained by a pump task writing to
    that connection, so forwarding never blocks a reader loop on a slow
    destination — which rules out head-of-line deadlocks when two nodes
    flood each other past the socket buffers.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        max_frame_bytes: int = MAX_FRAME_BYTES,
    ):
        super().__init__()
        self.host = host
        self.port = port
        #: per-frame body-size ceiling enforced on ingress (see
        #: :func:`repro.net.codec.check_frame_size`); a connection whose
        #: header announces more is dropped before the body is read
        self.max_frame_bytes = max_frame_bytes
        #: last ingress frame-guard failure, kept for triage: the
        #: poisoned connection is dropped (its peers see EOF), and this
        #: names which endpoint sent the corrupt header and why
        self.last_frame_error: Optional[str] = None
        self._server: Optional[asyncio.base_events.Server] = None
        self._pumps: dict[int, asyncio.Task] = {}
        self._writers: dict[int, asyncio.StreamWriter] = {}

    async def start(self) -> None:
        """Bind the listening socket; ``self.port`` then carries the
        actual port (useful when constructed with an ephemeral 0)."""
        self._server = await asyncio.start_server(self._handle, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]

    async def close(self) -> None:
        """Tear the hub down: stop listening, cancel the per-connection
        pump tasks, and force-close established connections so remote
        endpoints observe EOF instead of blocking in ``recv`` forever
        on an error path."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for pump in list(self._pumps.values()):
            pump.cancel()
        for pump in list(self._pumps.values()):
            try:
                await pump
            except (asyncio.CancelledError, ConnectionError):
                pass
        self._pumps.clear()
        # Force-close established connections so remote endpoints see
        # EOF instead of blocking in recv() forever when the hub goes
        # away on an error path.
        for writer in list(self._writers.values()):
            writer.close()
        self._writers.clear()
        self._sinks.clear()

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            (address,) = HELLO.unpack(await reader.readexactly(HELLO.size))
        except (asyncio.IncompleteReadError, ConnectionError):
            writer.close()
            return
        queue = self._attach(address)
        self._pumps[address] = asyncio.create_task(self._pump(queue, writer))
        self._writers[address] = writer
        try:
            while True:
                header = await reader.readexactly(HEADER.size)
                length, dst = HEADER.unpack(header)
                check_frame_size(
                    length,
                    limit=self.max_frame_bytes,
                    peer=f"endpoint address {address}",
                    phase="hub ingress",
                )
                body = await reader.readexactly(length)
                self._route(address, dst, body)
        except (asyncio.IncompleteReadError, ConnectionError):
            pass
        except FrameTooLargeError as exc:
            # A corrupt stream cannot be resynchronised: drop this
            # connection (the finally clause detaches and closes it).
            # The peer -- and anyone awaiting its frames -- observes
            # EOF, so the failure surfaces as a named coordinator
            # timeout/recv error instead of a 4 GiB read stall.  Keep
            # the peer/phase diagnostic: the dropped connection alone
            # would otherwise read as an anonymous worker death.
            self.last_frame_error = str(exc)
            print(f"TCPHub: {exc}", file=sys.stderr)
        except asyncio.CancelledError:
            # Handler tasks are cancelled en masse when the hosting loop
            # tears down after an error path; the hub is going away, so
            # swallow the cancellation instead of logging a traceback
            # per surviving connection.
            pass
        finally:
            if self._sinks.get(address) is queue:
                self._detach(address, queue)
                pump = self._pumps.pop(address, None)
                if pump is not None:
                    pump.cancel()
            if self._writers.get(address) is writer:
                del self._writers[address]
            writer.close()

    @staticmethod
    async def _pump(queue: asyncio.Queue, writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                src, body = await queue.get()
                writer.write(HEADER.pack(len(body), src) + body)
                await writer.drain()
        except (ConnectionError, asyncio.CancelledError):
            pass


class TCPEndpoint(Endpoint):
    """One hub connection speaking the framed wire format."""

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        address: int,
        *,
        max_frame_bytes: int = MAX_FRAME_BYTES,
    ):
        self._reader = reader
        self._writer = writer
        self.address = address
        #: per-frame body-size ceiling enforced before each body read;
        #: see :func:`repro.net.codec.check_frame_size`
        self.max_frame_bytes = max_frame_bytes

    async def send_encoded(self, dst: int, body: bytes) -> None:
        self._writer.write(HEADER.pack(len(body), dst) + body)
        await self._writer.drain()

    async def recv(self) -> tuple[int, Any]:
        header = await self._reader.readexactly(HEADER.size)
        length, src = HEADER.unpack(header)
        check_frame_size(
            length,
            limit=self.max_frame_bytes,
            peer=f"hub-forwarded frame from address {src}",
            phase=f"endpoint {self.address} recv",
        )
        body = await self._reader.readexactly(length)
        return src, decode(body)

    async def close(self) -> None:
        # Half-close (FIN), then drain inbound until the hub closes its
        # side.  Closing outright with unread frames in the receive
        # buffer (e.g. data addressed to a crashing node in its crash
        # round) makes the kernel send RST, which can destroy this
        # endpoint's own in-flight outbound frames at the hub -- losing,
        # say, a crashing node's final SENT report and deadlocking the
        # round barrier.
        try:
            self._writer.write_eof()
            await self._writer.drain()
        except (OSError, RuntimeError):
            pass
        try:
            while await asyncio.wait_for(self._reader.read(65536), timeout=5.0):
                pass
        except (asyncio.TimeoutError, OSError):
            pass
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass


async def connect_tcp(
    host: str,
    port: int,
    address: int,
    *,
    deadline: float = 10.0,
    max_frame_bytes: int = MAX_FRAME_BYTES,
) -> TCPEndpoint:
    """Connect an endpoint to a :class:`TCPHub`, retrying until ``deadline``.

    Retrying lets worker processes race the hub's startup: the first
    process to run simply waits for the listener to appear.
    ``max_frame_bytes`` is the endpoint's inbound frame-size guard (see
    :func:`repro.net.codec.check_frame_size`).
    """
    loop = asyncio.get_running_loop()
    give_up = loop.time() + deadline
    while True:
        try:
            reader, writer = await asyncio.open_connection(host, port)
            break
        except OSError:
            if loop.time() >= give_up:
                raise
            await asyncio.sleep(0.05)
    writer.write(HELLO.pack(address))
    await writer.drain()
    return TCPEndpoint(reader, writer, address, max_frame_bytes=max_frame_bytes)
