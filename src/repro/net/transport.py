"""Pluggable transports: an in-memory hub and a TCP hub.

Both expose the same endpoint interface -- ``await send(dst, obj)``,
``await recv() -> (src, obj)``, ``await close()`` -- over a hub (star)
topology: every endpoint holds a link to a central router that forwards
frames by ``(instance, destination address)``.  Addresses within one
protocol instance are the node pids ``0..n-1`` plus the coordinator at
address ``n``; the *instance* tag is what lets many protocol instances
share one hub (and, over TCP, one physical connection -- see
:class:`TCPMux`) without their frames mixing.

The hub is infrastructure (a software switch), not a protocol
participant: message and bit accounting happens at the sending node
exactly as in the simulator, so the topology does not affect the
paper's communication measures.

Delivery semantics (shared by both hubs via :class:`_Router`): frames
for an ``(instance, address)`` that has not attached yet are buffered
and flushed on attach, which makes startup order irrelevant; frames for
a key that has already detached (a crashed or halted node) are dropped,
mirroring the simulator's "crashed nodes receive nothing".

Multiplexing and batching (TCP)
-------------------------------
One TCP connection is a :class:`TCPMux`: it can bind any number of
``(instance, address)`` endpoints, tagging outbound frames with the
instance header field and demultiplexing inbound frames to per-endpoint
queues.  Writes are *batched*: frames accumulated while the event loop
was busy are coalesced into one batch frame
(:func:`~repro.net.codec.encode_batch`) with payload interning, so a
node's whole send phase -- or a thousand sessions' simultaneous round
openings -- costs one syscall.  The hub's egress pumps batch the same
way.  Batching never reorders a connection's stream, so the FIFO
delivery contract is unchanged.

Backpressure
------------
Each hub connection owns a *bounded* outbound queue drained by its pump
task.  A consumer that stops reading (a stalled worker, a wedged
client) fills its queue; at the bound the hub drops that connection
with a :class:`SlowConsumerError` naming the laggard and the instance
whose frame hit the limit -- the slow consumer is sacrificed so every
other instance's rounds keep advancing.  Per-connection accounting
(queue high-water mark, delivered frames, drop counter) is exposed via
:meth:`TCPHub.connection_stats`.
"""

from __future__ import annotations

import asyncio
import sys
from collections import deque
from typing import Any, Iterable, Optional

from repro.net.codec import (
    BATCH,
    CONTROL,
    HEADER,
    MAX_BATCH_BYTES,
    MAX_FRAME_BYTES,
    FrameTooLargeError,
    check_frame_size,
    decode,
    decode_batch,
    encode,
    encode_batch,
)

__all__ = [
    "Endpoint",
    "MemoryEndpoint",
    "MemoryHub",
    "MuxEndpoint",
    "SlowConsumerError",
    "TCPEndpoint",
    "TCPHub",
    "TCPMux",
    "connect_tcp",
    "open_mux",
]


class SlowConsumerError(RuntimeError):
    """A connection's bounded outbound queue overflowed.

    The message names the laggard connection (peer + bound endpoints),
    the queue bound, and the protocol instance whose frame hit the
    limit, so a multiplexed deployment can tell *which* session's
    traffic a stalled consumer was starving.
    """


class Endpoint:
    """Interface every transport endpoint implements.

    Ordering contract: frames from one sender to one destination are
    delivered FIFO, and a destination's frames from *all* senders pass
    through one sink queue in routing order.  The round runtime builds
    on both properties — a node's ``SENT`` report can never overtake
    its own data frames, and a crashed churn node can discard its
    entire downtime backlog safely because every stale frame is queued
    before the coordinator's ``REJOIN``.  Batching preserves both:
    batches are split back into frames in entry order at every hop.
    """

    address: int
    #: protocol-instance tag; 0 for single-instance runs
    instance: int = 0

    async def send(self, dst: int, obj: Any) -> None:
        """Encode and send one frame to ``dst`` within this endpoint's
        instance (fire-and-forget: frames to detached or never-attached
        addresses are buffered or dropped by the hub, mirroring the
        simulator's delivery rules)."""
        await self.send_encoded(dst, encode(obj))

    async def send_encoded(self, dst: int, body: bytes) -> None:
        """Send an already-:func:`~repro.net.codec.encode`-d frame body.

        Lets a multicast sender serialise its payload once and reuse the
        bytes across destinations instead of re-pickling per recipient
        (batching additionally interns the shared bytes on the wire).
        """
        raise NotImplementedError

    async def recv(self) -> tuple[int, Any]:
        """Await the next inbound frame as ``(source address, body)``.

        Blocks indefinitely; the round runtime guarantees liveness by
        always answering a node's report with a next-phase frame
        (``DELIVER``, ``START``, ``REJOIN`` or ``STOP``).
        """
        raise NotImplementedError

    async def close(self) -> None:
        """Detach from the hub; subsequent frames to this
        ``(instance, address)`` are dropped (a crashed or halted node
        receives nothing)."""
        raise NotImplementedError


class _Router:
    """Shared attach/route/detach bookkeeping behind both hubs.

    Routing keys are ``(instance, address)`` pairs; each attached key
    maps to a *sink* (an object with ``deliver(src, dst, instance,
    body)``).  Frames for a key that has not attached yet are buffered
    and flushed on attach (startup order becomes irrelevant); frames for
    a key that attached and then detached — a crashed or halted node —
    are dropped, mirroring the simulator's "crashed nodes receive
    nothing".  Both transports inherit this, so their delivery semantics
    cannot drift apart.
    """

    def __init__(self) -> None:
        self._sinks: dict[tuple[int, int], Any] = {}
        self._seen: set[tuple[int, int]] = set()
        self._pending: dict[tuple[int, int], list[tuple[int, bytes]]] = {}

    def _attach(self, key: tuple[int, int], sink: Any) -> None:
        self._sinks[key] = sink
        self._seen.add(key)
        instance, address = key
        for src, body in self._pending.pop(key, []):
            sink.deliver(src, address, instance, body)

    def _route(self, src: int, dst: int, instance: int, body: bytes) -> None:
        key = (instance, dst)
        sink = self._sinks.get(key)
        if sink is not None:
            try:
                sink.deliver(src, dst, instance, body)
            except SlowConsumerError as exc:
                self._on_slow_consumer(sink, exc)
        elif key not in self._seen:
            self._pending.setdefault(key, []).append((src, body))
        # else: destination detached (crashed/halted); drop.

    def _on_slow_consumer(self, sink: Any, exc: SlowConsumerError) -> None:
        raise exc  # memory endpoints are unbounded; TCPHub overrides

    def _detach(self, key: tuple[int, int], sink: Any = None) -> None:
        if sink is None or self._sinks.get(key) is sink:
            self._sinks.pop(key, None)

    def purge_instance(self, instance: int) -> None:
        """Forget every routing entry of one protocol instance.

        A long-lived multiplexed hub (the run-server) would otherwise
        accumulate one ``_seen`` entry per ``(instance, pid)`` forever;
        callers purge an instance once its session has completed and
        its node tasks have detached.  Purging re-enables buffering for
        the instance's keys, so it must only happen after the instance
        is quiescent.
        """
        for table in (self._sinks, self._pending):
            for key in [k for k in table if k[0] == instance]:
                del table[key]
        self._seen -= {k for k in self._seen if k[0] == instance}


# -- in-memory ---------------------------------------------------------------


class _QueueSink:
    """Adapter giving a plain ``asyncio.Queue`` the sink interface."""

    def __init__(self, queue: asyncio.Queue):
        self.queue = queue

    def deliver(self, src: int, dst: int, instance: int, body: bytes) -> None:
        self.queue.put_nowait((src, body))


class MemoryHub(_Router):
    """Routes encoded frames between same-process endpoints via queues."""

    def endpoint(self, address: int, instance: int = 0) -> "MemoryEndpoint":
        """Attach ``(instance, address)`` and return its endpoint
        (flushing any frames buffered for it before it attached)."""
        queue: asyncio.Queue = asyncio.Queue()
        endpoint = MemoryEndpoint(self, address, instance, queue)
        self._attach((instance, address), _QueueSink(queue))
        return endpoint

    def route(self, src: int, dst: int, body: bytes, instance: int = 0) -> None:
        """Forward one frame; synchronous, so routing order *is* send
        order -- the FIFO guarantee of :class:`Endpoint` for free."""
        self._route(src, dst, instance, body)

    def detach(self, address: int, instance: int = 0) -> None:
        """Drop ``(instance, address)`` from the routing table; later
        frames to it are discarded (crashed/halted node semantics)."""
        self._detach((instance, address))


class MemoryEndpoint(Endpoint):
    """One attachment point on a :class:`MemoryHub`.

    Frames are pickled on send and unpickled on receive even though they
    never leave the process, so the memory transport exercises the exact
    delivery semantics (payloads arrive as equal *copies*, not as shared
    objects) of the TCP transport.
    """

    def __init__(
        self, hub: MemoryHub, address: int, instance: int, queue: asyncio.Queue
    ):
        self._hub = hub
        self.address = address
        self.instance = instance
        self._queue = queue

    async def send_encoded(self, dst: int, body: bytes) -> None:
        self._hub.route(self.address, dst, body, self.instance)

    async def recv(self) -> tuple[int, Any]:
        src, body = await self._queue.get()
        return src, decode(body)

    async def close(self) -> None:
        self._hub.detach(self.address, self.instance)


# -- TCP ---------------------------------------------------------------------


class _ConnSink:
    """One hub connection's bounded outbound queue + accounting.

    The hub's router delivers into this synchronously; the connection's
    pump task drains it into batched socket writes.  ``maxsize`` is the
    backpressure bound: a consumer that stops reading fills the queue,
    and the overflow raises :class:`SlowConsumerError` naming this
    connection and the instance whose frame hit the limit.
    """

    def __init__(self, writer: asyncio.StreamWriter, peer: str, maxsize: int):
        self.writer = writer
        self.peer = peer
        self.maxsize = maxsize
        self.bound: set[tuple[int, int]] = set()
        self.frames: deque[tuple[int, int, int, bytes]] = deque()
        self.wake = asyncio.Event()
        self.poisoned: Optional[BaseException] = None
        #: accounting: frames delivered through this connection, and the
        #: deepest its outbound queue ever got (the slow-consumer gauge)
        self.delivered = 0
        self.queue_hwm = 0

    def label(self) -> str:
        if self.bound:
            sample = sorted(self.bound)[:4]
            keys = ", ".join(f"instance {i} addr {a}" for i, a in sample)
            extra = f" +{len(self.bound) - len(sample)} more" if len(self.bound) > 4 else ""
            return f"{self.peer} (bound: {keys}{extra})"
        return self.peer

    def deliver(self, src: int, dst: int, instance: int, body: bytes) -> None:
        if self.poisoned is not None:
            return  # connection is being dropped; frames are lost
        if len(self.frames) >= self.maxsize:
            raise SlowConsumerError(
                f"outbound queue for {self.label()} overflowed its "
                f"{self.maxsize}-frame bound on a frame for instance "
                f"{instance} (addr {dst}); the consumer stopped reading -- "
                "dropping the laggard connection so other sessions' rounds "
                "keep advancing"
            )
        self.frames.append((src, dst, instance, body))
        self.delivered += 1
        if len(self.frames) > self.queue_hwm:
            self.queue_hwm = len(self.frames)
        self.wake.set()

    def poison(self, exc: BaseException) -> None:
        self.poisoned = exc
        self.wake.set()


class TCPHub(_Router):
    """A TCP frame router (software switch) on one listening socket.

    Connections exchange ``[len][src][dst][instance]`` framed bodies
    (see :mod:`repro.net.codec`).  A connection binds routing keys with
    control frames (``dst == CONTROL``); the hub routes every other
    frame by ``(instance, dst)``, splitting batch frames
    (``dst == BATCH``) back into inner frames in order.

    Each connection's bounded sink queue is drained by a pump task
    writing to that connection in *batched* writes, so forwarding never
    blocks a reader loop on a slow destination — which rules out
    head-of-line deadlocks when two nodes flood each other past the
    socket buffers — and a consumer that stops reading altogether is
    dropped at the queue bound (:class:`SlowConsumerError`) instead of
    wedging the hub.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        max_frame_bytes: int = MAX_FRAME_BYTES,
        max_batch_bytes: int = MAX_BATCH_BYTES,
        max_queue_frames: int = 1_000_000,
        batching: bool = True,
    ):
        super().__init__()
        self.host = host
        self.port = port
        #: per-frame body-size ceiling enforced on ingress (see
        #: :func:`repro.net.codec.check_frame_size`); a connection whose
        #: header announces more is dropped before the body is read
        self.max_frame_bytes = max_frame_bytes
        #: whole-batch ceiling for ``dst == BATCH`` frames; inner frames
        #: are additionally held to ``max_frame_bytes`` at decode time
        self.max_batch_bytes = max_batch_bytes
        #: per-connection outbound queue bound (backpressure)
        self.max_queue_frames = max_queue_frames
        #: coalesce egress writes into batch frames (disable to measure
        #: the per-frame baseline; semantics are identical either way)
        self.batching = batching
        #: last ingress frame-guard failure, kept for triage: the
        #: poisoned connection is dropped (its peers see EOF), and this
        #: names which endpoint sent the corrupt header and why
        self.last_frame_error: Optional[str] = None
        #: last backpressure drop, kept for triage: names the laggard
        #: connection and the instance whose frame overflowed
        self.last_backpressure_error: Optional[str] = None
        #: connections dropped for slow consumption since startup
        self.backpressure_drops = 0
        self._server: Optional[asyncio.base_events.Server] = None
        self._conns: set[_ConnSink] = set()
        self._pumps: dict[_ConnSink, asyncio.Task] = {}

    async def start(self) -> None:
        """Bind the listening socket; ``self.port`` then carries the
        actual port (useful when constructed with an ephemeral 0)."""
        self._server = await asyncio.start_server(self._handle, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]

    def connection_stats(self) -> list[dict]:
        """Per-connection slow-consumer accounting.

        One row per live connection: its peer label, how many frames
        were routed to it, and its outbound-queue high-water mark
        relative to the bound (the gauge to watch for consumers running
        close to the backpressure limit).
        """
        return [
            {
                "peer": sink.label(),
                "delivered": sink.delivered,
                "queue_hwm": sink.queue_hwm,
                "queue_bound": sink.maxsize,
            }
            for sink in sorted(self._conns, key=lambda s: s.peer)
        ]

    async def close(self) -> None:
        """Tear the hub down: stop listening, cancel the per-connection
        pump tasks, and force-close established connections so remote
        endpoints observe EOF instead of blocking in ``recv`` forever
        on an error path."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for pump in list(self._pumps.values()):
            pump.cancel()
        for pump in list(self._pumps.values()):
            try:
                await pump
            except (asyncio.CancelledError, ConnectionError):
                pass
        self._pumps.clear()
        # Force-close established connections so remote endpoints see
        # EOF instead of blocking in recv() forever when the hub goes
        # away on an error path.
        for sink in list(self._conns):
            sink.writer.close()
        self._conns.clear()
        self._sinks.clear()

    def _on_slow_consumer(self, sink: _ConnSink, exc: SlowConsumerError) -> None:
        # Drop the laggard: poison its sink (pump exits and closes the
        # socket, so the consumer sees EOF), detach its keys so further
        # frames to it are discarded like any detached endpoint's, and
        # keep the diagnostic -- the drop alone would otherwise read as
        # an anonymous connection death.
        self.last_backpressure_error = str(exc)
        self.backpressure_drops += 1
        print(f"TCPHub: {exc}", file=sys.stderr)
        for key in list(sink.bound):
            self._detach(key, sink)
        sink.bound.clear()
        sink.poison(exc)

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        peername = writer.get_extra_info("peername")
        peer = f"connection {peername}"
        sink = _ConnSink(writer, peer, self.max_queue_frames)
        self._conns.add(sink)
        self._pumps[sink] = asyncio.create_task(self._pump(sink))
        try:
            while True:
                header = await reader.readexactly(HEADER.size)
                length, src, dst, instance = HEADER.unpack(header)
                if dst == BATCH:
                    check_frame_size(
                        length,
                        limit=self.max_batch_bytes,
                        peer=peer,
                        phase="hub ingress (batch)",
                    )
                else:
                    check_frame_size(
                        length,
                        limit=self.max_frame_bytes,
                        peer=peer,
                        phase="hub ingress",
                        instance=instance,
                    )
                body = await reader.readexactly(length)
                if dst == BATCH:
                    # Control frames batch like any other frame (they
                    # must: a bind travelling out of order with the data
                    # behind it would break the attach-before-deliver
                    # contract), so the inner loop dispatches them too.
                    for fsrc, fdst, finst, fbody in decode_batch(
                        body,
                        limit=self.max_frame_bytes,
                        peer=peer,
                        phase="hub ingress (batch)",
                    ):
                        self._ingress(sink, fsrc, fdst, finst, fbody)
                else:
                    self._ingress(sink, src, dst, instance, body)
        except (asyncio.IncompleteReadError, ConnectionError):
            pass
        except (FrameTooLargeError, ValueError) as exc:
            # A corrupt stream cannot be resynchronised: drop this
            # connection (the finally clause detaches and closes it).
            # The peer -- and anyone awaiting its frames -- observes
            # EOF, so the failure surfaces as a named coordinator
            # timeout/recv error instead of a 4 GiB read stall.  Keep
            # the peer/phase diagnostic: the dropped connection alone
            # would otherwise read as an anonymous worker death.
            self.last_frame_error = str(exc)
            print(f"TCPHub: {exc}", file=sys.stderr)
        except asyncio.CancelledError:
            # Handler tasks are cancelled en masse when the hosting loop
            # tears down after an error path; the hub is going away, so
            # swallow the cancellation instead of logging a traceback
            # per surviving connection.
            pass
        finally:
            for key in list(sink.bound):
                self._detach(key, sink)
            sink.bound.clear()
            pump = self._pumps.pop(sink, None)
            if pump is not None:
                pump.cancel()
            self._conns.discard(sink)
            writer.close()

    def _ingress(
        self, sink: _ConnSink, src: int, dst: int, instance: int, body: bytes
    ) -> None:
        """Process one inbound frame from a connection: control frames
        (un)bind routing keys on its sink, everything else routes."""
        if dst == CONTROL:
            op, addr = decode(body)
            key = (instance, addr)
            if op == "bind":
                sink.bound.add(key)
                self._attach(key, sink)
            elif op == "unbind":
                if key in sink.bound:
                    sink.bound.discard(key)
                    self._detach(key, sink)
        else:
            self._route(src, dst, instance, body)

    async def _pump(self, sink: _ConnSink) -> None:
        try:
            while True:
                await sink.wake.wait()
                sink.wake.clear()
                if sink.poisoned is not None:
                    sink.writer.close()
                    return
                while sink.frames:
                    _write_pending(sink.writer, sink.frames, self.batching)
                    await sink.writer.drain()
        except (ConnectionError, asyncio.CancelledError):
            pass


def _write_pending(
    writer: asyncio.StreamWriter,
    frames: deque,
    batching: bool,
) -> None:
    """Flush queued ``(src, dst, instance, body)`` frames to a writer.

    With batching, everything currently queued coalesces into one batch
    frame (single frames skip the batch envelope); without, each frame
    is written individually -- the measured baseline the batching
    speedup in ``BENCH_net.json`` is quoted against.
    """
    if not batching or len(frames) == 1:
        src, dst, instance, body = frames.popleft()
        writer.write(HEADER.pack(len(body), src, dst, instance) + body)
        return
    batch: list[tuple[int, int, int, bytes]] = []
    while frames:
        batch.append(frames.popleft())
    body = encode_batch(batch)
    writer.write(HEADER.pack(len(body), -1, BATCH, 0) + body)


class _MuxClosed:
    pass


_EOF = _MuxClosed()


class TCPMux:
    """One multiplexed hub connection hosting many virtual endpoints.

    The session-multiplexing workhorse: a run-server process opens a
    handful of these and runs *thousands* of protocol instances through
    them -- each :meth:`endpoint` is one ``(instance, address)`` routing
    key, sharing the single socket, reader task and batching writer
    task.  Closing an endpoint unbinds only its key (crashed-node drop
    semantics for that key alone); closing the mux tears down the whole
    connection with the half-close-and-drain dance that keeps in-flight
    frames safe from kernel RSTs.
    """

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        *,
        max_frame_bytes: int = MAX_FRAME_BYTES,
        max_batch_bytes: int = MAX_BATCH_BYTES,
        batching: bool = True,
        peer: str = "hub",
    ):
        self._reader = reader
        self._writer = writer
        self.max_frame_bytes = max_frame_bytes
        self.max_batch_bytes = max_batch_bytes
        self.batching = batching
        self.peer = peer
        self._queues: dict[tuple[int, int], asyncio.Queue] = {}
        self._out: deque[tuple[int, int, int, bytes]] = deque()
        self._wake = asyncio.Event()
        self._drained = asyncio.Event()
        self._drained.set()
        self._error: Optional[BaseException] = None
        self._closing = False
        self._reader_task = asyncio.create_task(self._read_loop())
        self._writer_task = asyncio.create_task(self._write_loop())

    # -- outbound ---------------------------------------------------------

    def _send(self, src: int, dst: int, instance: int, body: bytes) -> None:
        if self._error is not None:
            raise self._error
        if self._closing:
            raise ConnectionResetError("mux connection is closing")
        self._out.append((src, dst, instance, body))
        self._drained.clear()
        self._wake.set()

    async def _write_loop(self) -> None:
        try:
            while True:
                await self._wake.wait()
                self._wake.clear()
                while self._out:
                    _write_pending(self._writer, self._out, self.batching)
                    await self._writer.drain()
                self._drained.set()
        except (ConnectionError, asyncio.CancelledError):
            self._drained.set()

    # -- inbound ----------------------------------------------------------

    async def _read_loop(self) -> None:
        try:
            while True:
                header = await self._reader.readexactly(HEADER.size)
                length, src, dst, instance = HEADER.unpack(header)
                if dst == BATCH:
                    check_frame_size(
                        length,
                        limit=self.max_batch_bytes,
                        peer=self.peer,
                        phase="mux recv (batch)",
                    )
                    body = await self._reader.readexactly(length)
                    for fsrc, fdst, finst, fbody in decode_batch(
                        body,
                        limit=self.max_frame_bytes,
                        peer=self.peer,
                        phase="mux recv (batch)",
                    ):
                        self._dispatch(fsrc, fdst, finst, fbody)
                else:
                    check_frame_size(
                        length,
                        limit=self.max_frame_bytes,
                        peer=self.peer,
                        phase="mux recv",
                        instance=instance,
                    )
                    body = await self._reader.readexactly(length)
                    self._dispatch(src, dst, instance, body)
        except (asyncio.IncompleteReadError, ConnectionError):
            pass  # EOF: hub (or this side) closed the connection
        except asyncio.CancelledError:
            pass
        except (FrameTooLargeError, ValueError) as exc:
            self._error = exc
        finally:
            # Wake every endpoint blocked in recv(): the connection is
            # gone, so blocking forever would hide the failure.
            for queue in self._queues.values():
                queue.put_nowait(_EOF)

    def _dispatch(self, src: int, dst: int, instance: int, body: bytes) -> None:
        queue = self._queues.get((instance, dst))
        if queue is not None:
            queue.put_nowait((src, body))
        # else: endpoint closed locally; drop (detached semantics)

    # -- endpoint management ----------------------------------------------

    def endpoint(self, address: int, instance: int = 0) -> "MuxEndpoint":
        """Bind ``(instance, address)`` on the hub and return its
        virtual endpoint.  The bind control frame travels through the
        same FIFO stream as subsequent data, so nothing this endpoint
        sends can arrive at the hub before its binding."""
        key = (instance, address)
        if key in self._queues:
            raise ValueError(f"endpoint {key} already bound on this connection")
        queue: asyncio.Queue = asyncio.Queue()
        self._queues[key] = queue
        self._send(address, CONTROL, instance, encode(("bind", address)))
        return MuxEndpoint(self, address, instance, queue)

    def _close_endpoint(self, key: tuple[int, int]) -> None:
        if self._queues.pop(key, None) is None:
            return
        if self._error is None and not self._closing:
            try:
                self._send(key[1], CONTROL, key[0], encode(("unbind", key[1])))
            except ConnectionError:
                pass

    async def _recv_on(self, queue: asyncio.Queue) -> tuple[int, Any]:
        item = await queue.get()
        if item is _EOF:
            queue.put_nowait(_EOF)  # keep later recv() calls failing too
            if self._error is not None:
                raise self._error
            raise ConnectionResetError(
                f"mux connection to {self.peer} closed while awaiting frames"
            )
        src, body = item
        return src, decode(body)

    # -- lifecycle --------------------------------------------------------

    async def flush(self) -> None:
        """Wait until every buffered outbound frame reached the socket."""
        await self._drained.wait()

    async def close(self) -> None:
        """Flush, half-close (FIN), drain inbound, then close.

        Closing outright with unread frames in the receive buffer (e.g.
        data addressed to a crashing node in its crash round) makes the
        kernel send RST, which can destroy this connection's own
        in-flight outbound frames at the hub -- losing, say, a crashing
        node's final ``SENT`` report and deadlocking the round barrier.
        """
        if self._closing:
            return
        try:
            await asyncio.wait_for(self.flush(), timeout=5.0)
        except asyncio.TimeoutError:
            pass
        self._closing = True
        for task in (self._writer_task, self._reader_task):
            task.cancel()
            try:
                await task
            except (asyncio.CancelledError, ConnectionError):
                pass
        try:
            self._writer.write_eof()
            await self._writer.drain()
        except (OSError, RuntimeError):
            pass
        try:
            while await asyncio.wait_for(self._reader.read(65536), timeout=5.0):
                pass
        except (asyncio.TimeoutError, OSError):
            pass
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass


class MuxEndpoint(Endpoint):
    """One ``(instance, address)`` virtual endpoint on a :class:`TCPMux`.

    ``send_encoded`` appends to the connection's shared write buffer
    (flushed in batches by the writer task) and returns immediately, so
    a whole send phase coalesces into one wire write; ``close`` unbinds
    only this key, leaving the connection and its other endpoints
    untouched.
    """

    def __init__(
        self, mux: TCPMux, address: int, instance: int, queue: asyncio.Queue
    ):
        self._mux = mux
        self.address = address
        self.instance = instance
        self._queue = queue

    async def send_encoded(self, dst: int, body: bytes) -> None:
        self._mux._send(self.address, dst, self.instance, body)

    async def recv(self) -> tuple[int, Any]:
        return await self._mux._recv_on(self._queue)

    async def close(self) -> None:
        self._mux._close_endpoint((self.instance, self.address))


class TCPEndpoint(Endpoint):
    """A single-address hub connection (one dedicated :class:`TCPMux`).

    The legacy one-connection-per-node shape used by
    :func:`connect_tcp`: ``close`` tears down the whole connection,
    which is what gives a crashed node's address its "receives nothing"
    semantics in multi-OS-process deployments.
    """

    def __init__(self, mux: TCPMux, endpoint: MuxEndpoint):
        self._mux = mux
        self._endpoint = endpoint
        self.address = endpoint.address
        self.instance = endpoint.instance

    async def send_encoded(self, dst: int, body: bytes) -> None:
        await self._endpoint.send_encoded(dst, body)

    async def recv(self) -> tuple[int, Any]:
        return await self._endpoint.recv()

    async def close(self) -> None:
        await self._mux.close()


async def open_mux(
    host: str,
    port: int,
    *,
    deadline: float = 10.0,
    max_frame_bytes: int = MAX_FRAME_BYTES,
    max_batch_bytes: int = MAX_BATCH_BYTES,
    batching: bool = True,
) -> TCPMux:
    """Dial a :class:`TCPHub` and return a bare multiplexed connection.

    Retrying until ``deadline`` lets callers race the hub's startup: the
    first process to run simply waits for the listener to appear.  Bind
    endpoints on the returned mux with
    :meth:`TCPMux.endpoint`; see :func:`connect_tcp` for the
    single-endpoint convenience shape.
    """
    loop = asyncio.get_running_loop()
    give_up = loop.time() + deadline
    while True:
        try:
            reader, writer = await asyncio.open_connection(host, port)
            break
        except OSError:
            if loop.time() >= give_up:
                raise
            await asyncio.sleep(0.05)
    return TCPMux(
        reader,
        writer,
        max_frame_bytes=max_frame_bytes,
        max_batch_bytes=max_batch_bytes,
        batching=batching,
        peer=f"hub {host}:{port}",
    )


async def connect_tcp(
    host: str,
    port: int,
    address: int,
    *,
    instance: int = 0,
    deadline: float = 10.0,
    max_frame_bytes: int = MAX_FRAME_BYTES,
    batching: bool = True,
) -> TCPEndpoint:
    """Connect one endpoint to a :class:`TCPHub`, retrying until ``deadline``.

    ``max_frame_bytes`` is the endpoint's inbound frame-size guard (see
    :func:`repro.net.codec.check_frame_size`); ``instance`` tags every
    frame for multi-instance hubs (single runs keep the default 0).
    """
    mux = await open_mux(
        host,
        port,
        deadline=deadline,
        max_frame_bytes=max_frame_bytes,
        batching=batching,
    )
    return TCPEndpoint(mux, mux.endpoint(address, instance))
