"""Structured run telemetry: spans, phase timings, progress, exporters.

The repo's logical metrics (:class:`~repro.sim.metrics.Metrics`) answer
*how many* rounds, messages and bits an execution spent; this package
answers *where the wall-clock went*.  Every execution substrate --
:class:`~repro.sim.engine.Engine` (both round loops),
:class:`~repro.sim.vec.engine.VecEngine`, and the :mod:`repro.net`
:class:`~repro.net.runtime.Synchronizer` and node tasks -- emits the
same span taxonomy into a :class:`Recorder`, so one timeline format
covers all backends.

Span taxonomy
-------------
``run -> round -> phase`` spans plus point events:

==============  ============================================================
span            meaning
==============  ============================================================
``round``       one executed round (fast-forward skips emit no span)
``rejoin``      churn rejoin phase (emitted only when a node rejoins)
``crash``       adversary crash nomination + link-mask computation
``send``        send phase; on the net runtime this includes the barrier
                wait for every live node's ``SENT`` report
``deliver``     receive phase; on the net runtime the barrier wait for
                ``DONE`` reports
``kernel.step`` one vectorized round body (``backend="vec"`` kernels)
``node.send``   one net node's send phase, on its own per-node track
``node.deliver``one net node's inbox collection + ``receive`` hook
``codec.encode``/``codec.decode``  aggregated frame codec cost (stats
                only, no per-frame events)
==============  ============================================================

Point events: ``crash`` (pid, keep budget), ``rejoin`` (pid), ``drop``
(src, count) and ``decide`` (pid) -- the moments a timeline viewer
wants markers for.

Zero overhead when disabled
---------------------------
``telemetry=`` defaults to off everywhere.  The substrates normalise a
disabled recorder (``enabled`` false, e.g. :class:`NullRecorder`) to
``None`` once at run start and guard every instrumentation site with a
plain ``is not None`` test, so the disabled hot path performs no calls,
no clock reads and no allocations -- pinned by
``tests/test_obs.py::test_disabled_recorder_is_never_invoked`` and the
allocation test next to it.

Artifacts and surfaces
----------------------
A finished recorder seals into a :class:`RunTelemetry` artifact
(attached as ``result.telemetry`` by the :mod:`repro.api` entry
points) with three exporters: the telemetry JSON itself, a JSONL event
log, and a Chrome trace-event JSON loadable in Perfetto or
``chrome://tracing``.  ``python -m repro.obs summarize <events.jsonl>``
prints the flat per-phase table; ``repro-bench profile <series>``
profiles a whole sweep (one track per worker process) through the same
format.  :class:`~repro.obs.progress.ProgressReporter` renders live
heartbeats (units/sec, ETA, per-worker utilization) for the
long-running ``repro.check`` and ``repro-bench`` surfaces.

>>> from repro import run_flooding
>>> result = run_flooding([0, 1] * 10, t=2, crashes=None, telemetry=True)
>>> sorted(result.telemetry.phases) == ['crash', 'deliver', 'round', 'send']
True
>>> result.telemetry.meta['rounds']
3
"""

from __future__ import annotations

from repro.obs.export import (
    SCHEMA,
    chrome_trace,
    format_summary,
    summarize_events,
    sweep_telemetry,
    validate_chrome_trace,
    validate_jsonl_lines,
    validate_telemetry_dict,
)
from repro.obs.progress import ProgressReporter
from repro.obs.recorder import (
    NULL_RECORDER,
    NullRecorder,
    PhaseStats,
    Recorder,
    RunTelemetry,
    TelemetryRecorder,
    coerce_recorder,
)

__all__ = [
    "NULL_RECORDER",
    "NullRecorder",
    "PhaseStats",
    "ProgressReporter",
    "Recorder",
    "RunTelemetry",
    "SCHEMA",
    "TelemetryRecorder",
    "chrome_trace",
    "coerce_recorder",
    "format_summary",
    "summarize_events",
    "sweep_telemetry",
    "validate_chrome_trace",
    "validate_jsonl_lines",
    "validate_telemetry_dict",
]
