"""``python -m repro.obs`` -- inspect and convert telemetry artifacts.

Subcommands:

``summarize <file>``
    Print the flat per-phase summary table for a JSONL event log or a
    telemetry JSON artifact (the table `repro-bench profile` prints,
    recomputed offline from the stored events).

``chrome <file> [-o out.trace.json]``
    Convert a telemetry JSON artifact or JSONL event log into Chrome
    trace-event JSON loadable in Perfetto / ``chrome://tracing``.

``validate <file> [file ...]``
    Schema-check telemetry artifacts (`.json`, `.jsonl`, `.trace.json`)
    -- the entry point the CI ``obs`` job runs over its uploads.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional

from repro.obs.export import (
    format_summary,
    summarize_events,
    summary_rows,
    validate_chrome_trace,
    validate_jsonl_lines,
    validate_telemetry_dict,
    write_chrome_trace,
)
from repro.obs.recorder import RunTelemetry

__all__ = ["main"]


def _load(path: str) -> RunTelemetry:
    """Load a telemetry artifact from either serialisation."""
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    if path.endswith(".jsonl"):
        meta, _ = summarize_events(text.splitlines())
        return _jsonl_to_telemetry(text.splitlines(), meta)
    return RunTelemetry.from_dict(json.loads(text))


def _jsonl_to_telemetry(lines, meta_header: dict) -> RunTelemetry:
    events = []
    for line in lines:
        line = line.strip()
        if not line:
            continue
        record = json.loads(line)
        if record.get("type") in ("span", "point"):
            events.append(record)
    return RunTelemetry(
        meta=meta_header.get("meta", {}),
        wall_seconds=meta_header.get("wall_seconds", 0.0),
        phases=meta_header.get("phases", {}),
        counts=meta_header.get("counts", {}),
        events=events,
        dropped_events=meta_header.get("dropped_events", 0),
        schema=meta_header.get("schema", "repro-obs/1"),
    )


def _cmd_summarize(path: str) -> int:
    if path.endswith(".jsonl"):
        with open(path, "r", encoding="utf-8") as handle:
            meta, rows = summarize_events(handle)
        header = meta.get("meta", {})
    else:
        telemetry = _load(path)
        rows = summary_rows(telemetry)
        header = telemetry.meta
    context = " ".join(
        f"{key}={header[key]}"
        for key in ("backend", "n", "rounds", "experiment", "units")
        if key in header
    )
    if context:
        print(context)
    print(format_summary(rows))
    return 0


def _cmd_chrome(path: str, out: Optional[str]) -> int:
    telemetry = _load(path)
    if out is None:
        base = path[: -len(".jsonl")] if path.endswith(".jsonl") else path.rsplit(".json", 1)[0]
        out = base + ".trace.json"
    write_chrome_trace(telemetry, out)
    print(f"wrote {out} ({len(telemetry.events)} events)")
    return 0


def _cmd_validate(paths: list[str]) -> int:
    status = 0
    for path in paths:
        try:
            with open(path, "r", encoding="utf-8") as handle:
                text = handle.read()
            if path.endswith(".jsonl"):
                count = validate_jsonl_lines(text.splitlines())
                detail = f"{count} events"
            else:
                data = json.loads(text)
                if "traceEvents" in data:
                    validate_chrome_trace(data)
                    detail = f"{len(data['traceEvents'])} trace events"
                else:
                    validate_telemetry_dict(data)
                    detail = f"{len(data['phases'])} phases"
        except (OSError, ValueError, KeyError) as exc:
            print(f"FAIL {path}: {exc}", file=sys.stderr)
            status = 1
        else:
            print(f"ok   {path}: {detail}")
    return status


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Inspect and convert repro telemetry artifacts.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    p_sum = sub.add_parser("summarize", help="print the per-phase summary table")
    p_sum.add_argument("file", help="events .jsonl or telemetry .json")
    p_chrome = sub.add_parser("chrome", help="convert to Chrome trace-event JSON")
    p_chrome.add_argument("file", help="events .jsonl or telemetry .json")
    p_chrome.add_argument("-o", "--out", default=None, help="output path")
    p_val = sub.add_parser("validate", help="schema-check telemetry artifacts")
    p_val.add_argument("files", nargs="+", help="artifacts to validate")
    args = parser.parse_args(argv)
    if args.command == "summarize":
        return _cmd_summarize(args.file)
    if args.command == "chrome":
        return _cmd_chrome(args.file, args.out)
    return _cmd_validate(args.files)
