"""Telemetry exporters: JSONL event logs, Chrome trace-event JSON, flat
summary tables, and the sweep-report adapter.

Formats
-------
**JSONL** -- line 1 is a ``{"type": "meta", ...}`` header carrying the
schema, run metadata and the exact per-phase aggregates; every further
line is one event record (``{"type": "span"|"point", "name", "track",
"round", "ts", "dur"}``, timestamps in seconds since run start).  A
JSONL file is self-contained: :func:`summarize_events` rebuilds the
phase table from the event lines alone, so a truncated log still
summarises.

**Chrome trace-event JSON** -- the ``{"traceEvents": [...]}`` format
Perfetto and ``chrome://tracing`` load.  Spans become complete (``X``)
events, points become instants (``i``), and each telemetry track (the
engine/coordinator, every net node, every sweep worker) becomes one
named thread via ``thread_name`` metadata events.  Timestamps are
microseconds since run start.

**Sweep adapter** -- :func:`sweep_telemetry` converts a
:class:`~repro.bench.sweep.SweepReport` into the same
:class:`RunTelemetry` shape: one span per work unit on its worker's
track, per-experiment aggregates, and per-worker utilization in the
metadata.  That is what ``repro-bench profile <series>`` writes, so a
sweep profiles into Perfetto exactly like a single run does.
"""

from __future__ import annotations

import json
from typing import Any, Iterable, Optional

from repro.obs.recorder import PhaseStats, RunTelemetry

SCHEMA = "repro-obs/1"

__all__ = [
    "SCHEMA",
    "chrome_trace",
    "format_summary",
    "jsonl_lines",
    "summarize_events",
    "summary_rows",
    "sweep_telemetry",
    "validate_chrome_trace",
    "validate_jsonl_lines",
    "validate_telemetry_dict",
    "write_chrome_trace",
    "write_jsonl",
]


# -- JSONL --------------------------------------------------------------------


def jsonl_lines(telemetry: RunTelemetry) -> list[str]:
    """The event-log serialisation: meta header + one line per event."""
    header = {
        "type": "meta",
        "schema": telemetry.schema,
        "meta": telemetry.meta,
        "wall_seconds": telemetry.wall_seconds,
        "phases": telemetry.phases,
        "counts": telemetry.counts,
        "dropped_events": telemetry.dropped_events,
    }
    lines = [json.dumps(header, default=str)]
    lines.extend(json.dumps(event, default=str) for event in telemetry.events)
    return lines


def write_jsonl(telemetry: RunTelemetry, path) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        for line in jsonl_lines(telemetry):
            handle.write(line)
            handle.write("\n")


# -- Chrome trace-event JSON --------------------------------------------------

#: Fixed process id for every track; Chrome renders one process group.
_CHROME_PID = 1


def _track_order(tracks: Iterable[str]) -> dict[str, int]:
    """Stable track -> tid assignment: run/engine/coordinator tracks
    first, then everything else in first-appearance order."""
    ordered: dict[str, int] = {}
    for track in tracks:
        if track not in ordered:
            ordered[track] = len(ordered)
    return ordered


def chrome_trace(telemetry: RunTelemetry) -> dict:
    """Convert to the Chrome trace-event format (Perfetto-loadable)."""
    tracks = _track_order(event.get("track", "run") for event in telemetry.events)
    if not tracks:
        tracks = {"run": 0}
    trace_events: list[dict] = []
    for track, tid in tracks.items():
        trace_events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": _CHROME_PID,
                "tid": tid,
                "args": {"name": track},
            }
        )
    for event in telemetry.events:
        tid = tracks.get(event.get("track", "run"), 0)
        args = {"round": event.get("round")}
        args.update(event.get("args") or {})
        if event["type"] == "span":
            trace_events.append(
                {
                    "name": event["name"],
                    "ph": "X",
                    "ts": event["ts"] * 1e6,
                    "dur": event["dur"] * 1e6,
                    "pid": _CHROME_PID,
                    "tid": tid,
                    "args": args,
                }
            )
        else:
            trace_events.append(
                {
                    "name": event["name"],
                    "ph": "i",
                    "s": "t",
                    "ts": event["ts"] * 1e6,
                    "pid": _CHROME_PID,
                    "tid": tid,
                    "args": args,
                }
            )
    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": {"schema": telemetry.schema, **telemetry.meta},
    }


def write_chrome_trace(telemetry: RunTelemetry, path) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(chrome_trace(telemetry), handle, default=str)
        handle.write("\n")


# -- flat summaries -----------------------------------------------------------


def summary_rows(telemetry: RunTelemetry) -> list[dict]:
    """Per-phase table rows (phase, count, totals, share of wall)."""
    wall = max(telemetry.wall_seconds, 1e-12)
    rows = []
    for name, stats in telemetry.phases.items():
        rows.append(
            {
                "phase": name,
                "count": stats["count"],
                "total_ms": round(stats["total_sec"] * 1e3, 3),
                "mean_us": round(
                    stats["total_sec"] / max(stats["count"], 1) * 1e6, 1
                ),
                "max_us": round(stats["max_sec"] * 1e6, 1),
                "share": f"{stats['total_sec'] / wall:.1%}",
            }
        )
    rows.sort(key=lambda row: -row["total_ms"])
    for name, count in telemetry.counts.items():
        rows.append({"phase": f"[{name}]", "count": count})
    return rows


def format_summary(rows: list[dict]) -> str:
    """Align summary rows into a printable text table (column union)."""
    if not rows:
        return "(no phases recorded)"
    columns: dict[str, None] = {}
    for row in rows:
        for key in row:
            columns.setdefault(key)
    names = list(columns)
    cells = [[str(row.get(col, "")) for col in names] for row in rows]
    widths = [
        max(len(col), *(len(row[i]) for row in cells))
        for i, col in enumerate(names)
    ]
    header = "  ".join(col.ljust(widths[i]) for i, col in enumerate(names))
    rule = "  ".join("-" * w for w in widths)
    body = "\n".join(
        "  ".join(row[i].ljust(widths[i]) for i in range(len(names)))
        for row in cells
    )
    return f"{header}\n{rule}\n{body}"


def summarize_events(lines: Iterable[str]) -> tuple[dict, list[dict]]:
    """Rebuild ``(meta_header, summary_rows)`` from JSONL event lines.

    Aggregates are recomputed from the event lines themselves (not the
    header), so a truncated or concatenated log still summarises; the
    header (when present) contributes the wall-clock for the share
    column and is returned for context.
    """
    meta: dict = {}
    stats: dict[str, PhaseStats] = {}
    counts: dict[str, int] = {}
    horizon = 0.0
    for line in lines:
        line = line.strip()
        if not line:
            continue
        record = json.loads(line)
        kind = record.get("type")
        if kind == "meta":
            meta = record
        elif kind == "span":
            phase = stats.get(record["name"])
            if phase is None:
                phase = stats[record["name"]] = PhaseStats()
            phase.add(record["dur"])
            horizon = max(horizon, record["ts"] + record["dur"])
        elif kind == "point":
            counts[record["name"]] = counts.get(record["name"], 0) + 1
            horizon = max(horizon, record["ts"])
        else:
            raise ValueError(f"unknown event record type {kind!r}")
    wall = meta.get("wall_seconds") or horizon
    telemetry = RunTelemetry(
        meta=meta.get("meta", {}),
        wall_seconds=wall,
        phases={name: s.to_dict() for name, s in sorted(stats.items())},
        counts=dict(sorted(counts.items())),
    )
    return meta, summary_rows(telemetry)


# -- sweep adapter ------------------------------------------------------------

_SCALARS = (str, int, float, bool)


def sweep_telemetry(report) -> RunTelemetry:
    """Convert a :class:`~repro.bench.sweep.SweepReport` into telemetry.

    One span per work unit on its worker process's track (``worker-<os
    pid>``), aggregates keyed by the experiment name, per-worker busy
    time and utilization in the metadata.  Workers stamp wall-clock
    start times (``time.time``), which are comparable across processes,
    so the spans place correctly on a shared timeline.
    """
    outcomes = list(report.outcomes)
    stats = PhaseStats()
    events: list[dict] = []
    workers: dict[int, dict] = {}
    t0 = min((o.started for o in outcomes if o.started), default=0.0)
    for outcome in outcomes:
        stats.add(outcome.elapsed)
        worker = workers.setdefault(
            outcome.worker, {"units": 0, "busy_seconds": 0.0}
        )
        worker["units"] += 1
        worker["busy_seconds"] += outcome.elapsed
        args = {
            key: value
            for key, value in outcome.unit.params.items()
            if isinstance(value, _SCALARS)
        }
        family = outcome.row.get("family") if isinstance(outcome.row, dict) else None
        if family:
            args.setdefault("family", family)
        events.append(
            {
                "type": "span",
                "name": report.name,
                "track": f"worker-{outcome.worker}",
                "round": outcome.unit.index,
                "ts": (outcome.started - t0) if outcome.started else 0.0,
                "dur": outcome.elapsed,
                "args": args,
            }
        )
    wall = max(report.elapsed, 1e-12)
    for worker in workers.values():
        worker["utilization"] = round(worker["busy_seconds"] / wall, 3)
        worker["busy_seconds"] = round(worker["busy_seconds"], 3)
    return RunTelemetry(
        meta={
            "backend": "sweep",
            "experiment": report.name,
            "units": len(outcomes),
            "jobs": report.jobs,
            "workers": {str(pid): info for pid, info in sorted(workers.items())},
            **{k: v for k, v in report.meta.items() if isinstance(v, _SCALARS)},
        },
        wall_seconds=report.elapsed,
        phases={report.name: stats.to_dict()},
        events=events,
    )


# -- validators (tests + CI artifact checks) ----------------------------------


def validate_telemetry_dict(data: dict) -> None:
    """Raise ``ValueError`` unless ``data`` is a valid telemetry artifact."""
    if not str(data.get("schema", "")).startswith("repro-obs"):
        raise ValueError(f"bad schema tag {data.get('schema')!r}")
    for key in ("meta", "wall_seconds", "phases", "events"):
        if key not in data:
            raise ValueError(f"telemetry artifact missing {key!r}")
    for name, stats in data["phases"].items():
        for key in ("count", "total_sec", "mean_sec", "min_sec", "max_sec"):
            if key not in stats:
                raise ValueError(f"phase {name!r} missing {key!r}")
        if stats["count"] <= 0:
            raise ValueError(f"phase {name!r} has no samples")
    for event in data["events"]:
        if event.get("type") not in ("span", "point"):
            raise ValueError(f"bad event type in {event!r}")
        if "name" not in event or "ts" not in event:
            raise ValueError(f"event missing name/ts: {event!r}")
        if event["type"] == "span" and event.get("dur", -1.0) < 0.0:
            raise ValueError(f"span with negative duration: {event!r}")


def validate_chrome_trace(data: dict) -> None:
    """Raise ``ValueError`` unless ``data`` is a loadable trace-event file."""
    events = data.get("traceEvents")
    if not isinstance(events, list) or not events:
        raise ValueError("chrome trace has no traceEvents list")
    named_threads = set()
    for event in events:
        ph = event.get("ph")
        if ph not in ("X", "i", "M"):
            raise ValueError(f"unexpected event phase {ph!r}")
        if ph == "M":
            if event.get("name") == "thread_name":
                named_threads.add(event.get("tid"))
            continue
        for key in ("name", "ts", "pid", "tid"):
            if key not in event:
                raise ValueError(f"trace event missing {key!r}: {event!r}")
        if ph == "X" and event.get("dur", -1.0) < 0.0:
            raise ValueError(f"complete event with negative dur: {event!r}")
    used = {e.get("tid") for e in events if e.get("ph") in ("X", "i")}
    if not used <= named_threads:
        raise ValueError(f"tracks {used - named_threads} lack thread_name metadata")


def validate_jsonl_lines(lines: Iterable[str]) -> int:
    """Validate a JSONL event log; returns the number of event lines."""
    count = 0
    saw_meta = False
    for line in lines:
        line = line.strip()
        if not line:
            continue
        record = json.loads(line)
        kind = record.get("type")
        if kind == "meta":
            if not str(record.get("schema", "")).startswith("repro-obs"):
                raise ValueError(f"bad schema tag {record.get('schema')!r}")
            saw_meta = True
        elif kind == "span":
            if record.get("dur", -1.0) < 0.0 or "name" not in record:
                raise ValueError(f"bad span line: {record!r}")
            count += 1
        elif kind == "point":
            if "name" not in record or "ts" not in record:
                raise ValueError(f"bad point line: {record!r}")
            count += 1
        else:
            raise ValueError(f"unknown line type {kind!r}")
    if not saw_meta:
        raise ValueError("event log has no meta header line")
    return count
