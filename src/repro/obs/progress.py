"""Live progress heartbeats for the long-running surfaces.

``repro.check`` and ``repro-bench`` sweeps fan work units out over a
process pool; until this layer existed a 200-config budget printed
nothing until it finished.  :class:`ProgressReporter` plugs into the
sweep harness's ``progress=`` hook: every completed unit flows back
through the parent's result stream (the existing multiprocessing
plumbing -- workers stamp ``started``/``worker`` on each outcome) and
the reporter renders a throttled heartbeat line::

    check: 120/200 units, 14.3/s, eta 6s, util 87% (4 workers), last seed=119 flooding/sim-opt

Lines go to stderr (never stdout, which stays machine-readable) and are
throttled to one per ``interval`` seconds, so even a million-unit sweep
costs a handful of writes.  ``enabled=None`` auto-detects: on when the
stream is a TTY, off when piped -- matching the ``--progress`` /
``--no-progress`` CLI flags that force it either way.
"""

from __future__ import annotations

import sys
import time
from typing import Any, Callable, Optional

__all__ = ["ProgressReporter"]


def _default_describe(outcome: Any) -> str:
    """Best-effort one-phrase description of a sweep outcome."""
    params = getattr(getattr(outcome, "unit", None), "params", None) or {}
    row = getattr(outcome, "row", None)
    bits = []
    seed = params.get("seed")
    if seed is None and isinstance(row, dict):
        seed = row.get("seed")
    if seed is not None:
        bits.append(f"seed={seed}")
    if isinstance(row, dict):
        family = row.get("family")
        backend = row.get("backend") or row.get("backends")
        if family and backend:
            bits.append(f"{family}/{backend}")
        elif family:
            bits.append(str(family))
    if not bits:
        n = params.get("n")
        if n is not None:
            bits.append(f"n={n}")
    return " ".join(bits)


class ProgressReporter:
    """Throttled heartbeat renderer for sweep-shaped work.

    Call :meth:`unit_done` with each completed outcome (any object with
    ``elapsed`` and optionally ``worker``/``unit``/``row`` attributes);
    the reporter tracks throughput and per-worker busy time and prints
    at most one line per ``interval`` seconds.  :meth:`close` prints the
    final line (when enabled) and returns a summary dict that surfaces
    embed in their artifacts.
    """

    def __init__(
        self,
        total: int,
        *,
        label: str = "sweep",
        stream=None,
        interval: float = 2.0,
        jobs: int = 1,
        describe: Optional[Callable[[Any], str]] = None,
        enabled: Optional[bool] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.total = total
        self.label = label
        self.stream = stream if stream is not None else sys.stderr
        self.interval = interval
        self.jobs = max(jobs, 1)
        self.describe = describe or _default_describe
        if enabled is None:
            enabled = bool(getattr(self.stream, "isatty", lambda: False)())
        self.enabled = enabled
        self.clock = clock
        self.done = 0
        self.busy_seconds = 0.0
        self.workers: dict[int, float] = {}
        self.last_description = ""
        self.lines_printed = 0
        self._t0 = clock()
        self._last_print = self._t0
        self._closed = False

    # -- feed ------------------------------------------------------------

    def unit_done(self, outcome: Any) -> None:
        """Record one completed unit; prints a heartbeat when due."""
        self.done += 1
        elapsed = getattr(outcome, "elapsed", 0.0) or 0.0
        self.busy_seconds += elapsed
        worker = getattr(outcome, "worker", 0) or 0
        self.workers[worker] = self.workers.get(worker, 0.0) + elapsed
        self.last_description = self.describe(outcome)
        if not self.enabled:
            return
        now = self.clock()
        if now - self._last_print >= self.interval or self.done == self.total:
            self._emit(now)

    # -- rendering -------------------------------------------------------

    def _format(self, now: float) -> str:
        wall = max(now - self._t0, 1e-9)
        rate = self.done / wall
        parts = [f"{self.label}: {self.done}/{self.total} units"]
        parts.append(f"{rate:.1f}/s")
        remaining = self.total - self.done
        if remaining > 0 and rate > 0:
            parts.append(f"eta {remaining / rate:.0f}s")
        util = self.busy_seconds / (wall * self.jobs)
        parts.append(f"util {util:.0%} ({len(self.workers) or 1} workers)")
        if self.last_description:
            parts.append(f"last {self.last_description}")
        return ", ".join(parts)

    def _emit(self, now: float) -> None:
        print(self._format(now), file=self.stream, flush=True)
        self.lines_printed += 1
        self._last_print = now

    # -- summary ---------------------------------------------------------

    def summary(self) -> dict:
        """Throughput + per-worker utilization, embeddable in artifacts."""
        wall = max(self.clock() - self._t0, 1e-9)
        return {
            "units": self.done,
            "total": self.total,
            "wall_seconds": round(wall, 3),
            "units_per_sec": round(self.done / wall, 3),
            "utilization": round(self.busy_seconds / (wall * self.jobs), 3),
            "jobs": self.jobs,
            "workers": {
                str(pid): round(busy, 3)
                for pid, busy in sorted(self.workers.items())
            },
        }

    def close(self) -> dict:
        """Print the final heartbeat (if enabled) and return the summary."""
        if not self._closed:
            self._closed = True
            if self.enabled and self.done and self.lines_printed == 0:
                # Short sweeps that finished inside one interval still
                # deserve their single summary line.
                self._emit(self.clock())
        return self.summary()
