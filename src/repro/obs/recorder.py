"""The recorder protocol, its null and collecting implementations, and
the :class:`RunTelemetry` artifact they seal into.

Design constraints (see the package docstring):

* the **null** implementation must cost nothing on the hot path -- the
  substrates normalise ``enabled``-false recorders to ``None`` via
  :func:`coerce_recorder` and guard every site with ``is not None``;
* the **collecting** implementation must stay cheap enough to profile
  multi-hour sweeps: per-phase wall-clock aggregates are always exact
  (O(1) memory per phase name), while the individual span/point events
  behind the timeline exporters are capped at ``max_events`` -- beyond
  the cap only the aggregates keep growing and ``dropped_events``
  records how many events the timeline lost.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from typing import Any, Optional

__all__ = [
    "NULL_RECORDER",
    "NullRecorder",
    "PhaseStats",
    "Recorder",
    "RunTelemetry",
    "TelemetryRecorder",
    "coerce_recorder",
]

#: Artifact schema tag; bumped on breaking layout changes.
SCHEMA = "repro-obs/1"


class Recorder:
    """Duck-typed surface every substrate instruments against.

    ``enabled`` is the single flag the substrates read: when false the
    recorder is dropped (normalised to ``None``) before the round loop
    starts, so none of the methods below is ever called on a disabled
    run.  ``clock`` is the timestamp source shared by caller and
    recorder -- substrates read ``tel.clock()`` around a phase and hand
    both endpoints to :meth:`span`, which keeps the recorder free to
    swap clocks (tests inject deterministic ones).
    """

    enabled: bool = False
    clock = staticmethod(time.perf_counter)

    def run_begin(self, *, backend: str = "", n: int = 0, **meta: Any) -> None:
        """Open the run span; ``backend``/``n``/``meta`` go to the artifact."""

    def run_end(self, **meta: Any) -> None:
        """Close the run span, merging final metadata (rounds, totals)."""

    def span(
        self,
        name: str,
        rnd: int,
        start: float,
        end: float,
        track: str = "run",
        **args: Any,
    ) -> None:
        """Record a completed ``[start, end]`` span on ``track``."""

    def point(
        self, name: str, rnd: int, ts: float, track: str = "run", **args: Any
    ) -> None:
        """Record an instantaneous event (crash / rejoin / drop / decide)."""

    def sample(self, name: str, duration: float, track: str = "run") -> None:
        """Aggregate a duration into the phase stats without storing an
        event -- the high-frequency form used by the codec probe."""

    def finish(self, result: Any = None) -> Optional["RunTelemetry"]:
        """Seal into an artifact (``None`` for the null recorder)."""
        return None


class NullRecorder(Recorder):
    """The do-nothing recorder; exists so callers can pass a recorder
    object unconditionally.  Substrates never actually invoke it: they
    drop ``enabled``-false recorders at run start (pinned by
    ``tests/test_obs.py``)."""

    __slots__ = ()


#: Shared no-op instance.
NULL_RECORDER = NullRecorder()


def coerce_recorder(telemetry: Any) -> Optional["TelemetryRecorder"]:
    """Normalise a ``telemetry=`` execution parameter to a live recorder
    or ``None``.

    Accepts ``None``/``False`` (off), ``True`` (fresh
    :class:`TelemetryRecorder`), a recorder instance (used as-is when
    ``enabled``, dropped otherwise), or a path (fresh recorder whose
    artifact the caller writes there -- path handling lives in
    :func:`repro.api._execute`).
    """
    if telemetry is None or telemetry is False:
        return None
    if telemetry is True or isinstance(telemetry, (str, os.PathLike)):
        return TelemetryRecorder()
    if not getattr(telemetry, "enabled", False):
        return None
    return telemetry


class PhaseStats:
    """Exact O(1)-memory aggregate of one phase's wall-clock samples."""

    __slots__ = ("count", "total", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = 0.0

    def add(self, duration: float) -> None:
        self.count += 1
        self.total += duration
        if duration < self.min:
            self.min = duration
        if duration > self.max:
            self.max = duration

    def to_dict(self) -> dict:
        return {
            "count": self.count,
            "total_sec": self.total,
            "mean_sec": self.total / self.count if self.count else 0.0,
            "min_sec": self.min if self.count else 0.0,
            "max_sec": self.max,
        }


class TelemetryRecorder(Recorder):
    """The collecting recorder behind ``telemetry=True``.

    Not thread-safe by design: one recorder instruments one execution
    (the asyncio substrates run all tasks on one loop).  Timestamps are
    ``time.perf_counter`` values; the artifact normalises them relative
    to ``run_begin`` so events are comparable across artifacts.
    """

    enabled = True

    def __init__(
        self, *, max_events: int = 200_000, meta: Optional[dict] = None
    ) -> None:
        self.max_events = max_events
        self.meta: dict = dict(meta or {})
        self.stats: dict[str, PhaseStats] = {}
        self.counts: dict[str, int] = {}
        #: raw events: ("span", name, track, rnd, start, end, args) or
        #: ("point", name, track, rnd, ts, args)
        self.events: list[tuple] = []
        self.dropped_events = 0
        self._t0: Optional[float] = None
        self._t1: Optional[float] = None

    # -- recording sites --------------------------------------------------

    def run_begin(self, *, backend: str = "", n: int = 0, **meta: Any) -> None:
        # Idempotent on re-begin (the api layer may label the backend
        # before the substrate opens the run): the first clock wins so
        # every event stays inside the run span.
        if self._t0 is None:
            self._t0 = self.clock()
        if backend:
            self.meta["backend"] = backend
        if n:
            self.meta["n"] = n
        self.meta.update(meta)

    def run_end(self, **meta: Any) -> None:
        self._t1 = self.clock()
        self.meta.update(meta)

    def span(
        self,
        name: str,
        rnd: int,
        start: float,
        end: float,
        track: str = "run",
        **args: Any,
    ) -> None:
        stats = self.stats.get(name)
        if stats is None:
            stats = self.stats[name] = PhaseStats()
        stats.add(end - start)
        if len(self.events) < self.max_events:
            self.events.append(
                ("span", name, track, rnd, start, end, args or None)
            )
        else:
            self.dropped_events += 1

    def point(
        self, name: str, rnd: int, ts: float, track: str = "run", **args: Any
    ) -> None:
        self.counts[name] = self.counts.get(name, 0) + 1
        if len(self.events) < self.max_events:
            self.events.append(("point", name, track, rnd, ts, args or None))
        else:
            self.dropped_events += 1

    def sample(self, name: str, duration: float, track: str = "run") -> None:
        stats = self.stats.get(name)
        if stats is None:
            stats = self.stats[name] = PhaseStats()
        stats.add(duration)

    # -- sealing ----------------------------------------------------------

    def finish(self, result: Any = None) -> "RunTelemetry":
        """Seal into a :class:`RunTelemetry`, normalising timestamps to
        seconds since ``run_begin``.  ``result`` (a
        :class:`~repro.sim.engine.RunResult`) contributes the logical
        headline counters so one artifact carries both stories."""
        if self._t0 is None:
            self._t0 = self.clock()
        if self._t1 is None:
            self._t1 = self.clock()
        t0 = self._t0
        meta = dict(self.meta)
        if result is not None:
            meta.setdefault("rounds", result.metrics.rounds)
            meta.setdefault("messages", result.metrics.messages)
            meta.setdefault("bits", result.metrics.bits)
            meta.setdefault("completed", result.completed)
            meta.setdefault("crashed", sorted(result.crashed))
        events = []
        for event in self.events:
            if event[0] == "span":
                _, name, track, rnd, start, end, args = event
                record = {
                    "type": "span",
                    "name": name,
                    "track": track,
                    "round": rnd,
                    "ts": start - t0,
                    "dur": end - start,
                }
            else:
                _, name, track, rnd, ts, args = event
                record = {
                    "type": "point",
                    "name": name,
                    "track": track,
                    "round": rnd,
                    "ts": ts - t0,
                }
            if args:
                record["args"] = args
            events.append(record)
        return RunTelemetry(
            meta=meta,
            wall_seconds=self._t1 - t0,
            phases={name: s.to_dict() for name, s in sorted(self.stats.items())},
            counts=dict(sorted(self.counts.items())),
            events=events,
            dropped_events=self.dropped_events,
        )


@dataclass
class RunTelemetry:
    """One execution's sealed telemetry: metadata, per-phase wall-clock
    aggregates, point-event counts, and the (possibly capped) event
    timeline.  Saved next to traces; see :mod:`repro.obs.export` for
    the JSONL / Chrome trace-event serialisations."""

    meta: dict
    wall_seconds: float
    phases: dict[str, dict]
    counts: dict[str, int] = field(default_factory=dict)
    events: list[dict] = field(default_factory=list)
    dropped_events: int = 0
    schema: str = SCHEMA

    def to_dict(self) -> dict:
        return {
            "schema": self.schema,
            "meta": dict(self.meta),
            "wall_seconds": self.wall_seconds,
            "phases": {name: dict(stats) for name, stats in self.phases.items()},
            "counts": dict(self.counts),
            "dropped_events": self.dropped_events,
            "events": list(self.events),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RunTelemetry":
        return cls(
            meta=dict(data["meta"]),
            wall_seconds=data["wall_seconds"],
            phases={k: dict(v) for k, v in data["phases"].items()},
            counts=dict(data.get("counts", {})),
            events=list(data.get("events", [])),
            dropped_events=data.get("dropped_events", 0),
            schema=data.get("schema", SCHEMA),
        )

    def save(self, path) -> None:
        """Write the telemetry JSON artifact."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=2, default=str)
            handle.write("\n")

    @classmethod
    def load(cls, path) -> "RunTelemetry":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_dict(json.load(handle))

    # -- exporter conveniences (implemented in repro.obs.export) ----------

    def jsonl_lines(self) -> list[str]:
        from repro.obs.export import jsonl_lines

        return jsonl_lines(self)

    def write_jsonl(self, path) -> None:
        from repro.obs.export import write_jsonl

        write_jsonl(self, path)

    def chrome_trace(self) -> dict:
        from repro.obs.export import chrome_trace

        return chrome_trace(self)

    def write_chrome_trace(self, path) -> None:
        from repro.obs.export import write_chrome_trace

        write_chrome_trace(self, path)

    def summary_rows(self) -> list[dict]:
        from repro.obs.export import summary_rows

        return summary_rows(self)

    def write(self, path) -> None:
        """Suffix-dispatching writer behind ``telemetry="<path>"``:
        ``*.jsonl`` writes the event log, ``*.trace.json`` /
        ``*.chrome.json`` the Chrome trace-event file, anything else
        the telemetry JSON artifact itself."""
        name = os.fspath(path)
        if name.endswith(".jsonl"):
            self.write_jsonl(path)
        elif name.endswith((".trace.json", ".chrome.json")):
            self.write_chrome_trace(path)
        else:
            self.save(path)
