"""Correctness predicates for the paper's problems (Section 2).

Every predicate takes a finished :class:`~repro.sim.engine.RunResult`
(or the single-port equivalent) and raises :class:`PropertyViolation`
with a precise description if the execution violates the problem's
specification.  The test suite and the benchmark harness both run these
after every execution, so a benchmark number is only ever reported for a
*correct* run.
"""

from __future__ import annotations

from typing import Any, Iterable, Optional, Sequence

__all__ = [
    "PropertyViolation",
    "check_aea",
    "check_approximate",
    "check_checkpointing",
    "check_consensus",
    "check_gossip",
    "check_scv",
]


class PropertyViolation(AssertionError):
    """An execution violated its problem specification."""


def _correct_decisions(result) -> dict[int, Any]:
    return result.correct_decisions()


def _correct_pids(result) -> list[int]:
    if hasattr(result, "correct_pids"):
        return result.correct_pids()
    return [p.pid for p in result.processes if p.pid not in result.crashed]


def check_consensus(result, inputs: Sequence[int]) -> None:
    """Validity + agreement + termination for consensus.

    * termination: every non-faulty node decided (and the run completed);
    * agreement: no two decisions differ;
    * validity: the decision is the input of some node.
    """
    if not result.completed:
        raise PropertyViolation("execution did not complete (max_rounds hit)")
    decisions = _correct_decisions(result)
    correct = _correct_pids(result)
    undecided = sorted(set(correct) - set(decisions))
    if undecided:
        raise PropertyViolation(f"termination violated: undecided nodes {undecided[:10]}")
    values = set(decisions.values())
    if len(values) > 1:
        raise PropertyViolation(f"agreement violated: decisions {values}")
    if values:
        value = values.pop()
        if value not in set(inputs):
            raise PropertyViolation(
                f"validity violated: decision {value!r} is nobody's input"
            )


def check_approximate(result, inputs: Sequence[float], eps: float) -> None:
    """ε-agreement + range validity + termination for approximate
    consensus.

    * termination: every non-faulty node decided (and the run completed);
    * ε-agreement: the decided values span at most ``eps``;
    * validity: every decision lies in ``[min(inputs), max(inputs)]``
      (estimates are averages of initial values, so the input range is
      an invariant).
    """
    if not result.completed:
        raise PropertyViolation("execution did not complete (max_rounds hit)")
    decisions = _correct_decisions(result)
    correct = _correct_pids(result)
    undecided = sorted(set(correct) - set(decisions))
    if undecided:
        raise PropertyViolation(
            f"termination violated: undecided nodes {undecided[:10]}"
        )
    values = list(decisions.values())
    if not values:
        return
    spread = max(values) - min(values)
    if spread > eps:
        raise PropertyViolation(
            f"eps-agreement violated: decisions span {spread!r} > eps={eps!r}"
        )
    lo, hi = min(inputs), max(inputs)
    out = {pid: v for pid, v in decisions.items() if not lo <= v <= hi}
    if out:
        raise PropertyViolation(
            f"validity violated: decisions outside input range "
            f"[{lo!r}, {hi!r}]: {dict(list(out.items())[:5])}"
        )


def check_aea(result, inputs: Sequence[int], kappa: float = 3 / 5) -> None:
    """The κ-almost-everywhere-agreement specification.

    At least ``κ·n`` nodes decide or fail; agreement and validity hold
    among the nodes that decided.
    """
    if not result.completed:
        raise PropertyViolation("execution did not complete")
    n = len(result.processes)
    decisions = _correct_decisions(result)
    settled = len(decisions) + len(result.crashed)
    if settled < kappa * n:
        raise PropertyViolation(
            f"coverage violated: {len(decisions)} deciders + "
            f"{len(result.crashed)} crashed < {kappa}·{n}"
        )
    values = set(decisions.values())
    if len(values) > 1:
        raise PropertyViolation(f"agreement violated among deciders: {values}")
    if values:
        value = values.pop()
        if value not in set(inputs):
            raise PropertyViolation(f"validity violated: {value!r} is nobody's input")


def check_scv(result, common_value: Any) -> None:
    """κ-spread-common-value: every non-faulty node decides the common
    value."""
    if not result.completed:
        raise PropertyViolation("execution did not complete")
    decisions = _correct_decisions(result)
    correct = _correct_pids(result)
    undecided = sorted(set(correct) - set(decisions))
    if undecided:
        raise PropertyViolation(f"nodes without the common value: {undecided[:10]}")
    wrong = {pid: v for pid, v in decisions.items() if v != common_value}
    if wrong:
        raise PropertyViolation(f"wrong values adopted: {dict(list(wrong.items())[:5])}")


def _gossip_conditions(
    result, decided_sets: dict[int, set[int]], never_sent: set[int]
) -> None:
    correct = set(_correct_pids(result))
    for pid, members in decided_sets.items():
        ghosts = members & never_sent
        if ghosts:
            raise PropertyViolation(
                f"condition (1) violated at {pid}: contains silent-crashed {sorted(ghosts)[:5]}"
            )
        missing = correct - members
        if missing:
            raise PropertyViolation(
                f"condition (2) violated at {pid}: missing operational {sorted(missing)[:5]}"
            )


def check_gossip(result, rumors: Optional[Sequence[Any]] = None) -> None:
    """Gossip conditions (1)-(2) plus termination and rumor fidelity.

    Decided extant sets are the ``(pid, rumor)`` tuples produced by
    :class:`~repro.core.gossip.GossipProcess`.
    """
    if not result.completed:
        raise PropertyViolation("execution did not complete")
    decisions = _correct_decisions(result)
    correct = _correct_pids(result)
    undecided = sorted(set(correct) - set(decisions))
    if undecided:
        raise PropertyViolation(f"termination violated: {undecided[:10]}")
    never_sent = {
        pid for pid in result.crashed if result.metrics.per_node_messages[pid] == 0
    }
    decided_sets = {
        pid: {q for q, _ in extant} for pid, extant in decisions.items()
    }
    _gossip_conditions(result, decided_sets, never_sent)
    if rumors is not None:
        for pid, extant in decisions.items():
            for q, rumor in extant:
                if rumor != rumors[q]:
                    raise PropertyViolation(
                        f"rumor fidelity violated at {pid}: {q} -> {rumor!r}"
                    )


def check_checkpointing(result) -> None:
    """Checkpointing conditions (1)-(3) plus termination.

    Decisions are frozensets of pids.
    """
    if not result.completed:
        raise PropertyViolation("execution did not complete")
    decisions = _correct_decisions(result)
    correct = _correct_pids(result)
    undecided = sorted(set(correct) - set(decisions))
    if undecided:
        raise PropertyViolation(f"termination violated: {undecided[:10]}")
    sets = list(decisions.values())
    if not sets:
        return
    first = sets[0]
    if any(s != first for s in sets):
        raise PropertyViolation("condition (3) violated: decided sets differ")
    never_sent = {
        pid for pid in result.crashed if result.metrics.per_node_messages[pid] == 0
    }
    decided_sets = {pid: set(members) for pid, members in decisions.items()}
    _gossip_conditions(result, decided_sets, never_sent)
