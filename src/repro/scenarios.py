"""Declarative fault scenarios: omission, partition and churn.

The paper proves its bounds in the synchronous crash model with partial
sends (Section 2).  Its lineage — Dwork–Halpern–Waarts's omission-style
adversaries, and the dynamic-fault literature — asks how such
algorithms *degrade* under broader fault classes.  This module makes
those classes first-class, executable and serializable:

* **crash** — the paper's model: a node stops at a round, delivering
  only a prefix of its final sends (:class:`CrashEvent`, equivalent to
  :class:`~repro.sim.adversary.CrashSpec`);
* **omission** — per-link drop schedules: every message from ``src`` to
  ``dst`` during the listed rounds is *sent but lost in transit*
  (:class:`OmissionSpec`);
* **partition** — transient connectivity masks: during ``[start, stop)``
  the network splits into groups and every cross-group message is lost
  (:class:`PartitionSpec`);
* **churn** — crash plus rejoin with state reset: the node comes back
  at ``rejoin_round`` as if freshly started, having lost all protocol
  state (:class:`ChurnSpec`).

A :class:`Scenario` is plain data — a frozen bundle of the above,
round-trippable through JSON (:meth:`Scenario.to_json` /
:meth:`Scenario.from_json`), so a fault pattern can be attached to a
bug report, committed next to a test, or swept over by the benchmark
harness.  :meth:`Scenario.adversary` compiles it into a
:class:`ScenarioAdversary`, a :class:`~repro.sim.adversary.CrashAdversary`
that drives the lock-step engine *and* the :mod:`repro.net` runtime
identically (the parity tests pin identical metrics, decisions and
crash sets across ``Engine(optimized=True/False)`` and the net
backend for every fault class).

Determinism: a scenario is concrete data, so a run under it is a pure
function of ``(processes, scenario)``.  :func:`scenario_schedule`
generates random scenarios deterministically from a seed, mirroring
:func:`~repro.sim.adversary.crash_schedule` (the module-level ``random``
state is never touched).

Semantics in one paragraph: link faults act on messages *after* the
crash-round ``keep`` truncation; a dropped message is excluded from the
``messages``/``bits`` totals and tallied in
:attr:`~repro.sim.metrics.Metrics.dropped_messages`.  A rejoin applies
only to a node that is actually crashed at its scheduled round; the
node's state is reset to a pre-``on_start`` snapshot, ``on_start`` runs
again, and the node participates in the rejoin round's send phase.
See ``docs/faults.md`` for the full handbook.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass
from typing import NamedTuple, Optional, Sequence

from repro.sim.adversary import CrashAdversary

__all__ = [
    "ChurnSpec",
    "CrashEvent",
    "OmissionSpec",
    "PartitionSpec",
    "Scenario",
    "ScenarioAdversary",
    "scenario_schedule",
]

SCENARIO_VERSION = 1


class CrashEvent(NamedTuple):
    """A scheduled crash: ``pid`` stops at ``round``.

    ``keep`` is the partial-send budget of the crash round, with the
    exact :class:`~repro.sim.adversary.CrashSpec` semantics: ``None``
    delivers every attempted message, ``k`` the first ``k``
    point-to-point messages in send order, ``0`` none.
    """

    pid: int
    round: int
    keep: Optional[int] = None


class OmissionSpec(NamedTuple):
    """Drop every ``src -> dst`` message during the listed ``rounds``.

    The granularity is one directed link per round: all messages that
    ``src`` attempts to ``dst`` in a listed round are lost in transit
    (after the sender's crash-round ``keep`` truncation, if any).  The
    reverse direction is unaffected unless listed separately.
    """

    src: int
    dst: int
    rounds: tuple[int, ...]


class PartitionSpec(NamedTuple):
    """Split the network into ``groups`` during rounds ``[start, stop)``.

    Messages between different groups are dropped; messages within a
    group are unaffected.  Nodes not listed in any group form one
    implicit remainder group (so a two-way split of ``n`` nodes needs
    only one explicit group).  Overlapping partitions compose: a
    message is dropped if *any* active partition separates its
    endpoints.
    """

    start: int
    stop: int
    groups: tuple[tuple[int, ...], ...]


class ChurnSpec(NamedTuple):
    """Crash ``pid`` at ``crash_round`` and rejoin it at ``rejoin_round``.

    The crash leg behaves exactly like :class:`CrashEvent` (including
    the ``keep`` partial send).  At ``rejoin_round`` the node is
    reinstated with **reset state**: its process is restored to a deep
    copy of its pre-``on_start`` state, ``on_start`` runs again, and it
    participates in that round's send phase.  If the node is not
    actually crashed at ``rejoin_round`` (it halted before its crash
    leg fired), the rejoin is a no-op.
    """

    pid: int
    crash_round: int
    rejoin_round: int
    keep: Optional[int] = None


@dataclass(frozen=True)
class Scenario:
    """A declarative, JSON-serializable bundle of fault events.

    ``n`` is the system size the events are validated against; a
    scenario is rejected at :meth:`adversary` time (or explicitly via
    :meth:`validate`) if any pid is out of range, a pid carries more
    than one crash/churn event, a churn rejoin does not strictly follow
    its crash, or a partition's groups overlap.

    Construction accepts any iterables; they are normalised to tuples
    so scenarios hash and compare by value::

        >>> sc = Scenario(n=4, omissions=[OmissionSpec(0, 1, (2, 3))])
        >>> Scenario.from_json(sc.to_json()) == sc
        True
    """

    n: int
    name: str = ""
    crashes: tuple[CrashEvent, ...] = ()
    omissions: tuple[OmissionSpec, ...] = ()
    partitions: tuple[PartitionSpec, ...] = ()
    churn: tuple[ChurnSpec, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "crashes", tuple(CrashEvent(*event) for event in self.crashes)
        )
        object.__setattr__(
            self,
            "omissions",
            tuple(
                OmissionSpec(spec[0], spec[1], tuple(spec[2]))
                for spec in self.omissions
            ),
        )
        object.__setattr__(
            self,
            "partitions",
            tuple(
                PartitionSpec(
                    spec[0],
                    spec[1],
                    tuple(tuple(group) for group in spec[2]),
                )
                for spec in self.partitions
            ),
        )
        object.__setattr__(
            self, "churn", tuple(ChurnSpec(*spec) for spec in self.churn)
        )

    # -- validation ------------------------------------------------------

    def validate(self) -> None:
        """Raise :class:`ValueError` on an inconsistent scenario."""
        if self.n <= 0:
            raise ValueError(f"scenario requires n > 0, got {self.n}")

        def check_pid(pid: int, where: str) -> None:
            if not 0 <= pid < self.n:
                raise ValueError(f"{where}: pid {pid} outside [0, {self.n})")

        seen: set[int] = set()
        for event in self.crashes:
            check_pid(event.pid, "crash")
            if event.round < 0:
                raise ValueError(f"crash of pid {event.pid}: negative round")
            if event.pid in seen:
                raise ValueError(
                    f"pid {event.pid} has more than one crash/churn event"
                )
            seen.add(event.pid)
        for spec in self.churn:
            check_pid(spec.pid, "churn")
            if spec.crash_round < 0:
                raise ValueError(f"churn of pid {spec.pid}: negative round")
            if spec.rejoin_round <= spec.crash_round:
                raise ValueError(
                    f"churn of pid {spec.pid}: rejoin_round "
                    f"{spec.rejoin_round} must exceed crash_round "
                    f"{spec.crash_round}"
                )
            if spec.pid in seen:
                raise ValueError(
                    f"pid {spec.pid} has more than one crash/churn event"
                )
            seen.add(spec.pid)
        for spec in self.omissions:
            check_pid(spec.src, "omission")
            check_pid(spec.dst, "omission")
            if spec.src == spec.dst:
                raise ValueError(f"omission on self-link {spec.src}->{spec.dst}")
            if any(rnd < 0 for rnd in spec.rounds):
                raise ValueError(
                    f"omission {spec.src}->{spec.dst}: negative round"
                )
        for spec in self.partitions:
            if not 0 <= spec.start < spec.stop:
                raise ValueError(
                    f"partition window [{spec.start}, {spec.stop}) is empty "
                    "or negative"
                )
            members: set[int] = set()
            for group in spec.groups:
                for pid in group:
                    check_pid(pid, "partition")
                    if pid in members:
                        raise ValueError(
                            f"partition groups overlap on pid {pid}"
                        )
                    members.add(pid)

    # -- derived quantities ----------------------------------------------

    def fault_budget(self) -> int:
        """Number of crash events (churn legs included), the quantity to
        compare against a protocol's ``t``."""
        return len(self.crashes) + len(self.churn)

    def horizon(self) -> int:
        """One past the last round any event of this scenario touches."""
        last = -1
        for event in self.crashes:
            last = max(last, event.round)
        for spec in self.churn:
            last = max(last, spec.rejoin_round)
        for spec in self.omissions:
            last = max(last, max(spec.rounds, default=-1))
        for spec in self.partitions:
            last = max(last, spec.stop - 1)
        return last + 1

    def adversary(self) -> "ScenarioAdversary":
        """Compile into an adversary driving either substrate."""
        return ScenarioAdversary(self)

    # -- shrinking (repro.check) -----------------------------------------

    def shrink_size(self) -> int:
        """A strictly-decreasing complexity measure for shrinking.

        Every candidate :meth:`shrink_candidates` yields has a smaller
        ``shrink_size`` than its parent, so the greedy loop in
        :mod:`repro.check.shrink` terminates unconditionally.  The
        weights order the fault classes by how much machinery they drag
        in (churn > crash; a partial-send ``keep`` budget adds one).
        """
        size = 0
        for event in self.crashes:
            size += 3 + (event.keep is not None)
        for spec in self.churn:
            size += 5 + (spec.keep is not None)
        for spec in self.omissions:
            size += 2 + len(spec.rounds)
        for spec in self.partitions:
            size += 2 + (spec.stop - spec.start) + len(spec.groups)
        return size

    def shrink_candidates(self):
        """Yield strictly-simpler one-mutation variants of this scenario.

        The mutation operators, in the order tried by the greedy
        shrinker (largest simplification first):

        1. **delete** a whole crash / churn / omission / partition entry;
        2. **demote** a churn entry to a plain crash (drop the rejoin leg);
        3. **narrow** an omission's round list or a partition's window to
           its first or second half, or drop one partition group;
        4. **simplify** a crash-round ``keep`` budget to ``None`` (full
           final send).

        Every candidate is a valid scenario (the mutations preserve the
        :meth:`validate` invariants) with a smaller :meth:`shrink_size`.
        Used by :mod:`repro.check.shrink` to reduce a failing scenario to
        a minimal one that still trips the same oracle.
        """

        def variant(**changes) -> "Scenario":
            fields = {
                "n": self.n,
                "name": self.name,
                "crashes": self.crashes,
                "omissions": self.omissions,
                "partitions": self.partitions,
                "churn": self.churn,
            }
            fields.update(changes)
            return Scenario(**fields)

        def drop(items: tuple, index: int) -> tuple:
            return items[:index] + items[index + 1 :]

        # 1. whole-entry deletions.
        for i in range(len(self.crashes)):
            yield variant(crashes=drop(self.crashes, i))
        for i in range(len(self.churn)):
            yield variant(churn=drop(self.churn, i))
        for i in range(len(self.omissions)):
            yield variant(omissions=drop(self.omissions, i))
        for i in range(len(self.partitions)):
            yield variant(partitions=drop(self.partitions, i))
        # 2. churn -> plain crash (the rejoin leg deleted).
        for i, spec in enumerate(self.churn):
            yield variant(
                churn=drop(self.churn, i),
                crashes=self.crashes
                + (CrashEvent(spec.pid, spec.crash_round, spec.keep),),
            )
        # 3a. omission round-list halving.
        for i, spec in enumerate(self.omissions):
            if len(spec.rounds) > 1:
                mid = len(spec.rounds) // 2
                for half in (spec.rounds[:mid], spec.rounds[mid:]):
                    yield variant(
                        omissions=drop(self.omissions, i)
                        + (OmissionSpec(spec.src, spec.dst, half),)
                    )
        # 3b. partition window halving and group dropping.
        for i, spec in enumerate(self.partitions):
            rest = drop(self.partitions, i)
            span = spec.stop - spec.start
            if span > 1:
                mid = spec.start + span // 2
                for window in ((spec.start, mid), (mid, spec.stop)):
                    yield variant(
                        partitions=rest
                        + (PartitionSpec(window[0], window[1], spec.groups),)
                    )
            if len(spec.groups) > 1:
                for g in range(len(spec.groups)):
                    yield variant(
                        partitions=rest
                        + (
                            PartitionSpec(
                                spec.start, spec.stop, drop(spec.groups, g)
                            ),
                        )
                    )
        # 4. keep-budget simplification.
        for i, event in enumerate(self.crashes):
            if event.keep is not None:
                yield variant(
                    crashes=drop(self.crashes, i)
                    + (CrashEvent(event.pid, event.round, None),)
                )
        for i, spec in enumerate(self.churn):
            if spec.keep is not None:
                yield variant(
                    churn=drop(self.churn, i)
                    + (
                        ChurnSpec(
                            spec.pid, spec.crash_round, spec.rejoin_round, None
                        ),
                    )
                )

    # -- growing (repro.check.search) ------------------------------------

    def grow_candidates(
        self,
        *,
        max_round: int,
        crash_budget: Optional[int] = None,
        victims: Optional[Sequence[int]] = None,
        rng: Optional[random.Random] = None,
        samples: int = 8,
    ):
        """Yield strictly-*larger* one-mutation variants of this scenario.

        The inverse of :meth:`shrink_candidates`: where the shrinker
        deletes, demotes and narrows, the grower adds, promotes and
        widens.  Together they form the move set of the adversary search
        (:mod:`repro.check.search`), which walks scenario space in both
        directions looking for the worst measured bound ratio.

        The move operators, each preserving :meth:`validate` and
        strictly increasing :meth:`shrink_size` (the exact inverses of
        the shrink operators, in the same numbering):

        1. **add** a crash / churn / omission / partition entry;
        2. **promote** a plain crash to churn (grow a rejoin leg);
        3. **extend** an omission's round list or widen a partition's
           window by one round;
        4. **attach** a partial-send ``keep`` budget to a crash or churn
           whose budget is ``None``.

        Crash-model discipline: when ``crash_budget`` is given, no
        candidate's :meth:`fault_budget` exceeds it -- the cap is the
        instance's ``t``, so the search never leaves the paper's crash
        model by fault *count* (link faults remain available as
        explicitly out-of-model moves for degradation studies).
        Crash/churn victims are drawn from ``victims`` (default: all
        pids), which callers use to exclude Byzantine nodes.

        Event rounds are drawn in ``[0, max_round)`` (partition windows
        may extend one past it, mirroring :func:`scenario_schedule`).
        All randomness comes from ``rng`` (default ``Random(0)``); the
        module-level ``random`` state is never touched, so the yielded
        sequence is a pure function of the arguments.  Up to ``samples``
        candidates are yielded; duplicates are suppressed.
        """
        if max_round < 1:
            raise ValueError(f"grow_candidates requires max_round >= 1, got {max_round}")
        if rng is None:
            rng = random.Random(0)

        def variant(**changes) -> "Scenario":
            fields = {
                "n": self.n,
                "name": self.name,
                "crashes": self.crashes,
                "omissions": self.omissions,
                "partitions": self.partitions,
                "churn": self.churn,
            }
            fields.update(changes)
            return Scenario(**fields)

        pool = list(victims) if victims is not None else list(range(self.n))
        taken = {event.pid for event in self.crashes}
        taken.update(spec.pid for spec in self.churn)
        free = [pid for pid in pool if pid not in taken]
        budget_room = (
            crash_budget is None or self.fault_budget() < crash_budget
        )

        def keep_draw() -> Optional[int]:
            return rng.choice((None, 0, 1, 2))

        def add_crash() -> Optional["Scenario"]:
            if not free or not budget_room:
                return None
            pid = free[rng.randrange(len(free))]
            event = CrashEvent(pid, rng.randrange(max_round), keep_draw())
            return variant(crashes=self.crashes + (event,))

        def add_churn() -> Optional["Scenario"]:
            if not free or not budget_room:
                return None
            pid = free[rng.randrange(len(free))]
            crash_round = rng.randrange(max_round)
            rejoin_round = crash_round + 1 + rng.randrange(6)
            spec = ChurnSpec(pid, crash_round, rejoin_round, keep_draw())
            return variant(churn=self.churn + (spec,))

        def add_omission() -> Optional["Scenario"]:
            if self.n < 2:
                return None
            src, dst = rng.sample(range(self.n), 2)
            start = rng.randrange(max_round)
            span = 1 + rng.randrange(3)
            rounds = tuple(range(start, min(start + span, max_round)))
            return variant(
                omissions=self.omissions + (OmissionSpec(src, dst, rounds),)
            )

        def extend_omission() -> Optional["Scenario"]:
            candidates = [
                (i, spec)
                for i, spec in enumerate(self.omissions)
                if len(set(spec.rounds)) < max_round
            ]
            if not candidates:
                return None
            i, spec = candidates[rng.randrange(len(candidates))]
            missing = [r for r in range(max_round) if r not in spec.rounds]
            extra = missing[rng.randrange(len(missing))]
            grown = OmissionSpec(
                spec.src, spec.dst, tuple(sorted(spec.rounds + (extra,)))
            )
            return variant(
                omissions=self.omissions[:i] + (grown,) + self.omissions[i + 1 :]
            )

        def add_partition() -> Optional["Scenario"]:
            if self.n < 2:
                return None
            start = rng.randrange(max_round)
            stop = min(start + 1 + rng.randrange(3), max_round + 1)
            size = max(1, self.n // 2)
            group = tuple(sorted(rng.sample(range(self.n), size)))
            return variant(
                partitions=self.partitions + (PartitionSpec(start, stop, (group,)),)
            )

        def widen_partition() -> Optional["Scenario"]:
            candidates = []
            for i, spec in enumerate(self.partitions):
                if spec.start > 0:
                    candidates.append(
                        (i, PartitionSpec(spec.start - 1, spec.stop, spec.groups))
                    )
                if spec.stop <= max_round:
                    candidates.append(
                        (i, PartitionSpec(spec.start, spec.stop + 1, spec.groups))
                    )
            if not candidates:
                return None
            i, widened = candidates[rng.randrange(len(candidates))]
            return variant(
                partitions=self.partitions[:i]
                + (widened,)
                + self.partitions[i + 1 :]
            )

        def attach_keep() -> Optional["Scenario"]:
            bare_crashes = [
                (i, e) for i, e in enumerate(self.crashes) if e.keep is None
            ]
            bare_churn = [
                (i, s) for i, s in enumerate(self.churn) if s.keep is None
            ]
            if not bare_crashes and not bare_churn:
                return None
            keep = rng.randrange(0, 4)
            if bare_crashes and (
                not bare_churn or rng.random() < 0.5
            ):
                i, event = bare_crashes[rng.randrange(len(bare_crashes))]
                budgeted = CrashEvent(event.pid, event.round, keep)
                return variant(
                    crashes=self.crashes[:i] + (budgeted,) + self.crashes[i + 1 :]
                )
            i, spec = bare_churn[rng.randrange(len(bare_churn))]
            budgeted = ChurnSpec(spec.pid, spec.crash_round, spec.rejoin_round, keep)
            return variant(
                churn=self.churn[:i] + (budgeted,) + self.churn[i + 1 :]
            )

        def promote_crash() -> Optional["Scenario"]:
            if not self.crashes:
                return None
            i = rng.randrange(len(self.crashes))
            event = self.crashes[i]
            rejoin_round = event.round + 1 + rng.randrange(6)
            spec = ChurnSpec(event.pid, event.round, rejoin_round, event.keep)
            return variant(
                crashes=self.crashes[:i] + self.crashes[i + 1 :],
                churn=self.churn + (spec,),
            )

        moves = (
            add_crash,
            add_churn,
            add_omission,
            extend_omission,
            add_partition,
            widen_partition,
            attach_keep,
            promote_crash,
        )
        seen: set = set()
        for _ in range(samples):
            candidate = moves[rng.randrange(len(moves))]()
            if candidate is None or candidate in seen:
                continue
            seen.add(candidate)
            yield candidate

    # -- serialization ---------------------------------------------------

    def to_dict(self) -> dict:
        """A plain-JSON-types representation (inverse of :meth:`from_dict`)."""
        return {
            "version": SCENARIO_VERSION,
            "n": self.n,
            "name": self.name,
            "crashes": [
                {"pid": e.pid, "round": e.round, "keep": e.keep}
                for e in self.crashes
            ],
            "omissions": [
                {"src": s.src, "dst": s.dst, "rounds": list(s.rounds)}
                for s in self.omissions
            ],
            "partitions": [
                {
                    "start": s.start,
                    "stop": s.stop,
                    "groups": [list(group) for group in s.groups],
                }
                for s in self.partitions
            ],
            "churn": [
                {
                    "pid": s.pid,
                    "crash_round": s.crash_round,
                    "rejoin_round": s.rejoin_round,
                    "keep": s.keep,
                }
                for s in self.churn
            ],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Scenario":
        version = data.get("version", SCENARIO_VERSION)
        if version != SCENARIO_VERSION:
            raise ValueError(f"unsupported scenario version {version!r}")
        return cls(
            n=data["n"],
            name=data.get("name", ""),
            crashes=tuple(
                CrashEvent(e["pid"], e["round"], e.get("keep"))
                for e in data.get("crashes", ())
            ),
            omissions=tuple(
                OmissionSpec(s["src"], s["dst"], tuple(s["rounds"]))
                for s in data.get("omissions", ())
            ),
            partitions=tuple(
                PartitionSpec(
                    s["start"],
                    s["stop"],
                    tuple(tuple(group) for group in s["groups"]),
                )
                for s in data.get("partitions", ())
            ),
            churn=tuple(
                ChurnSpec(
                    s["pid"],
                    s["crash_round"],
                    s["rejoin_round"],
                    s.get("keep"),
                )
                for s in data.get("churn", ())
            ),
        )

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "Scenario":
        return cls.from_dict(json.loads(text))

    def save(self, path) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json(indent=2) + "\n")

    @classmethod
    def load(cls, path) -> "Scenario":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_json(handle.read())


class ScenarioAdversary(CrashAdversary):
    """A :class:`Scenario` compiled for execution.

    Implements the full extended-adversary surface of
    :class:`~repro.sim.adversary.CrashAdversary`:

    * :meth:`crashes_for_round` — crash events plus churn crash legs,
      an oblivious per-round ``pid -> keep`` map;
    * :meth:`rejoins_for_round` / :meth:`rejoin_pids` /
      :meth:`next_rejoin` — the churn rejoin schedule;
    * :meth:`blocked_links` — the per-round ``src -> blocked dsts``
      mask merging all omission specs and active partitions (``None``
      on rounds with no link fault, preserving the engine's fast path);
    * :meth:`next_event_round` — crash and rejoin rounds, so quiescence
      fast-forward never skips an event.

    The compiled form is oblivious (it never inspects the live
    engine/runtime view), which is what makes a scenario replay
    identically on every backend.
    """

    def __init__(self, scenario: Scenario):
        scenario.validate()
        self.scenario = scenario
        self._crashes_by_round: dict[int, dict[int, Optional[int]]] = {}
        for event in scenario.crashes:
            self._crashes_by_round.setdefault(event.round, {})[
                event.pid
            ] = event.keep
        self._rejoins_by_round: dict[int, frozenset[int]] = {}
        self._rejoin_round: dict[int, int] = {}
        rejoin_sets: dict[int, set[int]] = {}
        for spec in scenario.churn:
            self._crashes_by_round.setdefault(spec.crash_round, {})[
                spec.pid
            ] = spec.keep
            rejoin_sets.setdefault(spec.rejoin_round, set()).add(spec.pid)
            self._rejoin_round[spec.pid] = spec.rejoin_round
        self._rejoins_by_round = {
            rnd: frozenset(pids) for rnd, pids in rejoin_sets.items()
        }
        self._event_rounds = sorted(
            set(self._crashes_by_round) | set(self._rejoins_by_round)
        )
        self._omissions_by_round: dict[int, list[tuple[int, int]]] = {}
        for spec in scenario.omissions:
            for rnd in spec.rounds:
                self._omissions_by_round.setdefault(rnd, []).append(
                    (spec.src, spec.dst)
                )
        self._link_fault_rounds = set(self._omissions_by_round)
        for spec in scenario.partitions:
            self._link_fault_rounds.update(range(spec.start, spec.stop))
        # One-round memo: both substrates ask for the same round's mask
        # a small constant number of times in a row.
        self._blocked_memo: tuple[Optional[int], Optional[dict]] = (None, None)

    # -- crash / churn ---------------------------------------------------

    def crashes_for_round(self, rnd: int, engine) -> dict[int, Optional[int]]:
        return self._crashes_by_round.get(rnd, {})

    def rejoins_for_round(self, rnd: int) -> frozenset[int]:
        return self._rejoins_by_round.get(rnd, frozenset())

    def rejoin_pids(self) -> frozenset[int]:
        return frozenset(self._rejoin_round)

    def next_rejoin(self, pid: int, rnd: int) -> Optional[int]:
        rejoin = self._rejoin_round.get(pid)
        if rejoin is not None and rejoin > rnd:
            return rejoin
        return None

    def next_event_round(self, rnd: int) -> Optional[int]:
        for event in self._event_rounds:
            if event > rnd:
                return event
        return None

    def total_budget(self) -> int:
        return self.scenario.fault_budget()

    # -- link faults -----------------------------------------------------

    def blocked_links(self, rnd: int) -> Optional[dict[int, frozenset[int]]]:
        if rnd not in self._link_fault_rounds:
            return None
        memo_round, memo_mask = self._blocked_memo
        if memo_round == rnd:
            return memo_mask
        blocked: dict[int, set[int]] = {}
        for src, dst in self._omissions_by_round.get(rnd, ()):
            blocked.setdefault(src, set()).add(dst)
        n = self.scenario.n
        for spec in self.scenario.partitions:
            if not spec.start <= rnd < spec.stop:
                continue
            listed = {pid for group in spec.groups for pid in group}
            remainder = tuple(pid for pid in range(n) if pid not in listed)
            groups = list(spec.groups)
            if remainder:
                groups.append(remainder)
            all_pids = {pid for group in groups for pid in group}
            for group in groups:
                others = all_pids - set(group)
                if not others:
                    continue
                for pid in group:
                    blocked.setdefault(pid, set()).update(others)
        mask = {src: frozenset(dsts) for src, dsts in blocked.items()}
        self._blocked_memo = (rnd, mask)
        return mask


def scenario_schedule(
    n: int,
    *,
    seed: int = 0,
    rng: Optional[random.Random] = None,
    crashes: int = 0,
    omission_links: int = 0,
    partition_windows: int = 0,
    churn_nodes: int = 0,
    max_round: int = 32,
    partial: bool = True,
    groups: int = 2,
    victims: Optional[Sequence[int]] = None,
    name: str = "",
) -> Scenario:
    """Generate a random :class:`Scenario` deterministically from a seed.

    The counterpart of :func:`~repro.sim.adversary.crash_schedule` for
    the extended fault classes: all randomness comes from ``rng`` or a
    fresh ``random.Random(seed)``; the module-level ``random`` state is
    never touched, so the result is a pure function of the arguments
    (which keeps sweep rows byte-identical across worker counts and
    makes hypothesis-generated scenarios reproducible from their draw).

    Parameters
    ----------
    crashes:
        Plain crash events: distinct victims, uniform rounds in
        ``[0, max_round)``, random partial-send budgets when ``partial``.
    omission_links:
        Directed links to afflict; each gets a contiguous window of 1-4
        rounds within ``[0, max_round)`` during which it drops.
    partition_windows:
        Transient partitions; each spans 1-4 rounds and splits the nodes
        into ``groups`` near-equal random groups.
    churn_nodes:
        Crash-and-rejoin nodes (distinct from the crash victims); the
        downtime is 1-6 rounds, capped at ``max_round``.
    victims:
        Optional pool to draw crash/churn victims from.
    """
    if rng is None:
        rng = random.Random(seed)
    pool = list(victims) if victims is not None else list(range(n))
    if crashes + churn_nodes > len(pool):
        raise ValueError(
            f"cannot pick {crashes + churn_nodes} distinct victims "
            f"from a pool of {len(pool)}"
        )
    chosen = rng.sample(pool, crashes + churn_nodes)
    crash_victims, churn_victims = chosen[:crashes], chosen[crashes:]

    def budget() -> Optional[int]:
        return rng.randrange(0, 4) if partial else None

    crash_events = tuple(
        CrashEvent(pid, rng.randrange(max_round), budget())
        for pid in crash_victims
    )
    churn_specs = []
    for pid in churn_victims:
        crash_round = rng.randrange(max_round)
        rejoin_round = min(crash_round + 1 + rng.randrange(6), max_round)
        rejoin_round = max(rejoin_round, crash_round + 1)
        churn_specs.append(ChurnSpec(pid, crash_round, rejoin_round, budget()))
    omission_specs = []
    for _ in range(omission_links):
        src, dst = rng.sample(range(n), 2)
        start = rng.randrange(max_round)
        span = 1 + rng.randrange(4)
        rounds = tuple(range(start, min(start + span, max_round)))
        omission_specs.append(OmissionSpec(src, dst, rounds))
    partition_specs = []
    for _ in range(partition_windows):
        start = rng.randrange(max_round)
        stop = min(start + 1 + rng.randrange(4), max_round + 1)
        order = list(range(n))
        rng.shuffle(order)
        count = max(2, min(groups, n))
        chunk = max(1, n // count)
        split = tuple(
            tuple(sorted(order[i * chunk : (i + 1) * chunk]))
            for i in range(count - 1)
        )
        # The remainder group is implicit (everything not listed).
        partition_specs.append(PartitionSpec(start, stop, split))
    return Scenario(
        n=n,
        name=name or f"seeded-{seed}",
        crashes=crash_events,
        omissions=tuple(omission_specs),
        partitions=tuple(partition_specs),
        churn=tuple(churn_specs),
    )
