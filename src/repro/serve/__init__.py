"""``repro.serve`` -- consensus-as-a-service: the multi-instance run-server.

A long-lived asyncio service that executes many protocol instances
*concurrently* over one shared transport.  Every layer below it is
session-multiplexed (see :mod:`repro.net`): frames carry an instance
tag, hubs route by ``(instance, address)``, one TCP connection hosts
any number of per-instance endpoints, and frame batching coalesces the
round traffic of all concurrently advancing sessions into shared wire
writes.  The server adds the service surface:

* :class:`~repro.serve.server.RunServer` -- owns the hub, accepts
  recipe submissions (``submit(recipe) -> run_id``), advances one
  :class:`~repro.net.runtime.Session` per run, and optionally shards
  node hosting across spawned worker processes.
* :class:`~repro.serve.client.ServeClient` -- the TCP submit/stream
  client: submit recipes, stream per-round progress, fetch results.
* :func:`~repro.serve.server.run_many` -- synchronous batch facade.
* ``repro-bench serve`` / :mod:`repro.serve.loadgen` -- the load
  generator measuring instances/sec and completion-latency tails under
  steady, churn-scenario and burst load (``BENCH_serve.json``).
* ``python -m repro.serve`` -- a standalone server process.

Every per-run result is ``check_parity``-identical to
``run_recipe(recipe, backend="sim")`` with the same execution
arguments: sessions reuse the parity-certified net runtime and the
``run_*`` entry points' own fault-schedule derivation
(:func:`repro.api.prepare_recipe`), so the service inherits the
repository's differential-testing wall instead of needing its own
notion of correctness.
"""

from repro.serve.client import ServeClient
from repro.serve.server import RunServer, run_many

__all__ = ["RunServer", "ServeClient", "run_many"]
