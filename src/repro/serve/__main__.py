"""Standalone run-server process: ``python -m repro.serve``.

Boots a :class:`~repro.serve.server.RunServer`, prints the client-API
endpoint, and serves until interrupted.  Clients connect with
:class:`~repro.serve.client.ServeClient` (or any speaker of the
length-prefixed pickle message protocol in :mod:`repro.serve.wire`).
"""

from __future__ import annotations

import argparse
import asyncio
import sys
from typing import Optional

from repro.serve.server import RunServer


def _parse_args(argv: Optional[list] = None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Long-lived multi-instance protocol run-server.",
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument(
        "--port", type=int, default=7340, help="client API port (0 = ephemeral)"
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=0,
        help="shard sessions across N worker processes (0 = in-process)",
    )
    parser.add_argument(
        "--no-batching",
        dest="batching",
        action="store_false",
        help="disable transport frame batching (diagnostic)",
    )
    return parser.parse_args(argv)


async def _serve(args: argparse.Namespace) -> int:
    server = RunServer(
        transport="tcp",
        workers=args.workers,
        batching=args.batching,
        session_timeout=None,
    )
    await server.start()
    port = await server.listen(args.host, args.port)
    print(
        f"repro run-server on {args.host}:{port} "
        f"(workers={args.workers}, batching={args.batching})",
        flush=True,
    )
    try:
        await asyncio.Event().wait()
    except asyncio.CancelledError:
        pass
    finally:
        await server.close()
    return 0


def main(argv: Optional[list] = None) -> int:
    try:
        return asyncio.run(_serve(_parse_args(argv)))
    except KeyboardInterrupt:
        return 0


if __name__ == "__main__":
    sys.exit(main())
