"""Async client for the run-server's submit/stream API.

One :class:`ServeClient` is one TCP connection; a background reader
task demultiplexes server messages to the pending request futures and
watch queues, so any number of submissions and watches can be in
flight at once.

    client = await ServeClient.connect(host, port)
    run_id = await client.submit({"name": "flooding", ...})
    updates = client.watch(run_id)          # asyncio.Queue of updates
    result = await client.result(run_id)    # the full RunResult
"""

from __future__ import annotations

import asyncio
import itertools
from typing import Any, Optional

from repro.serve.wire import read_msg, send_msg

__all__ = ["ServeClient"]


class ServeClient:
    """One connection to a :class:`~repro.serve.server.RunServer`."""

    def __init__(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter):
        self._reader = reader
        self._writer = writer
        self._tokens = itertools.count()
        self._submits: dict[int, asyncio.Future] = {}
        self._results: dict[str, asyncio.Future] = {}
        self._status: list[asyncio.Future] = []
        self._watches: dict[str, asyncio.Queue] = {}
        self._closed = False
        self._reader_task = asyncio.create_task(self._read_loop())

    @classmethod
    async def connect(
        cls, host: str, port: int, *, deadline: float = 10.0
    ) -> "ServeClient":
        loop = asyncio.get_running_loop()
        give_up = loop.time() + deadline
        while True:
            try:
                reader, writer = await asyncio.open_connection(host, port)
                return cls(reader, writer)
            except OSError:
                if loop.time() >= give_up:
                    raise
                await asyncio.sleep(0.05)

    async def _read_loop(self) -> None:
        error: Optional[BaseException] = None
        try:
            while True:
                msg = await read_msg(self._reader, peer="run-server")
                kind = msg[0]
                if kind == "accepted":
                    _, token, run_id = msg
                    fut = self._submits.pop(token, None)
                    if fut is not None and not fut.done():
                        fut.set_result(run_id)
                elif kind == "result":
                    _, run_id, result = msg
                    fut = self._results.pop(run_id, None)
                    if fut is not None and not fut.done():
                        fut.set_result(result)
                elif kind in ("update", "done"):
                    _, run_id, info = msg
                    queue = self._watches.get(run_id)
                    if queue is not None:
                        queue.put_nowait((kind, info))
                elif kind == "status":
                    if self._status:
                        fut = self._status.pop(0)
                        if not fut.done():
                            fut.set_result(msg[1])
                elif kind == "error":
                    _, token, text = msg
                    exc = RuntimeError(f"run-server error: {text}")
                    fut = self._submits.pop(token, None) or self._results.pop(
                        token, None
                    )
                    if fut is not None and not fut.done():
                        fut.set_exception(exc)
        except (asyncio.IncompleteReadError, ConnectionError):
            error = ConnectionResetError("run-server connection closed")
        except asyncio.CancelledError:
            error = ConnectionResetError("client closed")
        except Exception as exc:
            error = exc
        finally:
            for fut in (
                list(self._submits.values())
                + list(self._results.values())
                + self._status
            ):
                if not fut.done():
                    fut.set_exception(error or ConnectionResetError())
            for queue in self._watches.values():
                queue.put_nowait(("closed", None))

    async def _send(self, msg: tuple) -> None:
        send_msg(self._writer, msg)
        await self._writer.drain()

    async def submit(
        self, protocol: dict, execution: Optional[dict] = None
    ) -> str:
        """Submit one recipe; returns the server-assigned ``run_id``."""
        token = next(self._tokens)
        fut: asyncio.Future = asyncio.get_running_loop().create_future()
        self._submits[token] = fut
        await self._send(("submit", token, protocol, dict(execution or {})))
        return await fut

    def watch(self, run_id: str) -> asyncio.Queue:
        """Subscribe to a run's progress; returns a queue of
        ``("update" | "done" | "closed", info)`` pairs."""
        queue = self._watches.get(run_id)
        if queue is None:
            queue = self._watches[run_id] = asyncio.Queue()
            asyncio.ensure_future(self._send(("watch", run_id)))
        return queue

    async def result(self, run_id: str) -> Any:
        """Await a run's completion; returns its ``RunResult``."""
        fut = self._results.get(run_id)
        if fut is None:
            fut = asyncio.get_running_loop().create_future()
            self._results[run_id] = fut
            await self._send(("result", run_id))
        return await fut

    async def status(self) -> dict:
        """Fetch the server's gauges (active/peak/completed counts)."""
        fut: asyncio.Future = asyncio.get_running_loop().create_future()
        self._status.append(fut)
        await self._send(("status",))
        return await fut

    async def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._reader_task.cancel()
        try:
            await self._reader_task
        except asyncio.CancelledError:
            pass
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass
