"""Load generator for the run-server: ``repro-bench serve``.

Boots a :class:`~repro.serve.server.RunServer` over loopback TCP,
drives it through the public :class:`~repro.serve.client.ServeClient`
submit/stream API, and measures the service under three load shapes:

* ``steady`` -- a bounded-concurrency stream of mixed recipes
  (flooding + gossip), the sustained-throughput arm;
* ``churn`` -- every submission carries a crash+rejoin
  :class:`~repro.scenarios.Scenario`, so sessions exercise the REJOIN
  barrier leg while multiplexed (the tail-latency-under-churn arm);
* ``burst-1000`` -- all instances submitted at once with no
  concurrency cap, pinning the acceptance floor of >=1000 concurrent
  protocol instances on one hub.

Each row records instances/sec, p50/p99 completion latency (measured
from submit to the ``done`` stream event, per run), the server's
``peak_concurrent`` gauge, and ``parity_checked`` -- a sample of runs
whose served metrics are re-checked ``check_parity``-identical to
``run_recipe(backend="sim")`` with the same execution arguments.

Writes ``BENCH_serve.json`` (validated by
``tests/test_bench_artifacts.py``)::

    repro-bench serve                 # -> BENCH_serve.json
    repro-bench serve --quick         # small arms, print only
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import time
from datetime import date
from pathlib import Path
from typing import Optional

from repro.api import run_recipe
from repro.check import check_parity
from repro.scenarios import Scenario
from repro.serve.client import ServeClient
from repro.serve.server import RunServer

__all__ = ["SCHEMA", "main", "run_arm"]

SCHEMA = "repro-bench-serve/1"

#: How many completed runs per arm get a full differential check
#: against the simulator (enough to catch systematic divergence
#: without re-running the whole arm serially).
PARITY_SAMPLE = 8


def _recipe(arm: str, i: int) -> tuple[dict, dict]:
    """The i-th (protocol, execution) pair for an arm.

    Deterministic in ``i`` so the parity re-check can reproduce the
    exact run on the simulator.
    """
    if arm == "churn":
        # One crashed node plus one down-then-rejoin node per session;
        # the rejoin lands before the flooding halt round so the run
        # still terminates (a later rejoin would idle to max_rounds).
        n = 8
        scenario = Scenario(
            n=n,
            crashes=[(1, 1, None)],
            churn=[(2, 1, 3, None)],
        )
        protocol = {
            "name": "flooding",
            "inputs": [(i + j) % 2 for j in range(n)],
            "t": 3,
        }
        return protocol, {"scenario": scenario.to_dict(), "seed": i}
    if i % 3 == 2 and arm == "steady":
        # Mix in a second family so the arm is not one code path.
        rumors = [f"r{i}-{j}" for j in range(6)]
        return {"name": "gossip", "rumors": rumors, "t": 1}, {
            "crashes": None,
            "seed": i,
        }
    n = 4
    protocol = {
        "name": "flooding",
        "inputs": [(i + j) % 2 for j in range(n)],
        "t": 1,
    }
    return protocol, {"crashes": "early", "seed": i}


def _percentile(sorted_values: list, q: float) -> float:
    if not sorted_values:
        return 0.0
    idx = min(len(sorted_values) - 1, int(q * (len(sorted_values) - 1) + 0.5))
    return sorted_values[idx]


async def _drive(
    arm: str,
    count: int,
    *,
    workers: int,
    concurrency: Optional[int],
) -> dict:
    # The burst arm completes ~all instances at once, so the per-client
    # stream queue needs room for one result per in-flight run -- at
    # the default bound the server's slow-consumer guard would (by
    # design) drop the connection mid-burst.
    server = RunServer(
        transport="tcp",
        workers=workers,
        session_timeout=None,
        stream_queue=max(256, count + 64),
    )
    await server.start()
    port = await server.listen("127.0.0.1", 0)
    client = await ServeClient.connect("127.0.0.1", port)
    latencies: list = []
    failed = 0
    gate = asyncio.Semaphore(concurrency) if concurrency else None
    started = time.perf_counter()

    async def one(i: int) -> None:
        nonlocal failed
        if gate is not None:
            await gate.acquire()
        try:
            protocol, execution = _recipe(arm, i)
            t0 = time.perf_counter()
            run_id = await client.submit(protocol, execution)
            result = await client.result(run_id)
            latencies.append(time.perf_counter() - t0)
            if not result.completed:
                failed += 1
        except Exception:
            failed += 1
        finally:
            if gate is not None:
                gate.release()

    await asyncio.gather(*(one(i) for i in range(count)))
    elapsed = time.perf_counter() - started
    status = await client.status()

    # Differential spot-check: a sample of runs must be metric-identical
    # to the simulator executing the same recipe + execution arguments.
    parity_checked = 0
    step = max(1, count // PARITY_SAMPLE)
    for i in range(0, count, step):
        protocol, execution = _recipe(arm, i)
        run_id = await client.submit(protocol, execution)
        served = await client.result(run_id)
        direct_exec = dict(execution)
        if isinstance(direct_exec.get("scenario"), dict):
            direct_exec["scenario"] = Scenario.from_dict(direct_exec["scenario"])
        direct = run_recipe(protocol, backend="sim", **direct_exec)
        check_parity(served, direct)
        parity_checked += 1

    await client.close()
    await server.close()
    latencies.sort()
    return {
        "arm": arm,
        "instances": count,
        "workers": workers,
        "concurrency": concurrency,
        "instances_per_sec": round(count / max(elapsed, 1e-9), 1),
        "p50_latency_ms": round(_percentile(latencies, 0.50) * 1000, 2),
        "p99_latency_ms": round(_percentile(latencies, 0.99) * 1000, 2),
        "peak_concurrent": status["peak_concurrent"],
        "completed": len(latencies) - failed,
        "failed": failed,
        "parity_checked": parity_checked,
        "elapsed_sec": round(elapsed, 3),
    }


def run_arm(
    arm: str,
    count: int,
    *,
    workers: int = 0,
    concurrency: Optional[int] = None,
) -> dict:
    """Run one load shape and return its artifact row."""
    return asyncio.run(_drive(arm, count, workers=workers, concurrency=concurrency))


def run_grid(quick: bool = False) -> list:
    if quick:
        return [
            run_arm("steady", 40, concurrency=20),
            run_arm("churn", 20, concurrency=10),
            run_arm("burst-1000", 100),
        ]
    return [
        run_arm("steady", 400, concurrency=100),
        run_arm("churn", 200, concurrency=100),
        run_arm("burst-1000", 1000),
    ]


def headline(rows: list) -> str:
    by_arm = {row["arm"]: row for row in rows}
    burst = by_arm["burst-1000"]
    churn = by_arm["churn"]
    return (
        f"{burst['peak_concurrent']} concurrent instances on one hub at "
        f"{burst['instances_per_sec']:.0f} inst/s; churn arm p50/p99 "
        f"{churn['p50_latency_ms']:.0f}/{churn['p99_latency_ms']:.0f} ms, "
        f"{sum(r['parity_checked'] for r in rows)} runs parity-checked "
        f"vs the simulator"
    )


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-bench serve", description=__doc__
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=Path.cwd() / "BENCH_serve.json",
        help="artifact path (default: ./BENCH_serve.json)",
    )
    parser.add_argument(
        "--quick", action="store_true", help="small arms, print only"
    )
    args = parser.parse_args(argv)

    rows = run_grid(quick=args.quick)
    artifact = {
        "schema": SCHEMA,
        "generated": date.today().isoformat(),
        "command": "repro-bench serve" + (" --quick" if args.quick else ""),
        "python": sys.version.split()[0],
        "headline": headline(rows),
        "rows": rows,
    }
    if args.quick:
        json.dump(artifact, sys.stdout, indent=2)
        print()
    else:
        args.out.write_text(json.dumps(artifact, indent=2) + "\n")
        print(f"wrote {args.out}")
    print(artifact["headline"])
    return 0


if __name__ == "__main__":
    sys.exit(main())
