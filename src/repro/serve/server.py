"""The long-lived run-server: many protocol instances, one transport.

:class:`RunServer` owns one hub and advances any number of
:class:`~repro.net.runtime.Session` coordinators concurrently on its
event loop.  Each submitted recipe becomes one session: a fresh
instance id, a coordinator endpoint and ``n`` node endpoints -- all
virtual endpoints multiplexed over shared hub connections
(:class:`~repro.net.transport.TCPMux`), so a thousand concurrent
instances cost a handful of sockets, and the transport's frame
batching coalesces their simultaneous round traffic into shared wire
writes.

Node placement: with ``workers=0`` every session's node tasks run in
the server process (still through the hub -- real frames, real
routing); with ``workers=k`` whole sessions are sharded round-robin
across ``k`` spawned worker processes via the control channel in
:mod:`repro.serve.worker`.  Either way the per-session result is
``check_parity``-identical to ``run_recipe(protocol, backend="sim")``
with the same execution arguments: sessions replicate the entry
points' fault-schedule and round-bound defaults through
:func:`repro.api.prepare_recipe`, and the barrier itself is the
parity-certified net runtime.

Clients: :meth:`RunServer.listen` opens the submit/stream TCP API
(:mod:`repro.serve.client` speaks it).  Each client connection's
outbound stream is a *bounded* queue drained by a writer task; a
client that stops reading (a stalled watcher) never blocks a session
-- round updates are fire-and-forget -- and at the bound the
connection is dropped with an error naming the laggard and the run it
was watching (``last_client_error``).

The synchronous convenience :func:`run_many` boots a private server,
submits a batch, and returns the results in order.
"""

from __future__ import annotations

import asyncio
import multiprocessing
import pickle
import sys
from dataclasses import replace
from typing import Any, Optional, Sequence

from repro.api import PreparedRun, prepare_recipe
from repro.net.runtime import NetRuntimeError, Session, run_node
from repro.net.transport import MemoryHub, TCPHub, open_mux
from repro.serve import worker as worker_mod
from repro.serve.wire import read_msg, send_msg
from repro.sim.engine import RunResult

__all__ = ["RunServer", "run_many"]

#: Execution parameters a submission may carry -- the subset of the
#: ``run_*`` surface that is meaningful for a remote run (no traces,
#: no telemetry recorders, no backend choice: the server *is* the
#: backend).
EXECUTION_KEYS = frozenset(
    {"crashes", "seed", "scenario", "max_rounds", "fast_forward"}
)


class _Run:
    """Book-keeping for one submitted recipe."""

    __slots__ = (
        "run_id",
        "instance",
        "protocol",
        "execution",
        "prepared",
        "done",
        "result",
        "error",
        "watchers",
        "rounds_seen",
    )

    def __init__(
        self,
        run_id: str,
        instance: int,
        protocol: dict,
        execution: dict,
        prepared: PreparedRun,
    ):
        self.run_id = run_id
        self.instance = instance
        self.protocol = protocol
        self.execution = execution
        self.prepared = prepared
        self.done = asyncio.Event()
        self.result: Optional[RunResult] = None
        self.error: Optional[BaseException] = None
        #: deliver callables ``(message) -> None``; fire-and-forget, so
        #: a slow subscriber can never stall the session
        self.watchers: list[Any] = []
        self.rounds_seen = 0


class RunServer:
    """A long-lived multi-instance protocol runner.

    Parameters
    ----------
    transport:
        ``"tcp"`` (default) routes every session through a real
        :class:`~repro.net.transport.TCPHub` on ``host``/``port``;
        ``"memory"`` uses the in-process hub (no sockets, no workers --
        the doctest- and unit-test-friendly shape).
    workers:
        Number of node-hosting worker OS processes (TCP only).  ``0``
        hosts all node tasks in the server process.
    batching:
        Toggle transport frame batching (on by default; the off
        position exists for benchmarks).
    session_timeout:
        Per-barrier-wait timeout for each session (``None`` disables).
        Under heavy multiplexing a healthy session's barrier can wait
        a while for loop time; raise this before suspecting a hang.
    stream_queue:
        Bound of each client connection's outbound message queue (the
        slow-consumer guard).
    """

    def __init__(
        self,
        *,
        transport: str = "tcp",
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 0,
        batching: bool = True,
        session_timeout: Optional[float] = 120.0,
        stream_queue: int = 256,
        max_queue_frames: int = 1_000_000,
    ):
        if transport not in ("tcp", "memory"):
            raise ValueError(f"unknown transport {transport!r}")
        if workers and transport != "tcp":
            raise ValueError("worker processes require the tcp transport")
        self.transport = transport
        self.host = host
        self.port = port
        self.workers = workers
        self.batching = batching
        self.session_timeout = session_timeout
        self.stream_queue = stream_queue
        self.max_queue_frames = max_queue_frames
        self.hub: Any = None
        #: last dropped-client diagnostic (stalled stream, protocol
        #: error); names the peer and, for stalls, the run involved
        self.last_client_error: Optional[str] = None
        self._mux: Any = None
        self._ctrl: Any = None
        self._worker_procs: list[Any] = []
        self._ctrl_task: Optional[asyncio.Task] = None
        self._listener: Optional[asyncio.base_events.Server] = None
        self._client_tasks: set[asyncio.Task] = set()
        self._runs: dict[str, _Run] = {}
        self._tasks: dict[str, asyncio.Task] = {}
        self._next_instance = 1  # instance 0 is the worker-control channel
        self._active = 0
        self._peak_concurrent = 0
        self._submitted = 0
        self._completed = 0
        self._failed = 0

    # -- lifecycle --------------------------------------------------------

    async def start(self) -> "RunServer":
        """Start the hub (and workers, if any); returns ``self``."""
        if self.transport == "memory":
            self.hub = MemoryHub()
            return self
        self.hub = TCPHub(
            self.host,
            self.port,
            batching=self.batching,
            max_queue_frames=self.max_queue_frames,
        )
        await self.hub.start()
        self.port = self.hub.port
        self._mux = await open_mux(
            self.host, self.port, batching=self.batching
        )
        if self.workers:
            self._ctrl = self._mux.endpoint(
                worker_mod.SERVER_ADDR, worker_mod.CONTROL_INSTANCE
            )
            ctx = multiprocessing.get_context("spawn")
            for index in range(self.workers):
                proc = ctx.Process(
                    target=worker_mod.worker_main,
                    args=(self.host, self.port, index, self.batching),
                    daemon=True,
                )
                proc.start()
                self._worker_procs.append(proc)
            pending = set(range(self.workers))
            while pending:
                _src, msg = await asyncio.wait_for(self._ctrl.recv(), 30.0)
                if msg[0] == "ready":
                    pending.discard(msg[1])
        return self

    async def listen(self, host: str = "127.0.0.1", port: int = 0) -> int:
        """Open the client submit/stream API; returns the bound port."""
        self._listener = await asyncio.start_server(
            self._handle_client, host, port
        )
        return self._listener.sockets[0].getsockname()[1]

    async def close(self) -> None:
        """Stop accepting, cancel in-flight sessions, stop workers/hub."""
        if self._listener is not None:
            self._listener.close()
            await self._listener.wait_closed()
        for task in list(self._client_tasks):
            task.cancel()
        await asyncio.gather(*self._client_tasks, return_exceptions=True)
        for task in list(self._tasks.values()):
            task.cancel()
        await asyncio.gather(*self._tasks.values(), return_exceptions=True)
        if self._ctrl is not None:
            for index in range(self.workers):
                try:
                    await self._ctrl.send(
                        worker_mod.worker_addr(index), ("shutdown",)
                    )
                except ConnectionError:
                    pass
            if self._mux is not None:
                await self._mux.flush()
        if self._mux is not None:
            await self._mux.close()
        for proc in self._worker_procs:
            proc.join(timeout=10)
            if proc.is_alive():
                proc.terminate()
        if self.transport == "tcp" and self.hub is not None:
            await self.hub.close()

    # -- submission and execution -----------------------------------------

    async def submit(
        self, protocol: dict, execution: Optional[dict] = None
    ) -> str:
        """Accept one recipe; returns its ``run_id`` immediately.

        ``protocol`` is a :func:`repro.api.run_recipe` recipe dict;
        ``execution`` the optional fault/bound parameters
        (:data:`EXECUTION_KEYS`).  Validation (unknown keys, recipe
        constraint violations) raises here, before a session exists.
        """
        execution = dict(execution or {})
        unknown = set(execution) - EXECUTION_KEYS
        if unknown:
            raise ValueError(
                f"unknown execution keys {sorted(unknown)}; the server "
                f"accepts {sorted(EXECUTION_KEYS)}"
            )
        prepared = prepare_recipe(protocol, **execution)
        instance = self._next_instance
        self._next_instance += 1
        run_id = f"run-{instance:06d}"
        run = _Run(run_id, instance, dict(protocol), execution, prepared)
        self._runs[run_id] = run
        self._submitted += 1
        self._active += 1
        self._peak_concurrent = max(self._peak_concurrent, self._active)
        task = asyncio.create_task(self._drive(run))
        self._tasks[run_id] = task
        task.add_done_callback(lambda _t: self._tasks.pop(run_id, None))
        return run_id

    async def result(self, run_id: str) -> RunResult:
        """Await a run's completion and return its result (raising the
        session's failure, if it failed)."""
        run = self._run(run_id)
        await run.done.wait()
        if run.error is not None:
            raise run.error
        return run.result

    def watch(self, run_id: str, deliver: Any) -> None:
        """Subscribe ``deliver(message)`` to a run's progress stream.

        Messages are ``("update", run_id, info)`` per completed round
        and one final ``("done", run_id, info)``; a run already done
        delivers ``("done", ...)`` immediately.  ``deliver`` must not
        block -- it is called from the session's round loop.
        """
        run = self._run(run_id)
        if run.done.is_set():
            deliver(("done", run_id, self._final_info(run)))
            return
        run.watchers.append(deliver)

    def status(self) -> dict:
        """Server-level gauges (the load generator samples these)."""
        return {
            "transport": self.transport,
            "workers": self.workers,
            "batching": self.batching,
            "active": self._active,
            "peak_concurrent": self._peak_concurrent,
            "submitted": self._submitted,
            "completed": self._completed,
            "failed": self._failed,
        }

    def _run(self, run_id: str) -> _Run:
        run = self._runs.get(run_id)
        if run is None:
            raise KeyError(f"unknown run_id {run_id!r}")
        return run

    def _endpoint(self, address: int, instance: int) -> Any:
        if self.transport == "memory":
            return self.hub.endpoint(address, instance)
        return self._mux.endpoint(address, instance)

    async def _drive(self, run: _Run) -> None:
        prepared = run.prepared
        instance = run.instance
        n = prepared.n
        session = Session(
            n,
            prepared.adversary,
            byzantine=prepared.byzantine,
            max_rounds=prepared.max_rounds,
            fast_forward=prepared.fast_forward,
            timeout=self.session_timeout,
            instance=instance,
        )
        session.on_round = lambda s, rnd: self._on_round(run, s, rnd)
        churn_pids = prepared.adversary.rejoin_pids()
        coordinator = self._endpoint(n, instance)
        node_tasks: list[asyncio.Task] = []
        try:
            if self.workers:
                index = instance % self.workers
                await self._ctrl.send(
                    worker_mod.worker_addr(index),
                    ("host", instance, run.protocol, sorted(churn_pids)),
                )
            else:
                node_tasks = [
                    asyncio.create_task(
                        run_node(
                            proc,
                            self._endpoint(proc.pid, instance),
                            n,
                            churn=proc.pid in churn_pids,
                        )
                    )
                    for proc in prepared.processes
                ]
            result = await session.run(coordinator)
            if not self.workers:
                await asyncio.gather(*node_tasks)
                result.processes = list(prepared.processes)
            run.result = result
            self._completed += 1
        except asyncio.CancelledError:
            run.error = NetRuntimeError(f"{run.run_id} cancelled at shutdown")
            raise
        except Exception as exc:
            run.error = exc
            self._failed += 1
        finally:
            self._active -= 1
            for task in node_tasks:
                if not task.done():
                    task.cancel()
            await asyncio.gather(*node_tasks, return_exceptions=True)
            try:
                await coordinator.close()
            except ConnectionError:
                pass
            # The hub's per-(instance, pid) routing state is garbage
            # once the session ends; a long-lived server must not
            # accumulate it across thousands of runs.
            self.hub.purge_instance(instance)
            run.done.set()
            self._publish(run, ("done", run.run_id, self._final_info(run)))
            run.watchers.clear()

    def _on_round(self, run: _Run, session: Session, rnd: int) -> None:
        run.rounds_seen += 1
        if run.watchers:
            info = {
                "round": rnd,
                "messages": session.metrics.messages,
                "bits": session.metrics.bits,
                "crashed": len(session.crashed),
            }
            self._publish(run, ("update", run.run_id, info))

    def _final_info(self, run: _Run) -> dict:
        if run.error is not None:
            return {"ok": False, "error": str(run.error)}
        metrics = run.result.metrics
        return {
            "ok": True,
            "completed": run.result.completed,
            "rounds": metrics.rounds,
            "messages": metrics.messages,
            "bits": metrics.bits,
        }

    def _publish(self, run: _Run, message: tuple) -> None:
        for deliver in list(run.watchers):
            deliver(message)

    # -- client API --------------------------------------------------------

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        self._client_tasks.add(task)
        task.add_done_callback(self._client_tasks.discard)
        peer = f"client {writer.get_extra_info('peername')}"
        conn = _ClientConn(self, writer, peer, self.stream_queue)
        try:
            while True:
                msg = await read_msg(reader, peer=peer)
                kind = msg[0]
                if kind == "submit":
                    _, token, protocol, execution = msg
                    try:
                        run_id = await self.submit(protocol, execution)
                        conn.push(("accepted", token, run_id))
                    except Exception as exc:
                        conn.push(("error", token, f"{type(exc).__name__}: {exc}"))
                elif kind == "watch":
                    _, run_id = msg
                    try:
                        self.watch(
                            run_id,
                            lambda m, _c=conn, _r=run_id: _c.push(m, run=_r),
                        )
                    except KeyError as exc:
                        conn.push(("error", run_id, str(exc)))
                elif kind == "result":
                    _, run_id = msg
                    # Awaiting here would head-of-line-block this
                    # client's later requests behind a long run.
                    asyncio.create_task(self._send_result(conn, run_id))
                elif kind == "status":
                    conn.push(("status", self.status()))
                else:
                    conn.push(("error", None, f"unknown request {kind!r}"))
        except (asyncio.IncompleteReadError, ConnectionError):
            pass
        except asyncio.CancelledError:
            pass  # server shutdown cancels client handlers en masse
        except Exception as exc:
            self.last_client_error = f"{peer}: {exc}"
        finally:
            await conn.aclose()

    async def _send_result(self, conn: "_ClientConn", run_id: str) -> None:
        try:
            result = await self.result(run_id)
            # Live process objects (and attached trace/telemetry) stay
            # server-side: they can hold unpicklable state and are
            # meaningless across the wire.  Metrics, decisions, crash
            # sets and completion -- everything check_parity compares --
            # travel intact.
            conn.push(("result", run_id, replace(result, processes=(), trace=None, telemetry=None)))
        except KeyError as exc:
            conn.push(("error", run_id, str(exc)))
        except Exception as exc:
            conn.push(("error", run_id, f"{type(exc).__name__}: {exc}"))


class _ClientConn:
    """One client connection's bounded outbound stream.

    ``push`` enqueues without blocking (it is called from session round
    loops); the writer task drains to the socket.  Queue overflow means
    the client stopped reading: the connection is killed with a
    diagnostic naming the laggard and the run whose message overflowed,
    and -- crucially -- no session ever waits on it.
    """

    def __init__(
        self, server: RunServer, writer: asyncio.StreamWriter, peer: str, bound: int
    ):
        self.server = server
        self.writer = writer
        self.peer = peer
        self.bound = bound
        self.queue: asyncio.Queue = asyncio.Queue(maxsize=bound)
        self.dead = False
        self._task = asyncio.create_task(self._drain())

    def push(self, message: tuple, run: Optional[str] = None) -> None:
        if self.dead:
            return
        try:
            self.queue.put_nowait(message)
        except asyncio.QueueFull:
            detail = f" while streaming {run}" if run else ""
            self._kill(
                f"{self.peer} stalled{detail}: {self.bound} undelivered "
                "messages (slow consumer) -- dropping the connection so "
                "sessions keep advancing"
            )

    def _kill(self, reason: str) -> None:
        if self.dead:
            return
        self.dead = True
        self.server.last_client_error = reason
        print(f"RunServer: {reason}", file=sys.stderr)
        self._task.cancel()
        self.writer.close()

    async def _drain(self) -> None:
        try:
            while True:
                message = await self.queue.get()
                try:
                    send_msg(self.writer, message)
                except (TypeError, AttributeError, pickle.PicklingError) as exc:
                    # An unserializable payload must not kill the drain
                    # loop silently -- tell the client which response
                    # was dropped and keep the connection alive.
                    ref = message[1] if len(message) > 1 else None
                    send_msg(
                        self.writer,
                        (
                            "error",
                            ref,
                            f"unserializable response "
                            f"{message[0]!r}: {type(exc).__name__}: {exc}",
                        ),
                    )
                await self.writer.drain()
        except (ConnectionError, asyncio.CancelledError):
            pass

    async def aclose(self) -> None:
        self.dead = True
        self._task.cancel()
        try:
            await self._task
        except (asyncio.CancelledError, ConnectionError):
            pass
        self.writer.close()


def run_many(
    recipes: Sequence[dict | tuple[dict, dict]],
    *,
    transport: str = "memory",
    workers: int = 0,
    batching: bool = True,
    session_timeout: Optional[float] = 120.0,
) -> list[RunResult]:
    """Run a batch of recipes concurrently through a private server.

    Each item is a recipe dict or a ``(recipe, execution)`` pair.  All
    sessions are submitted up front and advance concurrently over one
    shared hub; results come back in submission order.  The convenience
    wrapper for tests, docs and scripts -- long-lived deployments use
    :class:`RunServer` directly.

    >>> from repro.serve import run_many
    >>> results = run_many([
    ...     {"name": "flooding", "inputs": [0, 1, 1, 0], "t": 1},
    ...     ({"name": "gossip", "rumors": list(range(12)), "t": 2},
    ...      {"crashes": None}),
    ... ])
    >>> [r.completed for r in results]
    [True, True]
    """

    async def _main() -> list[RunResult]:
        server = RunServer(
            transport=transport,
            workers=workers,
            batching=batching,
            session_timeout=session_timeout,
        )
        await server.start()
        try:
            run_ids = []
            for item in recipes:
                if isinstance(item, tuple):
                    protocol, execution = item
                else:
                    protocol, execution = item, None
                run_ids.append(await server.submit(protocol, execution))
            return [await server.result(run_id) for run_id in run_ids]
        finally:
            await server.close()

    return asyncio.run(_main())
