"""Client-facing wire helpers for the run-server.

The submit/stream API speaks the simplest possible framing -- a ``u32``
length prefix and a pickled tuple -- over one TCP connection per
client.  Like :mod:`repro.net.codec` this is a *trusted-cluster*
protocol: the server and its clients are processes of one experiment,
never untrusted peers.  The same max-frame guard applies: a corrupt
length header fails fast with a named error instead of a gigabyte
``readexactly``.
"""

from __future__ import annotations

import asyncio
import pickle
import struct
from typing import Any

from repro.net.codec import MAX_FRAME_BYTES, check_frame_size

__all__ = ["MSG_HEADER", "read_msg", "send_msg"]

MSG_HEADER = struct.Struct(">I")


def send_msg(writer: asyncio.StreamWriter, obj: Any) -> None:
    """Frame and buffer one message (caller drains)."""
    body = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    writer.write(MSG_HEADER.pack(len(body)) + body)


async def read_msg(
    reader: asyncio.StreamReader,
    *,
    peer: str,
    limit: int = MAX_FRAME_BYTES,
) -> Any:
    """Read one framed message; raises ``IncompleteReadError`` on EOF."""
    header = await reader.readexactly(MSG_HEADER.size)
    (length,) = MSG_HEADER.unpack(header)
    check_frame_size(length, limit=limit, peer=peer, phase="serve message")
    body = await reader.readexactly(length)
    return pickle.loads(body)
