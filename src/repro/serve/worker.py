"""Run-server worker process: hosts node shards for assigned sessions.

A worker is one OS process holding one multiplexed hub connection
(:class:`~repro.net.transport.TCPMux`).  The server assigns it whole
sessions over a control channel (instance ``0`` is reserved for
control traffic; run instances start at ``1``): a ``("host", instance,
protocol, churn_pids)`` command makes the worker rebuild the recipe's
process vector with :func:`repro.api.build_recipe_processes` -- which
is deterministic, so the worker's processes are identical to what the
server (or the submitting client) would build -- and run one
:func:`~repro.net.runtime.run_node` task per process, each on a
per-``(instance, pid)`` virtual endpoint of the shared connection.

Control addresses on instance ``0``: the server listens at address
``0``; worker ``w`` listens at address ``w + 1``.
"""

from __future__ import annotations

import asyncio
import sys

from repro.api import build_recipe_processes
from repro.net.runtime import run_node
from repro.net.transport import open_mux

__all__ = ["worker_main"]

#: instance reserved for server<->worker control traffic
CONTROL_INSTANCE = 0
#: control address the server listens on
SERVER_ADDR = 0


def worker_addr(index: int) -> int:
    """Control address of worker ``index`` on the control instance."""
    return index + 1


async def _worker(host: str, port: int, index: int, batching: bool) -> None:
    mux = await open_mux(host, port, deadline=30.0, batching=batching)
    ctrl = mux.endpoint(worker_addr(index), CONTROL_INSTANCE)
    hosted: set[asyncio.Task] = set()
    try:
        await ctrl.send(SERVER_ADDR, ("ready", index))
        while True:
            _src, msg = await ctrl.recv()
            kind = msg[0]
            if kind == "host":
                _, instance, protocol, churn_pids = msg
                processes, _horizon, _byz = build_recipe_processes(protocol)
                churn = frozenset(churn_pids)
                for proc in processes:
                    task = asyncio.create_task(
                        run_node(
                            proc,
                            mux.endpoint(proc.pid, instance),
                            proc.n,
                            churn=proc.pid in churn,
                        )
                    )
                    hosted.add(task)
                    task.add_done_callback(hosted.discard)
            elif kind == "shutdown":
                return
            else:
                raise RuntimeError(
                    f"worker {index} received unknown control message {kind!r}"
                )
    finally:
        if hosted:
            # Sessions still in flight when the server shuts down are
            # abandoned; their coordinator is going away too.
            for task in hosted:
                task.cancel()
            await asyncio.gather(*hosted, return_exceptions=True)
        await mux.close()


def worker_main(host: str, port: int, index: int, batching: bool = True) -> None:
    """Entry point for a spawned worker process."""
    try:
        asyncio.run(_worker(host, port, index, batching))
    except (ConnectionError, asyncio.IncompleteReadError):
        # Hub went away (server shutdown race); nothing to clean up.
        pass
    except KeyboardInterrupt:
        pass
    except Exception as exc:  # surface in the parent's captured stderr
        print(f"serve worker {index} died: {exc!r}", file=sys.stderr)
        raise
