"""Synchronous message-passing simulator substrate (paper Section 2).

Public surface:

* :class:`~repro.sim.process.Process`, :class:`~repro.sim.process.Multicast`
  -- the multi-port protocol interface;
* :class:`~repro.sim.engine.Engine`, :class:`~repro.sim.engine.RunResult`
  -- the multi-port lock-step engine;
* :class:`~repro.sim.singleport.SinglePortEngine`,
  :class:`~repro.sim.singleport.SinglePortProcess` -- the Section 8 model;
* :mod:`~repro.sim.adversary` -- crash schedules and Byzantine bases;
* :class:`~repro.sim.metrics.Metrics` -- rounds/messages/bits accounting.
"""

from repro.sim.adversary import (
    ByzantineProcess,
    CrashAdversary,
    CrashSpec,
    NoFailures,
    ScheduledCrashes,
    crash_schedule,
)
from repro.sim.engine import Engine, RunResult
from repro.sim.metrics import Metrics
from repro.sim.process import Multicast, Process, ProtocolError, payload_bits
from repro.sim.singleport import SinglePortEngine, SinglePortProcess, SinglePortResult

__all__ = [
    "ByzantineProcess",
    "CrashAdversary",
    "CrashSpec",
    "Engine",
    "Metrics",
    "Multicast",
    "NoFailures",
    "Process",
    "ProtocolError",
    "RunResult",
    "ScheduledCrashes",
    "SinglePortEngine",
    "SinglePortProcess",
    "SinglePortResult",
    "crash_schedule",
    "payload_bits",
]
