"""Adaptive crash adversaries.

The oblivious schedules in :mod:`repro.sim.adversary` commit to crash
times up front.  The adversaries here decide *during* the execution,
inspecting live engine state -- the strongest adversary the paper's
model admits (crashes are chosen by an adversary constrained only by
the budget ``t``).  They are used by the stress tests and the ablation
benchmarks to probe the overlay-based algorithms where random schedules
cannot: starving one node's overlay neighborhood, beheading the
committee mid-probing, or killing exactly the nodes that just decided.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Optional

from repro.sim.adversary import CrashAdversary

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Engine

__all__ = [
    "CrashDecidersAdversary",
    "NeighborhoodStarver",
    "StaggeredCommitteeAdversary",
]


class NeighborhoodStarver(CrashAdversary):
    """Crashes the overlay neighborhood of one victim at a chosen round.

    The sharpest attack against local probing: if the victim's whole
    neighborhood dies right before the probing window, the victim
    receives zero probe messages and must pause (Proposition 1).  The
    spec requires the *rest* of the system to still meet its
    requirements.
    """

    def __init__(self, neighbors: Iterable[int], at_round: int, budget: int):
        self.victims = list(neighbors)[:budget]
        self.at_round = at_round

    def crashes_for_round(self, rnd: int, engine: "Engine") -> dict[int, Optional[int]]:
        if rnd != self.at_round:
            return {}
        return {pid: 0 for pid in self.victims if engine.operational(pid)}

    def next_event_round(self, rnd: int) -> Optional[int]:
        return self.at_round if rnd < self.at_round else None

    def total_budget(self) -> int:
        return len(self.victims)


class StaggeredCommitteeAdversary(CrashAdversary):
    """One committee crash per round with adversarial partial sends.

    The classical worst case for early-stopping algorithms (one crash
    per round keeps executions maximally ambiguous), focused on the
    little nodes and with ``keep=1`` partial deliveries, which maximises
    information asymmetry.
    """

    def __init__(self, committee_size: int, budget: int, start_round: int = 0):
        self.committee_size = committee_size
        self.budget = budget
        self.start_round = start_round
        self._used = 0

    def crashes_for_round(self, rnd: int, engine: "Engine") -> dict[int, Optional[int]]:
        if rnd < self.start_round or self._used >= self.budget:
            return {}
        victim = None
        for pid in range(self.committee_size):
            if engine.operational(pid) and not engine.processes[pid].halted:
                victim = pid
                break
        if victim is None:
            return {}
        self._used += 1
        return {victim: 1}

    def next_event_round(self, rnd: int) -> Optional[int]:
        if self._used >= self.budget:
            return None
        return max(rnd + 1, self.start_round)

    def total_budget(self) -> int:
        return self.budget


class CrashDecidersAdversary(CrashAdversary):
    """Crashes nodes the moment they decide.

    Targets the decision-spreading parts: a decided node killed before
    it can answer inquiries is the adversary's best lever against
    Part 3 of Many-Crashes-Consensus and Part 2 of Spread-Common-Value.
    Budget permitting, up to ``per_round`` deciders die each round.
    """

    def __init__(self, budget: int, per_round: int = 2, spare: Iterable[int] = ()):
        self.budget = budget
        self.per_round = per_round
        self.spare = set(spare)
        self._used = 0

    def crashes_for_round(self, rnd: int, engine: "Engine") -> dict[int, Optional[int]]:
        if self._used >= self.budget:
            return {}
        chosen: dict[int, Optional[int]] = {}
        for proc in engine.processes:
            if len(chosen) >= self.per_round or self._used + len(chosen) >= self.budget:
                break
            pid = proc.pid
            if pid in self.spare or not engine.operational(pid):
                continue
            if proc.decided and not proc.halted:
                chosen[pid] = 0
        self._used += len(chosen)
        return chosen

    def next_event_round(self, rnd: int) -> Optional[int]:
        return rnd + 1 if self._used < self.budget else None

    def total_budget(self) -> int:
        return self.budget
