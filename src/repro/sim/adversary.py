"""Crash and Byzantine adversaries.

The paper's fault model (Section 2): an adversary crashes at most ``t``
nodes; a node that crashes at a round stops all activity in following
rounds.  Within its crash round a node may manage a *partial send* --
only a subset of the messages it attempted to send are delivered.  This
is the classical synchronous crash model and is what makes flooding-style
arguments non-trivial.

Byzantine nodes (Section 7) are modelled by swapping the node's process
for an arbitrary behaviour; see :class:`ByzantineProcess`.  They are
never "crashed" by a :class:`CrashAdversary` -- the fault budget is
spent by the caller when selecting the Byzantine set.

Beyond the paper's model, :class:`CrashAdversary` also declares the
query surface for the *extended* fault classes of
:mod:`repro.scenarios` -- per-link message omission, transient
partitions (both via :meth:`CrashAdversary.blocked_links`) and churn
(crash + rejoin with state reset, via
:meth:`CrashAdversary.rejoins_for_round`).  The defaults make every
existing adversary a pure-crash adversary, so the engine and the net
runtime can consult the extended surface unconditionally; see
``docs/faults.md`` for the fault-model taxonomy.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Iterable, Mapping, NamedTuple, Optional

from repro.sim.process import Process

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.sim.engine import Engine

__all__ = [
    "ByzantineProcess",
    "CrashAdversary",
    "CrashSpec",
    "NoFailures",
    "ScheduledCrashes",
    "crash_schedule",
]


class CrashSpec(NamedTuple):
    """When and how a node crashes.

    ``keep`` controls the partial send in the crash round: ``None``
    delivers every message the node attempted that round (crash takes
    effect *after* the send phase), while an integer ``k`` delivers only
    the first ``k`` point-to-point messages in the node's send order.
    ``keep=0`` models a node crashing before sending anything that round.
    """

    round: int
    keep: Optional[int] = None


class CrashAdversary:
    """Base class; a no-failure adversary by default.

    Subclasses override :meth:`crashes_for_round` (and, for adaptive
    strategies, may inspect the live engine) and
    :meth:`next_event_round` so the engine's fast-forward does not skip
    over scheduled crashes.
    """

    def crashes_for_round(self, rnd: int, engine: "Engine") -> dict[int, Optional[int]]:
        """Map of pid -> ``keep`` for nodes crashing at round ``rnd``."""
        return {}

    def next_event_round(self, rnd: int) -> Optional[int]:
        """Earliest round after ``rnd`` with a scheduled fault event
        (crash *or* rejoin), if known.

        Consulted by the quiescence fast-forward of both substrates so a
        jump over empty rounds never skips an event.  Link faults
        (:meth:`blocked_links`) need not be reported: they only act on
        messages, and a round in which messages are sent is never
        skipped.  Adaptive adversaries that cannot pre-commit should
        return ``rnd + 1`` to disable fast-forwarding entirely.
        """
        return None

    def total_budget(self) -> int:
        """Number of crashes this adversary may inject (for sanity checks)."""
        return 0

    # -- extended fault classes (repro.scenarios) ------------------------
    #
    # The defaults describe a pure-crash adversary; ScenarioAdversary and
    # TraceAdversary override them.  All four hooks are consulted at the
    # *top* of each round, before the send phase:
    #
    #   1. rejoins_for_round -- crashed nodes scheduled to rejoin come
    #      back (state reset to their pre-``on_start`` snapshot) and
    #      participate in this round's send phase;
    #   2. crashes_for_round -- the classical crash nomination;
    #   3. blocked_links     -- the per-link delivery mask applied to
    #      this round's (possibly ``keep``-truncated) sends.

    def blocked_links(self, rnd: int) -> Optional[Mapping[int, frozenset[int]]]:
        """``src -> blocked destinations`` for round ``rnd``, or ``None``.

        A message from ``src`` to a blocked destination is *sent but not
        delivered*: it vanishes in transit, is excluded from the
        message/bit totals and tallied in
        :attr:`~repro.sim.metrics.Metrics.dropped_messages`.  ``None``
        (the default, and the common round even under scenarios) lets
        the engine's optimized loop keep its filter-free fast path.
        """
        return None

    def rejoins_for_round(self, rnd: int) -> Iterable[int]:
        """Pids scheduled to rejoin (churn) at round ``rnd``.

        A rejoin applies only to a node that is actually crashed at that
        round; the substrates silently skip pids that halted or never
        crashed.  The rejoined node's state is reset to the snapshot
        taken before ``on_start`` and ``on_start`` runs again, after
        which it participates in round ``rnd``'s send phase.
        """
        return ()

    def rejoin_pids(self) -> frozenset[int]:
        """All pids with a scheduled rejoin, known before the run starts.

        The substrates snapshot exactly these processes' initial state
        (a deep copy taken before ``on_start``), so churn costs nothing
        for pure-crash adversaries.
        """
        return frozenset()

    def next_rejoin(self, pid: int, rnd: int) -> Optional[int]:
        """Earliest round after ``rnd`` at which ``pid`` rejoins, if any.

        The net runtime's coordinator uses this to tell a crashing node
        task whether to keep its connection open and await a rejoin
        instead of exiting.
        """
        return None


class NoFailures(CrashAdversary):
    """The failure-free adversary."""


class ScheduledCrashes(CrashAdversary):
    """An oblivious adversary committed to a fixed crash schedule."""

    def __init__(self, schedule: dict[int, CrashSpec]):
        self.schedule = dict(schedule)
        self._by_round: dict[int, dict[int, Optional[int]]] = {}
        for pid, spec in self.schedule.items():
            self._by_round.setdefault(spec.round, {})[pid] = spec.keep
        self._event_rounds = sorted(self._by_round)

    def crashes_for_round(self, rnd: int, engine: "Engine") -> dict[int, Optional[int]]:
        return self._by_round.get(rnd, {})

    def next_event_round(self, rnd: int) -> Optional[int]:
        for event in self._event_rounds:
            if event > rnd:
                return event
        return None

    def total_budget(self) -> int:
        return len(self.schedule)


def crash_schedule(
    n: int,
    t: int,
    *,
    seed: int = 0,
    rng: Optional[random.Random] = None,
    kind: str = "random",
    max_round: int = 64,
    partial: bool = True,
    victims: Optional[Iterable[int]] = None,
) -> ScheduledCrashes:
    """Build a :class:`ScheduledCrashes` adversary for ``t`` crashes.

    Randomness is drawn exclusively from ``rng`` (an explicit
    ``random.Random`` instance) or, when ``rng`` is ``None``, from a
    fresh ``random.Random(seed)``.  The module-level ``random`` state is
    never touched on any code path, so schedules are a pure function of
    their arguments -- which is what keeps sweep rows byte-identical
    across ``--jobs`` worker counts and lets the net runtime replay the
    exact crash set the simulator saw.

    Parameters
    ----------
    kind:
        ``"random"`` -- victims and crash rounds uniform over
        ``[0, max_round)``;
        ``"early"`` -- all crashes in round 0 (tests the "crashed before
        sending any message" clauses of gossip/checkpointing);
        ``"late"`` -- all crashes in the last quarter of ``max_round``;
        ``"staggered"`` -- one crash per round starting at round 0, the
        classical worst case for early-stopping consensus.
    partial:
        When true, each crashing node delivers a random prefix of its
        final-round sends (partial send); otherwise crash takes effect
        after a complete send phase.
    victims:
        Optional explicit victim pool to draw from (e.g. little nodes).
    rng:
        Explicit random source; overrides ``seed`` when given.
    """
    if rng is None:
        rng = random.Random(seed)
    pool = list(victims) if victims is not None else list(range(n))
    if t > len(pool):
        raise ValueError(f"cannot crash {t} nodes out of a pool of {len(pool)}")
    chosen = rng.sample(pool, t)
    schedule: dict[int, CrashSpec] = {}
    for index, pid in enumerate(chosen):
        if kind == "random":
            rnd = rng.randrange(max_round)
        elif kind == "early":
            rnd = 0
        elif kind == "late":
            rnd = max(0, max_round - 1 - rng.randrange(max(1, max_round // 4)))
        elif kind == "staggered":
            rnd = min(index, max_round - 1)
        else:
            raise ValueError(f"unknown crash schedule kind {kind!r}")
        # ``keep`` counts point-to-point messages; protocols here send at
        # most a few multicasts per round, so a small random prefix makes
        # genuinely partial deliveries.
        keep = rng.randrange(0, 4) if partial else None
        schedule[pid] = CrashSpec(round=rnd, keep=keep)
    return ScheduledCrashes(schedule)


class ByzantineProcess(Process):
    """Base class for Byzantine behaviours (authenticated model).

    A Byzantine node "may undergo arbitrary state transitions but it
    cannot forge messages claiming that they are forwarded from other
    nodes" -- unforgeability is enforced by the signature substrate
    (:mod:`repro.auth.signatures`): the behaviour only ever holds its own
    signing capability.

    Byzantine processes never halt voluntarily (the engine excludes them
    from the termination condition) and their traffic is excluded from
    the headline message counts.
    """

    is_byzantine = True

    def on_start(self) -> None:  # pragma: no cover - trivial default
        pass
