"""Synchronous multi-port lock-step engine (the model of Section 2).

Round structure
---------------
Each round ``r`` consists of:

1. **rejoin phase** -- crashed nodes whose churn schedule rejoins them
   at ``r`` are reinstated with reset state (see
   :meth:`~repro.sim.adversary.CrashAdversary.rejoins_for_round`);
2. **crash phase** -- the adversary nominates nodes crashing at ``r``;
3. **send phase** -- every operational, non-halted process is asked for
   its outgoing messages; a node crashing this round delivers only the
   prefix of its sends allowed by its :class:`~repro.sim.adversary.CrashSpec`;
   a link filter (:meth:`~repro.sim.adversary.CrashAdversary.blocked_links`,
   omission/partition scenarios) then removes blocked messages in
   transit, tallying them as ``dropped_messages``;
4. **receive phase** -- all surviving messages are delivered ("during a
   round, all messages sent to a node in this round get delivered") and
   every operational, non-halted process consumes its (possibly empty)
   inbox.

Termination: the run ends when every operational non-Byzantine process
has halted **and** no crashed process still has a scheduled churn
rejoin ahead of it (a pending rejoin always fires before the run ends;
one at or beyond ``max_rounds`` exhausts the safety bound instead, so a
scheduled rejoin is never silently skipped).  The round count reported
is the number of rounds that occurred until then, matching the paper's
running-time metric.

Fast-forward
------------
Executions of the paper's algorithms contain long quiescent stretches
(e.g. Part 1 of Many-Crashes-Consensus runs ``n - 1`` rounds but floods
quiesce after the diameter).  When a round delivers no messages, every
process declares its next spontaneous activity via
:meth:`~repro.sim.process.Process.next_activity`, and the engine jumps
directly to the earliest such round (or the next scheduled crash).  This
is purely a simulator-cost optimisation; protocols are written against
absolute round numbers so observable behaviour is identical (covered by
tests comparing fast-forward on/off).

Hot path
--------
The engine carries two interchangeable round-loop implementations:

* the **optimized** path (default) batches metric recording per sender
  per round, shares one ``(src, payload)`` envelope across a
  multicast's recipients, reuses preallocated inbox lists, caches
  :func:`~repro.sim.process.payload_bits` per payload object within a
  round, and walks an incrementally-maintained list of active (neither
  crashed nor halted) processes instead of testing membership per
  process per phase;
* the **reference** path (``Engine(..., optimized=False)``) is the
  original straight-line loop kept as the executable specification.

Both paths produce identical rounds/messages/bits, per-node and
per-round tallies, decisions and crash sets; ``tests/test_engine_parity.py``
pins this for every protocol family.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Any, Optional, Sequence

from repro.obs.recorder import coerce_recorder
from repro.sim.adversary import CrashAdversary, NoFailures
from repro.sim.metrics import Metrics
from repro.sim.process import (
    Multicast,
    Process,
    ProtocolError,
    payload_bits,
    payload_bits_cached,
)

__all__ = [
    "Engine",
    "RunResult",
    "apply_link_filter",
    "check_pid_order",
    "collect_sends",
]


def check_pid_order(processes: Sequence[Process]) -> None:
    """Require ``processes[i].pid == i`` (shared by both substrates)."""
    for index, proc in enumerate(processes):
        if proc.pid != index:
            raise ProtocolError(
                f"process at index {index} has pid {proc.pid}; "
                "processes must be listed in pid order"
            )


def collect_sends(
    proc: Process, rnd: int, keep: Optional[int], n: int
) -> list[tuple[tuple[int, ...], Any]]:
    """Normalise a process's round-``rnd`` sends, applying a partial-send
    budget.

    Returns a list of ``(destinations, payload)`` groups.  ``keep`` (when
    not ``None``) limits the total number of point-to-point messages
    delivered, truncating in the node's own send order -- this realises
    the crash-round partial send.  Shared by :class:`Engine` and the
    :mod:`repro.net` runtime so both substrates truncate identically.
    """
    groups: list[tuple[tuple[int, ...], Any]] = []
    remaining = keep
    for item in proc.send(rnd):
        if remaining is not None and remaining <= 0:
            break
        if isinstance(item, Multicast):
            dsts, payload = item.dsts, item.payload
        else:
            dst, payload = item
            dsts = (dst,)
        for dst in dsts:
            if not (0 <= dst < n):
                raise ProtocolError(
                    f"process {proc.pid} sent to invalid pid {dst}"
                )
        if remaining is not None and len(dsts) > remaining:
            dsts = tuple(dsts[:remaining])
        if dsts:
            groups.append((dsts, payload))
            if remaining is not None:
                remaining -= len(dsts)
    return groups


def apply_link_filter(
    groups: list[tuple[tuple[int, ...], Any]], blocked: frozenset[int]
) -> tuple[list[tuple[tuple[int, ...], Any]], int]:
    """Remove ``blocked`` destinations from normalised send groups.

    Returns ``(surviving_groups, dropped_count)``.  Applied *after* the
    crash-round ``keep`` truncation of :func:`collect_sends` -- the
    partial-send budget is spent on the messages the node attempted, and
    the link fault then removes some of the attempted messages in
    transit.  Shared by both :class:`Engine` round loops and the
    :mod:`repro.net` node send phase, so every substrate drops exactly
    the same point-to-point messages for a given
    :meth:`~repro.sim.adversary.CrashAdversary.blocked_links` mask.
    """
    kept: list[tuple[tuple[int, ...], Any]] = []
    dropped = 0
    for dsts, payload in groups:
        surviving = tuple(dst for dst in dsts if dst not in blocked)
        dropped += len(dsts) - len(surviving)
        if surviving:
            kept.append((surviving, payload))
    return kept, dropped


@dataclass
class RunResult:
    """Outcome of one simulated execution."""

    processes: Sequence[Process]
    metrics: Metrics
    crashed: set[int]
    byzantine: frozenset[int]
    completed: bool
    #: pid -> decision for processes that decided (crashed nodes that
    #: decided before crashing are included; callers filter as needed)
    decisions: dict[int, Any] = field(default_factory=dict)
    #: the recorded :class:`repro.trace.Trace`, attached by the
    #: ``repro.api`` entry points when ``record_trace`` was requested
    trace: Any = None
    #: the sealed :class:`repro.obs.RunTelemetry` artifact when the run
    #: was executed with ``telemetry=`` enabled, else ``None``
    telemetry: Any = None

    @property
    def rounds(self) -> int:
        return self.metrics.rounds

    @property
    def messages(self) -> int:
        return self.metrics.messages

    @property
    def bits(self) -> int:
        return self.metrics.bits

    def correct_pids(self) -> list[int]:
        """Processes that are neither crashed nor Byzantine."""
        return [
            p.pid
            for p in self.processes
            if p.pid not in self.crashed and p.pid not in self.byzantine
        ]

    def correct_decisions(self) -> dict[int, Any]:
        """Decisions of non-faulty processes only."""
        return {
            pid: value
            for pid, value in self.decisions.items()
            if pid not in self.crashed and pid not in self.byzantine
        }


class Engine:
    """Multi-port synchronous engine.

    Parameters
    ----------
    processes:
        One :class:`Process` per pid, index ``i`` holding pid ``i``.
    adversary:
        A :class:`CrashAdversary`; defaults to no failures.
    byzantine:
        Pids whose processes implement Byzantine behaviours.  Their
        traffic is excluded from the message/bit counts and they are
        exempt from the termination condition.
    max_rounds:
        Safety bound; exceeding it marks the run as not completed.
    fast_forward:
        Enable quiescence skipping (see module docstring).
    optimized:
        Select the batched hot-path round loop (default) or the
        straight-line reference loop; both are observably identical
        (see the module docstring).
    recorder:
        Optional trace hook (:class:`repro.trace.TraceRecorder` or
        :class:`repro.trace.TraceChecker`, or any object with the same
        ``round_events`` / ``record_send_group`` / ``record_drops``
        methods).  When set, the optimized loop routes every sender
        through the shared :func:`collect_sends` slow path (the fast
        path stays branch-free when no recorder is attached); metrics
        are unaffected either way.
    telemetry:
        Wall-clock instrumentation (see :mod:`repro.obs`): ``True`` or a
        :class:`~repro.obs.TelemetryRecorder` enables per-phase span
        recording; the sealed :class:`~repro.obs.RunTelemetry` is
        attached as ``result.telemetry``.  Disabled (the default) costs
        nothing: the value is normalised to ``None`` once here and every
        instrumentation site is guarded by a plain ``is not None`` test,
        so the hot path performs no calls, clock reads or allocations.
    """

    def __init__(
        self,
        processes: Sequence[Process],
        adversary: Optional[CrashAdversary] = None,
        *,
        byzantine: frozenset[int] = frozenset(),
        max_rounds: int = 100_000,
        fast_forward: bool = True,
        optimized: bool = True,
        recorder: Optional[Any] = None,
        telemetry: Any = None,
    ):
        check_pid_order(processes)
        self.processes = list(processes)
        self.n = len(processes)
        self.adversary = adversary if adversary is not None else NoFailures()
        self.byzantine = frozenset(byzantine)
        self.max_rounds = max_rounds
        self.fast_forward = fast_forward
        self.optimized = optimized
        self.recorder = recorder
        self.telemetry = coerce_recorder(telemetry)
        self.metrics = Metrics()
        self.crashed: set[int] = set()
        self.round: int = 0
        #: pid -> deep copy of the process ``__dict__`` before
        #: ``on_start``; taken only for pids with a scheduled rejoin
        self._snapshots: dict[int, dict] = {}

    # -- queries used by adaptive adversaries ---------------------------

    def operational(self, pid: int) -> bool:
        """Whether ``pid`` has not crashed."""
        return pid not in self.crashed

    # -- main loop -------------------------------------------------------

    def run(self, observer=None) -> RunResult:
        """Execute to completion.

        ``observer(rnd, processes)``, when given, is invoked after every
        executed round's receive phase (used by the Theorem 13
        lower-bound machinery to compare states across executions);
        passing an observer disables fast-forward so every round is
        observed.  The disable is local to this call -- the engine's
        ``fast_forward`` attribute is never mutated, so later inspection
        or reuse of the engine sees the constructor's setting.
        """
        fast_forward = self.fast_forward and observer is None
        tel = self.telemetry
        if tel is not None:
            tel.run_begin(
                backend="sim-opt" if self.optimized else "sim-ref", n=self.n
            )
        for pid in self.adversary.rejoin_pids():
            if not 0 <= pid < self.n:
                raise ProtocolError(f"rejoin scheduled for invalid pid {pid}")
            if pid in self.byzantine:
                raise ProtocolError(
                    f"adversary scheduled churn on Byzantine node {pid}"
                )
            self._snapshots[pid] = copy.deepcopy(self.processes[pid].__dict__)
        for proc in self.processes:
            proc.on_start()

        if self.optimized:
            completed, last_active_round = self._loop_optimized(
                observer, fast_forward
            )
        else:
            completed, last_active_round = self._loop_reference(
                observer, fast_forward
            )

        if not completed:
            # Either max_rounds was hit, or every process crashed.
            if all(
                proc.pid in self.crashed or proc.pid in self.byzantine
                for proc in self.processes
            ):
                completed = True
                self.metrics.rounds = max(last_active_round + 1, 0)

        result = RunResult(
            processes=self.processes,
            metrics=self.metrics,
            crashed=set(self.crashed),
            byzantine=self.byzantine,
            completed=completed,
        )
        for proc in self.processes:
            if proc.decided:
                result.decisions[proc.pid] = proc.decision
        if tel is not None:
            tel.run_end(completed=completed)
            result.telemetry = tel.finish(result)
        return result

    # -- round loops ------------------------------------------------------

    def _loop_reference(self, observer, fast_forward: bool) -> tuple[bool, int]:
        """The original straight-line round loop (executable spec).

        Returns ``(completed, last_active_round)``; on non-completion the
        caller applies the everyone-crashed fixup shared by both paths.
        """
        recorder = self.recorder
        tel = self.telemetry
        decided_seen: set[int] = set()
        rnd = 0
        completed = False
        last_active_round = -1
        while rnd < self.max_rounds:
            self.round = rnd
            if tel is not None:
                t_round = tel.clock()

            # Rejoin phase (churn): crashed nodes scheduled to come back
            # are reset and reinstated before the crash nomination, so
            # they participate in this round's send phase.
            rejoining = self._apply_rejoins(rnd)
            if tel is not None:
                t_rejoin = tel.clock()
                if rejoining:
                    tel.span("rejoin", rnd, t_round, t_rejoin)
                    for pid in rejoining:
                        tel.point("rejoin", rnd, t_rejoin, pid=pid)

            # Crash phase: nodes crashing at this round.
            crashing = self.adversary.crashes_for_round(rnd, self)
            for pid in crashing:
                if pid in self.byzantine:
                    raise ProtocolError(
                        f"adversary attempted to crash Byzantine node {pid}"
                    )
            blocked = self.adversary.blocked_links(rnd)
            if recorder is not None:
                recorder.round_events(rnd, crashing, rejoining, blocked)
            if tel is not None:
                t_crash = tel.clock()
                tel.span("crash", rnd, t_rejoin, t_crash)
                for pid in crashing:
                    tel.point("crash", rnd, t_crash, pid=pid, keep=crashing[pid])

            # Send phase.
            inboxes: dict[int, list[tuple[int, Any]]] = {}
            delivered_any = False
            for proc in self.processes:
                pid = proc.pid
                if pid in self.crashed or proc.halted:
                    continue
                keep: Optional[int] = None
                crashes_now = pid in crashing
                if crashes_now:
                    keep = crashing[pid]
                sent = self._collect_sends(proc, rnd, keep)
                if crashes_now:
                    self.crashed.add(pid)
                if blocked is not None:
                    mask = blocked.get(pid)
                    if mask:
                        sent, dropped = apply_link_filter(sent, mask)
                        if dropped:
                            if pid not in self.byzantine:
                                self.metrics.record_drop(dropped)
                            if recorder is not None:
                                recorder.record_drops(rnd, pid, dropped)
                            if tel is not None:
                                tel.point(
                                    "drop", rnd, tel.clock(), pid=pid,
                                    count=dropped,
                                )
                if not sent:
                    continue
                counted = pid not in self.byzantine
                for dsts, payload in sent:
                    bits_each = payload_bits(payload)
                    self.metrics.record_send(
                        pid, len(dsts), bits_each * len(dsts), rnd, counted
                    )
                    if recorder is not None:
                        recorder.record_send_group(
                            rnd, pid, dsts, bits_each, payload
                        )
                    for dst in dsts:
                        inboxes.setdefault(dst, []).append((pid, payload))
                        delivered_any = True
            if tel is not None:
                t_send = tel.clock()
                tel.span("send", rnd, t_crash, t_send)

            # Receive phase.
            for proc in self.processes:
                pid = proc.pid
                if pid in self.crashed or proc.halted:
                    continue
                proc.receive(rnd, inboxes.get(pid, []))
            if tel is not None:
                t_deliver = tel.clock()
                tel.span("deliver", rnd, t_send, t_deliver)
                tel.span("round", rnd, t_round, t_deliver)
                for proc in self.processes:
                    if proc.decided and proc.pid not in decided_seen:
                        decided_seen.add(proc.pid)
                        tel.point("decide", rnd, t_deliver, pid=proc.pid)

            if delivered_any:
                last_active_round = rnd

            if observer is not None:
                observer(rnd, self.processes)

            # Termination check: all operational non-Byzantine halted and
            # no crashed node still has a scheduled rejoin ahead (a run
            # never ends while churn is pending; see _rejoin_pending).
            if self._all_halted() and not self._rejoin_pending(rnd):
                self.metrics.rounds = rnd + 1
                completed = True
                break

            rnd = self._advance(rnd, delivered_any, fast_forward)
        else:
            self.metrics.rounds = self.max_rounds
        return completed, last_active_round

    def _loop_optimized(self, observer, fast_forward: bool) -> tuple[bool, int]:
        """Batched hot-path round loop; observably identical to
        :meth:`_loop_reference` (see module docstring and the parity
        tests)."""
        n = self.n
        metrics = self.metrics
        byzantine = self.byzantine
        crashed = self.crashed
        recorder = self.recorder
        # One append buffer per destination (indexed by pid, replacing
        # the reference path's dict+setdefault per message).  A buffer
        # that received messages is handed to its consumer and then
        # *abandoned* (replaced with a fresh list), and empty receivers
        # get a fresh list instead of the buffer, so a process that
        # retains its inbox reference never observes reuse.
        inboxes: list[list[tuple[int, Any]]] = [[] for _ in range(n)]
        # id(payload) -> (payload, bits); pins the payload so ids cannot
        # be recycled while cached.  Cleared every round.
        bits_cache: dict[int, tuple[Any, int]] = {}
        active = [
            p for p in self.processes if p.pid not in crashed and not p.halted
        ]
        tel = self.telemetry
        decided_seen: set[int] = set()

        rnd = 0
        completed = False
        last_active_round = -1
        while rnd < self.max_rounds:
            self.round = rnd
            if tel is not None:
                t_round = tel.clock()

            rejoining = self._apply_rejoins(rnd)
            if rejoining:
                # Rejoined pids must re-enter the active walk this round.
                active = [
                    p
                    for p in self.processes
                    if p.pid not in crashed and not p.halted
                ]
            if tel is not None:
                t_rejoin = tel.clock()
                if rejoining:
                    tel.span("rejoin", rnd, t_round, t_rejoin)
                    for pid in rejoining:
                        tel.point("rejoin", rnd, t_rejoin, pid=pid)

            crashing = self.adversary.crashes_for_round(rnd, self)
            membership_dirty = bool(crashing)
            if crashing:
                for pid in crashing:
                    if pid in byzantine:
                        raise ProtocolError(
                            f"adversary attempted to crash Byzantine node {pid}"
                        )
            blocked = self.adversary.blocked_links(rnd)
            if recorder is not None:
                recorder.round_events(rnd, crashing, rejoining, blocked)
            if tel is not None:
                t_crash = tel.clock()
                tel.span("crash", rnd, t_rejoin, t_crash)
                for pid in crashing:
                    tel.point("crash", rnd, t_crash, pid=pid, keep=crashing[pid])

            # Send phase.  A sender takes the collect_sends slow path
            # when it crashes this round, when a link filter is active,
            # or when a trace recorder is attached; the common
            # crash-only case keeps the batched fast path below.
            slow_round = blocked is not None or recorder is not None
            bits_cache.clear()
            touched: list[int] = []
            delivered_any = False
            for proc in active:
                pid = proc.pid
                if proc.halted:
                    # Halted since the last membership rebuild (e.g.
                    # during on_start); skip, mirroring the reference.
                    membership_dirty = True
                    continue
                if slow_round or (crashing and pid in crashing):
                    crashes_now = bool(crashing) and pid in crashing
                    keep = crashing[pid] if crashes_now else None
                    groups = self._collect_sends(proc, rnd, keep)
                    if crashes_now:
                        crashed.add(pid)
                    if blocked is not None:
                        mask = blocked.get(pid)
                        if mask:
                            groups, dropped = apply_link_filter(groups, mask)
                            if dropped:
                                if pid not in byzantine:
                                    metrics.record_drop(dropped)
                                if recorder is not None:
                                    recorder.record_drops(rnd, pid, dropped)
                                if tel is not None:
                                    tel.point(
                                        "drop", rnd, tel.clock(), pid=pid,
                                        count=dropped,
                                    )
                    if not groups:
                        continue
                    counted = pid not in byzantine
                    for dsts, payload in groups:
                        bits_each = payload_bits_cached(payload, bits_cache)
                        metrics.record_send(
                            pid, len(dsts), bits_each * len(dsts), rnd, counted
                        )
                        if recorder is not None:
                            recorder.record_send_group(
                                rnd, pid, dsts, bits_each, payload
                            )
                        envelope = (pid, payload)
                        for dst in dsts:
                            box = inboxes[dst]
                            if not box:
                                touched.append(dst)
                            box.append(envelope)
                    delivered_any = True
                    continue
                msg_total = 0
                bit_total = 0
                for item in proc.send(rnd):
                    if isinstance(item, Multicast):
                        dsts = item.dsts
                        payload = item.payload
                        width = len(dsts)
                        if width == 0:
                            continue
                        if min(dsts) < 0 or max(dsts) >= n:
                            bad = next(
                                d for d in dsts if not (0 <= d < n)
                            )
                            raise ProtocolError(
                                f"process {pid} sent to invalid pid {bad}"
                            )
                        bits_each = payload_bits_cached(payload, bits_cache)
                        msg_total += width
                        bit_total += bits_each * width
                        envelope = (pid, payload)
                        for dst in dsts:
                            box = inboxes[dst]
                            if not box:
                                touched.append(dst)
                            box.append(envelope)
                    else:
                        dst, payload = item
                        if dst < 0 or dst >= n:
                            raise ProtocolError(
                                f"process {pid} sent to invalid pid {dst}"
                            )
                        msg_total += 1
                        bit_total += payload_bits_cached(payload, bits_cache)
                        box = inboxes[dst]
                        if not box:
                            touched.append(dst)
                        box.append((pid, payload))
                if msg_total:
                    metrics.record_send(
                        pid, msg_total, bit_total, rnd, pid not in byzantine
                    )
                    delivered_any = True
            if tel is not None:
                t_send = tel.clock()
                tel.span("send", rnd, t_crash, t_send)

            # Receive phase.
            for proc in active:
                if proc.halted:
                    membership_dirty = True
                    continue
                pid = proc.pid
                if crashing and pid in crashed:
                    continue
                box = inboxes[pid]
                proc.receive(rnd, box if box else [])
                if proc.halted:
                    membership_dirty = True

            # Abandon delivered inboxes to their consumers.
            for dst in touched:
                inboxes[dst] = []
            if tel is not None:
                t_deliver = tel.clock()
                tel.span("deliver", rnd, t_send, t_deliver)
                tel.span("round", rnd, t_round, t_deliver)
                for proc in self.processes:
                    if proc.decided and proc.pid not in decided_seen:
                        decided_seen.add(proc.pid)
                        tel.point("decide", rnd, t_deliver, pid=proc.pid)

            if delivered_any:
                last_active_round = rnd

            if observer is not None:
                observer(rnd, self.processes)

            if membership_dirty:
                active = [
                    p
                    for p in active
                    if not p.halted and p.pid not in crashed
                ]

            # Termination: all operational non-Byzantine halted, i.e.
            # only Byzantine processes remain active -- and no crashed
            # node still has a scheduled rejoin ahead.
            if (
                not active
                or (byzantine and all(p.pid in byzantine for p in active))
            ) and not self._rejoin_pending(rnd):
                self.metrics.rounds = rnd + 1
                completed = True
                break

            rnd = self._advance_active(rnd, delivered_any, active, fast_forward)
        else:
            self.metrics.rounds = self.max_rounds
        return completed, last_active_round

    # -- internals --------------------------------------------------------

    def _apply_rejoins(self, rnd: int) -> list[int]:
        """Reinstate crashed nodes whose rejoin is scheduled at ``rnd``.

        State reset semantics: the process ``__dict__`` is restored from
        a fresh deep copy of its pre-``on_start`` snapshot (so a node can
        crash and rejoin more than once) and ``on_start`` runs again.
        Pids that are not currently crashed (halted, or never crashed)
        are skipped.  Returns the sorted list of reinstated pids.
        """
        scheduled = self.adversary.rejoins_for_round(rnd)
        if not scheduled:
            return []
        rejoining = sorted(pid for pid in scheduled if pid in self.crashed)
        for pid in rejoining:
            snapshot = self._snapshots.get(pid)
            if snapshot is None:
                raise ProtocolError(
                    f"rejoin of pid {pid} at round {rnd} was not announced "
                    "via rejoin_pids(), so no snapshot was taken"
                )
            proc = self.processes[pid]
            proc.__dict__.clear()
            proc.__dict__.update(copy.deepcopy(snapshot))
            self.crashed.discard(pid)
            proc.on_start()
        return rejoining

    def _collect_sends(
        self, proc: Process, rnd: int, keep: Optional[int]
    ) -> list[tuple[tuple[int, ...], Any]]:
        return collect_sends(proc, rnd, keep, self.n)

    def _all_halted(self) -> bool:
        for proc in self.processes:
            pid = proc.pid
            if pid in self.crashed or pid in self.byzantine:
                continue
            if not proc.halted:
                return False
        return True

    def _rejoin_pending(self, rnd: int) -> bool:
        """Whether a currently-crashed node has a rejoin scheduled after
        ``rnd``.

        Termination semantics under churn: a run never ends while a
        scheduled rejoin is still outstanding -- the engine idles (the
        quiescence fast-forward jumps straight to the rejoin, which
        :meth:`~repro.sim.adversary.CrashAdversary.next_event_round`
        reports) until the node is reinstated, and only then re-checks
        the all-halted condition.  A rejoin scheduled at or beyond
        ``max_rounds`` can never fire, so the run exhausts the safety
        bound and reports ``completed=False``.  The net runtime applies
        the identical rule (pinned by the churn parity tests).
        """
        for pid in self.crashed:
            if self.adversary.next_rejoin(pid, rnd) is not None:
                return True
        return False

    def _advance(self, rnd: int, delivered_any: bool, fast_forward: bool) -> int:
        """Compute the next round index, fast-forwarding when quiescent."""
        if not fast_forward or delivered_any:
            return rnd + 1
        # No deliveries this round: nothing can be triggered at rnd + 1,
        # so jump to the earliest spontaneous activity or crash event.
        horizon = self.max_rounds
        nxt = horizon
        for proc in self.processes:
            pid = proc.pid
            if pid in self.crashed or proc.halted:
                continue
            wake = proc.next_activity(rnd)
            if wake <= rnd:
                raise ProtocolError(
                    f"process {pid} declared next_activity {wake} <= {rnd}"
                )
            nxt = min(nxt, wake)
            if nxt == rnd + 1:
                return rnd + 1
        crash_event = self.adversary.next_event_round(rnd)
        if crash_event is not None:
            nxt = min(nxt, max(crash_event, rnd + 1))
        return max(rnd + 1, nxt)

    def _advance_active(
        self,
        rnd: int,
        delivered_any: bool,
        active: Sequence[Process],
        fast_forward: bool,
    ) -> int:
        """:meth:`_advance` over a pre-filtered active-process list."""
        if not fast_forward or delivered_any:
            return rnd + 1
        nxt = self.max_rounds
        for proc in active:
            wake = proc.next_activity(rnd)
            if wake <= rnd:
                raise ProtocolError(
                    f"process {proc.pid} declared next_activity {wake} <= {rnd}"
                )
            if wake < nxt:
                nxt = wake
                if nxt == rnd + 1:
                    break
        crash_event = self.adversary.next_event_round(rnd)
        if crash_event is not None:
            nxt = min(nxt, max(crash_event, rnd + 1))
        return max(rnd + 1, nxt)
