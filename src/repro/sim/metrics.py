"""Accounting of the paper's performance metrics.

The paper measures two quantities (Section 2):

* *running time* -- the number of rounds until all non-faulty nodes have
  halted, and
* *communication* -- either the number of point-to-point messages or the
  total number of bits in those messages.

For Byzantine executions only messages sent by non-faulty nodes are
counted, "as Byzantine nodes could flood the system with an arbitrary
number of messages".
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

__all__ = ["Metrics"]


@dataclass(slots=True)
class Metrics:
    """Mutable tally of rounds, messages and bits for one execution.

    :meth:`record_send` accepts arbitrarily aggregated ``(count, bits)``
    batches: the engine's reference path calls it once per send group,
    while the optimized hot path accumulates a sender's whole round and
    flushes once.  Because every tally is a plain sum keyed by sender or
    round, any batching granularity yields identical totals and
    identical ``per_node_*``/``per_round_messages`` counters — the
    engine parity tests rely on this.
    """

    rounds: int = 0
    messages: int = 0
    bits: int = 0
    per_node_messages: Counter = field(default_factory=Counter)
    per_node_bits: Counter = field(default_factory=Counter)
    #: messages recorded per round index, used by experiment plots
    per_round_messages: Counter = field(default_factory=Counter)
    #: messages from faulty (Byzantine) nodes; tracked but excluded from
    #: ``messages``/``bits``
    faulty_messages: int = 0
    #: messages removed in transit by link faults (omission schedules,
    #: partition masks; see :mod:`repro.scenarios`); excluded from
    #: ``messages``/``bits``, which count delivered traffic only
    dropped_messages: int = 0

    def record_send(
        self, src: int, count: int, bits: int, rnd: int, counted: bool = True
    ) -> None:
        """Record ``count`` messages totalling ``bits`` payload bits.

        ``counted=False`` marks traffic from Byzantine senders, which is
        tracked separately and excluded from the headline totals.
        """
        if not counted:
            self.faulty_messages += count
            return
        self.messages += count
        self.bits += bits
        self.per_node_messages[src] += count
        self.per_node_bits[src] += bits
        self.per_round_messages[rnd] += count

    def record_drop(self, count: int) -> None:
        """Record ``count`` messages a link fault removed in transit.

        Dropped messages were *sent* (the process attempted them) but
        never delivered; they appear in no per-node or per-round tally
        because the headline measures count delivered traffic only.
        Byzantine senders' drops are not recorded, mirroring how their
        sends are excluded from :meth:`record_send`.
        """
        self.dropped_messages += count

    @property
    def max_node_messages(self) -> int:
        """Largest per-node message count (load balance indicator)."""
        if not self.per_node_messages:
            return 0
        return max(self.per_node_messages.values())

    def summary(self) -> dict:
        """A plain-dict snapshot convenient for tables and benchmarks."""
        return {
            "rounds": self.rounds,
            "messages": self.messages,
            "bits": self.bits,
            "max_node_messages": self.max_node_messages,
            "faulty_messages": self.faulty_messages,
            "dropped_messages": self.dropped_messages,
        }
