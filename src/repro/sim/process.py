"""Process model for the synchronous message-passing simulator.

The simulator follows the model of Section 2 of the paper: execution
proceeds in lock-step rounds; in each round every operational process may
send messages (multi-port: to any set of recipients), and every message
sent in a round is delivered within that round.

A protocol is implemented by subclassing :class:`Process` and overriding

* :meth:`Process.on_start` -- one-time initialisation before round 0,
* :meth:`Process.send` -- return the messages to transmit this round,
* :meth:`Process.receive` -- consume the messages delivered this round.

Processes are *round-schedule state machines*: all timing decisions must
be made against the absolute round number passed to ``send``/``receive``
so that the engine's quiescence fast-forward (skipping rounds in which no
process is active) never changes observable behaviour.
"""

from __future__ import annotations

from typing import Any, Iterable, NamedTuple

__all__ = [
    "Multicast",
    "Process",
    "ProtocolError",
    "payload_bits",
    "payload_bits_cached",
]


class ProtocolError(RuntimeError):
    """Raised when a protocol violates the simulator's contract."""


class Multicast(NamedTuple):
    """A message sent to many destinations in one send action.

    The engine expands a multicast into one point-to-point message per
    destination for accounting purposes (the paper's multi-port model
    charges per point-to-point message), but avoids materialising one
    envelope object per recipient.
    """

    dsts: tuple[int, ...]
    payload: Any


# Per-element overhead charged for structured payloads, in bits.  This
# models the encoding of field separators / lengths; the paper's message
# sizes are asymptotic so any small constant works.
_CONTAINER_ELEMENT_OVERHEAD = 1


def payload_bits(payload: Any) -> int:
    """Number of bits charged for transmitting ``payload``.

    The accounting is deliberately simple and deterministic:

    * ``None`` and ``bool`` cost one bit (the paper's algorithms exchange
      one-bit rumors; ``None`` models an empty/flag message),
    * ``int`` costs its binary length (so an ``n``-instance bitmask used
      by the vectorised checkpointing consensus costs ``n`` bits),
    * strings and bytes cost eight bits per character/byte,
    * containers cost the sum of their elements plus one bit per element,
    * objects exposing ``bits_size()`` (e.g. signatures, extant sets)
      report their own size.
    """
    if payload is None or isinstance(payload, bool):
        return 1
    if isinstance(payload, int):
        return max(1, payload.bit_length())
    if isinstance(payload, float):
        return 64
    if isinstance(payload, str):
        return 8 * max(1, len(payload))
    if isinstance(payload, bytes):
        return 8 * max(1, len(payload))
    size_fn = getattr(payload, "bits_size", None)
    if size_fn is not None:
        return max(1, int(size_fn()))
    if isinstance(payload, dict):
        total = 0
        for key, value in payload.items():
            total += payload_bits(key) + payload_bits(value)
            total += _CONTAINER_ELEMENT_OVERHEAD
        return max(1, total)
    if isinstance(payload, (tuple, list, set, frozenset)):
        total = 0
        for item in payload:
            total += payload_bits(item) + _CONTAINER_ELEMENT_OVERHEAD
        return max(1, total)
    raise TypeError(f"cannot account bits for payload type {type(payload)!r}")


def payload_bits_cached(
    payload: Any, cache: dict[int, tuple[Any, int]]
) -> int:
    """:func:`payload_bits` memoised by payload identity.

    ``cache`` maps ``id(payload)`` to ``(payload, bits)``; storing the
    payload itself pins the object so its id cannot be recycled while
    the entry lives.  The engine keeps one cache per round: the paper's
    protocols broadcast the same candidate/extant object to every
    neighbour, so within a round the size computation (which walks
    containers recursively) runs once per distinct payload instead of
    once per send group.  Callers must not mutate a payload between
    sends within one round — the same contract the reference engine's
    per-group accounting already implies for deterministic metrics.
    """
    entry = cache.get(id(payload))
    if entry is not None:
        return entry[1]
    bits = payload_bits(payload)
    cache[id(payload)] = (payload, bits)
    return bits


class Process:
    """Base class for protocol participants.

    Attributes
    ----------
    pid:
        The process name, an integer in ``[0, n)``.  The paper names
        nodes ``1..n``; we use zero-based names throughout.
    n:
        Total number of processes in the system.
    halted:
        Set by the protocol (via :meth:`halt`) once the process has
        finished; a halted process neither sends nor receives.  Halting
        is voluntary and distinct from crashing.
    decision:
        The decided value, or ``None`` while undecided.  Assigning a
        decision is irrevocable (enforced by :meth:`decide`).
    """

    def __init__(self, pid: int, n: int):
        self.pid = pid
        self.n = n
        self.halted = False
        self.decision: Any = None
        self._decided = False

    # -- protocol hooks ------------------------------------------------

    def on_start(self) -> None:
        """One-time initialisation invoked before round 0."""

    def send(self, rnd: int) -> Iterable[Any]:
        """Return messages to transmit in round ``rnd``.

        Each item is either a ``(dst, payload)`` tuple or a
        :class:`Multicast`.  The default sends nothing.
        """
        return ()

    def receive(self, rnd: int, inbox: list[tuple[int, Any]]) -> None:
        """Consume messages delivered in round ``rnd``.

        ``inbox`` holds ``(src, payload)`` pairs for every message sent
        to this process in this round, in an arbitrary but deterministic
        order.  Called every round (possibly with an empty inbox) so that
        protocols such as local probing can count per-round receptions.
        """

    def next_activity(self, rnd: int) -> int:
        """Earliest round after ``rnd`` at which this process may act
        spontaneously (send without having received anything).

        The engine fast-forwards over rounds in which no process is
        active and no messages are in flight.  The default, ``rnd + 1``,
        disables fast-forwarding; schedule-driven protocols override this
        with the next boundary of their round schedule.
        """
        return rnd + 1

    # -- helpers --------------------------------------------------------

    def decide(self, value: Any) -> None:
        """Irrevocably decide on ``value``.

        Deciding twice with a different value raises
        :class:`ProtocolError`; deciding twice with the same value is a
        no-op (several of the paper's algorithms re-announce decisions).
        """
        if self._decided:
            if self.decision != value:
                raise ProtocolError(
                    f"process {self.pid} attempted to change its decision "
                    f"from {self.decision!r} to {value!r}"
                )
            return
        self.decision = value
        self._decided = True

    @property
    def decided(self) -> bool:
        """Whether this process has decided."""
        return self._decided

    def halt(self) -> None:
        """Voluntarily halt; the process takes no further actions."""
        self.halted = True

    def state_digest(self) -> tuple:
        """A hashable digest of the process state.

        Used by the lower-bound machinery (Theorem 13) to compare the
        states of one process across two executions.  The default digest
        covers the full instance dictionary; protocols with caches or
        other execution-irrelevant state should override this.
        """
        items = []
        for key in sorted(self.__dict__):
            if key.startswith("_cache"):
                continue
            value = self.__dict__[key]
            items.append((key, _freeze(value)))
        return tuple(items)


def _freeze(value: Any) -> Any:
    """Recursively convert ``value`` into a hashable representation."""
    if isinstance(value, dict):
        return tuple(sorted((k, _freeze(v)) for k, v in value.items()))
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(v) for v in value)
    if isinstance(value, (set, frozenset)):
        return tuple(sorted(_freeze(v) for v in value))
    return value
