"""Single-port synchronous engine (the model of Section 8).

In the single-port model a node may, per round, *send* at most one
message to one chosen node and *receive* from at most one chosen port.
"A node does not obtain any signal from any of its ports that messages
have been delivered to the port and need to be received" -- so reception
is modelled as polling: each round a process nominates at most one
sender pid whose port it checks, and retrieves the oldest pending
message from that port, if any.

Messages sent in a round become available for polling in the same round
(the engine runs all sends before all polls), consistent with the
paper's "all messages sent to a node in this round get delivered"
within-round delivery; Section 8's schedules never rely on same-round
polling, so this choice is invisible to the adapted algorithms.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Optional, Sequence

from repro.sim.adversary import CrashAdversary, NoFailures
from repro.sim.metrics import Metrics
from repro.sim.process import ProtocolError, payload_bits

__all__ = ["SinglePortEngine", "SinglePortProcess", "SinglePortResult"]


class SinglePortProcess:
    """Base class for single-port protocol participants."""

    def __init__(self, pid: int, n: int):
        self.pid = pid
        self.n = n
        self.halted = False
        self.decision: Any = None
        self._decided = False

    def on_start(self) -> None:
        """One-time initialisation before round 0."""

    def send(self, rnd: int) -> Optional[tuple[int, Any]]:
        """Return ``(dst, payload)`` or ``None`` (at most one send)."""
        return None

    def poll(self, rnd: int) -> Optional[int]:
        """Return the pid whose port to check this round, or ``None``."""
        return None

    def receive(self, rnd: int, message: Optional[tuple[int, Any]]) -> None:
        """Consume the polled message (``None`` if the port was empty)."""

    def next_activity(self, rnd: int) -> int:
        """Earliest round after ``rnd`` with spontaneous activity.

        Mirrors :meth:`repro.sim.process.Process.next_activity`; note
        that *polling* counts as activity because it is schedule-driven.
        """
        return rnd + 1

    def decide(self, value: Any) -> None:
        if self._decided:
            if self.decision != value:
                raise ProtocolError(
                    f"process {self.pid} attempted to change its decision "
                    f"from {self.decision!r} to {value!r}"
                )
            return
        self.decision = value
        self._decided = True

    @property
    def decided(self) -> bool:
        return self._decided

    def halt(self) -> None:
        self.halted = True

    def state_digest(self) -> tuple:
        items = []
        for key in sorted(self.__dict__):
            if key.startswith("_cache"):
                continue
            items.append((key, repr(self.__dict__[key])))
        return tuple(items)


@dataclass
class SinglePortResult:
    processes: Sequence[SinglePortProcess]
    metrics: Metrics
    crashed: set[int]
    completed: bool
    decisions: dict[int, Any] = field(default_factory=dict)

    @property
    def rounds(self) -> int:
        return self.metrics.rounds

    @property
    def messages(self) -> int:
        return self.metrics.messages

    @property
    def bits(self) -> int:
        return self.metrics.bits

    def correct_decisions(self) -> dict[int, Any]:
        return {
            pid: value
            for pid, value in self.decisions.items()
            if pid not in self.crashed
        }


class SinglePortEngine:
    """Lock-step engine enforcing the single-port discipline."""

    def __init__(
        self,
        processes: Sequence[SinglePortProcess],
        adversary: Optional[CrashAdversary] = None,
        *,
        max_rounds: int = 1_000_000,
        fast_forward: bool = True,
    ):
        for index, proc in enumerate(processes):
            if proc.pid != index:
                raise ProtocolError(
                    f"process at index {index} has pid {proc.pid}; "
                    "processes must be listed in pid order"
                )
        self.processes = list(processes)
        self.n = len(processes)
        self.adversary = adversary if adversary is not None else NoFailures()
        self.max_rounds = max_rounds
        self.fast_forward = fast_forward
        self.metrics = Metrics()
        self.crashed: set[int] = set()
        # ports[dst][src] is the FIFO queue of messages from src pending
        # at dst; created lazily.
        self._ports: dict[int, dict[int, deque]] = {}
        self.round: int = 0

    def operational(self, pid: int) -> bool:
        return pid not in self.crashed

    def pending(self, dst: int, src: int) -> int:
        """Number of unread messages from ``src`` pending at ``dst``."""
        box = self._ports.get(dst)
        if not box or src not in box:
            return 0
        return len(box[src])

    def run(self, observer=None) -> SinglePortResult:
        """Execute to completion.

        ``observer(rnd, processes)`` is invoked after every executed
        round (disables fast-forward for this call only, without
        mutating ``self.fast_forward``), mirroring
        :meth:`repro.sim.engine.Engine.run`.
        """
        fast_forward = self.fast_forward and observer is None
        for proc in self.processes:
            proc.on_start()

        rnd = 0
        completed = False
        last_active = -1
        while rnd < self.max_rounds:
            self.round = rnd
            crashing = self.adversary.crashes_for_round(rnd, self)

            # Send phase: at most one message per operational process.
            any_send = False
            for proc in self.processes:
                pid = proc.pid
                if pid in self.crashed or proc.halted:
                    continue
                crashes_now = pid in crashing
                out = proc.send(rnd)
                if crashes_now:
                    keep = crashing[pid]
                    if keep is not None and keep <= 0:
                        out = None
                    self.crashed.add(pid)
                if out is None:
                    continue
                dst, payload = out
                if not (0 <= dst < self.n):
                    raise ProtocolError(f"process {pid} sent to invalid pid {dst}")
                bits = payload_bits(payload)
                self.metrics.record_send(pid, 1, bits, rnd)
                self._ports.setdefault(dst, {}).setdefault(src_key(pid), deque())
                self._ports[dst][pid].append(payload)
                any_send = True

            # Poll phase: at most one port check per operational process.
            any_receive = False
            for proc in self.processes:
                pid = proc.pid
                if pid in self.crashed or proc.halted:
                    continue
                port = proc.poll(rnd)
                message: Optional[tuple[int, Any]] = None
                if port is not None:
                    if not (0 <= port < self.n):
                        raise ProtocolError(
                            f"process {pid} polled invalid port {port}"
                        )
                    box = self._ports.get(pid)
                    if box and port in box and box[port]:
                        message = (port, box[port].popleft())
                        any_receive = True
                proc.receive(rnd, message)

            if any_send or any_receive:
                last_active = rnd

            if observer is not None:
                observer(rnd, self.processes)

            if self._all_halted():
                self.metrics.rounds = rnd + 1
                completed = True
                break

            rnd = self._advance(rnd, any_send or any_receive, fast_forward)
        else:
            self.metrics.rounds = self.max_rounds

        if not completed and all(p.pid in self.crashed for p in self.processes):
            completed = True
            self.metrics.rounds = max(last_active + 1, 0)

        result = SinglePortResult(
            processes=self.processes,
            metrics=self.metrics,
            crashed=set(self.crashed),
            completed=completed,
        )
        for proc in self.processes:
            if proc.decided:
                result.decisions[proc.pid] = proc.decision
        return result

    def _all_halted(self) -> bool:
        return all(
            proc.pid in self.crashed or proc.halted for proc in self.processes
        )

    def _advance(self, rnd: int, active: bool, fast_forward: bool) -> int:
        if not fast_forward or active:
            return rnd + 1
        nxt = self.max_rounds
        for proc in self.processes:
            if proc.pid in self.crashed or proc.halted:
                continue
            wake = proc.next_activity(rnd)
            if wake <= rnd:
                raise ProtocolError(
                    f"process {proc.pid} declared next_activity {wake} <= {rnd}"
                )
            nxt = min(nxt, wake)
            if nxt == rnd + 1:
                return rnd + 1
        crash_event = self.adversary.next_event_round(rnd)
        if crash_event is not None:
            nxt = min(nxt, max(crash_event, rnd + 1))
        return max(rnd + 1, nxt)


def src_key(pid: int) -> int:
    """Identity helper kept for readability at the port-creation site."""
    return pid
