"""Vectorized structure-of-arrays simulator backend (``backend="vec"``).

The paper's regular protocols spend their rounds doing the same thing at
every node -- flooding a minimum, probing a fixed overlay, pushing an
extant set -- which the object-per-process engine pays for in pure-Python
dispatch.  This package executes those *regular* families as numpy
structure-of-arrays kernels instead: membership, crash/rejoin and halt
state live in boolean arrays, per-link omission/partition masks become
boolean delivery matrices, and per-round message/bit tallies accumulate
in integer arrays (:class:`repro.sim.vec.engine.VecMetricsSink`).

Contract
--------
``vec_run`` produces a :class:`~repro.sim.engine.RunResult` *observably
identical* to the lock-step :class:`~repro.sim.engine.Engine` for the
same processes and fault schedule -- the full
:data:`repro.check.oracles.PARITY_FIELDS` surface: metrics summary,
per-node and per-round counters, decisions, crash set and completion.
This is pinned by ``tests/test_vec_parity.py`` (hypothesis scenarios x
kernel families) and certified continuously by ``repro.check``'s
backend rotation.

Kernels exist for the regular families (flooding consensus, gossip,
checkpointing).  Everything else -- other process types, Byzantine
executions, adaptive adversaries, and runs with a trace recorder or
checker attached -- falls back to the optimized engine, which is
observably identical by the engine parity tests, so ``backend="vec"``
is always safe to request:

* **record on vec, replay on sim-ref**: recording routes through the
  optimized engine (traces are bit-identical by parity), so the trace
  replays on any backend;
* **replay on vec**: a replay carries a :class:`~repro.trace.TraceChecker`
  and is bit-verified through the same fallback.

numpy is an optional extra: ``pip install -e .[vec]``.  Without it,
``vec_run`` raises immediately with an actionable error and nothing in
this package imports numpy at module scope, keeping a bare install
fully functional.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

from repro.scenarios import ScenarioAdversary
from repro.sim.adversary import CrashAdversary, NoFailures, ScheduledCrashes
from repro.sim.engine import Engine, RunResult
from repro.sim.process import Process

__all__ = ["HAVE_NUMPY", "KERNEL_FAMILIES", "vec_run"]

try:  # pragma: no cover - exercised by the no-numpy CI job
    import numpy as _numpy  # noqa: F401

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover - exercised by the no-numpy CI job
    HAVE_NUMPY = False

#: Protocol families with a compiled step kernel; other families fall
#: back to the optimized engine (see the module docstring).
KERNEL_FAMILIES = ("flooding", "gossip", "checkpointing")

#: Adversary types known to be *oblivious* (the schedule never inspects
#: the live execution), which is what lets a kernel consume the schedule
#: without exposing a per-round process view.  Exact types, not
#: isinstance: a subclass may be adaptive.
_OBLIVIOUS_ADVERSARIES = (NoFailures, ScheduledCrashes, ScenarioAdversary)


def vec_run(
    processes: Sequence[Process],
    adversary: Optional[CrashAdversary],
    *,
    byzantine: frozenset[int] = frozenset(),
    max_rounds: int = 100_000,
    fast_forward: bool = True,
    optimized: bool = True,
    recorder: Optional[Any] = None,
    telemetry: Any = None,
) -> RunResult:
    """Execute on the vectorized backend (kernel or engine fallback).

    Raises ``RuntimeError`` when numpy is unavailable.  Dispatches to a
    structure-of-arrays kernel when the process vector is a homogeneous
    kernel family, the adversary is oblivious, there are no Byzantine
    nodes and no trace recorder/checker is attached; otherwise falls
    back to :class:`~repro.sim.engine.Engine` (same observable results;
    see the module docstring).  ``telemetry`` (see :mod:`repro.obs`)
    never forces the fallback -- :class:`~repro.sim.vec.engine.VecEngine`
    emits its own span taxonomy (``kernel.step`` instead of the engine's
    ``send``/``deliver`` split) -- so profiling a vec run measures the
    kernels, not the engine.
    """
    if not HAVE_NUMPY:
        raise RuntimeError(
            "backend='vec' requires numpy; install the optional extra: "
            "pip install -e .[vec]"
        )
    adv = adversary if adversary is not None else NoFailures()
    kernel = None
    if (
        recorder is None
        and not byzantine
        and type(adv) in _OBLIVIOUS_ADVERSARIES
    ):
        from repro.sim.vec.engine import build_kernel

        kernel = build_kernel(processes)
    if kernel is None:
        return Engine(
            processes,
            adv,
            byzantine=byzantine,
            max_rounds=max_rounds,
            fast_forward=fast_forward,
            optimized=optimized,
            recorder=recorder,
            telemetry=telemetry,
        ).run()
    from repro.sim.vec.engine import VecEngine

    return VecEngine(
        processes,
        adv,
        kernel,
        max_rounds=max_rounds,
        fast_forward=fast_forward,
        telemetry=telemetry,
    ).run()
