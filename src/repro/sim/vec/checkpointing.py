"""Structure-of-arrays kernel for checkpointing (Fig. 6).

Part 1 reuses :class:`~repro.sim.vec.gossip.GossipCore` with the dummy
rumor and the end-of-gossip decide/halt suppressed (the object code
resets ``gossip.halted`` after every receive).  Part 2 is the combined
``Few-Crashes-Consensus``: candidates are the ``n``-bit presence masks,
held here as boolean matrix rows, with AEA's OR-join and SCV's
first-value adoption expressed as matrix products and column argmaxes.

Lazy creation is reproduced per node: the object code builds its
consensus component at the first ``send`` with ``rnd >= consensus
start`` (capturing the *current* extant set as the candidate) and its
SCV component at the first ``send`` past the AEA window (capturing the
AEA decision, or null).  A churn rejoiner therefore enters Part 2 with
the freshly-reset ``{pid}`` extant set, exactly like a rejoined
process object; one that rejoins after the SCV window halts undecided
at its first receive, because ``SCV.finished`` already holds.

Bit accounting: candidate/value messages carry pid-set bitmasks, whose
``payload_bits`` is ``highest set pid + 1``; inquiry messages cost one
bit; the gossip part accounts as in the gossip kernel.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

import numpy as np

from repro.core.checkpointing import CheckpointingProcess, _DUMMY_RUMOR
from repro.graphs.families import scv_inquiry_graph
from repro.sim.process import Process
from repro.sim.vec.engine import Kernel, VecMetricsSink, bool_transport
from repro.sim.vec.gossip import GossipCore, adjacency_matrix, deliver

__all__ = ["CheckpointingKernel"]

_FAR = 2**62  # larger than any wake round


class CheckpointingKernel(Kernel):
    def __init__(self, core: GossipCore, spread_graph) -> None:
        params = core.params
        n = core.n
        self.core = core
        self.n = n
        self.params = params
        self.cs = core.end_round  # consensus start (absolute)
        self.little = core.little
        self.delta = core.delta

        # component-round windows (relative to self.cs)
        self.flood_end = params.little_flood_rounds
        self.notify_round = self.flood_end + params.little_probe_rounds
        self.scv_start = self.notify_round + 1
        self.inquiry_start = self.scv_start + params.scv_spread_rounds
        self.direct = params.scv_direct_inquiry
        self.scv_end = self.inquiry_start + (
            2 if self.direct else 2 * params.scv_phase_count
        )

        self.spread_adj = adjacency_matrix(
            spread_graph, n, np.ones(n, dtype=bool)
        )
        related = np.zeros((n, n), dtype=bool)
        for lp in range(params.little_count):
            related[lp, list(params.related_nodes(lp))] = True
        self.related_adj = related
        if self.direct:
            direct_adj = np.zeros((n, n), dtype=bool)
            direct_adj[:, : params.little_count] = True
            np.fill_diagonal(direct_adj, False)
            self.direct_adj = direct_adj
        self._inquiry_adj: dict[int, np.ndarray] = {}

        # AEA state (valid where cons_created)
        self.cons_created = np.zeros(n, dtype=bool)
        self.cand = np.zeros((n, n), dtype=bool)
        self.aea_pending = np.zeros(n, dtype=bool)
        self.aea_paused = np.zeros(n, dtype=bool)
        self.aea_decided = np.zeros(n, dtype=bool)
        self.aea_decision = np.zeros((n, n), dtype=bool)
        # SCV state (valid where scv_created)
        self.scv_created = np.zeros(n, dtype=bool)
        self.has_value = np.zeros(n, dtype=bool)
        self.value = np.zeros((n, n), dtype=bool)
        self.pending_forward = np.zeros(n, dtype=bool)
        self.scv_inquirers = np.zeros((n, n), dtype=bool)

        self.halted = np.zeros(n, dtype=bool)
        self.decided = np.zeros(n, dtype=bool)

    @classmethod
    def build(
        cls, processes: Sequence[Process]
    ) -> Optional["CheckpointingKernel"]:
        first = processes[0]
        params = first.params
        overlay = first._overlay
        spread = first._spread
        if len(processes) != params.n:
            return None
        for proc in processes:
            if (
                proc.params is not params
                or proc._overlay is not overlay
                or proc._spread is not spread
                or proc.consensus is not None
                or proc.halted
                or proc.decided
            ):
                return None
            gossip = proc.gossip
            if (
                gossip.extant != {proc.pid: _DUMMY_RUMOR}
                or gossip.completion != {proc.pid}
                or not gossip._survived_last
                or gossip._did_final_inquiry
                or gossip._probe is not None
                or gossip._inquirers
                or gossip._extant_delta != gossip.extant
                or gossip._completion_delta != gossip.completion
            ):
                return None
        core = GossipCore(
            params, overlay, [_DUMMY_RUMOR] * params.n
        )
        return cls(core, spread)

    # -- helpers ----------------------------------------------------------

    def _mask_bits(self, rows: np.ndarray) -> np.ndarray:
        """``payload_bits`` of each row's pid-set bitmask."""
        width = rows * np.arange(1, self.n + 1, dtype=np.int64)
        return np.maximum(1, width.max(axis=1))

    def inquiry_adjacency(self, index: int) -> np.ndarray:
        adj = self._inquiry_adj.get(index)
        if adj is None:
            graph = scv_inquiry_graph(self.n, index, self.params.seed)
            adj = adjacency_matrix(
                graph, self.n, np.ones(self.n, dtype=bool)
            )
            self._inquiry_adj[index] = adj
        return adj

    @staticmethod
    def _adopt_first(
        received: np.ndarray, snapshot: np.ndarray, adopters: np.ndarray
    ) -> None:
        """For each adopter column, copy the lowest delivering sender's
        snapshot row (inbox order is ascending sender pid, and the
        object code adopts the first payload)."""
        first_src = received[:, adopters].argmax(axis=0)
        adopters_idx = np.nonzero(adopters)[0]
        snapshot_rows = snapshot[first_src]
        return adopters_idx, snapshot_rows

    # -- Kernel interface -------------------------------------------------

    def step(
        self,
        rnd: int,
        senders: np.ndarray,
        receivers: np.ndarray,
        keep: Mapping[int, int],
        blocked: Optional[Mapping[int, frozenset[int]]],
        sink: VecMetricsSink,
    ) -> bool:
        if rnd < self.cs:
            delivered_any, _ = self.core.step(
                rnd, senders, receivers, keep, blocked, sink
            )
            return delivered_any
        n = self.n
        r = rnd - self.cs

        # lazy creation at send time (receivers are a subset of senders,
        # so creating for senders covers every node touched this round)
        new_cons = senders & ~self.cons_created
        if new_cons.any():
            self.cand[new_cons] = self.core.E[new_cons]
            self.aea_pending[new_cons] = self.little[new_cons]
            self.cons_created[new_cons] = True
        if r >= self.scv_start:
            new_scv = senders & ~self.scv_created
            if new_scv.any():
                self.has_value[new_scv] = self.aea_decided[new_scv]
                self.value[new_scv] = self.aea_decision[new_scv]
                self.pending_forward[new_scv] = self.has_value[new_scv]
                self.scv_created[new_scv] = True

        attempts = np.zeros((n, n), dtype=bool)
        bits_each = np.ones(n, dtype=np.int64)
        payload = None
        if r < self.flood_end:
            flooding = senders & self.little & self.aea_pending
            self.aea_pending[flooding] = False  # cleared at call
            attempts[flooding] = self.core.committee[flooding]
            payload = self.cand.copy()
            bits_each = self._mask_bits(self.cand)
        elif r < self.notify_round:
            probing = (
                senders
                & self.little
                & ~self.aea_paused
                & self.core.has_committee
            )
            attempts[probing] = self.core.committee[probing]
            payload = self.cand.copy()
            bits_each = self._mask_bits(self.cand)
        elif r == self.notify_round:
            notifying = senders & self.little & self.aea_decided
            attempts[notifying] = self.related_adj[notifying]
            payload = self.aea_decision.copy()
            bits_each = self._mask_bits(self.aea_decision)
        elif r < self.inquiry_start:
            forwarding = senders & self.pending_forward
            self.pending_forward[forwarding] = False  # cleared at call
            attempts[forwarding] = self.spread_adj[forwarding]
            payload = self.value.copy()
            bits_each = self._mask_bits(self.value)
        elif r < self.scv_end:
            offset = r - self.inquiry_start
            if offset % 2 == 0:  # inquiry round
                inquiring = senders & ~self.has_value
                if self.direct:
                    attempts[inquiring] = self.direct_adj[inquiring]
                else:
                    index = offset // 2 + 1
                    attempts[inquiring] = self.inquiry_adjacency(index)[
                        inquiring
                    ]
                # inquiry payload is the constant 1 -> 1 bit
            else:  # response round
                responding = (
                    senders
                    & self.has_value
                    & self.scv_inquirers.any(axis=1)
                )
                attempts[responding] = self.scv_inquirers[responding]
                self.scv_inquirers[responding] = False  # cleared at call
                payload = self.value.copy()
                bits_each = self._mask_bits(self.value)

        with_group = attempts.any(axis=1)
        delivered = deliver(attempts, with_group, keep, blocked, sink)
        counts = delivered.sum(axis=1).astype(np.int64)
        delivered_any = bool(counts.any())
        if delivered_any:
            sink.add_array(rnd, counts, counts * bits_each)

        # -- receive phase -----------------------------------------------
        received = delivered.copy()
        received[:, ~receivers] = False
        if r < self.flood_end:
            window = receivers & self.little
            contrib = bool_transport(received, payload)
            new = contrib & ~self.cand
            new[~window] = False
            grew = new.any(axis=1)
            self.cand |= new
            if r + 1 < self.flood_end:
                self.aea_pending[grew] = True
        elif r < self.notify_round:
            window = receivers & self.little
            starved = received.sum(axis=0) < self.delta
            self.aea_paused |= window & ~self.aea_paused & starved
            contrib = bool_transport(received, payload)
            contrib[~window] = False
            self.cand |= contrib
            if r == self.notify_round - 1:  # probe window elapsed
                survivors = window & ~self.aea_paused
                self.aea_decided[survivors] = True
                self.aea_decision[survivors] = self.cand[survivors]
        elif r == self.notify_round:
            adopters = (
                receivers & ~self.little & received.any(axis=0)
            )
            if adopters.any():
                idx, rows = self._adopt_first(received, payload, adopters)
                self.aea_decision[idx] = rows
                self.aea_decided[idx] = True
        elif r < self.inquiry_start:
            adopters = (
                receivers & ~self.has_value & received.any(axis=0)
            )
            if adopters.any():
                idx, rows = self._adopt_first(received, payload, adopters)
                self.value[idx] = rows
                self.has_value[idx] = True
                if r + 1 < self.inquiry_start:
                    self.pending_forward[idx] = True
        elif r < self.scv_end:
            offset = r - self.inquiry_start
            if offset % 2 == 0:
                got = (
                    receivers & self.has_value & received.any(axis=0)
                )
                self.scv_inquirers[got] = received.T[got]  # replace
            else:
                adopters = (
                    receivers & ~self.has_value & received.any(axis=0)
                )
                if adopters.any():
                    idx, rows = self._adopt_first(
                        received, payload, adopters
                    )
                    self.value[idx] = rows
                    self.has_value[idx] = True

        if r >= self.scv_end - 1:
            finishing = np.nonzero(receivers)[0]
            if finishing.size:
                self.decided[finishing] = self.has_value[finishing]
                self.halted[finishing] = True
        return delivered_any

    def reset_nodes(self, pids: Sequence[int]) -> None:
        self.core.reset_nodes(pids)
        self.cons_created[pids] = False
        self.aea_pending[pids] = False
        self.aea_paused[pids] = False
        self.aea_decided[pids] = False
        self.scv_created[pids] = False
        self.has_value[pids] = False
        self.pending_forward[pids] = False
        for matrix in (
            self.cand,
            self.aea_decision,
            self.value,
            self.scv_inquirers,
        ):
            matrix[pids] = False
        self.halted[pids] = False
        self.decided[pids] = False

    def next_wake(self, rnd: int, active: np.ndarray) -> int:
        core = self.core
        if rnd < self.cs - 1:
            # min(gossip.next_activity, consensus start)
            if np.any(active & (core.little | core.Iq.any(axis=1))):
                return rnd + 1
            return min(max(rnd + 1, core.end_round - 1), self.cs)
        if rnd < self.cs:
            return self.cs
        r = rnd - self.cs
        wake = np.full(self.n, _FAR, dtype=np.int64)
        if r < self.scv_start - 1:
            aea = np.full(self.n, max(r + 1, self.notify_round), np.int64)
            if r < self.flood_end:
                idle = self.little & ~self.aea_pending
                aea[self.little] = r + 1
                aea[idle] = max(r + 1, self.flood_end)
            else:
                aea[self.little] = r + 1
            wake = np.minimum(aea, self.scv_start)
        elif r < self.scv_start:
            wake[:] = self.scv_start
        elif r < self.inquiry_start:
            wake = np.where(
                self.pending_forward, r + 1, max(r + 1, self.inquiry_start)
            )
        elif r < self.scv_end:
            busy = ~self.has_value | self.scv_inquirers.any(axis=1)
            wake = np.where(busy, r + 1, max(r + 1, self.scv_end - 1))
        else:
            wake[:] = r + 1
        return int(wake[active].min()) + self.cs

    def finalize(self, processes: Sequence[Process]) -> None:
        for pid, proc in enumerate(processes):
            if self.halted[pid]:
                proc.halted = True
            if self.decided[pid]:
                decision = frozenset(
                    int(q) for q in np.nonzero(self.value[pid])[0]
                )
                proc.decide(decision)
