"""The vectorized round loop and its shared kernel machinery.

:class:`VecEngine` is a clone of the reference loop in
:mod:`repro.sim.engine` with the per-process send/receive phases
replaced by one :meth:`Kernel.step` call per round.  Everything the
engine observes -- rejoin-before-crash ordering, the crash-round
partial-send ``keep`` budget, link filtering with drop accounting,
termination, fast-forward and the everyone-crashed fixup -- is
reproduced here so that :func:`repro.check.oracles.check_parity`
holds field-for-field against both engine paths.

A :class:`Kernel` owns all protocol state as numpy arrays and exposes
five operations:

* ``step(rnd, senders, receivers, keep, blocked, sink)`` -- execute one
  round for the boolean ``senders``/``receivers`` masks, honouring the
  ``keep`` partial-send budgets (pid -> remaining messages) and the
  ``blocked`` link mask, recording traffic into the sink; returns
  whether any message was delivered post-filter;
* ``reset_nodes(pids)`` -- churn rejoin: restore the listed nodes to
  their initial state (the engine restores an ``on_start`` snapshot);
* ``next_wake(rnd, active)`` -- earliest spontaneous activity among the
  active nodes, mirroring ``Process.next_activity`` for fast-forward;
* ``decisions()`` / ``finalize(processes)`` -- export decisions and
  write terminal state back onto the original process objects so
  :class:`~repro.sim.engine.RunResult` consumers see the usual surface.
"""

from __future__ import annotations

from typing import Any, Mapping, Optional, Sequence

import numpy as np

from repro.obs.recorder import coerce_recorder
from repro.sim.adversary import CrashAdversary
from repro.sim.engine import RunResult, check_pid_order
from repro.sim.metrics import Metrics
from repro.sim.process import Process, ProtocolError

__all__ = [
    "Kernel",
    "VecEngine",
    "VecMetricsSink",
    "apply_blocked",
    "bit_length_array",
    "bool_transport",
    "build_kernel",
    "keep_prefix",
]

_SHIFTS = (32, 16, 8, 4, 2, 1)


def bit_length_array(values: np.ndarray) -> np.ndarray:
    """Elementwise ``int.bit_length`` of a non-negative integer array.

    Binary-search by doubling shifts: six masked shift/accumulate passes
    cover the full 64-bit range, so the cost is O(n) array ops rather
    than a Python loop over elements.
    """
    v = values.astype(np.uint64, copy=True)
    out = np.zeros(v.shape, dtype=np.int64)
    for shift in _SHIFTS:
        threshold = np.uint64(1) << np.uint64(shift)
        big = v >= threshold
        out[big] += shift
        v[big] >>= np.uint64(shift)
    out += v.astype(np.int64)  # remaining value is 0 or 1
    return out


def bool_transport(received: np.ndarray, payload: np.ndarray) -> np.ndarray:
    """``received.T @ payload`` on the OR-AND semiring.

    The set-transport product of every kernel receive phase: cell
    ``(q, m)`` is True iff some sender whose message reached ``q``
    carried member ``m``.  Restricted to senders with a non-empty
    payload row (probe deltas are usually sparse) and computed through
    float32 BLAS -- numpy's boolean matmul is a non-BLAS loop an order
    of magnitude slower at committee sizes.  Exact: per-cell match
    counts are bounded by n, far below float32's 2**24 integer range.
    """
    n = received.shape[1]
    rows = received.any(axis=1) & payload.any(axis=1)
    idx = np.nonzero(rows)[0]
    if idx.size == 0:
        return np.zeros((n, payload.shape[1]), dtype=bool)
    lhs = received[idx].astype(np.float32)
    rhs = payload[idx].astype(np.float32)
    return (lhs.T @ rhs) > 0.5


def keep_prefix(row: np.ndarray, keep: int) -> None:
    """Truncate a boolean destination row to its first ``keep`` entries.

    Kernel send groups list destinations in ascending pid order, so the
    crash-round partial send (deliver the first ``keep`` point-to-point
    messages in the node's own send order) is exactly a prefix of the
    attempt row.
    """
    if keep <= 0:
        row[:] = False
        return
    idx = np.nonzero(row)[0]
    if idx.size > keep:
        row[idx[keep:]] = False


def apply_blocked(
    matrix: np.ndarray,
    blocked: Mapping[int, frozenset[int]],
    sink: "VecMetricsSink",
) -> None:
    """Remove blocked links from an attempt matrix, tallying drops.

    Mirrors :func:`repro.sim.engine.apply_link_filter`: a drop is an
    *attempted* message (post ``keep`` truncation) removed in transit,
    counted only for senders that actually attempted it this round.
    """
    n = matrix.shape[0]
    for src, dsts in blocked.items():
        if not dsts or not (0 <= src < n):
            continue
        row = matrix[src]
        cols = [dst for dst in dsts if 0 <= dst < n and row[dst]]
        if cols:
            row[cols] = False
            sink.add_drops(len(cols))


class VecMetricsSink:
    """Array-shaped accumulator that exports an exact :class:`Metrics`.

    Senders' counts and bits accumulate in ``int64`` arrays; per-round
    totals in a plain dict of Python ints.  ``to_metrics`` materialises
    Counters holding only nonzero Python-int entries, matching what the
    engine's ``record_send`` calls would have produced.
    """

    def __init__(self, n: int) -> None:
        self._messages = np.zeros(n, dtype=np.int64)
        self._bits = np.zeros(n, dtype=np.int64)
        self._per_round: dict[int, int] = {}
        self._dropped = 0

    def add_array(
        self, rnd: int, counts: np.ndarray, bits: np.ndarray
    ) -> None:
        """Record one round of per-sender message counts and bits."""
        self._messages += counts
        self._bits += bits
        total = int(counts.sum())
        if total:
            self._per_round[rnd] = self._per_round.get(rnd, 0) + total

    def add_drops(self, count: int) -> None:
        self._dropped += count

    def to_metrics(self, rounds: int) -> Metrics:
        metrics = Metrics()
        metrics.rounds = rounds
        metrics.messages = int(self._messages.sum())
        metrics.bits = int(self._bits.sum())
        metrics.dropped_messages = self._dropped
        for pid in np.nonzero(self._messages)[0]:
            metrics.per_node_messages[int(pid)] = int(self._messages[pid])
        for pid in np.nonzero(self._bits)[0]:
            metrics.per_node_bits[int(pid)] = int(self._bits[pid])
        for rnd in sorted(self._per_round):
            metrics.per_round_messages[rnd] = self._per_round[rnd]
        return metrics


class Kernel:
    """Interface every per-family step kernel implements.

    ``halted`` is a boolean array the engine reads for termination and
    sender eligibility; the kernel owns all other protocol state.
    """

    halted: np.ndarray

    def step(
        self,
        rnd: int,
        senders: np.ndarray,
        receivers: np.ndarray,
        keep: Mapping[int, int],
        blocked: Optional[Mapping[int, frozenset[int]]],
        sink: VecMetricsSink,
    ) -> bool:
        raise NotImplementedError

    def reset_nodes(self, pids: Sequence[int]) -> None:
        raise NotImplementedError

    def next_wake(self, rnd: int, active: np.ndarray) -> int:
        raise NotImplementedError

    def finalize(self, processes: Sequence[Process]) -> None:
        raise NotImplementedError


def build_kernel(processes: Sequence[Process]) -> Optional[Kernel]:
    """Build the step kernel for a homogeneous kernel-family vector.

    Returns ``None`` (caller falls back to the engine) when the vector
    is empty, mixes process types, is not a kernel family, or a family
    factory declines the concrete instances (e.g. flooding inputs that
    are not plain machine-width ints).
    """
    if not processes:
        return None
    first_type = type(processes[0])
    if any(type(proc) is not first_type for proc in processes):
        return None

    from repro.baselines.flooding_consensus import FloodingConsensusProcess

    if first_type is FloodingConsensusProcess:
        from repro.sim.vec.flooding import FloodingKernel

        return FloodingKernel.build(processes)

    from repro.core.gossip import GossipProcess

    if first_type is GossipProcess:
        from repro.sim.vec.gossip import GossipKernel

        return GossipKernel.build(processes)

    from repro.core.checkpointing import CheckpointingProcess

    if first_type is CheckpointingProcess:
        from repro.sim.vec.checkpointing import CheckpointingKernel

        return CheckpointingKernel.build(processes)

    return None


class VecEngine:
    """Structure-of-arrays clone of the reference engine loop."""

    def __init__(
        self,
        processes: Sequence[Process],
        adversary: CrashAdversary,
        kernel: Kernel,
        *,
        max_rounds: int = 100_000,
        fast_forward: bool = True,
        telemetry: Any = None,
    ) -> None:
        check_pid_order(processes)
        self.processes = list(processes)
        self.n = len(self.processes)
        self.adversary = adversary
        self.kernel = kernel
        self.max_rounds = max_rounds
        self.fast_forward = fast_forward
        #: wall-clock instrumentation (see repro.obs); normalised to
        #: None when disabled so the round loop only pays an `is not
        #: None` test per phase.  Spans: round / rejoin / crash /
        #: kernel.step (the vectorized send+receive body).
        self.telemetry = coerce_recorder(telemetry)
        self.round = 0
        self.crashed_mask = np.zeros(self.n, dtype=bool)
        self.sink = VecMetricsSink(self.n)

    # CrashAdversary.crashes_for_round receives the engine; keep the
    # small surface adaptive adversaries would touch, although kernel
    # dispatch only admits oblivious adversary types.
    def operational(self, pid: int) -> bool:
        return not bool(self.crashed_mask[pid])

    def run(self) -> RunResult:
        n = self.n
        adversary = self.adversary
        kernel = self.kernel
        crashed = self.crashed_mask
        for pid in adversary.rejoin_pids():
            if not (0 <= pid < n):
                raise ProtocolError(
                    f"rejoin scheduled for invalid pid {pid}"
                )
        tel = self.telemetry
        if tel is not None:
            tel.run_begin(backend="vec", n=n, kernel=type(kernel).__name__)
        rnd = 0
        completed = False
        exhausted = True
        last_active_round = -1
        rounds_metric = self.max_rounds
        while rnd < self.max_rounds:
            self.round = rnd
            if tel is not None:
                t_round = tel.clock()
            scheduled = adversary.rejoins_for_round(rnd)
            rejoining = (
                sorted(pid for pid in scheduled if crashed[pid])
                if scheduled
                else []
            )
            if rejoining:
                kernel.reset_nodes(rejoining)
                crashed[rejoining] = False
            if tel is not None:
                t_rejoin = tel.clock()
                if rejoining:
                    tel.span("rejoin", rnd, t_round, t_rejoin)
                    for pid in rejoining:
                        tel.point("rejoin", rnd, t_rejoin, pid=pid)
            crashing = adversary.crashes_for_round(rnd, self)
            blocked = adversary.blocked_links(rnd)
            senders = ~crashed & ~kernel.halted
            if crashing:
                actually_crashing = [
                    pid for pid in crashing if senders[pid]
                ]
            else:
                actually_crashing = []
            keep = {
                pid: crashing[pid]
                for pid in actually_crashing
                if crashing[pid] is not None
            }
            receivers = senders
            if actually_crashing:
                receivers = senders.copy()
                receivers[actually_crashing] = False
            if tel is not None:
                t_crash = tel.clock()
                tel.span("crash", rnd, t_rejoin, t_crash)
                for pid in actually_crashing:
                    tel.point(
                        "crash", rnd, t_crash, pid=pid, keep=crashing[pid]
                    )
                drops_before = self.sink._dropped
            delivered_any = kernel.step(
                rnd, senders, receivers, keep, blocked, self.sink
            )
            if tel is not None:
                t_step = tel.clock()
                tel.span("kernel.step", rnd, t_crash, t_step)
                tel.span("round", rnd, t_round, t_step)
                dropped = self.sink._dropped - drops_before
                if dropped:
                    tel.point("drop", rnd, t_step, count=dropped)
            if actually_crashing:
                crashed[actually_crashing] = True
            if delivered_any:
                last_active_round = rnd
            if not np.any(
                ~crashed & ~kernel.halted
            ) and not self._rejoin_pending(rnd):
                rounds_metric = rnd + 1
                completed = True
                exhausted = False
                break
            rnd = self._advance(rnd, delivered_any)
        if exhausted:
            rounds_metric = self.max_rounds
        if not completed and bool(crashed.all()):
            # Everyone crashed: report the last round with traffic.
            completed = True
            rounds_metric = max(last_active_round + 1, 0)
        metrics = self.sink.to_metrics(rounds_metric)
        crashed_set = {int(pid) for pid in np.nonzero(crashed)[0]}
        kernel.finalize(self.processes)
        result = RunResult(
            processes=self.processes,
            metrics=metrics,
            crashed=crashed_set,
            byzantine=frozenset(),
            completed=completed,
        )
        for proc in self.processes:
            if proc.decided:
                result.decisions[proc.pid] = proc.decision
        if tel is not None:
            # Kernels decide in bulk at finalize, so per-round decide
            # timing is not observable here; stamp the markers at the
            # final round instead (the counts still match the engine).
            now = tel.clock()
            for pid in sorted(result.decisions):
                tel.point("decide", rounds_metric - 1, now, pid=pid)
            tel.run_end(completed=completed)
            result.telemetry = tel.finish(result)
        return result

    def _advance(self, rnd: int, delivered_any: bool) -> int:
        if not self.fast_forward or delivered_any:
            return rnd + 1
        active = ~self.crashed_mask & ~self.kernel.halted
        nxt = self.max_rounds
        if active.any():
            nxt = min(nxt, self.kernel.next_wake(rnd, active))
        crash_event = self.adversary.next_event_round(rnd)
        if crash_event is not None:
            nxt = min(nxt, max(crash_event, rnd + 1))
        return max(rnd + 1, nxt)

    def _rejoin_pending(self, rnd: int) -> bool:
        for pid in np.nonzero(self.crashed_mask)[0]:
            if self.adversary.next_rejoin(int(pid), rnd) is not None:
                return True
        return False
