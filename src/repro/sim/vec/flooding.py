"""Structure-of-arrays kernel for flooding consensus.

The baseline protocol (:mod:`repro.baselines.flooding_consensus`) is
maximally regular: for ``t + 1`` rounds every node multicasts its
current minimum to everyone else, folds the received minima, and
decides in the last round.  That makes the whole round a handful of
array reductions:

* **fault-free fast path** -- no partial sends and no blocked links
  means every receiver sees every sender except itself, so the folded
  inbox minimum is the global sender minimum ``m1`` for everyone except
  the (unique) node holding it, which sees the second minimum ``m2``;
* **slow path** -- with ``keep`` truncation or link faults the delivery
  pattern is an explicit boolean ``(sender, receiver)`` matrix: prefix
  truncation and column drops are applied to it, and the fold is a
  masked column minimum.

Destination order within the single per-round multicast is ascending
pid (``_everyone``), so the crash-round ``keep`` budget is exactly a
prefix of the matrix row.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

import numpy as np

from repro.sim.process import Process
from repro.sim.vec.engine import (
    Kernel,
    VecMetricsSink,
    apply_blocked,
    bit_length_array,
    keep_prefix,
)

__all__ = ["FloodingKernel"]

#: inputs must fit int64 with headroom for ``abs`` (payload_bits uses
#: ``bit_length``, which ignores sign)
_VALUE_LIMIT = 2**62


class FloodingKernel(Kernel):
    def __init__(self, t: int, values: np.ndarray) -> None:
        self.n = len(values)
        self.t = t
        self.rounds = t + 1
        self.initial = values.copy()
        self.minimum = values
        self.halted = np.zeros(self.n, dtype=bool)
        self.decided = np.zeros(self.n, dtype=bool)
        self.decision = np.zeros(self.n, dtype=np.int64)

    @classmethod
    def build(
        cls, processes: Sequence[Process]
    ) -> Optional["FloodingKernel"]:
        """Vectorize fresh flooding processes; decline anything else."""
        first = processes[0]
        t = first.t
        values = []
        for proc in processes:
            if proc.t != t or proc.halted or proc.decided:
                return None
            value = proc.minimum
            # bool is an int subclass but has different payload_bits
            if type(value) is not int:
                return None
            if not -_VALUE_LIMIT < value < _VALUE_LIMIT:
                return None
            values.append(value)
        return cls(t, np.array(values, dtype=np.int64))

    def step(
        self,
        rnd: int,
        senders: np.ndarray,
        receivers: np.ndarray,
        keep: Mapping[int, int],
        blocked: Optional[Mapping[int, frozenset[int]]],
        sink: VecMetricsSink,
    ) -> bool:
        delivered_any = False
        if rnd < self.rounds and self.n > 1:
            if keep or blocked:
                delivered_any = self._step_slow(
                    rnd, senders, receivers, keep, blocked, sink
                )
            else:
                delivered_any = self._step_fast(
                    rnd, senders, receivers, sink
                )
        # ``receive`` runs for every operational process even with an
        # empty inbox; in the final protocol round it decides and halts.
        if rnd == self.rounds - 1:
            idx = np.nonzero(receivers)[0]
            if idx.size:
                self.decision[idx] = self.minimum[idx]
                self.decided[idx] = True
                self.halted[idx] = True
        return delivered_any

    def _step_fast(
        self,
        rnd: int,
        senders: np.ndarray,
        receivers: np.ndarray,
        sink: VecMetricsSink,
    ) -> bool:
        src = np.nonzero(senders)[0]
        if src.size == 0:
            return False
        n = self.n
        counts = np.zeros(n, dtype=np.int64)
        counts[src] = n - 1
        bits = np.zeros(n, dtype=np.int64)
        bits[src] = (
            np.maximum(1, bit_length_array(np.abs(self.minimum[src])))
            * (n - 1)
        )
        sink.add_array(rnd, counts, bits)
        values = self.minimum[src]
        m1_pos = int(values.argmin())
        m1 = values[m1_pos]
        rest = np.delete(values, m1_pos)
        # With a single sender its only potential receiver is itself,
        # and it receives nothing; m2 = own value keeps the fold a
        # no-op for that case too.
        m2 = rest.min() if rest.size else m1
        recv = np.nonzero(receivers)[0]
        if recv.size:
            inbox_min = np.full(recv.shape, m1, dtype=np.int64)
            inbox_min[recv == src[m1_pos]] = m2
            self.minimum[recv] = np.minimum(self.minimum[recv], inbox_min)
        return True

    def _step_slow(
        self,
        rnd: int,
        senders: np.ndarray,
        receivers: np.ndarray,
        keep: Mapping[int, int],
        blocked: Optional[Mapping[int, frozenset[int]]],
        sink: VecMetricsSink,
    ) -> bool:
        n = self.n
        matrix = np.zeros((n, n), dtype=bool)
        matrix[senders] = True
        np.fill_diagonal(matrix, False)
        for pid, budget in keep.items():
            keep_prefix(matrix[pid], budget)
        if blocked:
            apply_blocked(matrix, blocked, sink)
        counts = matrix.sum(axis=1).astype(np.int64)
        if not counts.any():
            return False
        bits_each = np.maximum(
            1, bit_length_array(np.abs(self.minimum))
        )
        sink.add_array(rnd, counts, counts * bits_each)
        sentinel = np.iinfo(np.int64).max
        incoming = np.where(matrix, self.minimum[:, None], sentinel)
        column_min = incoming.min(axis=0)
        recv = receivers & (column_min < sentinel)
        self.minimum[recv] = np.minimum(
            self.minimum[recv], column_min[recv]
        )
        return True

    def reset_nodes(self, pids: Sequence[int]) -> None:
        self.minimum[pids] = self.initial[pids]
        self.halted[pids] = False
        self.decided[pids] = False

    def next_wake(self, rnd: int, active: np.ndarray) -> int:
        return rnd + 1

    def finalize(self, processes: Sequence[Process]) -> None:
        for pid, proc in enumerate(processes):
            proc.minimum = int(self.minimum[pid])
            if self.halted[pid]:
                proc.halted = True
            if self.decided[pid]:
                proc.decide(int(self.decision[pid]))
