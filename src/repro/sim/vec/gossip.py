"""Structure-of-arrays kernel for the gossip protocol (Fig. 5).

All per-node dict/set state of :class:`repro.core.gossip.GossipProcess`
becomes boolean membership matrices over ``(node, member)``:

* ``E``/``DE`` -- extant set and its probe delta,
* ``C``/``DC`` -- completion set and its delta (Part 2),
* ``Iq`` -- pending inquirers awaiting a response.

Rumor *values* need no per-entry storage: every extant entry for node
``q`` anywhere in the system carries ``q``'s initial rumor (entries
originate from ``q``'s own pair, and a churn rejoin resets ``q`` to the
same initial rumor), so ``E`` row bits plus the initial rumor vector
reconstruct the exact extant dicts and decisions.

Set transport is one boolean matrix product per round: with delivery
matrix ``D`` (``D[i, q]`` = a message from ``i`` reached ``q``) and
payload membership ``P`` (each sender's delta/full set snapshot at send
time), receivers absorb ``D.T @ P`` -- numpy's bool matmul is exactly
the OR-AND semiring.

The side effects the object code performs while *building* a round's
send list (delta clears, completion updates at push time, inquirer-list
clears, the final-inquiry flag) fire here for every active sender
unconditionally, before ``keep`` truncation and link filtering touch
the delivery matrix -- matching ``collect_sends``, which always
evaluates ``send()`` fully.
"""

from __future__ import annotations

from typing import Any, Mapping, Optional, Sequence

import numpy as np

from repro.core.params import ProtocolParams
from repro.graphs.families import scv_inquiry_graph
from repro.graphs.graph import Graph
from repro.sim.process import Process, payload_bits
from repro.sim.vec.engine import (
    Kernel,
    VecMetricsSink,
    apply_blocked,
    bool_transport,
    keep_prefix,
)

__all__ = ["GossipCore", "GossipKernel", "adjacency_matrix"]

_ENTRY_BITS = 48  # matches repro.core.gossip._ENTRY_BITS


def adjacency_matrix(graph: Graph, n: int, rows: np.ndarray) -> np.ndarray:
    """Boolean adjacency for the given row mask (neighbor tuples are
    ascending, so row bits preserve the object code's send order)."""
    adj = np.zeros((n, n), dtype=bool)
    for pid in np.nonzero(rows)[0]:
        neighbors = graph.neighbors(int(pid))
        if neighbors:
            adj[pid, list(neighbors)] = True
    return adj


def deliver(
    attempts: np.ndarray,
    senders_with_group: np.ndarray,
    keep: Mapping[int, int],
    blocked: Optional[Mapping[int, frozenset[int]]],
    sink: VecMetricsSink,
) -> np.ndarray:
    """Apply the crash-round ``keep`` prefix and the link filter to an
    attempt matrix, returning the delivery matrix.

    ``attempts`` rows must already be zero outside
    ``senders_with_group``; ``keep`` budgets apply only to senders that
    produced a group this round (mirroring ``collect_sends``).
    """
    matrix = attempts
    for pid, budget in keep.items():
        if senders_with_group[pid]:
            keep_prefix(matrix[pid], budget)
    if blocked:
        apply_blocked(matrix, blocked, sink)
    return matrix


class GossipCore:
    """Shared gossip state + round logic; the checkpointing kernel runs
    it for Part 1 with the end-of-run decide/halt suppressed."""

    def __init__(
        self,
        params: ProtocolParams,
        graph: Graph,
        rumors: Sequence[Any],
    ) -> None:
        n = params.n
        self.n = n
        self.params = params
        self.little = np.zeros(n, dtype=bool)
        self.little[: params.little_count] = True
        self.committee = adjacency_matrix(graph, n, self.little)
        self.has_committee = self.committee.any(axis=1)
        self.delta = params.little_delta
        self.gamma = params.little_probe_rounds
        self.phase_len = 2 + self.gamma
        self.phases = params.gossip_phase_count
        self.part1_end = self.phases * self.phase_len
        self.end_round = 2 * self.part1_end
        self.rumors = list(rumors)
        self.resp_bits = np.array(
            [
                payload_bits((pid, self.rumors[pid]))
                for pid in range(n)
            ],
            dtype=np.int64,
        )
        self._inquiry_adj: dict[int, np.ndarray] = {}

        eye = np.eye(n, dtype=bool)
        self.E = eye.copy()
        self.DE = eye.copy()
        self.C = eye.copy()
        self.DC = eye.copy()
        self.survived = np.ones(n, dtype=bool)
        self.final_inquiry = np.zeros(n, dtype=bool)
        # probe sentinel: start < 0 means "no probe instance"
        self.probe_start = np.full(n, -1, dtype=np.int64)
        self.paused = np.zeros(n, dtype=bool)
        self.Iq = np.zeros((n, n), dtype=bool)

    def inquiry_adjacency(self, index: int) -> np.ndarray:
        adj = self._inquiry_adj.get(index)
        if adj is None:
            graph = scv_inquiry_graph(self.n, index, self.params.seed)
            adj = adjacency_matrix(graph, self.n, self.little)
            self._inquiry_adj[index] = adj
        return adj

    def reset_nodes(self, pids: Sequence[int]) -> None:
        for matrix in (self.E, self.DE, self.C, self.DC, self.Iq):
            matrix[pids] = False
        for pid in pids:
            self.E[pid, pid] = True
            self.DE[pid, pid] = True
            self.C[pid, pid] = True
            self.DC[pid, pid] = True
        self.survived[pids] = True
        self.final_inquiry[pids] = False
        self.probe_start[pids] = -1
        self.paused[pids] = False

    def locate(self, rnd: int) -> Optional[tuple[int, int, int]]:
        if rnd < 0 or rnd >= self.end_round:
            return None
        part = 1 if rnd < self.part1_end else 2
        local = rnd if part == 1 else rnd - self.part1_end
        return (part, local // self.phase_len + 1, local % self.phase_len)

    def _refresh_probes(self, rnd: int, offset: int, who: np.ndarray) -> None:
        """``GossipProcess._probe_for``: (re)create the phase's probing
        instance for the little nodes in ``who``."""
        start = rnd - (offset - 2)
        last = self.probe_start + self.gamma - 1
        stale = (
            (offset == 2)
            | (self.probe_start < 0)
            | (rnd < self.probe_start)
            | (rnd > last)
        )
        renew = who & stale & (self.probe_start != start)
        self.probe_start[renew] = start
        self.paused[renew] = False

    def step(
        self,
        rnd: int,
        senders: np.ndarray,
        receivers: np.ndarray,
        keep: Mapping[int, int],
        blocked: Optional[Mapping[int, frozenset[int]]],
        sink: VecMetricsSink,
    ) -> tuple[bool, np.ndarray]:
        """One gossip round; returns ``(delivered_any, deciders)``.

        ``deciders`` is the mask of receivers that reached the decision
        round (the standalone kernel decides and halts them; the
        checkpointing wrapper suppresses both).
        """
        n = self.n
        where = self.locate(rnd)
        no_deciders = np.zeros(n, dtype=bool)
        if where is None:
            return False, no_deciders
        part, index, offset = where

        attempts = np.zeros((n, n), dtype=bool)
        bits_each = np.ones(n, dtype=np.int64)
        if offset == 0:
            if part == 1:
                eligible = senders & self.little & self.survived
                if index == self.phases:
                    self.final_inquiry[eligible] = True
                attempts[eligible] = (
                    self.inquiry_adjacency(index)[eligible]
                    & ~self.E[eligible]
                )
                # inquiry payload is the constant 1 -> 1 bit
            else:
                eligible = (
                    senders
                    & self.little
                    & self.survived
                    & self.final_inquiry
                )
                fresh = self.inquiry_adjacency(index) & ~self.C
                attempts[eligible] = fresh[eligible]
                pushing = attempts.any(axis=1)
                # at-call side effect: completion absorbs the full fresh
                # set regardless of keep truncation / link drops
                self.C[pushing] |= fresh[pushing]
                self.DC[pushing] |= fresh[pushing]
                bits_each = np.maximum(
                    1, self.E.sum(axis=1, dtype=np.int64) * _ENTRY_BITS
                )
        elif offset == 1:
            responding = senders & self.Iq.any(axis=1)
            attempts[responding] = self.Iq[responding]
            self.Iq[responding] = False  # cleared at call
            bits_each = self.resp_bits
        else:
            self._refresh_probes(rnd, offset, senders & self.little)
            probing = (
                senders & self.little & ~self.paused & self.has_committee
            )
            attempts[probing] = self.committee[probing]
            if part == 1:
                payload = self.DE.copy()
                self.DE[probing] = False  # delta shipped, cleared at call
                bits_each = np.maximum(
                    1, self.E.sum(axis=1, dtype=np.int64) * _ENTRY_BITS
                )
            else:
                payload = self.DC.copy()
                self.DC[probing] = False
                bits_each = np.maximum(
                    1, self.C.sum(axis=1, dtype=np.int64) * _ENTRY_BITS
                )

        with_group = attempts.any(axis=1)
        delivered = deliver(attempts, with_group, keep, blocked, sink)
        counts = delivered.sum(axis=1).astype(np.int64)
        delivered_any = bool(counts.any())
        if delivered_any:
            sink.add_array(rnd, counts, counts * bits_each)

        # -- receive phase ------------------------------------------------
        received = delivered.copy()
        received[:, ~receivers] = False
        if offset == 0:
            if part == 1:
                got = received.any(axis=0)
                self.Iq[got] = received.T[got]  # replace only when non-empty
            else:
                contrib = bool_transport(received, self.E)  # full extant ships
                self._absorb_extant(contrib, receivers)
        elif offset == 1:
            if part == 1:
                # responders ship their own pair
                self._absorb_extant(received.T, receivers)
        else:
            little_recv = receivers & self.little
            in_window = (
                little_recv
                & (self.probe_start >= 0)
                & (self.probe_start <= rnd)
                & (rnd <= self.probe_start + self.gamma - 1)
            )
            starved = received.sum(axis=0) < self.delta
            self.paused |= in_window & ~self.paused & starved
            if part == 1:
                contrib = bool_transport(received, payload)
                self._absorb_extant(contrib, little_recv)
            else:
                contrib = bool_transport(received, payload)
                fresh = contrib & ~self.C
                fresh[~little_recv] = False
                self.C |= fresh
                self.DC |= fresh
            finished = in_window & (rnd >= self.probe_start + self.gamma - 1)
            self.survived[finished] = ~self.paused[finished]

        if rnd >= self.end_round - 1:
            return delivered_any, receivers.copy()
        return delivered_any, no_deciders

    def _absorb_extant(
        self, contrib: np.ndarray, allowed: np.ndarray
    ) -> None:
        new = contrib & ~self.E
        new[~allowed] = False
        self.E |= new
        self.DE |= new

    def next_wake(self, rnd: int, active: np.ndarray) -> int:
        # little nodes and pending responders wake every round; other
        # big nodes sleep until the decision round
        if np.any(active & (self.little | self.Iq.any(axis=1))):
            return rnd + 1
        return max(rnd + 1, self.end_round - 1)

    def extant_dict(self, pid: int) -> dict[int, Any]:
        return {
            int(q): self.rumors[int(q)]
            for q in np.nonzero(self.E[pid])[0]
        }


class GossipKernel(Kernel):
    """Standalone gossip: the core plus decide-and-halt at the end."""

    def __init__(self, core: GossipCore) -> None:
        self.core = core
        self.halted = np.zeros(core.n, dtype=bool)
        self.decided = np.zeros(core.n, dtype=bool)

    @classmethod
    def build(
        cls, processes: Sequence[Process]
    ) -> Optional["GossipKernel"]:
        first = processes[0]
        params = first.params
        graph = first.graph
        if len(processes) != params.n:
            return None
        rumors = []
        for proc in processes:
            if proc.params is not params or proc.graph is not graph:
                return None
            if proc.halted or proc.decided:
                return None
            if (
                proc.extant != {proc.pid: proc.extant.get(proc.pid)}
                or proc.completion != {proc.pid}
                or not proc._survived_last
                or proc._did_final_inquiry
                or proc._probe is not None
                or proc._inquirers
                or proc._extant_delta != proc.extant
                or proc._completion_delta != proc.completion
            ):
                return None
            rumors.append(proc.extant[proc.pid])
        return cls(GossipCore(params, graph, rumors))

    def step(
        self,
        rnd: int,
        senders: np.ndarray,
        receivers: np.ndarray,
        keep: Mapping[int, int],
        blocked: Optional[Mapping[int, frozenset[int]]],
        sink: VecMetricsSink,
    ) -> bool:
        delivered_any, deciders = self.core.step(
            rnd, senders, receivers, keep, blocked, sink
        )
        idx = np.nonzero(deciders)[0]
        if idx.size:
            self.decided[idx] = True
            self.halted[idx] = True
        return delivered_any

    def reset_nodes(self, pids: Sequence[int]) -> None:
        self.core.reset_nodes(pids)
        self.halted[pids] = False
        self.decided[pids] = False

    def next_wake(self, rnd: int, active: np.ndarray) -> int:
        return self.core.next_wake(rnd, active)

    def finalize(self, processes: Sequence[Process]) -> None:
        core = self.core
        for pid, proc in enumerate(processes):
            proc.extant = core.extant_dict(pid)
            proc.completion = {
                int(q) for q in np.nonzero(core.C[pid])[0]
            }
            proc._survived_last = bool(core.survived[pid])
            if self.halted[pid]:
                proc.halted = True
            if self.decided[pid]:
                proc.decide(tuple(sorted(proc.extant.items())))
