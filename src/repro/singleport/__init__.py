"""Single-port adaptations (Section 8, Theorem 12)."""

from repro.singleport.linear_consensus import (
    LinearConsensusProcess,
    linear_consensus_schedule,
)
from repro.singleport.transformer import Segment, WindowSchedule

__all__ = [
    "LinearConsensusProcess",
    "Segment",
    "WindowSchedule",
    "linear_consensus_schedule",
]
