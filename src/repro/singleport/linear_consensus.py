"""Algorithm ``Linear-Consensus`` (Section 8, Theorem 12): binary
consensus in the single-port model in ``O(t + log n)`` rounds with
``O(n + t log n)`` bits, for ``t < n/5``.

The schedule realises the Section 8 adaptation of
``Few-Crashes-Consensus``:

* **A -- committee flooding** (AEA Part 1): ``m − 1`` windows of
  ``2·d_G`` sp-rounds over the committee graph ``G``;
* **B -- committee probing** (AEA Part 2): ``2 + ⌈lg m⌉`` windows; a
  window receiving fewer than ``δ`` probes pauses the node; survivors
  decide their candidate;
* **C -- expander spreading** (SCV Part 1): AEA Part 3's related-node
  multicast is replaced -- as Section 8 prescribes for ``t ≤ √n`` -- by
  flooding the decision from the committee survivors through the
  constant-degree graph ``H``, for ``⌈log_{3/2} n⌉ + O(1)`` windows of
  ``2·d_H`` sp-rounds;
* **D -- doubling inquiries** (SCV Part 2): per phase ``i``, a window of
  ``4·deg_i`` slots (inquiry sends, inquiry polls, response sends,
  response polls) over ``G_i``; phases stop once ``deg_i`` exceeds
  ``3t`` ("it suffices for each node to inquire 3t + 1 nodes");
* **E -- ring mop-up**: any node still undecided inquires the next
  ``min(3t + 1, n − 1)`` names cyclically; every node symmetrically
  polls the preceding names.  At most ``t + 1`` nodes are undecided by
  now, so this is the deterministic guarantee Section 8's analysis
  invokes, with ``O(t)`` slots and (in healthy executions) zero traffic.

Message roles are fixed by the round, and all payloads are tiny
integers: candidates/values are 0/1 and the inquiry sentinel is 2.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.core.params import ProtocolParams
from repro.graphs.families import scv_inquiry_degree, scv_inquiry_graph, spread_graph
from repro.graphs.graph import Graph
from repro.graphs.ramanujan import certified_ramanujan_graph
from repro.sim.singleport import SinglePortProcess

__all__ = ["LinearConsensusProcess", "linear_consensus_schedule"]

from repro.singleport.transformer import WindowSchedule

_INQUIRY = 2


def linear_consensus_schedule(params: ProtocolParams) -> tuple[WindowSchedule, dict]:
    """Build the five-segment schedule and its shared graphs."""
    committee = certified_ramanujan_graph(
        params.little_count, params.little_degree, seed=params.seed
    )
    spread = spread_graph(params.n, params.seed)
    d_committee = max(1, committee.max_degree)
    d_spread = max(1, spread.max_degree)

    schedule = WindowSchedule()
    schedule.append("flood", params.little_flood_rounds, 2 * d_committee)
    schedule.append("probe", params.little_probe_rounds, 2 * d_committee)
    spread_windows = math.ceil(math.log(max(params.n, 2), 1.5)) + 4
    schedule.append("spread", spread_windows, 2 * d_spread)

    inquiry_cap = max(3 * params.t, 1)
    phase_degrees = []
    for i in range(1, params.scv_phase_count + 1):
        degree = scv_inquiry_degree(i, params.n)
        phase_degrees.append((i, degree))
        if degree > inquiry_cap:
            break
    for i, degree in phase_degrees:
        schedule.append(f"inquire{i}", 1, 4 * degree)

    ring = min(params.n - 1, 3 * params.t + 1) if params.t > 0 else min(params.n - 1, 4)
    schedule.append("ring", 1, 4 * ring)

    shared = {
        "committee": committee,
        "spread": spread,
        "phase_degrees": phase_degrees,
        "ring": ring,
    }
    return schedule, shared


class LinearConsensusProcess(SinglePortProcess):
    """Per-node Linear-Consensus state machine (single-port)."""

    def __init__(
        self,
        pid: int,
        params: ProtocolParams,
        input_value: int,
        *,
        schedule: Optional[WindowSchedule] = None,
        shared: Optional[dict] = None,
    ):
        super().__init__(pid, params.n)
        if input_value not in (0, 1):
            raise ValueError(f"Linear-Consensus is binary; got {input_value!r}")
        if 5 * params.t >= params.n:
            raise ValueError("Linear-Consensus adapts Few-Crashes-Consensus: t < n/5")
        self.params = params
        if schedule is None or shared is None:
            schedule, shared = linear_consensus_schedule(params)
        self.schedule = schedule
        self.committee: Graph = shared["committee"]
        self.spread: Graph = shared["spread"]
        self.phase_degrees: list[tuple[int, int]] = shared["phase_degrees"]
        self.ring: int = shared["ring"]

        self.is_little = params.is_little(pid)
        self.candidate = input_value
        #: The spread value (None until this node holds the decision).
        self.value: Optional[int] = None

        self._c_neighbors = self.committee.neighbors(pid) if self.is_little else ()
        self._h_neighbors = self.spread.neighbors(pid)
        self._flood_pending = self.is_little and self.candidate == 1
        self._flood_next = False
        self._probe_paused = False
        self._probe_count = 0
        self._spread_pending = False
        self._spread_next = False
        self._inquirers: list[int] = []
        self._end = self.schedule.end

    # -- helpers ---------------------------------------------------------------

    def _phase_graph(self, name: str) -> tuple[Graph, int]:
        index = int(name[len("inquire"):])
        degree = dict(self.phase_degrees)[index]
        return scv_inquiry_graph(self.params.n, index, self.params.seed), degree

    def _ring_target(self, j: int) -> int:
        return (self.pid + 1 + j) % self.n

    def _ring_source(self, j: int) -> int:
        return (self.pid - 1 - j) % self.n

    # -- SinglePortProcess interface ----------------------------------------------

    def send(self, rnd: int) -> Optional[tuple[int, int]]:
        located = self.schedule.locate(rnd)
        if located is None:
            return None
        segment, window, slot = located
        name = segment.name

        if name == "flood":
            if not self.is_little or not self._flood_pending:
                return None
            if slot < len(self._c_neighbors):
                return (self._c_neighbors[slot], self.candidate)
            return None

        if name == "probe":
            if not self.is_little or self._probe_paused:
                return None
            if slot < len(self._c_neighbors):
                return (self._c_neighbors[slot], self.candidate)
            return None

        if name == "spread":
            if not self._spread_pending:
                return None
            if slot < len(self._h_neighbors):
                return (self._h_neighbors[slot], self.value)
            return None

        if name.startswith("inquire"):
            graph, degree = self._phase_graph(name)
            neighbors = graph.neighbors(self.pid)
            quarter = segment.window_len // 4
            if slot < quarter:
                if self.value is None and slot < len(neighbors):
                    return (neighbors[slot], _INQUIRY)
                return None
            if 2 * quarter <= slot < 3 * quarter:
                index = slot - 2 * quarter
                if self.value is not None and index < len(self._inquirers):
                    return (self._inquirers[index], self.value)
                return None
            return None

        if name == "ring":
            quarter = segment.window_len // 4
            if slot < quarter:
                if self.value is None:
                    return (self._ring_target(slot), _INQUIRY)
                return None
            if 2 * quarter <= slot < 3 * quarter:
                index = slot - 2 * quarter
                if self.value is not None and index < len(self._inquirers):
                    return (self._inquirers[index], self.value)
                return None
            return None
        return None

    def poll(self, rnd: int) -> Optional[int]:
        located = self.schedule.locate(rnd)
        if located is None:
            return None
        segment, window, slot = located
        name = segment.name
        half = segment.window_len // 2

        if name in ("flood", "probe"):
            if not self.is_little or slot < half:
                return None
            index = slot - half
            if index < len(self._c_neighbors):
                return self._c_neighbors[index]
            return None

        if name == "spread":
            if slot < half:
                return None
            index = slot - half
            if index < len(self._h_neighbors):
                return self._h_neighbors[index]
            return None

        if name.startswith("inquire"):
            graph, degree = self._phase_graph(name)
            neighbors = graph.neighbors(self.pid)
            quarter = segment.window_len // 4
            if quarter <= slot < 2 * quarter:
                index = slot - quarter
                if index < len(neighbors):
                    return neighbors[index]
                return None
            if slot >= 3 * quarter:
                if self.value is None:
                    index = slot - 3 * quarter
                    if index < len(neighbors):
                        return neighbors[index]
                return None
            return None

        if name == "ring":
            quarter = segment.window_len // 4
            if quarter <= slot < 2 * quarter:
                return self._ring_source(slot - quarter)
            if slot >= 3 * quarter:
                if self.value is None:
                    return self._ring_target(slot - 3 * quarter)
                return None
            return None
        return None

    def receive(self, rnd: int, message: Optional[tuple[int, int]]) -> None:
        located = self.schedule.locate(rnd)
        if located is None:
            return
        segment, window, slot = located
        name = segment.name

        if message is not None:
            src, payload = message
            if name == "flood":
                if payload == 1 and self.candidate == 0:
                    self.candidate = 1
                    self._flood_next = True
            elif name == "probe":
                self._probe_count += 1
                if payload == 1 and self.candidate == 0:
                    self.candidate = 1  # Fig. 1 Part 2 clause (b)
            elif name == "spread":
                if self.value is None:
                    self.value = payload
                    self._spread_next = True
            elif name.startswith("inquire") or name == "ring":
                if payload == _INQUIRY:
                    if self.value is not None:
                        self._inquirers.append(src)
                elif self.value is None:
                    self.value = payload

        # Window-boundary bookkeeping happens at the last slot.
        if rnd == segment.start + (window + 1) * segment.window_len - 1:
            self._window_end(segment, window)
        if rnd == self._end - 1:
            if self.value is not None:
                self.decide(self.value)
            self.halt()

    def _window_end(self, segment, window: int) -> None:
        name = segment.name
        if name == "flood":
            self._flood_pending = self._flood_next
            self._flood_next = False
        elif name == "probe":
            if self.is_little and not self._probe_paused:
                if self._probe_count < self.params.little_delta:
                    self._probe_paused = True
            self._probe_count = 0
            if window == segment.windows - 1:
                # End of AEA: survivors decide; their value seeds the
                # spreading segment.
                if self.is_little and not self._probe_paused:
                    self.value = self.candidate
                    self._spread_pending = True
        elif name == "spread":
            self._spread_pending = self._spread_next
            self._spread_next = False
        elif name.startswith("inquire") or name == "ring":
            self._inquirers = []

    def next_activity(self, rnd: int) -> int:
        located = self.schedule.locate(rnd)
        if located is None:
            return rnd + self._end + 1
        segment, _, _ = located
        if not self.is_little and segment.name in ("flood", "probe"):
            # Idle until the spreading segment begins.
            spread_start = self.schedule.segments[2].start
            return max(rnd + 1, spread_start)
        return rnd + 1

    def state_digest(self) -> tuple:
        """Dynamic state only (shared schedule/graph objects excluded),
        for the Theorem 13 divergence tracker."""
        return (
            self.pid,
            self.candidate,
            self.value,
            self._flood_pending,
            self._flood_next,
            self._probe_paused,
            self._probe_count,
            self._spread_pending,
            self._spread_next,
            tuple(self._inquirers),
            self.halted,
            self.decision,
        )
