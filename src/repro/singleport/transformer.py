"""Multi-port to single-port scheduling helpers (Section 8).

Section 8 adapts the multi-port algorithms by structuring communication
into *mp-rounds*, each implemented as a window of *sp-rounds*: for an
overlay of degree ``d``, a window has ``d`` send slots (the node
transmits to its ``k``-th overlay neighbor in slot ``k``) followed by
``d`` poll slots (the node checks the port of its ``k``-th neighbor in
slot ``k``).  All sends of a window therefore precede all polls of the
window, matching the multi-port round semantics exactly, and every port
receives at most one message per window, so polls drain ports
completely.

:class:`WindowSchedule` does the slot arithmetic; it is shared by
:class:`~repro.singleport.linear_consensus.LinearConsensusProcess` and
by the tests that replay multi-port phases under the single-port engine.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["WindowSchedule", "Segment"]


@dataclass(frozen=True)
class Segment:
    """A contiguous block of identical windows.

    Attributes
    ----------
    name:
        Identifier used by protocols to dispatch behaviour.
    start:
        First absolute sp-round of the segment.
    windows:
        Number of windows (mp-rounds) in the segment.
    window_len:
        Length of each window in sp-rounds.
    """

    name: str
    start: int
    windows: int
    window_len: int

    @property
    def end(self) -> int:
        """First sp-round after the segment."""
        return self.start + self.windows * self.window_len

    def locate(self, rnd: int) -> tuple[int, int]:
        """``(window index, slot within window)`` for an in-segment round."""
        offset = rnd - self.start
        return offset // self.window_len, offset % self.window_len


class WindowSchedule:
    """An ordered list of :class:`Segment` blocks with O(1)-ish lookup."""

    def __init__(self) -> None:
        self.segments: list[Segment] = []
        self._cursor = 0

    def append(self, name: str, windows: int, window_len: int) -> Segment:
        """Append a segment after everything scheduled so far."""
        if windows < 0 or window_len <= 0:
            raise ValueError(
                f"invalid segment {name!r}: windows={windows}, window_len={window_len}"
            )
        segment = Segment(name, self._cursor, windows, window_len)
        self.segments.append(segment)
        self._cursor = segment.end
        return segment

    @property
    def end(self) -> int:
        """First sp-round after the whole schedule."""
        return self._cursor

    def locate(self, rnd: int) -> tuple[Segment, int, int] | None:
        """``(segment, window, slot)`` for ``rnd``, or ``None`` if out of
        schedule.  Linear scan -- schedules have a handful of segments."""
        if rnd < 0 or rnd >= self._cursor:
            return None
        for segment in self.segments:
            if rnd < segment.end:
                window, slot = segment.locate(rnd)
                return segment, window, slot
        return None
