"""Deterministic execution traces: record a run, replay it bit-for-bit.

A :class:`Trace` captures everything observable about one execution of
the paper's protocols — every delivered message (as a structural digest
of its payload plus its destinations and bit size), every fault event
(crashes with their partial-send budgets, churn rejoins, omission /
partition link masks), and the final :class:`~repro.sim.metrics.Metrics`
/ decisions / crash set — into a JSON artifact.  Because the protocols
are deterministic state machines over absolute round numbers, the trace
pins the *entire* execution: re-running the same processes under the
trace's fault schedule on **any** backend (``Engine`` optimized or
reference, or the :mod:`repro.net` runtime over memory or TCP
transports) reproduces it exactly.

That turns two workflows into artifacts:

* **parity checks** — record on one backend, replay with verification
  on another; any divergence in what was sent, dropped, crashed or
  decided raises :class:`TraceDivergence` naming the first differing
  event;
* **bug reports** — a failing run's trace file replays the execution
  deterministically, including adaptive-adversary runs, whose crash
  choices are recorded as an oblivious schedule
  (:class:`TraceAdversary`).

The recording hooks are shared with the substrates through a small
duck-typed interface (``round_events`` / ``record_send_group`` /
``record_send_digest`` / ``record_drops``): the engine calls it with
live payloads, the net coordinator with digests its nodes computed
next to the wire.  :class:`TraceRecorder` implements it by writing a
trace; :class:`TraceChecker` implements it by verifying against one.

Payload digests use :func:`canonical`, a structural freeze (sets
sorted, objects flattened to ``(classname, fields)``), so a digest is
stable across interpreter processes and hash randomization — "the same
message" means structurally identical payload, destinations and charged
bits.

Usage::

    result = run_consensus(inputs, t=5, seed=1, record_trace="run.trace.json")
    replayed = replay_trace("run.trace.json", backend="net")
    assert replayed.metrics.summary() == result.metrics.summary()
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from typing import Any, Iterable, Mapping, Optional

from repro.sim.adversary import CrashAdversary

__all__ = [
    "Trace",
    "TraceAdversary",
    "TraceChecker",
    "TraceDivergence",
    "TraceRecorder",
    "canonical",
    "payload_digest",
    "replay_trace",
]

TRACE_VERSION = 1


class TraceDivergence(RuntimeError):
    """A replayed execution departed from its trace.

    The message names the first divergent event (round, sender, and the
    expected vs observed record), so a failed cross-backend parity
    check reads like a diff instead of a boolean.
    """


# -- structural payload digests ----------------------------------------------


def canonical(value: Any) -> Any:
    """A hashable, process-stable structural form of a payload.

    Rules: primitives pass through; dicts/lists/tuples recurse
    (NamedTuples keep their class name); sets are *sorted* by the repr
    of their canonical elements (so hash randomization cannot reorder
    them); dataclasses, ``__dict__``- and ``__slots__``-objects flatten
    to ``(classname, ((field, value), ...))``.  The result contains only
    primitives, strings and tuples, so its ``repr`` — and therefore
    :func:`payload_digest` — is identical across interpreter processes.
    """
    if value is None or isinstance(value, (bool, int, float, str, bytes)):
        return value
    if isinstance(value, dict):
        return (
            "dict",
            tuple(
                sorted(
                    ((canonical(k), canonical(v)) for k, v in value.items()),
                    key=repr,
                )
            ),
        )
    if isinstance(value, tuple):
        if hasattr(value, "_fields"):  # NamedTuple
            return (type(value).__name__, tuple(canonical(v) for v in value))
        return ("tuple", tuple(canonical(v) for v in value))
    if isinstance(value, list):
        return ("list", tuple(canonical(v) for v in value))
    if isinstance(value, (set, frozenset)):
        return ("set", tuple(sorted((canonical(v) for v in value), key=repr)))
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return (
            type(value).__name__,
            tuple(
                (field.name, canonical(getattr(value, field.name)))
                for field in dataclasses.fields(value)
            ),
        )
    if hasattr(value, "__dict__"):
        return (
            type(value).__name__,
            tuple(
                sorted((key, canonical(val)) for key, val in vars(value).items())
            ),
        )
    slots = getattr(type(value), "__slots__", None)
    if slots is not None:
        if isinstance(slots, str):
            slots = (slots,)
        return (
            type(value).__name__,
            tuple((name, canonical(getattr(value, name))) for name in slots),
        )
    raise TypeError(f"cannot canonicalise payload type {type(value)!r}")


def payload_digest(payload: Any) -> str:
    """A 64-bit hex digest of :func:`canonical` form, the trace's notion
    of message identity."""
    text = repr(canonical(payload)).encode("utf-8", "backslashreplace")
    return hashlib.sha256(text).hexdigest()[:16]


# -- the trace artifact ------------------------------------------------------


class Trace:
    """One recorded execution.

    Attributes
    ----------
    n, byzantine:
        System shape; replays validate the process vector against them.
    protocol:
        The ``run_*`` rebuild recipe (protocol name + JSON-safe
        arguments) when the recording entry point could provide one, so
        :func:`replay_trace` can reconstruct the processes standalone;
        ``None`` when the caller must supply processes.
    scenario:
        The :class:`~repro.scenarios.Scenario` dict the run used, if
        any (informational; the authoritative fault schedule is
        ``events``).
    events:
        Per-round records, ascending by round, only for rounds where
        something happened: ``{"round", "crashes" (pid -> keep),
        "rejoins" (pids), "blocked" (src -> dsts, optional), "sends"
        (src -> [[dsts, bits, digest], ...] in send order), "drops"
        (src -> count)}``.
    result:
        Footer with the recorded outcome: metrics summary, ``repr`` of
        each decision, crash set, completion flag.
    backend:
        Which substrate recorded the trace (``"sim-opt"``, ``"sim-ref"``,
        ``"net"``, ``"tcp"``); informational.
    max_rounds:
        The recording run's safety bound, reused as the replay default.
    meta:
        Free-form JSON-safe annotations bundled into the artifact --
        :mod:`repro.check` stores the violated oracles, the original
        (pre-shrink) scenario and the reproduction command here, so one
        trace file is a complete self-contained bug report.  Never
        consulted by replay.
    """

    def __init__(
        self,
        n: int,
        *,
        byzantine: Iterable[int] = (),
        protocol: Optional[dict] = None,
        scenario: Optional[dict] = None,
        events: Optional[list[dict]] = None,
        result: Optional[dict] = None,
        backend: str = "",
        max_rounds: int = 100_000,
        meta: Optional[dict] = None,
    ):
        self.n = n
        self.byzantine = tuple(sorted(byzantine))
        self.protocol = protocol
        self.scenario = scenario
        self.events = events if events is not None else []
        self.result = result or {}
        self.backend = backend
        self.max_rounds = max_rounds
        self.meta = meta or {}

    # -- serialization ---------------------------------------------------

    def to_dict(self) -> dict:
        data = {
            "version": TRACE_VERSION,
            "n": self.n,
            "byzantine": list(self.byzantine),
            "backend": self.backend,
            "max_rounds": self.max_rounds,
            "protocol": self.protocol,
            "scenario": self.scenario,
            "events": self.events,
            "result": self.result,
        }
        if self.meta:
            data["meta"] = self.meta
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "Trace":
        version = data.get("version", TRACE_VERSION)
        if version != TRACE_VERSION:
            raise ValueError(f"unsupported trace version {version!r}")
        events = []
        for event in data.get("events", ()):
            events.append(
                {
                    "round": event["round"],
                    "crashes": {
                        int(pid): keep
                        for pid, keep in event.get("crashes", {}).items()
                    },
                    "rejoins": list(event.get("rejoins", ())),
                    "blocked": (
                        {
                            int(src): list(dsts)
                            for src, dsts in event["blocked"].items()
                        }
                        if event.get("blocked")
                        else None
                    ),
                    "sends": {
                        int(src): [list(entry) for entry in entries]
                        for src, entries in event.get("sends", {}).items()
                    },
                    "drops": {
                        int(src): count
                        for src, count in event.get("drops", {}).items()
                    },
                }
            )
        return cls(
            n=data["n"],
            byzantine=data.get("byzantine", ()),
            protocol=data.get("protocol"),
            scenario=data.get("scenario"),
            events=events,
            result=data.get("result", {}),
            backend=data.get("backend", ""),
            max_rounds=data.get("max_rounds", 100_000),
            meta=data.get("meta"),
        )

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "Trace":
        return cls.from_dict(json.loads(text))

    def save(self, path) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json(indent=2) + "\n")

    @classmethod
    def load(cls, path) -> "Trace":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_json(handle.read())

    @classmethod
    def coerce(cls, value) -> "Trace":
        """Accept a :class:`Trace`, a dict, a JSON string or a file path."""
        if isinstance(value, cls):
            return value
        if isinstance(value, dict):
            return cls.from_dict(value)
        if isinstance(value, (str, os.PathLike)):
            text = str(value)
            if text.lstrip().startswith("{"):
                return cls.from_json(text)
            return cls.load(value)
        raise TypeError(f"cannot interpret {type(value)!r} as a trace")

    # -- convenience -----------------------------------------------------

    def adversary(self) -> "TraceAdversary":
        """The recorded fault schedule as an oblivious adversary."""
        return TraceAdversary(self)

    def total_sends(self) -> int:
        """Number of recorded send groups (multicasts count once)."""
        return sum(
            len(entries)
            for event in self.events
            for entries in event["sends"].values()
        )


# -- recording ---------------------------------------------------------------


class TraceRecorder:
    """Accumulates substrate callbacks into a :class:`Trace`.

    Both substrates call, per executed round and in this order:
    ``round_events(rnd, crashing, rejoining, blocked)`` once at the top
    of the round, then ``record_send_group`` /
    ``record_send_digest`` (per surviving send group, grouped by
    sender) and ``record_drops`` during the send phase.  Rounds are
    buffered and flushed when the next round opens; senders are
    serialized in ascending pid order regardless of callback arrival
    order, so the engine (pid-ordered walk) and the net coordinator
    (completion-ordered ``SENT`` reports) produce identical traces.
    """

    def __init__(
        self,
        n: int,
        *,
        byzantine: Iterable[int] = (),
        protocol: Optional[dict] = None,
        scenario: Optional[dict] = None,
        max_rounds: int = 100_000,
    ):
        self.n = n
        self.byzantine = frozenset(byzantine)
        if protocol is not None:
            try:  # keep the rebuild recipe only if it survives JSON
                protocol = json.loads(json.dumps(protocol))
            except (TypeError, ValueError):
                protocol = None
        self.protocol = protocol
        self.scenario = scenario
        self.max_rounds = max_rounds
        self.events: list[dict] = []
        self._round: Optional[int] = None
        self._crashes: dict[int, Optional[int]] = {}
        self._rejoins: list[int] = []
        self._blocked: Optional[dict] = None
        self._sends: dict[int, list[list]] = {}
        self._drops: dict[int, int] = {}

    def round_events(
        self,
        rnd: int,
        crashing: Mapping[int, Optional[int]],
        rejoining: Iterable[int],
        blocked: Optional[Mapping[int, Iterable[int]]],
    ) -> None:
        self._flush()
        self._round = rnd
        self._crashes = dict(crashing)
        self._rejoins = sorted(rejoining)
        self._blocked = (
            {src: sorted(dsts) for src, dsts in blocked.items()}
            if blocked
            else None
        )

    def record_send_group(
        self, rnd: int, src: int, dsts: Iterable[int], bits_each: int, payload: Any
    ) -> None:
        self.record_send_digest(rnd, src, dsts, bits_each, payload_digest(payload))

    def record_send_digest(
        self, rnd: int, src: int, dsts: Iterable[int], bits_each: int, digest: str
    ) -> None:
        if rnd != self._round:
            raise TraceDivergence(
                f"send recorded for round {rnd} while round {self._round} is open"
            )
        self._sends.setdefault(src, []).append([list(dsts), bits_each, digest])

    def record_drops(self, rnd: int, src: int, count: int) -> None:
        if rnd != self._round:
            raise TraceDivergence(
                f"drops recorded for round {rnd} while round {self._round} is open"
            )
        self._drops[src] = self._drops.get(src, 0) + count

    def _flush(self) -> None:
        if self._round is None:
            return
        if self._crashes or self._rejoins or self._sends or self._drops:
            event: dict = {
                "round": self._round,
                "crashes": dict(self._crashes),
                "rejoins": list(self._rejoins),
                "blocked": self._blocked,
                "sends": {src: self._sends[src] for src in sorted(self._sends)},
                "drops": {src: self._drops[src] for src in sorted(self._drops)},
            }
            self.events.append(event)
        self._round = None
        self._crashes, self._rejoins, self._blocked = {}, [], None
        self._sends, self._drops = {}, {}

    def finish(self, result, backend: str = "") -> Trace:
        """Seal the trace with the run's outcome footer."""
        self._flush()
        footer = {
            "metrics": result.metrics.summary(),
            "decisions": {
                str(pid): repr(value) for pid, value in result.decisions.items()
            },
            "crashed": sorted(result.crashed),
            "completed": result.completed,
        }
        return Trace(
            self.n,
            byzantine=self.byzantine,
            protocol=self.protocol,
            scenario=self.scenario,
            events=self.events,
            result=footer,
            backend=backend,
            max_rounds=self.max_rounds,
        )


# -- verification ------------------------------------------------------------


class TraceChecker:
    """Verifies a live run against a recorded trace, event by event.

    Presents the same callback surface as :class:`TraceRecorder`; a
    replay wires it into the backend alongside a
    :class:`TraceAdversary` built from the same trace.  Divergence —
    a send group whose destinations, charged bits or payload digest
    differ, an unexpected or missing send, a crash/rejoin set mismatch,
    or a final metrics/decisions/crash-set mismatch — raises
    :class:`TraceDivergence` at the earliest detectable point.
    """

    def __init__(self, trace: Trace):
        self.trace = trace
        self._events = {event["round"]: event for event in trace.events}
        self._pending: dict[tuple[int, int], list[list]] = {}
        for event in trace.events:
            for src, entries in event["sends"].items():
                self._pending[(event["round"], src)] = [
                    list(entry) for entry in entries
                ]
        self._drops_seen: dict[tuple[int, int], int] = {}

    def round_events(self, rnd, crashing, rejoining, blocked) -> None:
        event = self._events.get(rnd)
        expected_crashes = event["crashes"] if event else {}
        expected_rejoins = event["rejoins"] if event else []
        if dict(crashing) != dict(expected_crashes):
            raise TraceDivergence(
                f"round {rnd}: crash nomination {dict(crashing)!r} != "
                f"recorded {dict(expected_crashes)!r}"
            )
        if sorted(rejoining) != sorted(expected_rejoins):
            raise TraceDivergence(
                f"round {rnd}: rejoins {sorted(rejoining)!r} != "
                f"recorded {sorted(expected_rejoins)!r}"
            )

    def record_send_group(self, rnd, src, dsts, bits_each, payload) -> None:
        self.record_send_digest(rnd, src, dsts, bits_each, payload_digest(payload))

    def record_send_digest(self, rnd, src, dsts, bits_each, digest) -> None:
        queue = self._pending.get((rnd, src))
        if not queue:
            raise TraceDivergence(
                f"round {rnd}: unexpected send by {src} to {list(dsts)} "
                "(trace records no further sends for this sender/round)"
            )
        expected = queue.pop(0)
        observed = [list(dsts), bits_each, digest]
        if observed != expected:
            raise TraceDivergence(
                f"round {rnd}: send by {src} diverged -- observed "
                f"{observed!r}, recorded {expected!r}"
            )

    def record_drops(self, rnd, src, count) -> None:
        key = (rnd, src)
        self._drops_seen[key] = self._drops_seen.get(key, 0) + count

    def finish(self, result) -> None:
        """Final checks after the replayed run completes."""
        for (rnd, src), queue in self._pending.items():
            if queue:
                raise TraceDivergence(
                    f"round {rnd}: {len(queue)} recorded send(s) by {src} "
                    "never happened in the replay"
                )
        expected_drops = {
            (event["round"], src): count
            for event in self.trace.events
            for src, count in event["drops"].items()
        }
        if self._drops_seen != expected_drops:
            raise TraceDivergence(
                f"dropped-message mismatch: observed {self._drops_seen!r}, "
                f"recorded {expected_drops!r}"
            )
        footer = self.trace.result
        if footer:
            summary = result.metrics.summary()
            if summary != footer.get("metrics"):
                raise TraceDivergence(
                    f"metrics diverged: replay {summary!r}, "
                    f"recorded {footer.get('metrics')!r}"
                )
            decisions = {
                str(pid): repr(value) for pid, value in result.decisions.items()
            }
            if decisions != footer.get("decisions"):
                raise TraceDivergence(
                    f"decisions diverged: replay {decisions!r}, "
                    f"recorded {footer.get('decisions')!r}"
                )
            if sorted(result.crashed) != footer.get("crashed"):
                raise TraceDivergence(
                    f"crash set diverged: replay {sorted(result.crashed)!r}, "
                    f"recorded {footer.get('crashed')!r}"
                )
            if result.completed != footer.get("completed"):
                raise TraceDivergence(
                    f"completion diverged: replay {result.completed!r}, "
                    f"recorded {footer.get('completed')!r}"
                )


# -- the recorded fault schedule as an adversary -----------------------------


class TraceAdversary(CrashAdversary):
    """Replays a trace's fault events as an oblivious schedule.

    Crash nominations (with their ``keep`` budgets), churn rejoins and
    link masks are read verbatim from the trace — including those an
    *adaptive* adversary produced during recording, which is what makes
    adaptive runs replayable.  ``next_event_round`` exposes the crash /
    rejoin rounds so fast-forward behaves as in the recording run.
    """

    def __init__(self, trace: Trace):
        self.trace = trace
        self._crashes: dict[int, dict[int, Optional[int]]] = {}
        self._rejoins: dict[int, frozenset[int]] = {}
        self._blocked: dict[int, dict[int, frozenset[int]]] = {}
        rejoin_rounds: dict[int, int] = {}
        for event in trace.events:
            rnd = event["round"]
            if event["crashes"]:
                self._crashes[rnd] = dict(event["crashes"])
            if event["rejoins"]:
                self._rejoins[rnd] = frozenset(event["rejoins"])
                for pid in event["rejoins"]:
                    rejoin_rounds[pid] = rnd
            if event.get("blocked"):
                self._blocked[rnd] = {
                    src: frozenset(dsts)
                    for src, dsts in event["blocked"].items()
                }
        self._rejoin_rounds = rejoin_rounds
        self._event_rounds = sorted(set(self._crashes) | set(self._rejoins))

    def crashes_for_round(self, rnd: int, engine) -> dict[int, Optional[int]]:
        return self._crashes.get(rnd, {})

    def rejoins_for_round(self, rnd: int) -> frozenset[int]:
        return self._rejoins.get(rnd, frozenset())

    def rejoin_pids(self) -> frozenset[int]:
        return frozenset(self._rejoin_rounds)

    def next_rejoin(self, pid: int, rnd: int) -> Optional[int]:
        rejoin = self._rejoin_rounds.get(pid)
        if rejoin is not None and rejoin > rnd:
            return rejoin
        return None

    def blocked_links(self, rnd: int) -> Optional[dict[int, frozenset[int]]]:
        return self._blocked.get(rnd)

    def next_event_round(self, rnd: int) -> Optional[int]:
        for event in self._event_rounds:
            if event > rnd:
                return event
        return None

    def total_budget(self) -> int:
        return sum(len(crashes) for crashes in self._crashes.values())


# -- standalone replay -------------------------------------------------------


def replay_trace(
    trace,
    *,
    backend: str = "sim",
    optimized: bool = True,
    processes=None,
    fast_forward: bool = True,
    max_rounds: Optional[int] = None,
    check: bool = True,
):
    """Re-execute a recorded trace and return the replay's ``RunResult``.

    ``trace`` is anything :meth:`Trace.coerce` accepts (a :class:`Trace`,
    a dict, a JSON string or a file path).  When ``processes`` is
    ``None``, the process vector is rebuilt from the trace's recorded
    protocol recipe (recorded by the ``repro.api.run_*`` entry points);
    traces recorded from hand-built process lists must be replayed with
    an identical freshly-built ``processes`` list.

    ``backend`` / ``optimized`` select the replay substrate exactly as
    in the ``run_*`` entry points — the point of the exercise is that
    all of them reproduce the trace.  With ``check`` (default), every
    delivered message and fault event is verified against the trace via
    :class:`TraceChecker` and the final metrics / decisions / crash set
    against the footer, raising :class:`TraceDivergence` on the first
    difference; ``check=False`` just re-executes under the recorded
    fault schedule.
    """
    trace = Trace.coerce(trace)
    from repro import api  # late import; api imports this module

    byzantine = frozenset(trace.byzantine)
    if processes is None:
        if trace.protocol is None:
            raise ValueError(
                "trace has no recorded protocol recipe; pass processes="
            )
        processes, byzantine = api.rebuild_trace_processes(trace.protocol)
    if len(processes) != trace.n:
        raise ValueError(
            f"trace was recorded with n={trace.n}, got {len(processes)} processes"
        )
    return api._execute(
        processes,
        trace.adversary(),
        backend=backend,
        byzantine=byzantine,
        max_rounds=max_rounds if max_rounds is not None else trace.max_rounds,
        fast_forward=fast_forward,
        optimized=optimized,
        replay=trace if check else None,
    )
