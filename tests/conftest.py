"""Shared fixtures and helpers for the test suite.

Overlay graphs are memoised inside :mod:`repro.graphs`, so repeated
parameterised tests with the same ``(n, t, seed)`` are cheap.
"""

from __future__ import annotations

import random

import pytest

from repro.core.params import ProtocolParams


@pytest.fixture
def rng():
    return random.Random(0xC0FFEE)


def make_params(n: int, t: int, seed: int = 3) -> ProtocolParams:
    return ProtocolParams(n=n, t=t, seed=seed)


def random_bits(n: int, seed: int) -> list[int]:
    gen = random.Random(seed)
    return [gen.randint(0, 1) for _ in range(n)]
