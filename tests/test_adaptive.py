"""Tests for the adaptive crash adversaries and the algorithms' behavior
under them."""

import pytest

from repro import check_aea, check_consensus, run_aea, run_consensus
from repro.core.aea import aea_overlay
from repro.core.params import ProtocolParams
from repro.sim.adaptive import (
    CrashDecidersAdversary,
    NeighborhoodStarver,
    StaggeredCommitteeAdversary,
)
from tests.conftest import random_bits


class TestNeighborhoodStarver:
    def test_starved_node_pauses_rest_meets_spec(self):
        n, t = 200, 35
        params = ProtocolParams(n=n, t=t, seed=3)
        graph = aea_overlay(params)
        adversary = NeighborhoodStarver(
            graph.neighbors(0), at_round=params.little_flood_rounds - 1, budget=t
        )
        inputs = random_bits(n, 1)
        result = run_aea(inputs, t, crashes=adversary, overlay_seed=3)
        check_aea(result, inputs)
        assert 0 not in result.correct_decisions()

    def test_budget_respected(self):
        adversary = NeighborhoodStarver(range(100), at_round=0, budget=7)
        assert adversary.total_budget() == 7

    def test_consensus_still_terminates(self):
        n, t = 200, 35
        params = ProtocolParams(n=n, t=t, seed=3)
        graph = aea_overlay(params)
        adversary = NeighborhoodStarver(
            graph.neighbors(1), at_round=params.little_flood_rounds, budget=t
        )
        inputs = random_bits(n, 2)
        result = run_consensus(
            inputs, t, algorithm="few", crashes=adversary, overlay_seed=3
        )
        check_consensus(result, inputs)


class TestStaggeredCommittee:
    @pytest.mark.parametrize("seed", range(3))
    def test_one_crash_per_round_with_partial_sends(self, seed):
        n, t = 120, 20
        params = ProtocolParams(n=n, t=t, seed=0)
        adversary = StaggeredCommitteeAdversary(params.little_count, budget=t)
        inputs = random_bits(n, seed)
        result = run_consensus(inputs, t, algorithm="few", crashes=adversary)
        check_consensus(result, inputs)
        assert len(result.crashed) == t  # the budget is fully spent

    def test_crashes_target_committee(self):
        n, t = 120, 20
        params = ProtocolParams(n=n, t=t, seed=0)
        adversary = StaggeredCommitteeAdversary(params.little_count, budget=t)
        inputs = random_bits(n, 5)
        result = run_consensus(inputs, t, algorithm="few", crashes=adversary)
        assert all(pid < params.little_count for pid in result.crashed)


class TestCrashDeciders:
    @pytest.mark.parametrize("seed", range(3))
    def test_killing_deciders_cannot_block_consensus(self, seed):
        n, t = 80, 40
        adversary = CrashDecidersAdversary(budget=t, per_round=3)
        inputs = random_bits(n, seed)
        result = run_consensus(inputs, t, algorithm="many", crashes=adversary)
        check_consensus(result, inputs)

    def test_spared_nodes_never_crashed(self):
        n, t = 80, 40
        spare = {0, 1, 2, 3}
        adversary = CrashDecidersAdversary(budget=t, per_round=3, spare=spare)
        inputs = random_bits(n, 7)
        result = run_consensus(inputs, t, algorithm="many", crashes=adversary)
        check_consensus(result, inputs)
        assert result.crashed.isdisjoint(spare)

    def test_budget_bounded(self):
        n, t = 80, 10
        adversary = CrashDecidersAdversary(budget=t, per_round=5)
        inputs = random_bits(n, 8)
        result = run_consensus(inputs, t, algorithm="many", crashes=adversary)
        check_consensus(result, inputs)
        assert len(result.crashed) <= t
