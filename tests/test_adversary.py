"""Unit tests for crash schedules and adversary plumbing."""

import pytest

from repro.sim.adversary import CrashSpec, NoFailures, ScheduledCrashes, crash_schedule


class TestScheduledCrashes:
    def test_crashes_grouped_by_round(self):
        adversary = ScheduledCrashes(
            {3: CrashSpec(5, 0), 4: CrashSpec(5, 2), 7: CrashSpec(9, None)}
        )
        assert adversary.crashes_for_round(5, None) == {3: 0, 4: 2}
        assert adversary.crashes_for_round(9, None) == {7: None}
        assert adversary.crashes_for_round(6, None) == {}

    def test_next_event_round(self):
        adversary = ScheduledCrashes({1: CrashSpec(4, 0), 2: CrashSpec(10, 0)})
        assert adversary.next_event_round(0) == 4
        assert adversary.next_event_round(4) == 10
        assert adversary.next_event_round(10) is None

    def test_budget(self):
        adversary = ScheduledCrashes({i: CrashSpec(0, 0) for i in range(7)})
        assert adversary.total_budget() == 7

    def test_no_failures(self):
        adversary = NoFailures()
        assert adversary.crashes_for_round(0, None) == {}
        assert adversary.next_event_round(0) is None


class TestCrashScheduleFactory:
    def test_exact_count(self):
        adversary = crash_schedule(50, 10, seed=1, max_round=20)
        assert adversary.total_budget() == 10

    def test_deterministic_for_seed(self):
        first = crash_schedule(50, 10, seed=5, max_round=20)
        second = crash_schedule(50, 10, seed=5, max_round=20)
        assert first.schedule == second.schedule

    def test_different_seeds_differ(self):
        first = crash_schedule(50, 10, seed=5, max_round=20)
        second = crash_schedule(50, 10, seed=6, max_round=20)
        assert first.schedule != second.schedule

    def test_early_kind_all_round_zero(self):
        adversary = crash_schedule(40, 8, seed=2, kind="early", max_round=30)
        assert all(spec.round == 0 for spec in adversary.schedule.values())

    def test_late_kind_in_last_quarter(self):
        adversary = crash_schedule(40, 8, seed=2, kind="late", max_round=100)
        assert all(spec.round >= 74 for spec in adversary.schedule.values())

    def test_staggered_kind_one_per_round(self):
        adversary = crash_schedule(40, 8, seed=2, kind="staggered", max_round=100)
        rounds = sorted(spec.round for spec in adversary.schedule.values())
        assert rounds == list(range(8))

    def test_victim_pool_respected(self):
        pool = list(range(10))
        adversary = crash_schedule(100, 5, seed=0, victims=pool, max_round=10)
        assert set(adversary.schedule) <= set(pool)

    def test_overdrawn_pool_rejected(self):
        with pytest.raises(ValueError):
            crash_schedule(100, 5, victims=[1, 2], max_round=10)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            crash_schedule(10, 2, kind="sideways", max_round=10)

    def test_partial_false_keeps_full_sends(self):
        adversary = crash_schedule(40, 8, seed=2, partial=False, max_round=10)
        assert all(spec.keep is None for spec in adversary.schedule.values())


class TestExplicitRng:
    """Adversary randomness is a pure function of its explicit seed/rng;
    the module-level ``random`` state is never read or advanced (which
    is what keeps sweep rows identical across ``--jobs`` counts)."""

    def test_explicit_rng_overrides_seed(self):
        import random

        a = crash_schedule(40, 8, rng=random.Random(123), max_round=20)
        b = crash_schedule(40, 8, rng=random.Random(123), seed=999, max_round=20)
        assert a.schedule == b.schedule
        c = crash_schedule(40, 8, seed=123, max_round=20)
        assert a.schedule == c.schedule

    def test_global_random_state_untouched(self):
        import random

        random.seed(0xDECAF)
        before = random.getstate()
        crash_schedule(40, 8, seed=3, max_round=20)
        crash_schedule(40, 8, seed=4, kind="late", max_round=20)
        crash_schedule(40, 8, seed=5, kind="staggered", max_round=20)
        assert random.getstate() == before

    def test_same_seed_same_schedule_regardless_of_global_state(self):
        import random

        random.seed(1)
        a = crash_schedule(64, 9, seed=42, max_round=32)
        random.seed(2)
        [random.random() for _ in range(100)]
        b = crash_schedule(64, 9, seed=42, max_round=32)
        assert a.schedule == b.schedule
