"""Satellite: the adversary regression corpus.

``tests/corpus/`` holds the worst scenarios the annealing search of
:mod:`repro.check.search` has found per kernel family, committed as
self-contained replayable trace artifacts (top-3 per family, small
instances so the files stay lean).  Every test run replays each trace
bit-for-bit on both engine variants and re-asserts the recorded bound
ratios, so a protocol change that shifts worst-case behaviour -- for
better or worse -- fails here instead of passing silently.

Regenerate (deliberately) with::

    python -m repro.check --search --seed 0 --budget 30 --n 10 --t 1 \
        --objective comm --moves crash --families <family> \
        --out tests/corpus
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.check.oracles import bound_certificate
from repro.trace import Trace, replay_trace

CORPUS_DIR = Path(__file__).parent / "corpus"
CORPUS = sorted(CORPUS_DIR.glob("*.trace.json"))

KERNEL_FAMILIES = ("flooding", "gossip", "checkpointing")


def _meta(path: Path) -> dict:
    return json.loads(path.read_text())["meta"]["repro.search"]


def test_corpus_is_seeded():
    """Top-3 per kernel family, as the search committed them."""
    assert CORPUS, "tests/corpus/ must hold committed adversary traces"
    by_family = {family: 0 for family in KERNEL_FAMILIES}
    for path in CORPUS:
        meta = _meta(path)
        by_family[meta["family"]] += 1
        assert meta["rank"] >= 1
        assert "trajectory" in meta and meta["trajectory"]
        assert "reproduce" in meta
    for family, count in by_family.items():
        assert count == 3, f"{family}: expected top-3 corpus entries"


@pytest.mark.parametrize("path", CORPUS, ids=lambda p: p.stem)
@pytest.mark.parametrize(
    "optimized", [True, False], ids=["sim-opt", "sim-ref"]
)
def test_corpus_replays_bit_for_bit(path, optimized):
    """Each committed trace reproduces on both engine variants, every
    delivery and fault checked against the recording."""
    result = replay_trace(path, backend="sim", optimized=optimized, check=True)
    assert result.completed


@pytest.mark.parametrize("path", CORPUS, ids=lambda p: p.stem)
def test_corpus_ratios_still_hold(path):
    """Replaying recomputes the certificate the search recorded: the
    measured rounds/communication ratios must match to the digit."""
    trace = Trace.load(path)
    meta = trace.meta["repro.search"]
    recorded = meta["certificate"]
    result = replay_trace(trace, backend="sim", optimized=True, check=True)
    fresh = bound_certificate(meta["family"], trace.protocol, result)
    # round_bound depends on the clean-run baseline the search held; the
    # measurements themselves must match the recording to the digit.
    assert fresh["rounds"] == recorded["rounds"]
    assert fresh["comm"] == recorded["comm"]
    assert fresh["comm_ratio"] == recorded["comm_ratio"]
    assert fresh["comm_ok"] == recorded["comm_ok"]
    assert recorded["ok"]
    evaluation = meta["evaluation"]
    assert evaluation["completed"]
    # The committed energy is the adversary's claim; it must still be
    # reachable from the replay's own measurements.
    assert meta["energy"] <= max(
        evaluation["rounds_ratio"], evaluation["comm_ratio"]
    ) + 1e-9
