"""Integration tests for Almost-Everywhere-Agreement (Fig. 1, Thm. 5)."""

import pytest

from repro import check_aea, run_aea
from repro.core.aea import AEAProcess, aea_overlay
from repro.core.params import ProtocolParams
from repro.sim import Engine, crash_schedule
from tests.conftest import random_bits


class TestCorrectness:
    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("kind", ["random", "early", "late", "staggered"])
    def test_aea_spec_under_crashes(self, seed, kind):
        n, t = 100, 15
        inputs = random_bits(n, seed)
        result = run_aea(inputs, t, crashes=kind, seed=seed)
        check_aea(result, inputs)

    def test_all_zero_inputs_decide_zero(self):
        n, t = 80, 12
        result = run_aea([0] * n, t, crashes="random", seed=1)
        check_aea(result, [0] * n)
        values = set(result.correct_decisions().values())
        assert values <= {0}

    def test_all_one_inputs_decide_one(self):
        n, t = 80, 12
        result = run_aea([1] * n, t, crashes="random", seed=1)
        values = set(result.correct_decisions().values())
        assert values == {1}

    def test_failure_free_everyone_decides(self):
        n, t = 80, 12
        inputs = random_bits(n, 3)
        result = run_aea(inputs, t, crashes=None)
        decisions = result.correct_decisions()
        assert len(decisions) == n
        check_aea(result, inputs)

    def test_crashing_all_little_neighbors_of_one_node(self):
        # Adversarially isolate little node 0 in the committee overlay:
        # it must pause (not decide), but the rest still meet the spec.
        n, t = 200, 35
        params = ProtocolParams(n=n, t=t, seed=3)
        graph = aea_overlay(params)
        victims = list(graph.neighbors(0))
        assert len(victims) <= t
        inputs = random_bits(n, 5)
        adversary = crash_schedule(
            n, len(victims), seed=0, kind="early", victims=victims, max_round=5
        )
        processes = [AEAProcess(pid, params, inputs[pid], graph) for pid in range(n)]
        result = Engine(processes, adversary).run()
        check_aea(result, inputs)
        assert 0 not in result.correct_decisions()


class TestPerformanceShape:
    def test_rounds_linear_in_t(self):
        # Theorem 5: O(t) rounds.  The schedule is 5t - 1 + (2 + lg 5t) + 1.
        n = 200
        for t in (10, 20, 35):
            params = ProtocolParams(n=n, t=t)
            result = run_aea(random_bits(n, 1), t, crashes=None)
            bound = params.little_flood_rounds + params.little_probe_rounds + 2
            assert result.rounds <= bound

    def test_message_bound_shape(self):
        # O(n) + committee probing O(t log t · d): messages divided by
        # the bound should stay below a constant across sizes.
        ratios = []
        for n in (100, 200, 400):
            t = n // 10
            params = ProtocolParams(n=n, t=t)
            result = run_aea(random_bits(n, 2), t, crashes="random", seed=2)
            bound = n + (
                params.little_count
                * params.little_degree
                * (params.little_probe_rounds + 1)
            )
            ratios.append(result.messages / bound)
        assert max(ratios) <= 1.5

    def test_one_bit_messages(self):
        # Every AEA message carries one bit (Theorem 5).
        result = run_aea(random_bits(100, 1), 15, crashes="random", seed=3)
        assert result.bits == result.messages


class TestDegenerateSizes:
    def test_tiny_committee_t_zero(self):
        result = run_aea([1, 0] * 10, 0, crashes=None)
        check_aea(result, [1, 0] * 10)

    def test_little_count_equals_n(self):
        # t close to n/5 makes everyone little.
        n, t = 50, 9
        inputs = random_bits(n, 7)
        result = run_aea(inputs, t, crashes="random", seed=7)
        check_aea(result, inputs)
