"""Tests for the top-level run_* API."""

import pytest

from repro import (
    check_checkpointing,
    check_consensus,
    check_gossip,
    run_ab_consensus,
    run_checkpointing,
    run_consensus,
    run_gossip,
)
from repro.sim.adversary import CrashSpec, ScheduledCrashes
from tests.conftest import random_bits


class TestRunConsensus:
    def test_auto_picks_few_below_fifth(self):
        from repro.core.consensus import FewCrashesConsensusProcess

        inputs = random_bits(100, 1)
        result = run_consensus(inputs, 15, algorithm="auto", seed=1)
        check_consensus(result, inputs)
        assert isinstance(result.processes[0], FewCrashesConsensusProcess)

    def test_auto_picks_many_above_fifth(self):
        from repro.core.consensus import ManyCrashesConsensusProcess

        inputs = random_bits(60, 1)
        result = run_consensus(inputs, 30, algorithm="auto", seed=1)
        check_consensus(result, inputs)
        assert isinstance(result.processes[0], ManyCrashesConsensusProcess)

    def test_explicit_adversary_instance(self):
        inputs = random_bits(60, 2)
        adversary = ScheduledCrashes({3: CrashSpec(round=2, keep=1)})
        result = run_consensus(inputs, 9, crashes=adversary, seed=2)
        check_consensus(result, inputs)
        assert result.crashed == {3}

    def test_no_crashes(self):
        inputs = random_bits(60, 3)
        result = run_consensus(inputs, 9, crashes=None)
        check_consensus(result, inputs)
        assert result.crashed == set()

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(ValueError):
            run_consensus([0, 1], 0, algorithm="quantum")

    def test_deterministic_given_seeds(self):
        inputs = random_bits(80, 4)
        first = run_consensus(inputs, 12, seed=4, overlay_seed=1)
        second = run_consensus(inputs, 12, seed=4, overlay_seed=1)
        assert first.correct_decisions() == second.correct_decisions()
        assert first.messages == second.messages
        assert first.rounds == second.rounds


class TestRunResultSurface:
    def test_metrics_shortcuts(self):
        inputs = random_bits(60, 5)
        result = run_consensus(inputs, 9, seed=5)
        assert result.rounds == result.metrics.rounds
        assert result.messages == result.metrics.messages
        assert result.bits == result.metrics.bits
        summary = result.metrics.summary()
        assert summary["messages"] == result.messages

    def test_correct_pids_excludes_crashed(self):
        inputs = random_bits(60, 6)
        result = run_consensus(inputs, 9, seed=6)
        assert set(result.correct_pids()).isdisjoint(result.crashed)
        assert len(result.correct_pids()) == 60 - len(result.crashed)


class TestOtherEntryPoints:
    def test_run_gossip_and_checkpointing(self):
        rumors = [f"r{i}" for i in range(60)]
        gossip = run_gossip(rumors, 9, seed=1)
        check_gossip(gossip, rumors)
        ckpt = run_checkpointing(60, 9, seed=1)
        check_checkpointing(ckpt)

    def test_run_ab_consensus_behaviour_names(self):
        inputs = random_bits(60, 7)
        for behaviour in ("silent", "equivocate", "spam"):
            result = run_ab_consensus(
                inputs, 5, byzantine=[0, 9, 33], behaviour=behaviour
            )
            decisions = result.correct_decisions()
            assert len(set(decisions.values())) == 1

    def test_ab_consensus_unknown_behaviour(self):
        with pytest.raises(KeyError):
            run_ab_consensus([0] * 20, 2, byzantine=[1], behaviour="mystery")
