"""The parity/fuzz test wall for the approximate-consensus family.

Certification layers, matching the discipline every family gets:

* **spec under crashes** -- ε-agreement, range validity and termination
  (:func:`repro.properties.check_approximate`) across crash kinds,
  averaging modes and ε values;
* **hypothesis parity wall** -- random ``scenario_schedule`` scenarios
  (crashes with partial sends, omission links, partition windows, churn
  rejoins), executed on sim-ref, sim-opt and the net runtime, compared
  field-for-field via the repository's single parity definition;
* **trace round-trips** -- record on one substrate, replay with
  verification on another, in both directions;
* **fuzz-driver rotation** -- ``repro.check`` samples the family and
  runs it clean with the ε-agreement oracle and the bits-measure
  certificate armed.
"""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
import pytest

from repro import check_approximate, run_approximate
from repro.baselines.approximate import approximate_phase_count
from repro.check.driver import FAMILIES, run_config, sample_config
from repro.check.oracles import check_parity
from repro.scenarios import scenario_schedule

WALL = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)

scenario_draws = st.fixed_dictionaries(
    {
        "seed": st.integers(0, 10_000),
        "crashes": st.integers(0, 4),
        "omission_links": st.integers(0, 10),
        "partition_windows": st.integers(0, 2),
        "churn_nodes": st.integers(0, 2),
        "max_round": st.integers(6, 40),
    }
)


def _scenario(draw, n, t):
    return scenario_schedule(
        n,
        seed=draw["seed"],
        crashes=min(draw["crashes"], t),
        omission_links=draw["omission_links"],
        partition_windows=draw["partition_windows"],
        churn_nodes=min(draw["churn_nodes"], max(1, n // 8)),
        max_round=draw["max_round"],
    )


def _inputs(n, seed):
    rng = random.Random(seed)
    return [round(rng.uniform(0.0, 100.0), 4) for _ in range(n)]


class TestCorrectness:
    @pytest.mark.parametrize("seed", range(4))
    @pytest.mark.parametrize("kind", ["random", "early", "late", "staggered"])
    @pytest.mark.parametrize("mode", ["midpoint", "mean"])
    def test_eps_agreement_under_crashes(self, seed, kind, mode):
        n, t = 40, 8
        inputs = _inputs(n, seed)
        result = run_approximate(
            inputs, t, eps=0.5, mode=mode, crashes=kind, seed=seed
        )
        check_approximate(result, inputs, 0.5)

    def test_crash_model_gives_exact_agreement(self):
        # One clean round unifies every operational estimate, and later
        # dirty rounds cannot break it -- so the crash model actually
        # delivers exact agreement, not just ε.
        inputs = _inputs(30, 9)
        result = run_approximate(inputs, 6, eps=4.0, crashes="random", seed=2)
        assert len(set(result.correct_decisions().values())) == 1

    def test_failure_free_everyone_decides_in_range(self):
        n = 50
        inputs = _inputs(n, 1)
        result = run_approximate(inputs, 5, eps=1.0, crashes=None)
        decisions = result.correct_decisions()
        assert len(decisions) == n
        check_approximate(result, inputs, 1.0)
        assert all(
            min(inputs) <= v <= max(inputs) for v in decisions.values()
        )

    def test_identical_inputs_decide_that_value(self):
        result = run_approximate([7.25] * 20, 3, eps=0.5, crashes="random",
                                 seed=4)
        assert set(result.correct_decisions().values()) == {7.25}

    def test_t_zero_single_phase(self):
        inputs = [1.0, 2.0, 3.0, 4.0]
        result = run_approximate(inputs, 0, eps=10.0, crashes=None)
        check_approximate(result, inputs, 10.0)
        assert result.rounds == 2  # t + 1 + one phase

    def test_rejects_bad_mode_and_eps(self):
        with pytest.raises(ValueError):
            run_approximate([1.0, 2.0], 1, mode="median")
        with pytest.raises(ValueError):
            run_approximate([1.0, 2.0], 1, eps=0.0)
        with pytest.raises(ValueError):
            run_approximate([1.0, 2.0], 2)  # t >= n

    def test_phase_count_schedule(self):
        assert approximate_phase_count([0.0, 64.0], 1.0) == 6
        assert approximate_phase_count([5.0, 5.5], 1.0) == 1
        assert approximate_phase_count([0.0, 100.0], 0.5) == 8


class TestBitsAccounting:
    def test_every_message_is_one_float(self):
        # Estimates are floats: 64 bits each, every operational node
        # multicasts one per round.
        result = run_approximate(_inputs(24, 3), 4, eps=1.0, crashes=None)
        assert result.bits == 64 * result.messages


class TestParityWall:
    """sim-ref == sim-opt == net on the full parity surface, under
    random extended-fault scenarios."""

    @WALL
    @given(
        draw=scenario_draws,
        n=st.integers(3, 24),
        inputs_seed=st.integers(0, 10_000),
        mode=st.sampled_from(["midpoint", "mean"]),
    )
    def test_three_substrates(self, draw, n, inputs_seed, mode):
        rng = random.Random(inputs_seed)
        t = rng.randrange(0, n)
        inputs = _inputs(n, inputs_seed)
        eps = rng.choice((0.5, 1.0, 4.0))
        scenario = _scenario(draw, n, t)
        # Churn can park a rejoined node past its schedule (the run then
        # reports completed=False); a tight bound keeps the net arm fast
        # while every substrate still observes the identical cutoff.
        kwargs = dict(eps=eps, mode=mode, scenario=scenario, max_rounds=600)
        ref = run_approximate(inputs, t, backend="sim", optimized=False,
                              **kwargs)
        opt = run_approximate(inputs, t, backend="sim", optimized=True,
                              **kwargs)
        net = run_approximate(inputs, t, backend="net", **kwargs)
        check_parity(ref, opt, "sim-ref", "sim-opt")
        check_parity(ref, net, "sim-ref", "net")


class TestTraceRoundTrips:
    def test_record_and_replay_across_substrates(self):
        sc = scenario_schedule(16, seed=5, crashes=2, omission_links=3,
                               partition_windows=1, churn_nodes=1,
                               max_round=20)
        inputs = _inputs(16, 7)
        rec = run_approximate(inputs, 3, eps=0.5, crashes=sc,
                              record_trace=True, max_rounds=2000)
        for replay_kwargs in (
            dict(backend="sim", optimized=False),
            dict(backend="net"),
        ):
            rep = run_approximate(inputs, 3, eps=0.5, replay=rec.trace,
                                  max_rounds=2000, **replay_kwargs)
            check_parity(rec, rep, "opt-record", "replay")

    def test_float_payloads_survive_json(self, tmp_path):
        # Averaged estimates are arbitrary binary floats; the JSON trace
        # artifact must round-trip them exactly (repr-based floats).
        from repro import replay_trace

        path = tmp_path / "approx.trace.json"
        inputs = _inputs(12, 11)
        rec = run_approximate(inputs, 2, eps=0.5, crashes="random", seed=3,
                              record_trace=str(path))
        rep = replay_trace(str(path))
        check_parity(rec, rep, "record", "file-replay")


class TestFuzzRotation:
    def test_family_in_rotation_and_clean(self):
        assert "approximate" in FAMILIES
        index = FAMILIES.index("approximate")
        config = sample_config(0, index)
        assert config.family == "approximate"
        assert config.recipe["name"] == "approximate"
        row = run_config(config)
        assert row["violations"] == 0, row

    def test_certificate_measures_bits(self):
        from repro.check.oracles import BOUND_CONSTANTS

        measure, constant = BOUND_CONSTANTS["approximate"]
        assert measure == "bits" and constant >= 1.0
