"""Tests for the baseline comparators (and the comparisons themselves)."""

import random

import pytest

from repro import run_checkpointing, run_consensus, run_gossip
from repro.auth.signatures import SignatureService
from repro.baselines import (
    DSEverywhereProcess,
    FloodingConsensusProcess,
    NaiveCheckpointingProcess,
    NaiveGossipProcess,
)
from repro.core.params import ProtocolParams
from repro.properties import check_checkpointing, check_consensus, check_gossip
from repro.sim import Engine, crash_schedule
from tests.conftest import random_bits


class TestFloodingConsensus:
    @pytest.mark.parametrize("seed", range(3))
    def test_correct_under_crashes(self, seed):
        n, t = 60, 20
        inputs = random_bits(n, seed)
        procs = [FloodingConsensusProcess(i, n, t, inputs[i]) for i in range(n)]
        adversary = crash_schedule(n, t, seed=seed, max_round=t + 1)
        result = Engine(procs, adversary).run()
        check_consensus(result, inputs)

    def test_staggered_worst_case(self):
        n, t = 50, 25
        inputs = random_bits(n, 9)
        procs = [FloodingConsensusProcess(i, n, t, inputs[i]) for i in range(n)]
        adversary = crash_schedule(n, t, seed=1, kind="staggered", max_round=t + 1)
        result = Engine(procs, adversary).run()
        check_consensus(result, inputs)

    def test_optimal_rounds_quadratic_messages(self):
        n, t = 60, 10
        inputs = random_bits(n, 1)
        procs = [FloodingConsensusProcess(i, n, t, inputs[i]) for i in range(n)]
        result = Engine(procs).run()
        assert result.rounds == t + 1
        assert result.messages == n * (n - 1) * (t + 1)


class TestNaiveGossip:
    @pytest.mark.parametrize("seed", range(3))
    def test_correct_under_crashes(self, seed):
        n, t = 60, 11
        rumors = [f"r{i}" for i in range(n)]
        procs = [NaiveGossipProcess(i, n, rumors[i]) for i in range(n)]
        adversary = crash_schedule(n, t, seed=seed, max_round=2)
        result = Engine(procs, adversary).run()
        check_gossip(result, rumors)

    def test_two_rounds_quadratic_messages(self):
        n = 50
        procs = [NaiveGossipProcess(i, n, i) for i in range(n)]
        result = Engine(procs).run()
        assert result.rounds == 2
        assert result.messages == 2 * n * (n - 1)


class TestNaiveCheckpointing:
    @pytest.mark.parametrize("seed", range(3))
    @pytest.mark.parametrize("kind", ["random", "early", "staggered"])
    def test_correct_under_crashes(self, seed, kind):
        n, t = 50, 9
        procs = [NaiveCheckpointingProcess(i, n, t) for i in range(n)]
        adversary = crash_schedule(n, t, seed=seed, kind=kind, max_round=t + 2)
        result = Engine(procs, adversary).run()
        check_checkpointing(result)

    def test_quadratic_message_cost(self):
        n, t = 50, 9
        procs = [NaiveCheckpointingProcess(i, n, t) for i in range(n)]
        result = Engine(procs).run()
        assert result.messages == n * (n - 1) * (t + 2)


class TestDSEverywhere:
    def test_correct_with_byzantine_silence(self):
        from repro.core.byzantine import SilentByzantine

        n, t = 30, 4
        params = ProtocolParams(n=n, t=t)
        service = SignatureService(n)
        byz = set(random.Random(0).sample(range(n), t))
        procs = [
            SilentByzantine(i, n)
            if i in byz
            else DSEverywhereProcess(i, params, (i % 2), service)
            for i in range(n)
        ]
        result = Engine(procs, byzantine=frozenset(byz)).run()
        honest = set(range(n)) - byz
        decisions = result.correct_decisions()
        assert set(decisions) == honest
        assert len(set(decisions.values())) == 1


class TestCrossComparison:
    def test_consensus_beats_flooding_on_messages(self):
        # The headline of Table 1: same O(t) time class, far fewer
        # messages than the quadratic baseline.
        n, t = 200, 30
        inputs = random_bits(n, 1)
        paper = run_consensus(inputs, t, algorithm="few", seed=1)
        procs = [FloodingConsensusProcess(i, n, t, inputs[i]) for i in range(n)]
        adversary = crash_schedule(n, t, seed=1, max_round=t + 1)
        baseline = Engine(procs, adversary).run()
        assert paper.messages < baseline.messages / 10

    def test_gossip_beats_naive_at_scale(self):
        n, t = 400, 40
        rumors = list(range(n))
        paper = run_gossip(rumors, t, crashes="random", seed=1)
        procs = [NaiveGossipProcess(i, n, rumors[i]) for i in range(n)]
        baseline = Engine(procs, crash_schedule(n, t, seed=1, max_round=2)).run()
        # Gossip's committee constant is large; the asymptotic gap shows
        # in per-node load: paper gossip concentrates on 5t little
        # nodes, the baseline loads everyone quadratically.
        assert paper.messages < 6 * baseline.messages
        assert baseline.messages == pytest.approx(2 * n * (n - 1), rel=0.1)

    def test_checkpointing_beats_naive_on_messages(self):
        n, t = 150, 15
        paper = run_checkpointing(n, t, crashes="random", seed=1)
        procs = [NaiveCheckpointingProcess(i, n, t) for i in range(n)]
        baseline = Engine(procs, crash_schedule(n, t, seed=1, max_round=t + 2)).run()
        assert paper.messages < baseline.messages
