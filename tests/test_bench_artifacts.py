"""Schema validation for checked-in ``BENCH_*.json`` trajectory files.

The repository records benchmark trajectories as committed artifacts so
performance claims are inspectable data, not prose.  This test pins the
artifact contract: if ``benchmarks/bench_vec.py`` (or a future
``BENCH_*`` producer) drifts from the schema, or someone edits the
checked-in file by hand into an inconsistent state, the suite fails.
Pure JSON validation -- no numpy, no benchmark execution -- so it runs
on a bare install.
"""

import json
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent

ROW_FIELDS = {
    "family": str,
    "n": int,
    "t": int,
    "backend": str,
    "msgs_per_sec": int,
    "rounds": int,
    "messages": int,
    "bits": int,
    "elapsed_sec": float,
    "completed": bool,
}

KNOWN_BACKENDS = {"sim-ref", "sim-opt", "vec"}


def artifacts():
    return sorted(REPO_ROOT.glob("BENCH_*.json"))


def test_trajectory_artifacts_exist():
    names = [path.name for path in artifacts()]
    assert "BENCH_vec.json" in names
    assert "BENCH_engine.json" in names


@pytest.mark.parametrize(
    "path", artifacts(), ids=lambda p: p.name
)
def test_artifact_schema(path):
    data = json.loads(path.read_text())
    assert data["schema"].startswith("repro-bench-"), data["schema"]
    assert data["rows"], "artifact has no measurement rows"
    for row in data["rows"]:
        for field, kind in ROW_FIELDS.items():
            assert field in row, f"{path.name}: row missing {field!r}"
            assert isinstance(row[field], kind), (
                f"{path.name}: {field}={row[field]!r} is not {kind.__name__}"
            )
        assert row["backend"] in KNOWN_BACKENDS
        assert row["n"] > 0 and row["rounds"] > 0
        assert row["msgs_per_sec"] > 0 and row["messages"] > 0


@pytest.mark.parametrize(
    "path", artifacts(), ids=lambda p: p.name
)
def test_artifact_backends_agree_per_instance(path):
    """Rows for the same (family, n, t) must report identical protocol
    metrics across backends -- throughput may differ, executions not."""
    data = json.loads(path.read_text())
    by_instance: dict[tuple, dict] = {}
    for row in data["rows"]:
        key = (row["family"], row["n"], row["t"])
        metrics = (row["rounds"], row["messages"], row["bits"],
                   row["completed"])
        if key in by_instance:
            assert by_instance[key] == metrics, (
                f"{path.name}: backends disagree on {key}"
            )
        else:
            by_instance[key] = metrics


def test_vec_headline_meets_speedup_floor():
    """The acceptance floor: vec beats the optimized engine by >= 5x
    msgs/sec on flooding at the largest measured n."""
    data = json.loads((REPO_ROOT / "BENCH_vec.json").read_text())
    head = data["headline"]
    assert head["family"] == "flooding"
    assert head["n"] >= 2000
    assert head["speedup_vec_over_sim_opt"] >= 5.0
    # headline must be derivable from the rows it summarises
    rows = {
        row["backend"]: row
        for row in data["rows"]
        if row["family"] == "flooding" and row["n"] == head["n"]
    }
    assert rows["vec"]["msgs_per_sec"] == head["vec_msgs_per_sec"]
    assert rows["sim-opt"]["msgs_per_sec"] == head["sim_opt_msgs_per_sec"]


def test_engine_headline_meets_speedup_floor():
    """The optimized round loop must beat the reference loop by >= 2x
    msgs/sec on flooding at the largest measured n (measured ~5x; the
    floor is generous because the artifact is regenerated on varied
    hardware, not because the gap is small)."""
    data = json.loads((REPO_ROOT / "BENCH_engine.json").read_text())
    head = data["headline"]
    assert head["family"] == "flooding"
    assert head["n"] >= 2000
    assert head["speedup_opt_over_ref"] >= 2.0
    rows = {
        row["backend"]: row
        for row in data["rows"]
        if row["family"] == "flooding" and row["n"] == head["n"]
    }
    assert rows["sim-opt"]["msgs_per_sec"] == head["sim_opt_msgs_per_sec"]
    assert rows["sim-ref"]["msgs_per_sec"] == head["sim_ref_msgs_per_sec"]


def test_engine_artifact_records_telemetry_overhead():
    """The engine artifact carries the recorder-off vs recorder-on
    timing pair backing the zero-overhead-when-disabled claim; the
    structural half of the claim lives in ``tests/test_obs.py``."""
    data = json.loads((REPO_ROOT / "BENCH_engine.json").read_text())
    overhead = data["telemetry"]
    assert overhead["backend"] == "sim-opt"
    assert overhead["disabled_sec"] > 0 and overhead["enabled_sec"] > 0
    assert overhead["enabled_over_disabled"] > 0
