"""Schema validation for checked-in ``BENCH_*.json`` trajectory files.

The repository records benchmark trajectories as committed artifacts so
performance claims are inspectable data, not prose.  This test pins the
artifact contract: if ``benchmarks/bench_vec.py`` (or a future
``BENCH_*`` producer) drifts from the schema, or someone edits the
checked-in file by hand into an inconsistent state, the suite fails.
Pure JSON validation -- no numpy, no benchmark execution -- so it runs
on a bare install.
"""

import json
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent

ROW_FIELDS = {
    "family": str,
    "n": int,
    "t": int,
    "backend": str,
    "msgs_per_sec": int,
    "rounds": int,
    "messages": int,
    "bits": int,
    "elapsed_sec": float,
    "completed": bool,
}

KNOWN_BACKENDS = {"sim-ref", "sim-opt", "vec", "sim", "net", "tcp"}

#: Per-arm service rows written by ``repro-bench serve``
#: (:mod:`repro.serve.loadgen`).
SERVE_ROW_FIELDS = {
    "arm": str,
    "instances": int,
    "workers": int,
    "instances_per_sec": float,
    "p50_latency_ms": float,
    "p99_latency_ms": float,
    "peak_concurrent": int,
    "completed": int,
    "failed": int,
    "parity_checked": int,
    "elapsed_sec": float,
}

SERVE_ARMS = {"steady", "churn", "burst-1000"}

#: Per-t worst-case rows written by ``benchmarks/bench_adversary.py``.
ADVERSARY_ROW_FIELDS = {
    "family": str,
    "n": int,
    "t": int,
    "measure": str,
    "budget": int,
    "baseline_ratio": float,
    "worst_ratio": float,
    "gain": float,
    "envelope_constant": float,
    "measured_constant": float,
    "worst_rounds_ratio": float,
    "faults": int,
    "evaluations": int,
    "spot_checks": int,
}

ADVERSARY_KERNEL_FAMILIES = ("flooding", "gossip", "checkpointing")


def artifacts():
    return sorted(REPO_ROOT.glob("BENCH_*.json"))


#: Schemas whose rows are not per-backend protocol throughput.
NON_PERF_SCHEMAS = {"repro-bench-adversary/1", "repro-bench-serve/1"}


def perf_artifacts():
    """Artifacts carrying per-backend throughput rows."""
    return [
        path
        for path in artifacts()
        if json.loads(path.read_text())["schema"] not in NON_PERF_SCHEMAS
    ]


def test_trajectory_artifacts_exist():
    names = [path.name for path in artifacts()]
    assert "BENCH_vec.json" in names
    assert "BENCH_engine.json" in names
    assert "BENCH_adversary.json" in names
    assert "BENCH_net.json" in names
    assert "BENCH_serve.json" in names
    assert "BENCH_families.json" in names


@pytest.mark.parametrize(
    "path", artifacts(), ids=lambda p: p.name
)
def test_artifact_envelope(path):
    data = json.loads(path.read_text())
    assert data["schema"].startswith("repro-bench-"), data["schema"]
    assert data["rows"], "artifact has no measurement rows"
    assert "headline" in data and "generated" in data


@pytest.mark.parametrize(
    "path", perf_artifacts(), ids=lambda p: p.name
)
def test_artifact_schema(path):
    data = json.loads(path.read_text())
    for row in data["rows"]:
        for field, kind in ROW_FIELDS.items():
            assert field in row, f"{path.name}: row missing {field!r}"
            assert isinstance(row[field], kind), (
                f"{path.name}: {field}={row[field]!r} is not {kind.__name__}"
            )
        assert row["backend"] in KNOWN_BACKENDS
        assert row["n"] > 0 and row["rounds"] > 0
        assert row["msgs_per_sec"] > 0 and row["messages"] > 0


@pytest.mark.parametrize(
    "path", perf_artifacts(), ids=lambda p: p.name
)
def test_artifact_backends_agree_per_instance(path):
    """Rows for the same (family, n, t) must report identical protocol
    metrics across backends -- throughput may differ, executions not."""
    data = json.loads(path.read_text())
    by_instance: dict[tuple, dict] = {}
    for row in data["rows"]:
        key = (row["family"], row["n"], row["t"])
        metrics = (row["rounds"], row["messages"], row["bits"],
                   row["completed"])
        if key in by_instance:
            assert by_instance[key] == metrics, (
                f"{path.name}: backends disagree on {key}"
            )
        else:
            by_instance[key] = metrics


def test_vec_headline_meets_speedup_floor():
    """The acceptance floor: vec beats the optimized engine by >= 5x
    msgs/sec on flooding at the largest measured n."""
    data = json.loads((REPO_ROOT / "BENCH_vec.json").read_text())
    head = data["headline"]
    assert head["family"] == "flooding"
    assert head["n"] >= 2000
    assert head["speedup_vec_over_sim_opt"] >= 5.0
    # headline must be derivable from the rows it summarises
    rows = {
        row["backend"]: row
        for row in data["rows"]
        if row["family"] == "flooding" and row["n"] == head["n"]
    }
    assert rows["vec"]["msgs_per_sec"] == head["vec_msgs_per_sec"]
    assert rows["sim-opt"]["msgs_per_sec"] == head["sim_opt_msgs_per_sec"]


def test_engine_headline_meets_speedup_floor():
    """The optimized round loop must beat the reference loop by >= 2x
    msgs/sec on flooding at the largest measured n (measured ~5x; the
    floor is generous because the artifact is regenerated on varied
    hardware, not because the gap is small)."""
    data = json.loads((REPO_ROOT / "BENCH_engine.json").read_text())
    head = data["headline"]
    assert head["family"] == "flooding"
    assert head["n"] >= 2000
    assert head["speedup_opt_over_ref"] >= 2.0
    rows = {
        row["backend"]: row
        for row in data["rows"]
        if row["family"] == "flooding" and row["n"] == head["n"]
    }
    assert rows["sim-opt"]["msgs_per_sec"] == head["sim_opt_msgs_per_sec"]
    assert rows["sim-ref"]["msgs_per_sec"] == head["sim_ref_msgs_per_sec"]


FAMILIES_BENCH_FAMILIES = {
    "consensus", "flooding", "approximate", "lv-consensus",
}


def test_families_artifact_covers_the_cross_family_grid():
    """``BENCH_families.json`` carries every family of the cross-family
    rounds/bits series, on both engine backends, all runs completed
    (each row is correctness-checked by the producer before timing)."""
    data = json.loads((REPO_ROOT / "BENCH_families.json").read_text())
    assert data["schema"] == "repro-bench-families/1"
    seen = {
        (row["family"], row["backend"], row["n"]) for row in data["rows"]
    }
    families = {family for family, _, _ in seen}
    assert families == FAMILIES_BENCH_FAMILIES
    for family in FAMILIES_BENCH_FAMILIES:
        backends = {b for f, b, _ in seen if f == family}
        assert backends == {"sim-opt", "sim-ref"}, (
            f"{family}: missing an engine backend"
        )
    assert all(row["completed"] for row in data["rows"])


def test_families_headline_meets_bits_floor():
    """The acceptance floor: on the same width-bit instance at the
    largest measured n, lv-consensus spends >= 5x fewer payload bits
    than flooding (measured ~78x; one coordinator multicast per round
    vs all-to-all), and the headline is derivable from the rows."""
    data = json.loads((REPO_ROOT / "BENCH_families.json").read_text())
    head = data["headline"]
    assert head["bits_ratio_flooding_over_lv"] >= 5.0
    rows = {
        row["family"]: row
        for row in data["rows"]
        if row["n"] == head["n"] and row["backend"] == "sim-opt"
    }
    assert head["n"] == max(row["n"] for row in data["rows"])
    assert rows["flooding"]["bits"] == head["flooding_bits"]
    assert rows["lv-consensus"]["bits"] == head["lv_consensus_bits"]
    assert head["bits_ratio_flooding_over_lv"] == pytest.approx(
        head["flooding_bits"] / head["lv_consensus_bits"], rel=0.01
    )


def test_engine_artifact_records_telemetry_overhead():
    """The engine artifact carries the recorder-off vs recorder-on
    timing pair backing the zero-overhead-when-disabled claim; the
    structural half of the claim lives in ``tests/test_obs.py``."""
    data = json.loads((REPO_ROOT / "BENCH_engine.json").read_text())
    overhead = data["telemetry"]
    assert overhead["backend"] == "sim-opt"
    assert overhead["disabled_sec"] > 0 and overhead["enabled_sec"] > 0
    assert overhead["enabled_over_disabled"] > 0


def _adversary_data():
    return json.loads((REPO_ROOT / "BENCH_adversary.json").read_text())


def test_adversary_artifact_schema():
    """``BENCH_adversary.json`` carries the full kernel-family x t grid
    of annealed worst-case rows, each with a sane constant."""
    data = _adversary_data()
    assert data["schema"] == "repro-bench-adversary/1"
    rows = data["rows"]
    grid = set()
    for row in rows:
        for field, kind in ADVERSARY_ROW_FIELDS.items():
            assert field in row, f"adversary row missing {field!r}"
            assert isinstance(row[field], kind), (
                f"{field}={row[field]!r} is not {kind.__name__}"
            )
        assert row["family"] in ADVERSARY_KERNEL_FAMILIES
        assert 0 < row["t"] < row["n"]
        grid.add((row["family"], row["t"]))
        # The search starts from the failure-free baseline, so the worst
        # it reports can never fall below it.
        assert row["worst_ratio"] >= row["baseline_ratio"]
        assert row["gain"] >= 0
        assert abs(row["gain"] - (row["worst_ratio"] - row["baseline_ratio"])) < 1e-6
        assert row["measured_constant"] > 0
        assert row["worst_ratio"] <= 1.0, "a row breaching the envelope is a bug"
        assert row["evaluations"] > 0 and row["spot_checks"] >= 1
    ts = {t for _, t in grid}
    for family in ADVERSARY_KERNEL_FAMILIES:
        assert {(family, t) for t in ts} <= grid, f"{family}: incomplete t sweep"


def test_adversary_headline_is_derivable():
    data = _adversary_data()
    head = data["headline"]
    top = max(data["rows"], key=lambda r: (r["gain"], r["worst_ratio"]))
    for field in ("family", "n", "t", "worst_ratio", "baseline_ratio",
                  "gain", "measured_constant"):
        assert head[field] == top[field]


def test_adversary_finds_fault_sensitivity():
    """The artifact records a strictly positive adversary gain (crash
    timing measurably increases communication) for the inquiry-driven
    families, and certifies flooding as insensitive."""
    data = _adversary_data()
    by_family: dict[str, list] = {}
    for row in data["rows"]:
        by_family.setdefault(row["family"], []).append(row)
    assert all(row["gain"] == 0.0 for row in by_family["flooding"])
    for family in ("gossip", "checkpointing"):
        assert any(row["gain"] > 0 for row in by_family[family]), (
            f"{family}: adversary search found no fault sensitivity"
        )
        assert all(row["faults"] >= 1 or row["gain"] == 0
                   for row in by_family[family])


def test_net_artifact_batching_speedup():
    """``BENCH_net.json`` records the single-run TCP win from frame
    batching + payload interning: the batching-on arm must beat the
    frame-at-a-time arm at the largest measured n (measured ~1.8x; the
    floor is generous for hardware variance), and the batching field
    must be recorded only where it is meaningful (the TCP wire)."""
    data = json.loads((REPO_ROOT / "BENCH_net.json").read_text())
    assert data["schema"] == "repro-bench-net/1"
    for row in data["rows"]:
        assert "batching" in row
        if row["backend"] == "tcp":
            assert isinstance(row["batching"], bool)
        else:
            assert row["batching"] is None
    big = max(row["n"] for row in data["rows"])
    at_big = {
        (row["backend"], row["batching"]): row
        for row in data["rows"]
        if row["n"] == big
    }
    on = at_big[("tcp", True)]
    off = at_big[("tcp", False)]
    assert on["msgs_per_sec"] >= 1.2 * off["msgs_per_sec"], (
        f"batching speedup regressed: {on['msgs_per_sec']} vs "
        f"{off['msgs_per_sec']} msgs/sec at n={big}"
    )


def _serve_data():
    return json.loads((REPO_ROOT / "BENCH_serve.json").read_text())


def test_serve_artifact_schema():
    """``BENCH_serve.json`` carries one row per load shape, each with
    throughput, completion-latency tails and a parity-checked sample."""
    data = _serve_data()
    assert data["schema"] == "repro-bench-serve/1"
    arms = set()
    for row in data["rows"]:
        for field, kind in SERVE_ROW_FIELDS.items():
            assert field in row, f"serve row missing {field!r}"
            assert isinstance(row[field], kind), (
                f"{field}={row[field]!r} is not {kind.__name__}"
            )
        assert row["arm"] in SERVE_ARMS
        assert row["instances_per_sec"] > 0
        assert 0 < row["p50_latency_ms"] <= row["p99_latency_ms"]
        assert row["failed"] == 0
        assert row["completed"] == row["instances"]
        assert row["parity_checked"] >= 1, (
            "every arm must differentially check a sample vs the simulator"
        )
        arms.add(row["arm"])
    assert arms == SERVE_ARMS


def test_serve_artifact_meets_concurrency_floor():
    """The acceptance floor: one server process sustained >= 1000
    concurrent protocol instances over a single TCP hub (the burst arm
    submits them all at once, so peak concurrency is the batch size),
    and the churn arm recorded its latency tails."""
    data = _serve_data()
    by_arm = {row["arm"]: row for row in data["rows"]}
    burst = by_arm["burst-1000"]
    assert burst["instances"] >= 1000
    assert burst["peak_concurrent"] >= 1000
    assert by_arm["churn"]["p99_latency_ms"] > 0
