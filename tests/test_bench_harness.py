"""Tests for the experiment harness (workloads, series, runner)."""

import pytest

from repro.bench.runner import EXPERIMENTS, format_table, run_experiment
from repro.bench.series import exp_e6_scv, exp_e8_consensus_many, exp_e13_lowerbounds
from repro.bench.workloads import (
    byzantine_sample,
    input_vector,
    rumor_vector,
    table1_fault_bound,
)


class TestWorkloads:
    def test_input_kinds(self):
        assert input_vector(10, "zeros") == [0] * 10
        assert input_vector(10, "ones") == [1] * 10
        assert sum(input_vector(10, "minority_one", 3)) == 1
        assert input_vector(6, "alternating") == [0, 1, 0, 1, 0, 1]
        bits = input_vector(100, "random", 5)
        assert set(bits) <= {0, 1}
        assert input_vector(100, "random", 5) == bits  # seeded

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            input_vector(10, "gaussian")

    def test_rumors_distinct(self):
        rumors = rumor_vector(50, 1)
        assert len(set(rumors)) == 50

    def test_byzantine_sample_size_and_range(self):
        chosen = byzantine_sample(100, 10, seed=2)
        assert len(chosen) == 10
        assert all(0 <= pid < 100 for pid in chosen)

    def test_byzantine_sample_biases_committee(self):
        chosen = byzantine_sample(200, 10, seed=3, little_bias=1.0)
        committee = max(5 * 10, 8)
        assert all(pid < committee for pid in chosen)

    def test_table1_bounds_monotone_in_n(self):
        for problem in ("consensus", "gossip", "checkpointing", "byzantine"):
            small = table1_fault_bound(problem, 128)
            large = table1_fault_bound(problem, 1024)
            assert 1 <= small <= large

    def test_table1_bound_orders(self):
        # Consensus tolerates the widest linear range; the √n Byzantine
        # range is the narrowest asymptotically.
        n = 4096
        assert table1_fault_bound("gossip", n) < table1_fault_bound("consensus", n)
        assert table1_fault_bound("byzantine", n) < table1_fault_bound("consensus", n)
        huge = 2**24
        assert table1_fault_bound("byzantine", huge) < table1_fault_bound("gossip", huge)

    def test_table1_unknown_problem(self):
        with pytest.raises(ValueError):
            table1_fault_bound("leader-election", 100)


class TestFormatTable:
    def test_alignment_and_header(self):
        rows = [{"a": 1, "bb": "xy"}, {"a": 222, "bb": "z"}]
        text = format_table(rows)
        lines = text.splitlines()
        assert lines[0].startswith("a")
        assert "bb" in lines[0]
        assert len(lines) == 4
        assert len(set(len(line) for line in lines)) == 1  # aligned

    def test_empty(self):
        assert format_table([]) == "(no rows)"


class TestSeries:
    """Small-size smoke runs of representative series builders (the
    full sweeps run under benchmarks/)."""

    def test_registry_complete(self):
        expected = {
            "table1",
            "e5",
            "e6",
            "e7",
            "e8",
            "e9",
            "e10",
            "e11",
            "e12",
            "e13",
            "baselines",
            "families",
            "net",
            "scenarios",
            "fuzz",
            "adversary",
            "smoke",
        }
        assert set(EXPERIMENTS) == expected

    def test_e6_rows_cover_both_branches(self):
        rows = exp_e6_scv(n=100)
        branches = {row["branch"] for row in rows}
        assert len(branches) == 2

    def test_e8_rows_have_bound_ratio(self):
        rows = exp_e8_consensus_many(n=48)
        assert all(0 < row["rounds/bound"] <= 1.2 for row in rows)

    def test_e13_rows_meet_bounds(self):
        rows = exp_e13_lowerbounds()
        for row in rows:
            assert row["measured"] >= row["bound"] - 1

    def test_run_experiment_unknown(self):
        with pytest.raises(KeyError):
            run_experiment("e99")
