"""Integration tests for AB-Consensus (Fig. 7, Thm. 11)."""

import random

import pytest

from repro import run_ab_consensus
from repro.core.params import ProtocolParams
from tests.conftest import random_bits


def byz_sample(n, t, seed, include_little=True):
    rng = random.Random(seed)
    pool = range(n) if include_little else range(5 * t, n)
    return rng.sample(list(pool), t)


def assert_byz_consensus(result, inputs, byzantine):
    honest = set(range(len(inputs))) - set(byzantine)
    decisions = result.correct_decisions()
    assert result.completed
    assert set(decisions) == honest, "every honest node must decide"
    values = set(decisions.values())
    assert len(values) == 1, f"agreement violated: {values}"
    return values.pop()


class TestBehaviours:
    @pytest.mark.parametrize("behaviour", ["silent", "equivocate", "spam"])
    @pytest.mark.parametrize("seed", range(3))
    def test_spec_under_each_behaviour(self, behaviour, seed):
        n, t = 80, 8
        inputs = random_bits(n, seed)
        byzantine = byz_sample(n, t, seed)
        result = run_ab_consensus(
            inputs, t, byzantine=byzantine, behaviour=behaviour, seed=seed
        )
        assert_byz_consensus(result, inputs, byzantine)

    def test_no_byzantine_nodes(self):
        n, t = 60, 6
        inputs = random_bits(n, 1)
        result = run_ab_consensus(inputs, t, byzantine=[])
        value = assert_byz_consensus(result, inputs, [])
        assert value in (0, 1)

    def test_unanimous_honest_inputs_win(self):
        # All honest little nodes hold 1: the max rule must return 1.
        n, t = 60, 6
        inputs = [1] * n
        byzantine = byz_sample(n, t, 3)
        result = run_ab_consensus(inputs, t, byzantine=byzantine, behaviour="silent")
        assert assert_byz_consensus(result, inputs, byzantine) == 1

    def test_all_zero_honest_inputs(self):
        n, t = 60, 6
        inputs = [0] * n
        byzantine = byz_sample(n, t, 4)
        result = run_ab_consensus(inputs, t, byzantine=byzantine, behaviour="silent")
        assert assert_byz_consensus(result, inputs, byzantine) == 0

    def test_byzantine_messages_not_counted(self):
        n, t = 60, 6
        inputs = random_bits(n, 2)
        byzantine = byz_sample(n, t, 2)
        result = run_ab_consensus(inputs, t, byzantine=byzantine, behaviour="spam")
        assert result.metrics.faulty_messages > 0
        # The headline count covers non-faulty senders only.
        honest_senders = set(result.metrics.per_node_messages)
        assert honest_senders.isdisjoint(byzantine)


class TestValidation:
    def test_rejects_t_at_half(self):
        with pytest.raises(ValueError):
            run_ab_consensus([0] * 10, 5)

    def test_rejects_too_many_byzantine(self):
        with pytest.raises(ValueError):
            run_ab_consensus([0] * 20, 2, byzantine=[1, 2, 3])


class TestPerformanceShape:
    def test_rounds_linear_in_t(self):
        # Theorem 11: O(t) rounds (the DS part dominates).
        for t in (4, 8, 16):
            n = 12 * t
            inputs = random_bits(n, 1)
            result = run_ab_consensus(inputs, t, byzantine=byz_sample(n, t, 1))
            params = ProtocolParams(n=n, t=t)
            bound = (t + 4) + params.scv_spread_rounds + 4
            assert result.rounds <= bound

    def test_message_quadratic_in_committee_linear_in_n(self):
        # Theorem 11: O(t² + n) messages from non-faulty nodes.
        rows = []
        for t in (4, 8):
            n = 20 * t
            inputs = random_bits(n, 5)
            result = run_ab_consensus(inputs, t, byzantine=byz_sample(n, t, 5))
            m = ProtocolParams(n=n, t=t).byz_little_count
            bound = 6 * m * m + 30 * n
            rows.append((result.messages, bound))
        assert all(messages <= bound for messages, bound in rows)
