"""The repro.check subsystem: differential fuzzing, oracles, shrinking.

Acceptance bar (ISSUE 4): a bounded fuzz budget runs clean on every
protocol family across sim-opt/sim-ref/net; a deliberately injected
fault (a wrong decision under a crafted split-vote scenario) is caught
by the safety oracle, shrunk to a minimal scenario, and reproduced via
``replay_trace`` from the emitted self-contained artifact.
"""

import pytest

from repro import PropertyViolation, check_consensus, replay_trace
from repro.check.cli import main as check_main
from repro.check.driver import (
    DEFAULT_BACKENDS,
    FAMILIES,
    FuzzConfig,
    fuzz_unit,
    run_config,
    sample_config,
)
from repro.check.oracles import (
    OracleViolation,
    bound_certificate,
    check_parity,
    in_crash_model,
    run_oracles,
)
from repro.check.shrink import emit_artifact, oracle_categories, shrink_scenario
from repro.scenarios import (
    ChurnSpec,
    CrashEvent,
    OmissionSpec,
    PartitionSpec,
    Scenario,
)
from repro.trace import Trace


class TestSampling:
    def test_deterministic_and_index_sensitive(self):
        a = sample_config(3, 5)
        b = sample_config(3, 5)
        assert a == b
        assert a != sample_config(3, 6)
        assert a != sample_config(4, 5)

    def test_families_cycle(self):
        seen = {sample_config(0, i).family for i in range(len(FAMILIES))}
        assert seen == set(FAMILIES)

    def test_configs_are_valid(self):
        from repro.sim.vec import HAVE_NUMPY, KERNEL_FAMILIES

        for index in range(len(FAMILIES)):
            config = sample_config(1, index)
            if config.scenario is not None:
                config.scenario.validate()
            assert config.max_rounds > 0
            if config.family in KERNEL_FAMILIES and HAVE_NUMPY:
                assert config.backends == DEFAULT_BACKENDS + ("vec",)
            else:
                assert config.backends == DEFAULT_BACKENDS

    def test_global_random_untouched(self):
        import random

        random.seed(99)
        state = random.getstate()
        sample_config(0, 11)
        assert random.getstate() == state


class TestDifferentialClean:
    """One configuration per family runs clean across all backends."""

    @pytest.mark.parametrize("index", range(len(FAMILIES)))
    def test_family_clean(self, index):
        row = fuzz_unit(
            {"index": index, "fuzz_seed": 0, "families": "", "backends": ""}
        )
        assert row["violations"] == 0, row.get("violation_details")
        assert row["family"] == FAMILIES[index % len(FAMILIES)]

    def test_rows_deterministic(self):
        params = {"index": 1, "fuzz_seed": 5, "families": "", "backends": ""}
        assert fuzz_unit(dict(params)) == fuzz_unit(dict(params))


class TestParityOracle:
    def _result(self):
        from repro import run_consensus

        return run_consensus([0, 1] * 10, 3, seed=2)

    def test_identical_results_pass(self):
        a, b = self._result(), self._result()
        check_parity(a, b)

    def test_divergence_names_field(self):
        a, b = self._result(), self._result()
        b.metrics.messages += 1
        with pytest.raises(OracleViolation, match="metrics summary"):
            check_parity(a, b, "left", "right")
        b.metrics.messages -= 1
        b.decisions[0] = 42
        with pytest.raises(OracleViolation, match="decisions"):
            check_parity(a, b)


class TestOracleBattery:
    def test_in_crash_model_gating(self):
        recipe = {"name": "consensus", "inputs": [0, 1] * 10, "t": 3}
        assert in_crash_model(recipe, None)
        crash_only = Scenario(n=20, crashes=[CrashEvent(1, 0)])
        assert in_crash_model(recipe, crash_only)
        over_budget = Scenario(
            n=20, crashes=[CrashEvent(pid, 0) for pid in range(4)]
        )
        assert not in_crash_model(recipe, over_budget)
        assert not in_crash_model(
            recipe, Scenario(n=20, omissions=[OmissionSpec(0, 1, (0,))])
        )
        assert not in_crash_model(
            recipe, Scenario(n=20, churn=[ChurnSpec(0, 1, 3)])
        )

    def test_bound_certificate_records_constants(self):
        from repro import run_consensus

        inputs = [0, 1] * 15
        result = run_consensus(inputs, 4, algorithm="few", seed=1)
        recipe = {
            "name": "consensus", "inputs": inputs, "t": 4, "algorithm": "few",
        }
        cert = bound_certificate("consensus-few", recipe, result)
        assert cert["ok"] and cert["rounds_ok"] and cert["comm_ok"]
        assert cert["comm_measure"] == "bits"
        assert cert["constant"] > 0 and cert["envelope"] > 0
        assert cert["comm"] == result.bits
        assert 0 < cert["comm_ratio"] < 1

    def test_metrics_inconsistency_detected(self):
        from repro import run_consensus

        result = run_consensus([0, 1] * 10, 3, seed=2)
        result.metrics.messages += 5  # corrupt the headline tally
        recipe = {"name": "consensus", "inputs": [0, 1] * 10, "t": 3}
        violations, _ = run_oracles(
            "consensus-few", recipe, result, include_safety=False,
            include_bounds=False,
        )
        assert any(v["oracle"] == "invariant:metrics" for v in violations)

    def test_post_crash_silence_detected_on_doctored_trace(self):
        from repro import run_consensus

        result = run_consensus(
            [0, 1] * 10, 3, crashes="random", seed=3, record_trace=True
        )
        trace = result.trace
        # Doctor the trace: give a crashed node a send two rounds after
        # its crash (the engine can never produce this).
        victim = sorted(result.crashed)[0]
        crash_round = min(
            event["round"]
            for event in trace.events
            if victim in event["crashes"]
        )
        doctored = Trace.from_dict(trace.to_dict())
        doctored.events.append(
            {
                "round": crash_round + 2,
                "crashes": {},
                "rejoins": [],
                "blocked": None,
                "sends": {victim: [[[0], 1, "deadbeef"]]},
                "drops": {},
            }
        )
        doctored.events.sort(key=lambda event: event["round"])
        recipe = {"name": "consensus", "inputs": [0, 1] * 10, "t": 3}
        violations, _ = run_oracles(
            "consensus-few", recipe, result, trace=doctored,
            include_safety=False, include_bounds=False,
        )
        assert any(
            v["oracle"] == "invariant:post-crash-silence" for v in violations
        )

    def test_churn_consistency_detected(self):
        from repro import run_consensus

        scenario = Scenario(n=20, churn=[ChurnSpec(2, 1, 4, 0)])
        result = run_consensus([0, 1] * 10, 3, scenario=scenario, crashes=None)
        recipe = {"name": "consensus", "inputs": [0, 1] * 10, "t": 3}
        violations, _ = run_oracles(
            "consensus-few", recipe, result, scenario=scenario,
            include_safety=False, include_bounds=False,
        )
        assert violations == []  # the real engine applies the rejoin
        result.crashed.add(2)  # fake a skipped rejoin
        violations, _ = run_oracles(
            "consensus-few", recipe, result, scenario=scenario,
            include_safety=False, include_bounds=False,
        )
        assert any(v["oracle"] == "invariant:churn-rejoin" for v in violations)


def _crafted_split_vote_config() -> FuzzConfig:
    """A wrong decision by construction: a permanent split-vote
    partition (the classical impossibility) plus two noise events the
    shrinker should strip away."""
    n, t = 60, 9
    inputs = [0] * (n // 2) + [1] * (n // 2)
    recipe = {"name": "consensus", "inputs": inputs, "t": t, "algorithm": "few"}
    scenario = Scenario(
        n=n,
        name="crafted-split-vote",
        partitions=[PartitionSpec(0, 4096, (tuple(range(n // 2)),))],
        crashes=[CrashEvent(55, 2, 1)],          # noise
        omissions=[OmissionSpec(3, 40, (1, 2))],  # noise
    )
    return FuzzConfig(
        index=0,
        seed=0,
        family="consensus-few",
        recipe=recipe,
        scenario=scenario,
        kind="crafted",
        max_rounds=4096,
        backends=(),             # sim-only: the fault is a safety fault
        include_safety=True,     # arm the oracle outside the crash model
    )


class TestInjectedFaultEndToEnd:
    """The acceptance pipeline: catch -> shrink -> artifact -> replay."""

    def test_caught_shrunk_and_replayed(self, tmp_path):
        config = _crafted_split_vote_config()
        row = run_config(config)
        assert row["violations"] >= 1
        details = row["violation_details"]
        assert "safety" in oracle_categories(details)

        shrunk = shrink_scenario(config, details, max_runs=120)
        minimal = shrunk.minimal
        # The noise events are gone; only the split survives.
        assert minimal.crashes == ()
        assert minimal.omissions == ()
        assert len(minimal.partitions) == 1
        assert minimal.shrink_size() < config.scenario.shrink_size()
        assert shrunk.steps >= 2
        # The minimal scenario still trips the same oracle class.
        assert "safety" in oracle_categories(shrunk.violations)

        path = emit_artifact(config, shrunk, tmp_path)
        replayed = replay_trace(path)  # bit-for-bit verified replay
        with pytest.raises(PropertyViolation):
            check_consensus(replayed, config.recipe["inputs"])
        # Both partition sides decided -- the wrong decision is real
        # and reproduced, not a liveness artifact.
        assert set(replayed.correct_decisions().values()) == {0, 1}

        # The artifact is self-contained: meta names the oracle, the
        # original scenario and the reproduction commands.
        trace = Trace.load(path)
        meta = trace.meta["repro.check"]
        assert "safety" in oracle_categories(meta["violations"])
        assert meta["original_scenario"]["name"] == "crafted-split-vote"
        assert "python -m repro.check" in meta["reproduce"]["cli"]

    def test_artifact_replays_on_net_backend(self, tmp_path):
        config = _crafted_split_vote_config()
        row = run_config(config)
        shrunk = shrink_scenario(config, row["violation_details"], max_runs=40)
        path = emit_artifact(config, shrunk, tmp_path, label="net-replay")
        replayed = replay_trace(path, backend="net")
        assert set(replayed.correct_decisions().values()) == {0, 1}


def _crafted_misconverging_approximate_config() -> FuzzConfig:
    """An approximate-consensus instance with two noise events; the
    injected bug (a node that refuses to converge) violates
    ε-agreement regardless of the scenario, so the shrinker should
    strip the events away entirely."""
    n, t = 20, 3
    inputs = [float(5 * (i % 7)) for i in range(n)]
    recipe = {
        "name": "approximate", "inputs": inputs, "t": t,
        "eps": 0.5, "mode": "midpoint",
    }
    scenario = Scenario(
        n=n,
        name="crafted-misconverging-approx",
        crashes=[CrashEvent(7, 2, 1)],            # noise
        omissions=[OmissionSpec(3, 11, (1, 2))],  # noise
    )
    return FuzzConfig(
        index=0,
        seed=0,
        family="approximate",
        recipe=recipe,
        scenario=scenario,
        kind="crafted",
        max_rounds=4096,
        backends=(),
        include_safety=True,  # the omission noise leaves the model
    )


def _crafted_overspending_lv_config() -> FuzzConfig:
    """An lv-consensus instance with crash-only noise (so the run stays
    in-model and the payload-bits certificate arms); the injected bug
    multiplies the bit spend by ``n``, breaching the envelope under any
    scenario."""
    n, t = 20, 3
    # Genuinely 64-bit-wide values: payload_bits is value-dependent, so
    # narrow inputs would leave the n-fold spam under the width-based
    # envelope.
    inputs = [2**63 + 37 * i for i in range(n)]
    recipe = {"name": "lv_consensus", "inputs": inputs, "t": t, "width": 64}
    scenario = Scenario(
        n=n,
        name="crafted-overspending-lv",
        crashes=[CrashEvent(9, 1, 1), CrashEvent(11, 2, None)],  # noise
    )
    return FuzzConfig(
        index=0,
        seed=0,
        family="lv-consensus",
        recipe=recipe,
        scenario=scenario,
        kind="crafted",
        max_rounds=4096,
        backends=(),
    )


class TestBrokenImplementationCanaries:
    """Deliberately broken family implementations must be caught by the
    family-specific oracles -- ε-agreement for approximate, the
    payload-bits envelope certificate for lv-consensus -- and shrink to
    replayable artifacts, end to end."""

    def test_misconverging_approximate_node_caught(self, tmp_path, monkeypatch):
        from repro import check_approximate
        from repro.baselines.approximate import ApproximateConsensusProcess

        orig = ApproximateConsensusProcess.receive

        def skewed(self, rnd, inbox):
            if self.pid == 0:
                self.value += 100.0  # refuses to converge (the bug)
            orig(self, rnd, inbox)

        monkeypatch.setattr(ApproximateConsensusProcess, "receive", skewed)
        config = _crafted_misconverging_approximate_config()
        row = run_config(config)
        details = row.get("violation_details", [])
        assert "safety" in oracle_categories(details)
        assert any(
            "eps-agreement" in v["detail"] or "validity" in v["detail"]
            for v in details
            if v["oracle"] == "safety"
        )

        shrunk = shrink_scenario(config, details, max_runs=120)
        # The bug needs no faults at all: both noise events are stripped.
        assert shrunk.minimal.crashes == ()
        assert shrunk.minimal.omissions == ()
        assert "safety" in oracle_categories(shrunk.violations)

        path = emit_artifact(config, shrunk, tmp_path, label="approx-canary")
        replayed = replay_trace(path)
        with pytest.raises(PropertyViolation):
            check_approximate(
                replayed, config.recipe["inputs"], config.recipe["eps"]
            )

    def test_overspending_lv_node_caught(self, tmp_path, monkeypatch):
        from repro.baselines.lv_consensus import LVConsensusProcess
        from repro.sim.process import Multicast

        orig_receive = LVConsensusProcess.receive

        def spammy_send(self, rnd):
            # The bug: every node re-broadcasts every round, inflating
            # the bit spend by a factor n over the coordinator schedule.
            if rnd >= self.rounds or not self._everyone:
                return ()
            return [Multicast(self._everyone, self.value)]

        def coordinator_only_receive(self, rnd, inbox):
            # Keep the decision logic correct (only coordinator messages
            # are honored) so the breach is purely a bits overspend.
            orig_receive(self, rnd, [(s, p) for s, p in inbox if s == rnd])

        monkeypatch.setattr(LVConsensusProcess, "send", spammy_send)
        monkeypatch.setattr(
            LVConsensusProcess, "receive", coordinator_only_receive
        )
        config = _crafted_overspending_lv_config()
        row = run_config(config)
        details = row.get("violation_details", [])
        assert "bounds" in oracle_categories(details)
        bounds = next(v for v in details if v["oracle"] == "bounds")
        assert "'comm_measure': 'bits'" in bounds["detail"]
        assert "'comm_ok': False" in bounds["detail"]

        shrunk = shrink_scenario(config, details, max_runs=120)
        assert shrunk.minimal.crashes == ()  # noise stripped
        assert "bounds" in oracle_categories(shrunk.violations)

        path = emit_artifact(config, shrunk, tmp_path, label="lv-canary")
        replayed = replay_trace(path)
        cert = bound_certificate("lv-consensus", config.recipe, replayed)
        assert not cert["comm_ok"]
        assert cert["comm_measure"] == "bits"

    def test_unbroken_families_run_canary_configs_clean(self):
        for config in (
            _crafted_misconverging_approximate_config(),
            _crafted_overspending_lv_config(),
        ):
            row = run_config(config)
            assert row["violations"] == 0, row.get("violation_details")


class TestShrinkCandidates:
    def test_candidates_are_valid_and_strictly_smaller(self):
        scenario = Scenario(
            n=12,
            crashes=[CrashEvent(1, 2, 1), CrashEvent(2, 3, None)],
            omissions=[OmissionSpec(0, 5, (1, 2, 3, 4))],
            partitions=[PartitionSpec(1, 5, ((0, 1), (2, 3)))],
            churn=[ChurnSpec(7, 1, 6, 2)],
        )
        size = scenario.shrink_size()
        candidates = list(scenario.shrink_candidates())
        assert candidates
        for candidate in candidates:
            candidate.validate()
            assert candidate.shrink_size() < size

    def test_no_candidates_for_empty_scenario(self):
        assert list(Scenario(n=4).shrink_candidates()) == []


class TestCLI:
    def test_clean_run_exits_zero(self, capsys):
        assert check_main(["--seed", "0", "--budget", "2"]) == 0
        out = capsys.readouterr().out
        assert "2 configurations" in out
        assert "0 violating" in out

    def test_budget_50_runs_clean_across_all_families(self, capsys):
        # The acceptance bar: a 50-config budget rotates through every
        # family (10 families x 5 configs) without a single violation.
        assert check_main(["--seed", "0", "--budget", "50"]) == 0
        out = capsys.readouterr().out
        assert "0 violating" in out
        for family in FAMILIES:
            assert f"{family}=5" in out

    def test_only_selects_indices(self, capsys):
        assert check_main(["--seed", "0", "--only", "3", "--budget", "9"]) == 0
        assert "1 configurations" in capsys.readouterr().out

    def test_unknown_family_rejected(self):
        with pytest.raises(SystemExit):
            check_main(["--families", "nope"])

    def test_unknown_backend_rejected_at_parse_time(self):
        with pytest.raises(SystemExit, match="simref"):
            check_main(["--backends", "simref"])


class TestBenchSeries:
    def test_fuzz_rows_jobs_independent(self):
        from repro.bench.series import exp_fuzz

        serial = exp_fuzz(budget=4, seed=0, jobs=1)
        parallel = exp_fuzz(budget=4, seed=0, jobs=2)
        assert serial == parallel
        assert all(row["violations"] == 0 for row in serial)

    def test_fuzz_registered_in_runner(self):
        from repro.bench.runner import EXPERIMENTS

        assert "fuzz" in EXPERIMENTS
