"""Integration tests for Checkpointing (Fig. 6, Thm. 10)."""

import pytest

from repro import check_checkpointing, run_checkpointing
from repro.core.checkpointing import mask_to_set, set_to_mask
from repro.core.params import ProtocolParams
from repro.sim.adversary import CrashSpec, ScheduledCrashes


class TestMaskCodec:
    def test_roundtrip(self):
        members = {0, 3, 17, 64}
        assert mask_to_set(set_to_mask(members)) == frozenset(members)

    def test_empty(self):
        assert set_to_mask(set()) == 0
        assert mask_to_set(0) == frozenset()

    def test_dense(self):
        members = set(range(100))
        assert mask_to_set(set_to_mask(members)) == frozenset(members)


class TestCorrectness:
    @pytest.mark.parametrize("seed", range(3))
    def test_random_crashes(self, seed):
        result = run_checkpointing(80, 12, crashes="random", seed=seed)
        check_checkpointing(result)

    @pytest.mark.parametrize("kind", ["early", "late"])
    def test_adversary_kinds(self, kind):
        result = run_checkpointing(80, 12, crashes=kind, seed=1)
        check_checkpointing(result)

    def test_failure_free_everyone_included(self):
        n = 60
        result = run_checkpointing(n, 8, crashes=None)
        check_checkpointing(result)
        sets = set(result.correct_decisions().values())
        assert sets == {frozenset(range(n))}

    def test_silent_crash_excluded(self):
        # Condition (1) end to end: the silent-crashed node's bit loses
        # every consensus instance.
        n, t = 80, 10
        victim = 77
        schedule = ScheduledCrashes({victim: CrashSpec(round=0, keep=0)})
        result = run_checkpointing(n, t, crashes=schedule)
        check_checkpointing(result)
        decided = next(iter(result.correct_decisions().values()))
        assert victim not in decided

    def test_operational_node_included_despite_other_crashes(self):
        n, t = 80, 10
        result = run_checkpointing(n, t, crashes="random", seed=5)
        check_checkpointing(result)
        decided = next(iter(result.correct_decisions().values()))
        assert set(result.correct_pids()) <= set(decided)

    def test_rejects_large_t(self):
        with pytest.raises(ValueError):
            run_checkpointing(20, 4)


class TestPerformanceShape:
    def test_rounds_linear_in_t(self):
        # Theorem 10: O(t + log n log t) rounds.
        for n in (80, 160):
            t = n // 10
            params = ProtocolParams(n=n, t=t)
            result = run_checkpointing(n, t, crashes="random", seed=1)
            gossip_rounds = 2 * params.gossip_phase_count * (
                2 + params.little_probe_rounds
            )
            consensus_rounds = (
                params.little_flood_rounds
                + params.little_probe_rounds
                + params.scv_spread_rounds
                + 2 * params.scv_phase_count
                + 8
            )
            assert result.rounds <= gossip_rounds + consensus_rounds

    def test_combined_messages_not_per_instance(self):
        # The n concurrent consensus instances share messages: the count
        # must be of the same order as ONE consensus plus gossip, not n
        # times it.
        from repro import run_consensus, run_gossip

        n, t = 80, 10
        result = run_checkpointing(n, t, crashes="random", seed=2)
        gossip = run_gossip([1] * n, t, crashes="random", seed=2)
        consensus = run_consensus([1] * n, t, algorithm="few", crashes="random", seed=2)
        combined_budget = gossip.messages + 4 * consensus.messages
        assert result.messages <= combined_budget
        # The consensus part alone (total minus the gossip part) stays
        # near ONE instance's cost, far from n× it.
        consensus_part = result.messages - gossip.messages
        assert consensus_part < n * consensus.messages / 10
