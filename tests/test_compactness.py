"""Tests for survival subsets, dense neighborhoods and compactness
(Section 2 definitions, Theorem 2's operator)."""

import pytest

from repro.graphs.compactness import (
    compactness_profile,
    dense_neighborhood,
    generalized_neighborhood,
    is_survival_subset,
    survival_subset,
)
from repro.graphs.graph import Graph
from repro.graphs.ramanujan import certified_ramanujan_graph, paper_delta


def path_graph(n):
    return Graph.from_edges(n, [(i, i + 1) for i in range(n - 1)])


class TestSurvivalSubset:
    def test_full_regular_graph_survives_small_delta(self):
        graph = certified_ramanujan_graph(80, 8, seed=0)
        survivors = survival_subset(graph, range(80), 4)
        assert survivors == frozenset(range(80))

    def test_path_prunes_from_the_ends(self):
        # In a path with delta=2 the endpoints peel off iteratively and
        # nothing survives: this is exactly the F_B fixed point.
        graph = path_graph(10)
        assert survival_subset(graph, range(10), 2) == frozenset()

    def test_cycle_survives_delta_two(self):
        n = 10
        cycle = Graph.from_edges(n, [(i, (i + 1) % n) for i in range(n)])
        assert survival_subset(cycle, range(n), 2) == frozenset(range(n))

    def test_result_is_survival_subset(self):
        graph = certified_ramanujan_graph(60, 8, seed=2)
        base = set(range(45))
        survivors = survival_subset(graph, base, 3)
        assert is_survival_subset(graph, base, survivors, 3)

    def test_is_survival_subset_rejects_low_degree(self):
        graph = path_graph(5)
        assert not is_survival_subset(graph, range(5), {0, 1}, 2)

    def test_is_survival_subset_requires_containment(self):
        graph = path_graph(5)
        assert not is_survival_subset(graph, {0, 1}, {0, 1, 2}, 1)

    def test_removal_monotone(self):
        # Removing vertices from B can only shrink the survival subset.
        graph = certified_ramanujan_graph(60, 8, seed=2)
        big = survival_subset(graph, range(60), 3)
        small = survival_subset(graph, range(50), 3)
        assert small <= big


class TestGeneralizedNeighborhood:
    def test_radius_zero_is_self(self):
        graph = path_graph(5)
        assert generalized_neighborhood(graph, [2], 0) == frozenset({2})

    def test_radius_grows_by_hops(self):
        graph = path_graph(7)
        assert generalized_neighborhood(graph, [3], 1) == frozenset({2, 3, 4})
        assert generalized_neighborhood(graph, [3], 2) == frozenset({1, 2, 3, 4, 5})

    def test_multiple_sources(self):
        graph = path_graph(7)
        got = generalized_neighborhood(graph, [0, 6], 1)
        assert got == frozenset({0, 1, 5, 6})


class TestDenseNeighborhood:
    def test_whole_expander_is_dense(self):
        graph = certified_ramanujan_graph(64, 8, seed=0)
        dense = dense_neighborhood(graph, 0, gamma=8, delta=4)
        assert dense is not None
        assert 0 in dense

    def test_isolated_center_has_none(self):
        graph = path_graph(6)
        assert dense_neighborhood(graph, 0, gamma=2, delta=2) is None

    def test_within_restriction(self):
        graph = certified_ramanujan_graph(64, 8, seed=0)
        # Restricting to a tiny allowed set starves the degree condition.
        dense = dense_neighborhood(graph, 0, gamma=3, delta=6, within=range(4))
        assert dense is None

    def test_center_outside_within_is_none(self):
        graph = path_graph(6)
        assert dense_neighborhood(graph, 5, gamma=1, delta=1, within=[0, 1]) is None


class TestCompactnessProfile:
    def test_expander_profile_near_one(self):
        # Theorem 2 predicts a 3/4 survival fraction for genuinely
        # Ramanujan parameters; our practical overlays do much better on
        # the sizes we simulate.
        graph = certified_ramanujan_graph(100, 16, seed=0)
        delta = paper_delta(16)
        worst = compactness_profile(graph, ell=60, delta=delta, trials=10, seed=1)
        assert worst >= 0.75

    def test_sparse_graph_profile_zero(self):
        graph = path_graph(30)
        assert compactness_profile(graph, ell=10, delta=2, trials=5, seed=1) == 0.0

    def test_invalid_ell_rejected(self):
        graph = path_graph(10)
        with pytest.raises(ValueError):
            compactness_profile(graph, ell=11, delta=1)
