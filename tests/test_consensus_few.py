"""Integration tests for Few-Crashes-Consensus (Fig. 3, Thm. 7)."""

import pytest

from repro import check_consensus, run_consensus
from repro.core.params import ProtocolParams
from tests.conftest import random_bits


class TestCorrectness:
    @pytest.mark.parametrize("seed", range(6))
    def test_random_inputs_random_crashes(self, seed):
        n, t = 100, 15
        inputs = random_bits(n, seed)
        result = run_consensus(inputs, t, algorithm="few", seed=seed)
        check_consensus(result, inputs)

    @pytest.mark.parametrize("kind", ["early", "late", "staggered"])
    def test_adversary_kinds(self, kind):
        n, t = 100, 15
        inputs = random_bits(n, 11)
        result = run_consensus(inputs, t, algorithm="few", crashes=kind, seed=4)
        check_consensus(result, inputs)

    def test_unanimous_zero(self):
        n, t = 80, 12
        result = run_consensus([0] * n, t, algorithm="few", seed=1)
        check_consensus(result, [0] * n)
        assert set(result.correct_decisions().values()) == {0}

    def test_unanimous_one(self):
        n, t = 80, 12
        result = run_consensus([1] * n, t, algorithm="few", seed=1)
        assert set(result.correct_decisions().values()) == {1}

    def test_single_one_input(self):
        # Only one node holds 1; with its possible crash either decision
        # is valid, but agreement must hold.
        n, t = 80, 12
        inputs = [0] * n
        inputs[37] = 1
        result = run_consensus(inputs, t, algorithm="few", seed=2)
        check_consensus(result, inputs)

    def test_failure_free(self):
        n, t = 100, 15
        inputs = random_bits(n, 5)
        result = run_consensus(inputs, t, algorithm="few", crashes=None)
        check_consensus(result, inputs)
        assert len(result.correct_decisions()) == n

    def test_rejects_t_too_large(self):
        with pytest.raises(ValueError):
            run_consensus([0] * 20, 4, algorithm="few")


class TestPerformanceShape:
    def test_rounds_linear_in_t_plus_log_n(self):
        # Theorem 7: O(t + log n) rounds.
        for n, t in ((100, 10), (200, 20), (400, 40)):
            inputs = random_bits(n, 1)
            result = run_consensus(inputs, t, algorithm="few", seed=1)
            # Generous constant: the schedule is ~5t + O(log n) rounds.
            assert result.rounds <= 8 * t + 30 * max(1, n.bit_length())

    def test_one_bit_messages(self):
        # Theorem 7 counts one-bit messages; every payload here is 0/1.
        result = run_consensus(random_bits(100, 3), 15, algorithm="few", seed=3)
        assert result.bits == result.messages

    def test_bit_complexity_shape(self):
        # O(n + t log t) with the practical overlay constants: normalise
        # by the parameterised bound and require a stable constant.
        ratios = []
        for n in (100, 200, 400):
            t = n // 10
            params = ProtocolParams(n=n, t=t)
            inputs = random_bits(n, 2)
            result = run_consensus(inputs, t, algorithm="few", seed=2)
            probing = (
                params.little_count
                * params.little_degree
                * (params.little_probe_rounds + 1)
            )
            spread = 20 * n
            ratios.append(result.bits / (probing + spread))
        assert max(ratios) <= 1.5

    def test_fast_forward_equivalence(self):
        # The quiescence optimisation must not change any observable.
        inputs = random_bits(80, 9)
        fast = run_consensus(inputs, 12, algorithm="few", seed=9, fast_forward=True)
        slow = run_consensus(inputs, 12, algorithm="few", seed=9, fast_forward=False)
        assert fast.rounds == slow.rounds
        assert fast.messages == slow.messages
        assert fast.bits == slow.bits
        assert fast.correct_decisions() == slow.correct_decisions()
