"""Integration tests for Many-Crashes-Consensus (Fig. 4, Thm. 8,
Cor. 1)."""

import math

import pytest

from repro import check_consensus, run_consensus
from repro.core.params import ProtocolParams
from tests.conftest import random_bits


class TestCorrectness:
    @pytest.mark.parametrize("seed", range(4))
    @pytest.mark.parametrize("alpha_num", [1, 2, 3])
    def test_random_crashes_across_alpha(self, seed, alpha_num):
        n = 80
        t = alpha_num * n // 4  # α in {1/4, 1/2, 3/4}
        inputs = random_bits(n, seed)
        result = run_consensus(inputs, t, algorithm="many", seed=seed)
        check_consensus(result, inputs)

    @pytest.mark.parametrize("kind", ["early", "late", "staggered"])
    def test_adversary_kinds(self, kind):
        n, t = 80, 40
        inputs = random_bits(n, 13)
        result = run_consensus(inputs, t, algorithm="many", crashes=kind, seed=5)
        check_consensus(result, inputs)

    def test_extreme_t_n_minus_one(self):
        # Corollary 1: up to t = n - 1 crashes.
        n = 40
        t = n - 1
        inputs = random_bits(n, 3)
        result = run_consensus(inputs, t, algorithm="many", seed=3)
        check_consensus(result, inputs)

    def test_unanimous_inputs(self):
        n, t = 60, 30
        for value in (0, 1):
            result = run_consensus([value] * n, t, algorithm="many", seed=1)
            check_consensus(result, [value] * n)
            assert set(result.correct_decisions().values()) <= {value}

    def test_failure_free(self):
        n, t = 60, 30
        inputs = random_bits(n, 8)
        result = run_consensus(inputs, t, algorithm="many", crashes=None)
        check_consensus(result, inputs)
        assert len(result.correct_decisions()) == n


class TestTheorem8Bounds:
    def test_round_bound_n_plus_3_log(self):
        # Theorem 8: at most n + 3(1 + lg n) rounds.
        for n, t in ((64, 32), (128, 64), (128, 100)):
            inputs = random_bits(n, 1)
            result = run_consensus(inputs, t, algorithm="many", seed=1)
            bound = n + 3 * (1 + math.ceil(math.log2(n)))
            # Our Part 3 runs a fixed phase count (the paper's bound is
            # on the same schedule); allow the +2 slack phases.
            assert result.rounds <= bound + 6

    def test_one_bit_messages(self):
        result = run_consensus(random_bits(64, 2), 32, algorithm="many", seed=2)
        assert result.bits == result.messages

    def test_message_bound_corollary_shape(self):
        # Corollary 1 allows (5/(1-α))^8 n lg n; with capped practical
        # degrees the count is far smaller -- check against the
        # parameterised schedule bound instead.
        for n, t in ((64, 32), (128, 64)):
            params = ProtocolParams(n=n, t=t)
            inputs = random_bits(n, 4)
            result = run_consensus(inputs, t, algorithm="many", seed=4)
            bound = (
                n * params.mcc_degree * (params.mcc_probe_rounds + 2)
                + 4 * n * params.mcc_phase_count * params.mcc_degree
            )
            assert result.messages <= bound

    def test_auto_selects_many_for_large_t(self):
        n, t = 50, 30
        inputs = random_bits(n, 1)
        result = run_consensus(inputs, t, algorithm="auto", seed=1)
        check_consensus(result, inputs)
        # MCC's Part 1 runs ~n rounds, unlike FCC's ~5t; distinguishable
        # by the round count exceeding FCC's schedule.
        assert result.rounds >= n - 1
