"""Documentation cannot rot: handbook doctests, link integrity, and
README scenario-gallery completeness are part of the test suite."""

import doctest
import pathlib
import re
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "tools"))

import check_links  # noqa: E402  (tools/ is not a package)


def test_faults_handbook_doctests():
    """Every snippet in docs/faults.md executes and prints what it
    claims (the CI docs job runs the same file via --doctest-glob)."""
    results = doctest.testfile(
        str(ROOT / "docs" / "faults.md"),
        module_relative=False,
        optionflags=doctest.NORMALIZE_WHITESPACE,
    )
    assert results.attempted > 10, "handbook lost its runnable examples"
    assert results.failed == 0


def test_observability_handbook_doctests():
    """Every snippet in docs/observability.md executes (the CI docs job
    runs the same file via --doctest-glob)."""
    results = doctest.testfile(
        str(ROOT / "docs" / "observability.md"),
        module_relative=False,
        optionflags=doctest.NORMALIZE_WHITESPACE,
    )
    assert results.attempted > 5, "handbook lost its runnable examples"
    assert results.failed == 0


def test_markdown_links_resolve():
    problems = []
    for path in check_links.collect_markdown():
        problems.extend(check_links.check_file(path))
    assert not problems, "\n".join(problems)


def test_readme_gallery_lists_every_example():
    """The README 'Scenario gallery' table must name every script in
    examples/ (and nothing that does not exist — covered by the link
    checker above)."""
    readme = (ROOT / "README.md").read_text(encoding="utf-8")
    examples = sorted(p.name for p in (ROOT / "examples").glob("*.py"))
    assert examples, "examples/ directory is empty?"
    missing = [name for name in examples if name not in readme]
    assert not missing, f"README gallery is missing {missing}"


def test_readme_gallery_rows_are_complete():
    """Each gallery row carries a paper reference and a fault model."""
    readme = (ROOT / "README.md").read_text(encoding="utf-8")
    match = re.search(r"## Scenario gallery\n(.*?)(\n## |\Z)", readme, re.DOTALL)
    assert match, "README lost its '## Scenario gallery' section"
    section = match.group(1)
    for name in sorted(p.name for p in (ROOT / "examples").glob("*.py")):
        row = next(
            (line for line in section.splitlines() if name in line), None
        )
        assert row is not None, f"{name} missing from the gallery table"
        assert row.count("|") >= 4, f"gallery row for {name} lost its columns"
