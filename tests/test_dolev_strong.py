"""Tests for the parallel Dolev–Strong substrate (Section 7)."""

from repro.auth.signatures import SignatureService
from repro.core.dolev_strong import ParallelDolevStrong, ds_message
from repro.core.params import ProtocolParams
from repro.sim.adversary import ByzantineProcess
from repro.sim.engine import Engine
from repro.sim.process import Multicast, Process


class DSNode(Process):
    """Wrapper running one ParallelDolevStrong component."""

    def __init__(self, pid, params, value, service, committee=None):
        super().__init__(pid, params.n)
        self.ds = ParallelDolevStrong(
            pid, params, value, 0, service, service.key_for(pid), committee=committee
        )

    def send(self, rnd):
        return self.ds.outgoing(rnd)

    def receive(self, rnd, inbox):
        self.ds.incoming(rnd, inbox)
        if rnd >= self.ds.cert_round:
            self.halt()

    def next_activity(self, rnd):
        return self.ds.next_activity(rnd)


def run_ds(n, t, values, byzantine=None, seed=0):
    params = ProtocolParams(n=n, t=t, seed=seed)
    service = SignatureService(n)
    byzantine = byzantine or {}
    processes = []
    for pid in range(n):
        if pid in byzantine:
            processes.append(byzantine[pid](pid, n, params, service))
        else:
            processes.append(DSNode(pid, params, values[pid], service, committee=n))
    engine = Engine(processes, byzantine=frozenset(byzantine))
    result = engine.run()
    return result, [p for p in processes if p.pid not in byzantine]


class TestHonestExecutions:
    def test_all_resolve_identically(self):
        n, t = 12, 2
        values = list(range(n))
        _, honest = run_ds(n, t, values)
        vectors = {node.ds.resolved for node in honest}
        assert len(vectors) == 1
        resolved = dict(vectors.pop())
        assert resolved == {i: i for i in range(n)}

    def test_certificates_fully_signed(self):
        n, t = 10, 2
        _, honest = run_ds(n, t, [1] * n)
        for node in honest:
            assert node.ds.certificate is not None
            assert len(node.ds.certificate.signatures) == n

    def test_t_zero_single_round(self):
        n = 8
        result, honest = run_ds(n, 0, [5] * n)
        assert all(dict(h.ds.resolved)[0] == 5 for h in honest)
        assert result.rounds <= 3

    def test_max_value_rule(self):
        n, t = 8, 1
        _, honest = run_ds(n, t, [3, 9, 1, 4, 0, 2, 2, 7])
        for node in honest:
            assert node.ds.certificate.max_value() == 9


class _Equivocator(ByzantineProcess):
    """Sends value 0 to the first half, value 1 to the rest, round 0."""

    def __init__(self, pid, n, params, service):
        super().__init__(pid, n)
        self.key = service.key_for(pid)

    def send(self, rnd):
        if rnd != 0:
            return ()
        others = [q for q in range(self.n) if q != self.pid]
        half = len(others) // 2
        out = []
        for value, group in ((0, others[:half]), (1, others[half:])):
            chain = (self.key.sign(ds_message(self.pid, value)),)
            out.append(Multicast(tuple(group), ((self.pid, value, chain),)))
        return out

    def next_activity(self, rnd):
        return rnd + 1 if rnd < 1 else rnd + 10_000


class _Forger(ByzantineProcess):
    """Relays a value for an honest instance with a fabricated chain."""

    def __init__(self, pid, n, params, service):
        super().__init__(pid, n)
        self.key = service.key_for(pid)

    def send(self, rnd):
        if rnd != 1:
            return ()
        # Claim instance 0 (an honest source) said 99; the chain lacks a
        # valid source signature so it must be rejected.
        chain = (self.key.sign(ds_message(0, 99)),)
        targets = tuple(q for q in range(self.n) if q != self.pid)
        return [Multicast(targets, ((0, 99, chain),))]

    def next_activity(self, rnd):
        return rnd + 1 if rnd < 2 else rnd + 10_000


class TestByzantineExecutions:
    def test_equivocating_source_resolves_null(self):
        n, t = 12, 2
        _, honest = run_ds(n, t, [1] * n, byzantine={3: _Equivocator})
        for node in honest:
            resolved = dict(node.ds.resolved)
            assert resolved[3] is None  # equivocation detected
            for pid in range(n):
                if pid != 3:
                    assert resolved[pid] == 1
        vectors = {node.ds.resolved for node in honest}
        assert len(vectors) == 1  # still identical everywhere

    def test_forged_relay_rejected(self):
        n, t = 10, 2
        _, honest = run_ds(n, t, [1] * n, byzantine={4: _Forger})
        for node in honest:
            resolved = dict(node.ds.resolved)
            assert resolved[0] == 1  # the forgery never displaced it

    def test_silent_source_resolves_null(self):
        class Silent(ByzantineProcess):
            def __init__(self, pid, n, params, service):
                super().__init__(pid, n)

            def next_activity(self, rnd):
                return rnd + 10_000

        n, t = 10, 2
        _, honest = run_ds(n, t, [1] * n, byzantine={5: Silent})
        for node in honest:
            assert dict(node.ds.resolved)[5] is None


class TestChainValidation:
    def test_short_chain_rejected_late(self):
        params = ProtocolParams(n=8, t=3, seed=0)
        service = SignatureService(8)
        ds = ParallelDolevStrong(0, params, 1, 0, service, service.key_for(0), committee=8)
        chain = (service.key_for(2).sign(ds_message(2, 7)),)
        # A one-signature chain is acceptable at ρ=0 but not at ρ=2.
        assert ds._chain_valid(2, 7, chain, rho=0)
        assert not ds._chain_valid(2, 7, chain, rho=2)

    def test_chain_must_start_with_source(self):
        params = ProtocolParams(n=8, t=3, seed=0)
        service = SignatureService(8)
        ds = ParallelDolevStrong(0, params, 1, 0, service, service.key_for(0), committee=8)
        chain = (service.key_for(3).sign(ds_message(2, 7)),)
        assert not ds._chain_valid(2, 7, chain, rho=0)

    def test_duplicate_signers_rejected(self):
        params = ProtocolParams(n=8, t=3, seed=0)
        service = SignatureService(8)
        ds = ParallelDolevStrong(0, params, 1, 0, service, service.key_for(0), committee=8)
        key = service.key_for(2)
        chain = (key.sign(ds_message(2, 7)), key.sign(ds_message(2, 7)))
        assert not ds._chain_valid(2, 7, chain, rho=1)
