"""Tests for the early-stopping consensus baseline (the [23]-style
comparator in the paper's related work)."""

import pytest

from repro.baselines import EarlyStoppingConsensusProcess
from repro.properties import check_consensus
from repro.sim import Engine, crash_schedule
from repro.sim.adversary import CrashSpec, ScheduledCrashes
from tests.conftest import random_bits


def run_early_stopping(n, t, inputs, adversary=None):
    processes = [
        EarlyStoppingConsensusProcess(i, n, t, inputs[i]) for i in range(n)
    ]
    return Engine(processes, adversary).run()


class TestCorrectness:
    @pytest.mark.parametrize("seed", range(5))
    @pytest.mark.parametrize("kind", ["random", "early", "staggered"])
    def test_spec_under_crashes(self, seed, kind):
        n, t = 60, 20
        inputs = random_bits(n, seed)
        adversary = crash_schedule(n, t, seed=seed, kind=kind, max_round=t + 1)
        result = run_early_stopping(n, t, inputs, adversary)
        check_consensus(result, inputs)

    def test_hidden_value_chain(self):
        # The adversarial pattern early stopping must survive: a single
        # 0 hops through partial-crash deliveries, one crash per round.
        # keep=k delivers a prefix of the broadcast, hiding the 0 from
        # most nodes while the carriers die one by one.
        n, t = 30, 10
        inputs = [1] * n
        inputs[0] = 0
        schedule = {pid: CrashSpec(round=pid, keep=1) for pid in range(t)}
        result = run_early_stopping(n, t, inputs, ScheduledCrashes(schedule))
        check_consensus(result, inputs)

    def test_failure_free_fast(self):
        n, t = 40, 15
        inputs = random_bits(n, 9)
        result = run_early_stopping(n, t, inputs)
        check_consensus(result, inputs)
        # f = 0: clean pair observed at round 1, cascade ends by round 3.
        assert result.rounds <= 3


class TestEarlyStoppingBehaviour:
    def test_rounds_track_f_not_t(self):
        # With f ≪ t actual crashes, deciding takes O(f + 1) rounds,
        # far below the t + 1 cap.
        n, t = 60, 25
        inputs = random_bits(n, 2)
        for f in (0, 3, 8):
            adversary = crash_schedule(n, f, seed=3, kind="staggered", max_round=f + 1)
            result = run_early_stopping(n, t, inputs, adversary)
            check_consensus(result, inputs)
            assert result.rounds <= f + 5

    def test_round_cap_at_t_plus_one(self):
        n, t = 40, 12
        inputs = random_bits(n, 4)
        adversary = crash_schedule(n, t, seed=4, kind="staggered", max_round=t + 1)
        result = run_early_stopping(n, t, inputs, adversary)
        check_consensus(result, inputs)
        assert result.rounds <= t + 3  # cap + DECIDED cascade

    def test_quadratic_messages_are_the_price(self):
        # Dolev–Lenzen: f+1-round deciding costs Ω(n²) messages; the
        # baseline indeed pays ~n² per round, which is what the paper's
        # fixed-schedule algorithms avoid.
        n, t = 60, 10
        inputs = random_bits(n, 5)
        result = run_early_stopping(n, t, inputs)
        assert result.messages >= n * (n - 1)
