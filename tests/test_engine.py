"""Unit tests for the multi-port synchronous engine (Section 2 model)."""

import pytest

from repro.sim.adversary import CrashSpec, NoFailures, ScheduledCrashes
from repro.sim.engine import Engine
from repro.sim.process import Multicast, Process, ProtocolError


class Echo(Process):
    """Sends its pid to everyone at round 0, records what it receives."""

    def __init__(self, pid, n, rounds=1):
        super().__init__(pid, n)
        self.rounds = rounds
        self.seen = []

    def send(self, rnd):
        if rnd == 0:
            others = tuple(q for q in range(self.n) if q != self.pid)
            return [Multicast(others, self.pid)]
        return ()

    def receive(self, rnd, inbox):
        self.seen.extend(src for src, _ in inbox)
        if rnd >= self.rounds - 1:
            self.halt()


class TestDelivery:
    def test_same_round_delivery(self):
        procs = [Echo(i, 4) for i in range(4)]
        result = Engine(procs).run()
        assert result.completed
        for proc in procs:
            assert sorted(proc.seen) == sorted(q for q in range(4) if q != proc.pid)

    def test_rounds_counted_until_all_halt(self):
        procs = [Echo(i, 3, rounds=5) for i in range(3)]
        result = Engine(procs).run()
        assert result.rounds == 5

    def test_message_and_bit_totals(self):
        procs = [Echo(i, 5) for i in range(5)]
        result = Engine(procs).run()
        assert result.messages == 5 * 4
        # pids 0..4 have bit lengths 1,1,2,2,3 -> each sent to 4 peers.
        assert result.bits == 4 * (1 + 1 + 2 + 2 + 3)

    def test_per_node_accounting(self):
        procs = [Echo(i, 4) for i in range(4)]
        result = Engine(procs).run()
        assert all(result.metrics.per_node_messages[p] == 3 for p in range(4))


class TestCrashSemantics:
    def test_crashed_node_sends_nothing_after_crash(self):
        adversary = ScheduledCrashes({0: CrashSpec(round=0, keep=0)})
        procs = [Echo(i, 4) for i in range(4)]
        result = Engine(procs, adversary).run()
        assert 0 in result.crashed
        for proc in procs[1:]:
            assert 0 not in proc.seen

    def test_partial_send_delivers_prefix(self):
        adversary = ScheduledCrashes({0: CrashSpec(round=0, keep=2)})
        procs = [Echo(i, 5) for i in range(5)]
        Engine(procs, adversary).run()
        receivers = [p.pid for p in procs[1:] if 0 in p.seen]
        # Node 0's multicast order is (1, 2, 3, 4); only the first two
        # may receive.
        assert receivers == [1, 2]

    def test_crashed_node_does_not_receive(self):
        adversary = ScheduledCrashes({2: CrashSpec(round=0, keep=None)})
        procs = [Echo(i, 4) for i in range(4)]
        Engine(procs, adversary).run()
        # keep=None delivers its full round-0 send but it must not
        # receive anything in that same round.
        assert procs[2].seen == []

    def test_crash_budget_excluded_from_termination(self):
        adversary = ScheduledCrashes({0: CrashSpec(round=0, keep=0)})
        procs = [Echo(i, 3) for i in range(3)]
        result = Engine(procs, adversary).run()
        assert result.completed
        assert result.correct_pids() == [1, 2]

    def test_crashing_byzantine_node_rejected(self):
        adversary = ScheduledCrashes({0: CrashSpec(round=0, keep=0)})
        procs = [Echo(i, 3) for i in range(3)]
        engine = Engine(procs, adversary, byzantine=frozenset({0}))
        with pytest.raises(ProtocolError):
            engine.run()


class TestByzantineAccounting:
    def test_byzantine_traffic_not_counted(self):
        procs = [Echo(i, 4) for i in range(4)]
        result = Engine(procs, byzantine=frozenset({1})).run()
        assert result.messages == 3 * 3
        assert result.metrics.faulty_messages == 3


class TestFastForward:
    class Sleeper(Process):
        """Quiescent until a scheduled wake round, then halts."""

        def __init__(self, pid, n, wake):
            super().__init__(pid, n)
            self.wake = wake
            self.acted_at = None

        def send(self, rnd):
            if rnd == self.wake:
                self.acted_at = rnd
            return ()

        def receive(self, rnd, inbox):
            if rnd >= self.wake:
                self.halt()

        def next_activity(self, rnd):
            return max(rnd + 1, self.wake)

    def test_fast_forward_skips_quiescent_rounds(self):
        procs = [self.Sleeper(i, 2, wake=5000) for i in range(2)]
        result = Engine(procs).run()
        assert result.completed
        assert result.rounds == 5001
        assert all(p.acted_at == 5000 for p in procs)

    def test_fast_forward_respects_scheduled_crashes(self):
        # A crash scheduled mid-sleep must still be applied.
        adversary = ScheduledCrashes({0: CrashSpec(round=100, keep=0)})
        procs = [self.Sleeper(i, 2, wake=5000) for i in range(2)]
        result = Engine(procs, adversary).run()
        assert 0 in result.crashed
        assert result.completed

    def test_fast_forward_equivalence(self):
        for flag in (True, False):
            procs = [Echo(i, 4, rounds=3) for i in range(4)]
            result = Engine(procs, fast_forward=flag).run()
            assert result.rounds == 3
            assert result.messages == 12

    def test_bad_next_activity_rejected(self):
        class Bad(self.Sleeper):
            def next_activity(self, rnd):
                return rnd  # not in the future

        procs = [Bad(i, 2, wake=50) for i in range(2)]
        with pytest.raises(ProtocolError):
            Engine(procs).run()


class TestValidation:
    def test_pid_order_enforced(self):
        procs = [Echo(1, 2), Echo(0, 2)]
        with pytest.raises(ProtocolError):
            Engine(procs)

    def test_invalid_destination_rejected(self):
        class Stray(Process):
            def send(self, rnd):
                return [(99, 1)]

        with pytest.raises(ProtocolError):
            Engine([Stray(0, 2), Echo(1, 2)]).run()

    def test_max_rounds_marks_incomplete(self):
        class Forever(Process):
            pass  # never halts, never sends

        result = Engine([Forever(0, 1)], max_rounds=10).run()
        assert not result.completed

    def test_all_crashed_run_completes(self):
        adversary = ScheduledCrashes(
            {0: CrashSpec(0, 0), 1: CrashSpec(0, 0)}
        )
        procs = [Echo(i, 2) for i in range(2)]
        result = Engine(procs, adversary).run()
        assert result.completed
        assert result.correct_pids() == []


class TestDecisions:
    def test_decide_is_irrevocable(self):
        proc = Echo(0, 2)
        proc.decide(1)
        with pytest.raises(ProtocolError):
            proc.decide(0)
        proc.decide(1)  # same value is a no-op

    def test_decisions_collected_in_result(self):
        class Decider(Echo):
            def receive(self, rnd, inbox):
                self.decide(self.pid * 10)
                self.halt()

        procs = [Decider(i, 3) for i in range(3)]
        result = Engine(procs).run()
        assert result.decisions == {0: 0, 1: 10, 2: 20}

    def test_observer_sees_every_round(self):
        rounds = []
        procs = [Echo(i, 3, rounds=4) for i in range(3)]
        Engine(procs).run(observer=lambda rnd, ps: rounds.append(rnd))
        assert rounds == [0, 1, 2, 3]
